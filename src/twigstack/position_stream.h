#ifndef PRIX_TWIGSTACK_POSITION_STREAM_H_
#define PRIX_TWIGSTACK_POSITION_STREAM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "common/result.h"
#include "db/database.h"
#include "storage/buffer_pool.h"
#include "storage/cow.h"
#include "xml/document.h"

namespace prix {

/// Positional representation of one element instance: the region encoding
/// (DocId, LeftPos:RightPos, LevelNum) of Bruno et al., plus the node's
/// postorder number so reported matches are comparable with PRIX's.
struct ElementPos {
  DocId doc;
  uint32_t left;
  uint32_t right;
  uint32_t level;
  uint32_t post;

  /// Global order key of the element's start position.
  uint64_t BeginKey() const {
    return (static_cast<uint64_t>(doc) << 32) | left;
  }
  /// Global order key of the element's end position.
  uint64_t EndKey() const {
    return (static_cast<uint64_t>(doc) << 32) | right;
  }
};

inline constexpr uint64_t kInfiniteKey = ~uint64_t{0};

/// Per-tag sorted streams of element positions, stored on 8 KB pages.
/// TwigStack consumes them through SimpleStreamCursor; TwigStackXB through
/// the XB-tree (xb_tree.h).
class StreamStore {
 public:
  struct StreamInfo {
    std::vector<PageId> pages;
    uint32_t count = 0;
  };

  static constexpr size_t kEntriesPerPage = kPageUsable / sizeof(ElementPos);

  /// Builds streams for every label in the collection. Every node of every
  /// document (elements and values alike) contributes one entry to its
  /// label's stream; streams are sorted by (doc, left).
  static Result<std::unique_ptr<StreamStore>> Build(
      const std::vector<Document>& documents, BufferPool* pool);

  /// Registers the stream directory (per-label page lists) in `db`'s
  /// catalog under `name` (kind kTwigStreams).
  Status Save(Database* db, const std::string& name) const;

  /// Reopens streams registered under `name` in `db`'s catalog.
  static Result<std::unique_ptr<StreamStore>> Open(Database* db,
                                                   const std::string& name);

  /// Reopens a stream store from a catalog entry directly — the snapshot
  /// read path and the ingest acquire path. Kind and staleness checks
  /// happen here; Open delegates.
  static Result<std::unique_ptr<StreamStore>> OpenFromEntry(
      BufferPool* pool, const Database::IndexEntry& entry);

  // ---- online-ingest surface (src/prix/database_ingest.cc) ----
  //
  // Streams stay append-only: an insert appends the new document's entries
  // to the tail of each touched tag stream (DocIds are assigned
  // monotonically, so (doc, left) order is preserved), and a delete
  // tombstones the DocId — cursors skip dead entries, nothing is compacted
  // in place. Catalog v2 persists the document count and the tombstone set;
  // v1 blobs (older binaries) reopen read-only as `legacy()` and are left
  // out of ingest commits, so they still go stale the old way.

  /// Appends every node of `doc` to its label's stream under DocId
  /// `assigned` (which must equal num_docs()). New and COW-copied tail
  /// pages are reported to `cow`; each touched label is appended to
  /// `touched` (for the paired XB-forest's incremental rebuild).
  Status AppendDocument(const Document& doc, DocId assigned, CowContext* cow,
                        std::vector<LabelId>* touched);

  bool IsDeleted(DocId doc) const {
    return tombstones_.find(doc) != tombstones_.end();
  }
  void Tombstone(DocId doc) { tombstones_.insert(doc); }
  const std::unordered_set<DocId>& tombstones() const { return tombstones_; }
  /// Documents ever appended (incl. tombstoned); 0 for legacy v1 stores.
  uint32_t num_docs() const { return num_docs_; }
  /// True when the store was persisted by a pre-ingest binary (catalog v1):
  /// no document count, no tombstones, excluded from ingest commits.
  bool legacy() const { return legacy_; }

  /// Serializes the stream directory into `blob` — what Save writes,
  /// exposed so a write transaction can publish through
  /// Database::CommitBatch instead of PutIndex.
  void SerializeCatalog(std::vector<char>* blob) const;

  bool HasStream(LabelId label) const {
    return streams_.find(label) != streams_.end();
  }
  /// Null when the label never occurs (an always-empty stream).
  const StreamInfo* Find(LabelId label) const {
    auto it = streams_.find(label);
    return it == streams_.end() ? nullptr : &it->second;
  }
  BufferPool* pool() const { return pool_; }
  uint64_t total_entries() const { return total_entries_; }
  uint64_t total_pages() const { return total_pages_; }
  /// All streams by label (the verifier's enumeration; queries use Find).
  const std::unordered_map<LabelId, StreamInfo>& streams() const {
    return streams_;
  }

  /// Reads entry `index` of `info` (page fetch counted by the pool).
  Result<ElementPos> ReadEntry(const StreamInfo& info, uint32_t index) const;

 private:
  explicit StreamStore(BufferPool* pool) : pool_(pool) {}

  /// Appends `entries` to the tail of `info`'s page chain, COW-copying a
  /// non-fresh partial tail page first.
  Status AppendEntries(StreamInfo* info, const std::vector<ElementPos>& entries,
                       CowContext* cow);

  BufferPool* pool_;
  std::unordered_map<LabelId, StreamInfo> streams_;
  std::unordered_set<DocId> tombstones_;
  uint32_t num_docs_ = 0;
  bool legacy_ = false;
  uint64_t total_entries_ = 0;
  uint64_t total_pages_ = 0;
};

/// Sequential cursor over one tag stream with page-granular buffering: each
/// page is fetched once (through the buffer pool) when first entered.
class SimpleStreamCursor {
 public:
  /// `info` may be null (empty stream).
  SimpleStreamCursor(const StreamStore* store,
                     const StreamStore::StreamInfo* info)
      : store_(store), info_(info) {}

  bool Eof() const {
    return info_ == nullptr || index_ >= info_->count;
  }
  /// Begin key of the current element, or kInfiniteKey at eof.
  uint64_t NextL() const {
    return Eof() ? kInfiniteKey : current_.BeginKey();
  }
  uint64_t NextR() const { return Eof() ? kInfiniteKey : current_.EndKey(); }
  const ElementPos& Current() const { return current_; }

  /// Loads the first element; call once before use.
  Status Init() { return LoadCurrent(); }
  Status Advance() {
    ++index_;
    return LoadCurrent();
  }

 private:
  Status LoadCurrent();

  const StreamStore* store_;
  const StreamStore::StreamInfo* info_;
  uint32_t index_ = 0;
  ElementPos current_{};
  // One-page read-ahead buffer.
  std::vector<ElementPos> buffer_;
  uint32_t buffer_page_ = 0xffffffffu;
};

/// Computes the region encoding of `doc`: out[node] = its ElementPos. Left
/// positions are assigned by a preorder counter, right after the subtree
/// (extended-preorder containment), level is the depth (root = 1).
std::vector<ElementPos> ComputeRegions(const Document& doc);

}  // namespace prix

#endif  // PRIX_TWIGSTACK_POSITION_STREAM_H_
