#ifndef PRIX_TWIGSTACK_POSITION_STREAM_H_
#define PRIX_TWIGSTACK_POSITION_STREAM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "storage/buffer_pool.h"
#include "xml/document.h"

namespace prix {

/// Positional representation of one element instance: the region encoding
/// (DocId, LeftPos:RightPos, LevelNum) of Bruno et al., plus the node's
/// postorder number so reported matches are comparable with PRIX's.
struct ElementPos {
  DocId doc;
  uint32_t left;
  uint32_t right;
  uint32_t level;
  uint32_t post;

  /// Global order key of the element's start position.
  uint64_t BeginKey() const {
    return (static_cast<uint64_t>(doc) << 32) | left;
  }
  /// Global order key of the element's end position.
  uint64_t EndKey() const {
    return (static_cast<uint64_t>(doc) << 32) | right;
  }
};

inline constexpr uint64_t kInfiniteKey = ~uint64_t{0};

/// Per-tag sorted streams of element positions, stored on 8 KB pages.
/// TwigStack consumes them through SimpleStreamCursor; TwigStackXB through
/// the XB-tree (xb_tree.h).
class StreamStore {
 public:
  struct StreamInfo {
    std::vector<PageId> pages;
    uint32_t count = 0;
  };

  static constexpr size_t kEntriesPerPage = kPageUsable / sizeof(ElementPos);

  /// Builds streams for every label in the collection. Every node of every
  /// document (elements and values alike) contributes one entry to its
  /// label's stream; streams are sorted by (doc, left).
  static Result<std::unique_ptr<StreamStore>> Build(
      const std::vector<Document>& documents, BufferPool* pool);

  /// Registers the stream directory (per-label page lists) in `db`'s
  /// catalog under `name` (kind kTwigStreams).
  Status Save(Database* db, const std::string& name) const;

  /// Reopens streams registered under `name` in `db`'s catalog.
  static Result<std::unique_ptr<StreamStore>> Open(Database* db,
                                                   const std::string& name);

  bool HasStream(LabelId label) const {
    return streams_.find(label) != streams_.end();
  }
  /// Null when the label never occurs (an always-empty stream).
  const StreamInfo* Find(LabelId label) const {
    auto it = streams_.find(label);
    return it == streams_.end() ? nullptr : &it->second;
  }
  BufferPool* pool() const { return pool_; }
  uint64_t total_entries() const { return total_entries_; }
  uint64_t total_pages() const { return total_pages_; }
  /// All streams by label (the verifier's enumeration; queries use Find).
  const std::unordered_map<LabelId, StreamInfo>& streams() const {
    return streams_;
  }

  /// Reads entry `index` of `info` (page fetch counted by the pool).
  Result<ElementPos> ReadEntry(const StreamInfo& info, uint32_t index) const;

 private:
  explicit StreamStore(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool_;
  std::unordered_map<LabelId, StreamInfo> streams_;
  uint64_t total_entries_ = 0;
  uint64_t total_pages_ = 0;
};

/// Sequential cursor over one tag stream with page-granular buffering: each
/// page is fetched once (through the buffer pool) when first entered.
class SimpleStreamCursor {
 public:
  /// `info` may be null (empty stream).
  SimpleStreamCursor(const StreamStore* store,
                     const StreamStore::StreamInfo* info)
      : store_(store), info_(info) {}

  bool Eof() const {
    return info_ == nullptr || index_ >= info_->count;
  }
  /// Begin key of the current element, or kInfiniteKey at eof.
  uint64_t NextL() const {
    return Eof() ? kInfiniteKey : current_.BeginKey();
  }
  uint64_t NextR() const { return Eof() ? kInfiniteKey : current_.EndKey(); }
  const ElementPos& Current() const { return current_; }

  /// Loads the first element; call once before use.
  Status Init() { return LoadCurrent(); }
  Status Advance() {
    ++index_;
    return LoadCurrent();
  }

 private:
  Status LoadCurrent();

  const StreamStore* store_;
  const StreamStore::StreamInfo* info_;
  uint32_t index_ = 0;
  ElementPos current_{};
  // One-page read-ahead buffer.
  std::vector<ElementPos> buffer_;
  uint32_t buffer_page_ = 0xffffffffu;
};

/// Computes the region encoding of `doc`: out[node] = its ElementPos. Left
/// positions are assigned by a preorder counter, right after the subtree
/// (extended-preorder containment), level is the depth (root = 1).
std::vector<ElementPos> ComputeRegions(const Document& doc);

}  // namespace prix

#endif  // PRIX_TWIGSTACK_POSITION_STREAM_H_
