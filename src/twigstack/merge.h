#ifndef PRIX_TWIGSTACK_MERGE_H_
#define PRIX_TWIGSTACK_MERGE_H_

#include <cstdint>
#include <vector>

#include "naive/naive_matcher.h"
#include "query/twig_pattern.h"
#include "twigstack/position_stream.h"

namespace prix {

/// Solutions of one root-to-leaf query path: `path` lists effective-twig
/// node ids from the root down; each solution assigns an element to every
/// path node.
struct PathSolutionSet {
  std::vector<uint32_t> path;
  std::vector<std::vector<ElementPos>> solutions;
};

/// The merge post-processing step of TwigStack (Sec. 2): equi-joins the
/// per-path solution lists on their shared query nodes, producing complete
/// twig tuples under standard twig-join semantics. Images are reported as
/// postorder numbers. `join_rows_examined` (optional) counts the work.
std::vector<TwigMatch> MergePathSolutions(
    const EffectiveTwig& twig, const std::vector<PathSolutionSet>& paths,
    uint64_t* join_rows_examined = nullptr);

}  // namespace prix

#endif  // PRIX_TWIGSTACK_MERGE_H_
