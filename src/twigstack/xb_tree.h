#ifndef PRIX_TWIGSTACK_XB_TREE_H_
#define PRIX_TWIGSTACK_XB_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "twigstack/position_stream.h"

namespace prix {

/// Uniform cursor over one tag's input list, as consumed by the stack-based
/// twig algorithms. NextL/NextR expose the (possibly summarized) next
/// position; EnsureElement materializes an actual element (for XB cursors,
/// drills to the leaf level).
class TagCursor {
 public:
  virtual ~TagCursor() = default;
  virtual bool Eof() const = 0;
  virtual uint64_t NextL() const = 0;
  virtual uint64_t NextR() const = 0;
  /// Moves past the current entry (XB cursors may ascend to a coarser
  /// level, which is what makes skipping possible).
  virtual Status Advance() = 0;
  /// Drills to an actual element; no-op for plain stream cursors.
  virtual Status EnsureElement() = 0;
  /// Valid after EnsureElement() and before the next Advance().
  virtual const ElementPos& Current() const = 0;
};

/// TwigStack's cursor: a plain sorted scan.
class SimpleTagCursor final : public TagCursor {
 public:
  SimpleTagCursor(const StreamStore* store,
                  const StreamStore::StreamInfo* info)
      : cursor_(store, info) {}
  Status Init() { return cursor_.Init(); }

  bool Eof() const override { return cursor_.Eof(); }
  uint64_t NextL() const override { return cursor_.NextL(); }
  uint64_t NextR() const override { return cursor_.NextR(); }
  Status Advance() override { return cursor_.Advance(); }
  Status EnsureElement() override { return Status::OK(); }
  const ElementPos& Current() const override { return cursor_.Current(); }

 private:
  SimpleStreamCursor cursor_;
};

/// XB-tree over one tag stream (Bruno et al. Sec. 4.3): a balanced tree
/// whose leaf level is the stream's pages and whose internal entries carry
/// (begin, max-end) summaries, supporting advance/drilldown so TwigStackXB
/// can skip stream regions without reading them.
class XbTree {
 public:
  struct Level {
    std::vector<PageId> pages;
    uint32_t entry_count = 0;
  };

  /// Entries per internal page.
  static constexpr size_t kFanout = kPageUsable / (2 * sizeof(uint64_t));

  /// Builds the internal levels above `info`'s pages. `info` may be null.
  /// Summaries cover only LIVE entries (tombstoned documents are excluded
  /// from max-end), so skipping is exact for the current tombstone set;
  /// within an ingest transaction the new pages are registered with `cow`
  /// (and flushing is left to the commit) instead of FlushAll'd here.
  static Result<std::unique_ptr<XbTree>> Build(
      const StreamStore* store, const StreamStore::StreamInfo* info,
      CowContext* cow = nullptr);

  /// Re-creates a tree over already-persisted internal pages (XbForest
  /// persistence); no pages are read or allocated.
  static std::unique_ptr<XbTree> FromLevels(
      const StreamStore* store, const StreamStore::StreamInfo* info,
      std::vector<Level> levels);

  const StreamStore* store() const { return store_; }
  const StreamStore::StreamInfo* stream() const { return stream_; }
  /// Internal levels, index 0 = directly above the stream pages.
  const std::vector<Level>& levels() const { return levels_; }
  uint64_t internal_pages() const { return internal_pages_; }
  bool empty() const {
    return stream_ == nullptr || stream_->count == 0;
  }

 private:
  XbTree(const StreamStore* store, const StreamStore::StreamInfo* info)
      : store_(store), stream_(info) {}

  const StreamStore* store_;
  const StreamStore::StreamInfo* stream_;
  std::vector<Level> levels_;
  uint64_t internal_pages_ = 0;
};

/// Hierarchical cursor over an XbTree. `level` == 0 means the stream (leaf)
/// level; level k > 0 is levels()[k-1]. The cursor starts at the root and
/// both advances and drills monotonically left-to-right.
class XbCursor final : public TagCursor {
 public:
  explicit XbCursor(const XbTree* tree);
  Status Init();

  bool Eof() const override { return eof_; }
  uint64_t NextL() const override;
  uint64_t NextR() const override;
  Status Advance() override;
  Status EnsureElement() override;
  const ElementPos& Current() const override { return element_; }

  /// Descends one level (first entry of the current child). No-op at the
  /// leaf level.
  Status DrillDown();
  bool AtLeafLevel() const { return level_ == 0; }
  uint64_t drilldowns() const { return drilldowns_; }

 private:
  /// Number of entries in node `node` of `level`.
  uint32_t NodeEntryCount(int level, uint32_t node) const;
  uint32_t LevelEntryTotal(int level) const;
  Status LoadEntry();
  /// Advance without the dead-entry settle (the raw Bruno et al. move).
  Status AdvanceRaw();
  /// Steps past tombstoned leaf entries so NextL/NextR always describe a
  /// live element (or a summary, or eof).
  Status SettleLive();

  const XbTree* tree_;
  int level_ = 0;        // 0 = stream level
  uint32_t node_ = 0;    // node (page) index within the level
  uint32_t entry_ = 0;   // entry within the node
  bool eof_ = false;
  // Decoded current entry.
  uint64_t begin_ = 0;
  uint64_t max_end_ = 0;
  ElementPos element_{};
  // One-page buffer per access.
  std::vector<char> buffer_;
  int buffered_level_ = -2;
  uint32_t buffered_node_ = 0xffffffffu;
  uint64_t drilldowns_ = 0;
};

}  // namespace prix

#endif  // PRIX_TWIGSTACK_XB_TREE_H_
