#include "twigstack/path_stack.h"

#include <algorithm>

#include "common/macros.h"

namespace prix {

namespace {

bool EdgeOk(const EdgeSpec& edge, const ElementPos& anc,
            const ElementPos& desc) {
  if (!(anc.doc == desc.doc && anc.left < desc.left &&
        desc.right < anc.right)) {
    return false;
  }
  uint32_t dist = desc.level - anc.level;
  return edge.exact ? dist == edge.min_edges : dist >= edge.min_edges;
}

struct StackEntry {
  ElementPos elem;
  int parent_top;
};

}  // namespace

Result<PathStackResult> PathStackEngine::Execute(const TwigPattern& pattern) {
  if (pattern.empty()) return Status::InvalidArgument("empty twig pattern");
  EffectiveTwig twig = EffectiveTwig::Build(pattern);
  const size_t n = twig.num_nodes();
  std::vector<uint32_t> path;  // root .. leaf
  for (uint32_t q = 0; q < n; ++q) {
    if (twig.is_star(q)) {
      return Status::NotImplemented("PathStack does not stream '*' tests");
    }
    if (twig.node(q).children.size() > 1) {
      return Status::InvalidArgument("PathStack accepts only path queries");
    }
  }
  uint32_t cur = twig.root();
  while (true) {
    path.push_back(cur);
    if (twig.node(cur).children.empty()) break;
    cur = twig.node(cur).children[0];
  }

  std::vector<SimpleStreamCursor> cursors;
  cursors.reserve(n);
  for (uint32_t q : path) {
    cursors.emplace_back(store_, store_->Find(twig.node(q).label));
  }
  for (auto& c : cursors) PRIX_RETURN_NOT_OK(c.Init());

  std::vector<std::vector<StackEntry>> stacks(path.size());
  PathSolutionSet set;
  set.path = path;
  PathStackResult result;

  const size_t leaf = path.size() - 1;
  while (!cursors[leaf].Eof()) {
    // qmin: the non-eof stream with the smallest next begin key.
    size_t qmin = leaf;
    uint64_t lmin = cursors[leaf].NextL();
    for (size_t i = 0; i < path.size(); ++i) {
      if (cursors[i].NextL() < lmin) {
        lmin = cursors[i].NextL();
        qmin = i;
      }
    }
    const ElementPos elem = cursors[qmin].Current();
    ++result.stats.elements_processed;
    for (size_t i = 0; i < path.size(); ++i) {
      auto& stack = stacks[i];
      while (!stack.empty() && stack.back().elem.EndKey() < lmin) {
        stack.pop_back();
      }
    }
    if (qmin == leaf) {
      // Expand solutions: choose one stack entry per ancestor level, bound
      // by the chained parent_top pointers.
      std::vector<ElementPos> partial(path.size());
      partial[leaf] = elem;
      struct Frame {
        int idx;
        int bound;
      };
      // Recursive expansion via explicit lambda recursion.
      auto expand = [&](auto&& self, int idx, int bound) -> void {
        if (idx < 0) {
          uint32_t depth = partial[0].level - 1;
          EdgeSpec anchor = twig.root_anchor();
          bool anchor_ok = anchor.exact ? depth == anchor.min_edges
                                        : depth >= anchor.min_edges;
          if (!anchor_ok) return;
          set.solutions.push_back(partial);
          ++result.stats.solutions;
          return;
        }
        const EdgeSpec edge = twig.node(path[idx + 1]).edge;
        for (int j = 0; j <= bound; ++j) {
          const StackEntry& entry = stacks[idx][j];
          if (!EdgeOk(edge, entry.elem, partial[idx + 1])) continue;
          partial[idx] = entry.elem;
          self(self, idx - 1, entry.parent_top);
        }
      };
      if (path.size() == 1) {
        expand(expand, -1, -1);
      } else {
        expand(expand, static_cast<int>(leaf) - 1,
               static_cast<int>(stacks[leaf - 1].size()) - 1);
      }
    } else {
      int parent_top =
          qmin == 0 ? -1 : static_cast<int>(stacks[qmin - 1].size()) - 1;
      stacks[qmin].push_back(StackEntry{elem, parent_top});
    }
    PRIX_RETURN_NOT_OK(cursors[qmin].Advance());
  }

  uint64_t rows = 0;
  result.matches = MergePathSolutions(twig, {set}, &rows);
  for (const TwigMatch& m : result.matches) result.docs.push_back(m.doc);
  std::sort(result.docs.begin(), result.docs.end());
  result.docs.erase(std::unique(result.docs.begin(), result.docs.end()),
                    result.docs.end());
  return result;
}

}  // namespace prix
