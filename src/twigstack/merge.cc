#include "twigstack/merge.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace prix {

namespace {

/// Partial twig assignment: node -> element begin key (0 = unassigned),
/// plus the postorder image for reporting.
struct Partial {
  std::vector<uint64_t> key;    // per twig node, BeginKey or 0
  std::vector<uint32_t> image;  // per twig node, postorder number
  DocId doc = 0;
};

}  // namespace

std::vector<TwigMatch> MergePathSolutions(
    const EffectiveTwig& twig, const std::vector<PathSolutionSet>& paths,
    uint64_t* join_rows_examined) {
  std::vector<TwigMatch> out;
  if (paths.empty()) return out;
  for (const PathSolutionSet& p : paths) {
    if (p.solutions.empty()) return out;  // some leaf never matched
  }
  uint64_t rows = 0;
  const size_t n = twig.num_nodes();

  std::vector<Partial> acc;
  std::vector<bool> assigned(n, false);
  // Seed with the first path's solutions.
  for (const auto& sol : paths[0].solutions) {
    Partial partial;
    partial.key.assign(n, 0);
    partial.image.assign(n, 0);
    for (size_t i = 0; i < paths[0].path.size(); ++i) {
      partial.key[paths[0].path[i]] = sol[i].BeginKey();
      partial.image[paths[0].path[i]] = sol[i].post;
    }
    partial.doc = sol[0].doc;
    acc.push_back(std::move(partial));
    ++rows;
  }
  for (uint32_t node : paths[0].path) assigned[node] = true;

  for (size_t pi = 1; pi < paths.size(); ++pi) {
    const PathSolutionSet& p = paths[pi];
    // Shared nodes: the already-assigned prefix of this path.
    std::vector<size_t> shared_idx;
    std::vector<size_t> fresh_idx;
    for (size_t i = 0; i < p.path.size(); ++i) {
      (assigned[p.path[i]] ? shared_idx : fresh_idx).push_back(i);
    }
    // Hash the accumulated tuples by their projection on the shared nodes.
    std::map<std::vector<uint64_t>, std::vector<size_t>> table;
    for (size_t a = 0; a < acc.size(); ++a) {
      std::vector<uint64_t> proj;
      proj.reserve(shared_idx.size());
      for (size_t i : shared_idx) proj.push_back(acc[a].key[p.path[i]]);
      table[std::move(proj)].push_back(a);
    }
    std::vector<Partial> next;
    for (const auto& sol : p.solutions) {
      ++rows;
      std::vector<uint64_t> proj;
      proj.reserve(shared_idx.size());
      for (size_t i : shared_idx) proj.push_back(sol[i].BeginKey());
      auto it = table.find(proj);
      if (it == table.end()) continue;
      for (size_t a : it->second) {
        Partial merged = acc[a];
        for (size_t i : fresh_idx) {
          merged.key[p.path[i]] = sol[i].BeginKey();
          merged.image[p.path[i]] = sol[i].post;
        }
        next.push_back(std::move(merged));
      }
    }
    acc = std::move(next);
    for (uint32_t node : p.path) assigned[node] = true;
    if (acc.empty()) break;
  }

  out.reserve(acc.size());
  for (Partial& partial : acc) {
    out.push_back(TwigMatch{partial.doc, std::move(partial.image)});
  }
  std::sort(out.begin(), out.end());
  if (join_rows_examined != nullptr) *join_rows_examined += rows;
  return out;
}

}  // namespace prix
