#include "twigstack/xb_tree.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "storage/page_format.h"

namespace prix {

namespace {

struct RawEntry {
  uint64_t begin;
  uint64_t max_end;
};

}  // namespace

Result<std::unique_ptr<XbTree>> XbTree::Build(
    const StreamStore* store, const StreamStore::StreamInfo* info,
    CowContext* cow) {
  auto tree = std::unique_ptr<XbTree>(new XbTree(store, info));
  if (info == nullptr || info->count == 0) return tree;

  // Summaries of the current level, starting with the stream pages. The
  // max-end of a page is taken over its live entries only: a page whose
  // entries are all tombstoned summarizes to max_end 0, which no query
  // range reaches, so the whole page is skipped without a drill-down.
  std::vector<RawEntry> summaries;
  summaries.reserve(info->pages.size());
  for (size_t p = 0; p < info->pages.size(); ++p) {
    uint32_t first = static_cast<uint32_t>(p * StreamStore::kEntriesPerPage);
    uint32_t last = std::min<uint32_t>(
        first + StreamStore::kEntriesPerPage, info->count);
    PRIX_ASSIGN_OR_RETURN(ElementPos first_elem,
                          store->ReadEntry(*info, first));
    uint64_t max_end = 0;
    for (uint32_t i = first; i < last; ++i) {
      PRIX_ASSIGN_OR_RETURN(ElementPos e, store->ReadEntry(*info, i));
      if (store->IsDeleted(e.doc)) continue;
      max_end = std::max(max_end, e.EndKey());
    }
    summaries.push_back(RawEntry{first_elem.BeginKey(), max_end});
  }

  // Stack levels until one page holds everything.
  while (summaries.size() > 1) {
    Level level;
    level.entry_count = static_cast<uint32_t>(summaries.size());
    std::vector<RawEntry> next;
    for (size_t i = 0; i < summaries.size(); i += kFanout) {
      size_t chunk = std::min(kFanout, summaries.size() - i);
      PRIX_ASSIGN_OR_RETURN(Page * page, store->pool()->NewPage());
      std::memcpy(page->data(), summaries.data() + i,
                  chunk * sizeof(RawEntry));
      SetPageType(page->data(), PageType::kXbNode);
      level.pages.push_back(page->page_id());
      if (cow != nullptr) cow->MarkFresh(page->page_id());
      store->pool()->UnpinPage(page->page_id(), /*dirty=*/true);
      uint64_t max_end = 0;
      for (size_t j = i; j < i + chunk; ++j) {
        max_end = std::max(max_end, summaries[j].max_end);
      }
      next.push_back(RawEntry{summaries[i].begin, max_end});
    }
    tree->internal_pages_ += level.pages.size();
    tree->levels_.push_back(std::move(level));
    summaries = std::move(next);
  }
  if (cow == nullptr) {
    PRIX_RETURN_NOT_OK(store->pool()->FlushAll());
  }
  return tree;
}

std::unique_ptr<XbTree> XbTree::FromLevels(
    const StreamStore* store, const StreamStore::StreamInfo* info,
    std::vector<Level> levels) {
  auto tree = std::unique_ptr<XbTree>(new XbTree(store, info));
  for (const Level& level : levels) {
    tree->internal_pages_ += level.pages.size();
  }
  tree->levels_ = std::move(levels);
  return tree;
}

XbCursor::XbCursor(const XbTree* tree) : tree_(tree) {}

Status XbCursor::Init() {
  if (tree_->empty()) {
    eof_ = true;
    return Status::OK();
  }
  // Start at the root: the highest internal level, or the stream itself
  // when it fits logical roots of one node.
  level_ = static_cast<int>(tree_->levels().size());
  node_ = 0;
  entry_ = 0;
  PRIX_RETURN_NOT_OK(LoadEntry());
  return SettleLive();
}

uint32_t XbCursor::LevelEntryTotal(int level) const {
  if (level == 0) return tree_->stream()->count;
  return tree_->levels()[level - 1].entry_count;
}

uint32_t XbCursor::NodeEntryCount(int level, uint32_t node) const {
  uint32_t per_node = level == 0
                          ? static_cast<uint32_t>(StreamStore::kEntriesPerPage)
                          : static_cast<uint32_t>(XbTree::kFanout);
  uint32_t total = LevelEntryTotal(level);
  uint32_t first = node * per_node;
  PRIX_DCHECK(first < total);
  return std::min(per_node, total - first);
}

uint64_t XbCursor::NextL() const {
  if (eof_) return kInfiniteKey;
  return level_ == 0 ? element_.BeginKey() : begin_;
}

uint64_t XbCursor::NextR() const {
  if (eof_) return kInfiniteKey;
  return level_ == 0 ? element_.EndKey() : max_end_;
}

Status XbCursor::AdvanceRaw() {
  if (eof_) return Status::OK();
  while (true) {
    if (entry_ + 1 < NodeEntryCount(level_, node_)) {
      ++entry_;
      return LoadEntry();
    }
    // Last entry of this node: ascend (Bruno et al.: "advance moves up").
    if (level_ == static_cast<int>(tree_->levels().size())) {
      eof_ = true;
      return Status::OK();
    }
    uint32_t per_parent = static_cast<uint32_t>(
        level_ + 1 == 0 ? StreamStore::kEntriesPerPage : XbTree::kFanout);
    entry_ = node_ % per_parent;
    node_ = node_ / per_parent;
    ++level_;
    // Continue the loop to advance within the parent.
  }
}

Status XbCursor::SettleLive() {
  // A leaf-level cursor must never expose a tombstoned entry through
  // NextL/NextR (the engine's min/max selection would process dead
  // positions and could mis-order its stack maintenance), so every
  // positioning that can land on the leaf level steps past dead entries —
  // possibly ascending back to a summary level, whose bounds are
  // conservative over live entries by construction.
  while (!eof_ && level_ == 0 && tree_->store() != nullptr &&
         tree_->store()->IsDeleted(element_.doc)) {
    PRIX_RETURN_NOT_OK(AdvanceRaw());
  }
  return Status::OK();
}

Status XbCursor::Advance() {
  PRIX_RETURN_NOT_OK(AdvanceRaw());
  return SettleLive();
}

Status XbCursor::DrillDown() {
  if (eof_ || level_ == 0) return Status::OK();
  ++drilldowns_;
  uint32_t per_node = level_ - 1 == 0
                          ? static_cast<uint32_t>(StreamStore::kEntriesPerPage)
                          : static_cast<uint32_t>(XbTree::kFanout);
  // Child node index at level_-1: this node's first child is node_*fanout,
  // plus entry_ — children are contiguous by construction.
  uint32_t child = node_ * static_cast<uint32_t>(XbTree::kFanout) + entry_;
  (void)per_node;
  --level_;
  node_ = child;
  entry_ = 0;
  PRIX_RETURN_NOT_OK(LoadEntry());
  return SettleLive();
}

Status XbCursor::EnsureElement() {
  // SettleLive keeps leaf positions live, so drilling to the leaf level is
  // all that remains (a settle may ascend; the loop re-drills).
  while (!eof_ && level_ > 0) {
    PRIX_RETURN_NOT_OK(DrillDown());
  }
  return Status::OK();
}

Status XbCursor::LoadEntry() {
  PageId page_id = level_ == 0
                       ? tree_->stream()->pages[node_]
                       : tree_->levels()[level_ - 1].pages[node_];
  if (buffered_level_ != level_ || buffered_node_ != node_) {
    PRIX_ASSIGN_OR_RETURN(Page * page, tree_->store()->pool()->FetchPage(page_id));
    buffer_.assign(page->data(), page->data() + kPageUsable);
    tree_->store()->pool()->UnpinPage(page_id, /*dirty=*/false);
    buffered_level_ = level_;
    buffered_node_ = node_;
  }
  if (level_ == 0) {
    std::memcpy(&element_, buffer_.data() + entry_ * sizeof(ElementPos),
                sizeof(ElementPos));
  } else {
    RawEntry raw;
    std::memcpy(&raw, buffer_.data() + entry_ * sizeof(RawEntry),
                sizeof(RawEntry));
    begin_ = raw.begin;
    max_end_ = raw.max_end;
  }
  return Status::OK();
}

}  // namespace prix
