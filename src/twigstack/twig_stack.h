#ifndef PRIX_TWIGSTACK_TWIG_STACK_H_
#define PRIX_TWIGSTACK_TWIG_STACK_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "naive/naive_matcher.h"
#include "query/twig_pattern.h"
#include "twigstack/merge.h"
#include "twigstack/position_stream.h"
#include "twigstack/xb_tree.h"

namespace prix {

/// Prebuilt XB-trees for every tag stream of a dataset (built once at
/// indexing time, like the streams themselves).
class XbForest {
 public:
  static Result<std::unique_ptr<XbForest>> Build(const StreamStore* store,
                                                 const TagDictionary& dict);

  /// Builds one tree per stream the store actually holds — the salvage
  /// path, where no tag dictionary is at hand.
  static Result<std::unique_ptr<XbForest>> Build(const StreamStore* store);

  /// Registers the forest's level directory in `db`'s catalog under `name`
  /// (kind kXbForest). The internal pages were written at Build time.
  Status Save(Database* db, const std::string& name) const;

  /// Reopens a saved forest over `store` (which must be the stream store
  /// the forest was built from, reopened from the same database).
  static Result<std::unique_ptr<XbForest>> Open(Database* db,
                                                const std::string& name,
                                                const StreamStore* store);

  /// Reopens a forest from a catalog entry directly — the snapshot read
  /// path and the ingest acquire path. Kind and staleness checks happen
  /// here; Open delegates.
  static Result<std::unique_ptr<XbForest>> OpenFromEntry(
      BufferPool* pool, const Database::IndexEntry& entry,
      const StreamStore* store);

  /// Replaces `label`'s tree with one freshly built over the stream's
  /// current pages and tombstones — the ingest path's bounded rebuild: an
  /// insert or delete re-buckets only the touched tag streams. Old internal
  /// pages go to `cow->freed`; new ones are registered fresh.
  Status RebuildTree(LabelId label, const StreamStore* store, CowContext* cow);

  /// Serializes the level directory into `blob` — what Save writes, exposed
  /// so a write transaction can publish through Database::CommitBatch.
  void SerializeCatalog(std::vector<char>* blob) const;

  /// Null when the label has no stream.
  const XbTree* Find(LabelId label) const {
    auto it = trees_.find(label);
    return it == trees_.end() ? nullptr : it->second.get();
  }
  uint64_t internal_pages() const { return internal_pages_; }

 private:
  std::unordered_map<LabelId, std::unique_ptr<XbTree>> trees_;
  uint64_t internal_pages_ = 0;
};

struct TwigStackStats {
  uint64_t elements_processed = 0;  ///< elements consumed from streams
  uint64_t advances = 0;            ///< cursor advance operations
  uint64_t drilldowns = 0;          ///< XB drilldowns (TwigStackXB only)
  uint64_t path_solutions = 0;
  uint64_t join_rows = 0;           ///< merge post-processing work
};

struct TwigStackResult {
  std::vector<TwigMatch> matches;  ///< standard twig-join semantics
  std::vector<DocId> docs;
  TwigStackStats stats;
};

/// Holistic twig join of Bruno et al. [5]: chained stacks over sorted
/// positional streams, with optional XB-trees for sub-stream skipping
/// (TwigStackXB). Produces complete twig matches after the merge
/// post-processing step. Query twigs may use '/' and '//' axes and folded
/// '*' chains; trailing '*' nodes are not supported.
class TwigStackEngine {
 public:
  /// `forest` enables TwigStackXB; pass null for plain TwigStack.
  TwigStackEngine(const StreamStore* store, const XbForest* forest)
      : store_(store), forest_(forest) {}

  Result<TwigStackResult> Execute(const TwigPattern& pattern);

 private:
  struct StackEntry {
    ElementPos elem;
    int parent_top;  // index of the parent stack's top at push time
  };

  class Run;  // per-execution state

  const StreamStore* store_;
  const XbForest* forest_;
};

}  // namespace prix

#endif  // PRIX_TWIGSTACK_TWIG_STACK_H_
