#ifndef PRIX_TWIGSTACK_PATH_STACK_H_
#define PRIX_TWIGSTACK_PATH_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "naive/naive_matcher.h"
#include "query/twig_pattern.h"
#include "twigstack/merge.h"
#include "twigstack/position_stream.h"

namespace prix {

struct PathStackStats {
  uint64_t elements_processed = 0;
  uint64_t solutions = 0;
};

struct PathStackResult {
  std::vector<TwigMatch> matches;  ///< standard semantics
  std::vector<DocId> docs;
  PathStackStats stats;
};

/// PathStack of Bruno et al. [5]: the linear-path special case of the
/// holistic join. Accepts only path-shaped twigs (every node has at most
/// one child and no '*' name test).
class PathStackEngine {
 public:
  explicit PathStackEngine(const StreamStore* store) : store_(store) {}

  Result<PathStackResult> Execute(const TwigPattern& pattern);

 private:
  const StreamStore* store_;
};

}  // namespace prix

#endif  // PRIX_TWIGSTACK_PATH_STACK_H_
