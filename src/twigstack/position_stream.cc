#include "twigstack/position_stream.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/macros.h"
#include "storage/page_format.h"
#include "storage/record_store.h"

namespace prix {

std::vector<ElementPos> ComputeRegions(const Document& doc) {
  std::vector<ElementPos> out(doc.num_nodes());
  if (doc.empty()) return out;
  std::vector<uint32_t> post = doc.ComputePostorder();
  uint32_t counter = 0;
  // Iterative DFS assigning left on entry, right on exit.
  struct Frame {
    NodeId node;
    size_t child = 0;
  };
  std::vector<Frame> stack = {{doc.root(), 0}};
  std::vector<uint32_t> depth(doc.num_nodes(), 1);
  out[doc.root()].left = ++counter;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = doc.children(f.node);
    if (f.child < kids.size()) {
      NodeId c = kids[f.child++];
      depth[c] = depth[f.node] + 1;
      out[c].left = ++counter;
      stack.push_back(Frame{c, 0});
    } else {
      out[f.node].right = ++counter;
      stack.pop_back();
    }
  }
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    out[v].doc = doc.doc_id();
    out[v].level = depth[v];
    out[v].post = post[v];
  }
  return out;
}

Result<std::unique_ptr<StreamStore>> StreamStore::Build(
    const std::vector<Document>& documents, BufferPool* pool) {
  auto store = std::unique_ptr<StreamStore>(new StreamStore(pool));
  // Gather entries per label. Documents are processed in DocId order and
  // nodes in preorder, so each label's list is already (doc, left)-sorted.
  std::map<LabelId, std::vector<ElementPos>> by_label;
  for (const Document& doc : documents) {
    std::vector<ElementPos> regions = ComputeRegions(doc);
    for (NodeId v = 0; v < doc.num_nodes(); ++v) {
      by_label[doc.label(v)].push_back(regions[v]);
    }
  }
  for (auto& [label, entries] : by_label) {
    // Documents arrive in DocId order but nodes in arena order, which need
    // not be preorder; sort each stream by (doc, left).
    std::sort(entries.begin(), entries.end(),
              [](const ElementPos& a, const ElementPos& b) {
                return a.BeginKey() < b.BeginKey();
              });
    StreamInfo info;
    info.count = static_cast<uint32_t>(entries.size());
    size_t i = 0;
    while (i < entries.size()) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool->NewPage());
      size_t chunk = std::min(kEntriesPerPage, entries.size() - i);
      std::memcpy(page->data(), entries.data() + i,
                  chunk * sizeof(ElementPos));
      SetPageType(page->data(), PageType::kStream);
      info.pages.push_back(page->page_id());
      pool->UnpinPage(page->page_id(), /*dirty=*/true);
      i += chunk;
    }
    store->total_entries_ += info.count;
    store->total_pages_ += info.pages.size();
    store->streams_.emplace(label, std::move(info));
  }
  PRIX_RETURN_NOT_OK(pool->FlushAll());
  return store;
}

namespace {
constexpr uint32_t kStreamCatalogMagic = 0x54574753;  // "TWGS"
constexpr uint32_t kStreamCatalogVersion = 1;
}  // namespace

Status StreamStore::Save(Database* db, const std::string& name) const {
  std::vector<char> blob;
  PutU32(&blob, kStreamCatalogMagic);
  PutU32(&blob, kStreamCatalogVersion);
  PutU32(&blob, static_cast<uint32_t>(streams_.size()));
  for (const auto& [label, info] : streams_) {
    PutU32(&blob, label);
    PutU32(&blob, info.count);
    PutU32(&blob, static_cast<uint32_t>(info.pages.size()));
    for (PageId page : info.pages) PutU32(&blob, page);
  }
  PRIX_ASSIGN_OR_RETURN(PageId first, WriteBlob(db->pool(), blob));
  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = Database::IndexKind::kTwigStreams;
  entry.root = first;
  return db->PutIndex(entry);
}

Result<std::unique_ptr<StreamStore>> StreamStore::Open(
    Database* db, const std::string& name) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
  if (entry.kind != Database::IndexKind::kTwigStreams) {
    return Status::InvalidArgument("catalog entry '" + name +
                                   "' is not a stream store");
  }
  if (entry.stale_as_of_gen != 0) {
    // Stamped by Database::CommitBatch when online ingest outran this
    // derived structure; see the matching check in VistIndex::Open.
    return Status::FailedPrecondition(
        "index '" + name + "' is stale as of generation " +
        std::to_string(entry.stale_as_of_gen) +
        ", rebuild or query the PRIX index");
  }
  std::vector<char> blob;
  PRIX_RETURN_NOT_OK(ReadBlob(db->pool(), entry.root, &blob));
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) {
      return Status::Corruption("truncated stream-store catalog");
    }
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(12));
  if (GetU32(p) != kStreamCatalogMagic) {
    return Status::Corruption("not a stream-store catalog");
  }
  p += 4;
  if (GetU32(p) != kStreamCatalogVersion) {
    return Status::Corruption("unsupported stream-store catalog version");
  }
  p += 4;
  uint32_t num_streams = GetU32(p);
  p += 4;
  auto store = std::unique_ptr<StreamStore>(new StreamStore(db->pool()));
  for (uint32_t i = 0; i < num_streams; ++i) {
    PRIX_RETURN_NOT_OK(need(12));
    LabelId label = GetU32(p);
    p += 4;
    StreamInfo info;
    info.count = GetU32(p);
    p += 4;
    uint32_t num_pages = GetU32(p);
    p += 4;
    // The entry count must fit the page list, or ReadEntry would index
    // past it; every page must exist in the file.
    uint64_t needed_pages =
        (static_cast<uint64_t>(info.count) + kEntriesPerPage - 1) /
        kEntriesPerPage;
    if (needed_pages > num_pages) {
      return Status::Corruption("stream-store catalog: stream with " +
                                std::to_string(info.count) +
                                " entries lists only " +
                                std::to_string(num_pages) + " pages");
    }
    PRIX_RETURN_NOT_OK(need(4ull * num_pages));
    uint32_t file_pages = db->disk()->num_pages();
    info.pages.reserve(num_pages);
    for (uint32_t j = 0; j < num_pages; ++j, p += 4) {
      info.pages.push_back(GetU32(p));
      if (info.pages.back() >= file_pages) {
        return Status::Corruption(
            "stream-store catalog references page " +
            std::to_string(info.pages.back()) + " beyond the file (" +
            std::to_string(file_pages) + " pages)");
      }
    }
    store->total_entries_ += info.count;
    store->total_pages_ += info.pages.size();
    store->streams_.emplace(label, std::move(info));
  }
  return store;
}

Result<ElementPos> StreamStore::ReadEntry(const StreamInfo& info,
                                          uint32_t index) const {
  if (index >= info.count) {
    return Status::OutOfRange("stream entry out of range");
  }
  uint32_t page_idx = index / kEntriesPerPage;
  uint32_t offset = index % kEntriesPerPage;
  PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(info.pages[page_idx]));
  ElementPos out;
  std::memcpy(&out, page->data() + offset * sizeof(ElementPos),
              sizeof(ElementPos));
  pool_->UnpinPage(info.pages[page_idx], /*dirty=*/false);
  return out;
}

Status SimpleStreamCursor::LoadCurrent() {
  if (Eof()) return Status::OK();
  uint32_t page_idx = index_ / StreamStore::kEntriesPerPage;
  if (page_idx != buffer_page_) {
    PRIX_ASSIGN_OR_RETURN(
        Page * page, store_->pool()->FetchPage(info_->pages[page_idx]));
    uint32_t remaining = std::min<uint32_t>(
        StreamStore::kEntriesPerPage,
        info_->count - page_idx * StreamStore::kEntriesPerPage);
    buffer_.resize(remaining);
    std::memcpy(buffer_.data(), page->data(),
                remaining * sizeof(ElementPos));
    store_->pool()->UnpinPage(info_->pages[page_idx], /*dirty=*/false);
    buffer_page_ = page_idx;
  }
  current_ = buffer_[index_ % StreamStore::kEntriesPerPage];
  return Status::OK();
}

}  // namespace prix
