#include "twigstack/position_stream.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/macros.h"

namespace prix {

std::vector<ElementPos> ComputeRegions(const Document& doc) {
  std::vector<ElementPos> out(doc.num_nodes());
  if (doc.empty()) return out;
  std::vector<uint32_t> post = doc.ComputePostorder();
  uint32_t counter = 0;
  // Iterative DFS assigning left on entry, right on exit.
  struct Frame {
    NodeId node;
    size_t child = 0;
  };
  std::vector<Frame> stack = {{doc.root(), 0}};
  std::vector<uint32_t> depth(doc.num_nodes(), 1);
  out[doc.root()].left = ++counter;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = doc.children(f.node);
    if (f.child < kids.size()) {
      NodeId c = kids[f.child++];
      depth[c] = depth[f.node] + 1;
      out[c].left = ++counter;
      stack.push_back(Frame{c, 0});
    } else {
      out[f.node].right = ++counter;
      stack.pop_back();
    }
  }
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    out[v].doc = doc.doc_id();
    out[v].level = depth[v];
    out[v].post = post[v];
  }
  return out;
}

Result<std::unique_ptr<StreamStore>> StreamStore::Build(
    const std::vector<Document>& documents, BufferPool* pool) {
  auto store = std::unique_ptr<StreamStore>(new StreamStore(pool));
  // Gather entries per label. Documents are processed in DocId order and
  // nodes in preorder, so each label's list is already (doc, left)-sorted.
  std::map<LabelId, std::vector<ElementPos>> by_label;
  for (const Document& doc : documents) {
    std::vector<ElementPos> regions = ComputeRegions(doc);
    for (NodeId v = 0; v < doc.num_nodes(); ++v) {
      by_label[doc.label(v)].push_back(regions[v]);
    }
  }
  for (auto& [label, entries] : by_label) {
    // Documents arrive in DocId order but nodes in arena order, which need
    // not be preorder; sort each stream by (doc, left).
    std::sort(entries.begin(), entries.end(),
              [](const ElementPos& a, const ElementPos& b) {
                return a.BeginKey() < b.BeginKey();
              });
    StreamInfo info;
    info.count = static_cast<uint32_t>(entries.size());
    size_t i = 0;
    while (i < entries.size()) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool->NewPage());
      size_t chunk = std::min(kEntriesPerPage, entries.size() - i);
      std::memcpy(page->data(), entries.data() + i,
                  chunk * sizeof(ElementPos));
      info.pages.push_back(page->page_id());
      pool->UnpinPage(page->page_id(), /*dirty=*/true);
      i += chunk;
    }
    store->total_entries_ += info.count;
    store->total_pages_ += info.pages.size();
    store->streams_.emplace(label, std::move(info));
  }
  PRIX_RETURN_NOT_OK(pool->FlushAll());
  return store;
}

Result<ElementPos> StreamStore::ReadEntry(const StreamInfo& info,
                                          uint32_t index) const {
  if (index >= info.count) {
    return Status::OutOfRange("stream entry out of range");
  }
  uint32_t page_idx = index / kEntriesPerPage;
  uint32_t offset = index % kEntriesPerPage;
  PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(info.pages[page_idx]));
  ElementPos out;
  std::memcpy(&out, page->data() + offset * sizeof(ElementPos),
              sizeof(ElementPos));
  pool_->UnpinPage(info.pages[page_idx], /*dirty=*/false);
  return out;
}

Status SimpleStreamCursor::LoadCurrent() {
  if (Eof()) return Status::OK();
  uint32_t page_idx = index_ / StreamStore::kEntriesPerPage;
  if (page_idx != buffer_page_) {
    PRIX_ASSIGN_OR_RETURN(
        Page * page, store_->pool()->FetchPage(info_->pages[page_idx]));
    uint32_t remaining = std::min<uint32_t>(
        StreamStore::kEntriesPerPage,
        info_->count - page_idx * StreamStore::kEntriesPerPage);
    buffer_.resize(remaining);
    std::memcpy(buffer_.data(), page->data(),
                remaining * sizeof(ElementPos));
    store_->pool()->UnpinPage(info_->pages[page_idx], /*dirty=*/false);
    buffer_page_ = page_idx;
  }
  current_ = buffer_[index_ % StreamStore::kEntriesPerPage];
  return Status::OK();
}

}  // namespace prix
