#include "twigstack/position_stream.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/macros.h"
#include "storage/page_format.h"
#include "storage/record_store.h"

namespace prix {

std::vector<ElementPos> ComputeRegions(const Document& doc) {
  std::vector<ElementPos> out(doc.num_nodes());
  if (doc.empty()) return out;
  std::vector<uint32_t> post = doc.ComputePostorder();
  uint32_t counter = 0;
  // Iterative DFS assigning left on entry, right on exit.
  struct Frame {
    NodeId node;
    size_t child = 0;
  };
  std::vector<Frame> stack = {{doc.root(), 0}};
  std::vector<uint32_t> depth(doc.num_nodes(), 1);
  out[doc.root()].left = ++counter;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = doc.children(f.node);
    if (f.child < kids.size()) {
      NodeId c = kids[f.child++];
      depth[c] = depth[f.node] + 1;
      out[c].left = ++counter;
      stack.push_back(Frame{c, 0});
    } else {
      out[f.node].right = ++counter;
      stack.pop_back();
    }
  }
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    out[v].doc = doc.doc_id();
    out[v].level = depth[v];
    out[v].post = post[v];
  }
  return out;
}

Result<std::unique_ptr<StreamStore>> StreamStore::Build(
    const std::vector<Document>& documents, BufferPool* pool) {
  auto store = std::unique_ptr<StreamStore>(new StreamStore(pool));
  // Gather entries per label. Documents are processed in DocId order and
  // nodes in preorder, so each label's list is already (doc, left)-sorted.
  std::map<LabelId, std::vector<ElementPos>> by_label;
  for (const Document& doc : documents) {
    std::vector<ElementPos> regions = ComputeRegions(doc);
    for (NodeId v = 0; v < doc.num_nodes(); ++v) {
      by_label[doc.label(v)].push_back(regions[v]);
    }
  }
  for (auto& [label, entries] : by_label) {
    // Documents arrive in DocId order but nodes in arena order, which need
    // not be preorder; sort each stream by (doc, left).
    std::sort(entries.begin(), entries.end(),
              [](const ElementPos& a, const ElementPos& b) {
                return a.BeginKey() < b.BeginKey();
              });
    StreamInfo info;
    info.count = static_cast<uint32_t>(entries.size());
    size_t i = 0;
    while (i < entries.size()) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool->NewPage());
      size_t chunk = std::min(kEntriesPerPage, entries.size() - i);
      std::memcpy(page->data(), entries.data() + i,
                  chunk * sizeof(ElementPos));
      SetPageType(page->data(), PageType::kStream);
      info.pages.push_back(page->page_id());
      pool->UnpinPage(page->page_id(), /*dirty=*/true);
      i += chunk;
    }
    store->total_entries_ += info.count;
    store->total_pages_ += info.pages.size();
    store->streams_.emplace(label, std::move(info));
  }
  store->num_docs_ = static_cast<uint32_t>(documents.size());
  PRIX_RETURN_NOT_OK(pool->FlushAll());
  return store;
}

namespace {
constexpr uint32_t kStreamCatalogMagic = 0x54574753;  // "TWGS"
/// v1: streams section only (pre-ingest binaries). v2 prepends the document
/// count and the tombstone set so the store can participate in ingest
/// commits. v1 blobs still open (as legacy()) so old databases stay
/// readable.
constexpr uint32_t kStreamCatalogVersionLegacy = 1;
constexpr uint32_t kStreamCatalogVersion = 2;
}  // namespace

void StreamStore::SerializeCatalog(std::vector<char>* blob) const {
  PutU32(blob, kStreamCatalogMagic);
  PutU32(blob, kStreamCatalogVersion);
  PutU32(blob, num_docs_);
  PutU32(blob, static_cast<uint32_t>(tombstones_.size()));
  for (DocId d : tombstones_) PutU32(blob, d);
  PutU32(blob, static_cast<uint32_t>(streams_.size()));
  for (const auto& [label, info] : streams_) {
    PutU32(blob, label);
    PutU32(blob, info.count);
    PutU32(blob, static_cast<uint32_t>(info.pages.size()));
    for (PageId page : info.pages) PutU32(blob, page);
  }
}

Status StreamStore::Save(Database* db, const std::string& name) const {
  std::vector<char> blob;
  SerializeCatalog(&blob);
  PRIX_ASSIGN_OR_RETURN(PageId first, WriteBlob(db->pool(), blob));
  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = Database::IndexKind::kTwigStreams;
  entry.root = first;
  return db->PutIndex(entry);
}

Result<std::unique_ptr<StreamStore>> StreamStore::Open(
    Database* db, const std::string& name) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
  return OpenFromEntry(db->pool(), entry);
}

Result<std::unique_ptr<StreamStore>> StreamStore::OpenFromEntry(
    BufferPool* pool, const Database::IndexEntry& entry) {
  if (entry.kind != Database::IndexKind::kTwigStreams) {
    return Status::InvalidArgument("catalog entry '" + entry.name +
                                   "' is not a stream store");
  }
  if (entry.stale_as_of_gen != 0) {
    // Stamped by Database::CommitBatch when online ingest outran this
    // derived structure (only possible for stores ingest cannot carry
    // along, e.g. legacy v1 blobs); see the matching check in
    // VistIndex::OpenFromEntry.
    return Status::FailedPrecondition(
        "index '" + entry.name + "' is stale as of generation " +
        std::to_string(entry.stale_as_of_gen) +
        ", rebuild or query the PRIX index");
  }
  std::vector<char> blob;
  PRIX_RETURN_NOT_OK(ReadBlob(pool, entry.root, &blob));
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) {
      return Status::Corruption("truncated stream-store catalog");
    }
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(12));
  if (GetU32(p) != kStreamCatalogMagic) {
    return Status::Corruption("not a stream-store catalog");
  }
  p += 4;
  uint32_t version = GetU32(p);
  if (version != kStreamCatalogVersionLegacy &&
      version != kStreamCatalogVersion) {
    return Status::Corruption("unsupported stream-store catalog version");
  }
  p += 4;
  auto store = std::unique_ptr<StreamStore>(new StreamStore(pool));
  store->legacy_ = version == kStreamCatalogVersionLegacy;
  if (!store->legacy_) {
    PRIX_RETURN_NOT_OK(need(8));
    store->num_docs_ = GetU32(p);
    p += 4;
    uint32_t dead = GetU32(p);
    p += 4;
    PRIX_RETURN_NOT_OK(need(4ull * dead));
    for (uint32_t i = 0; i < dead; ++i, p += 4) {
      DocId d = GetU32(p);
      if (d >= store->num_docs_) {
        return Status::Corruption(
            "stream-store tombstone for DocId " + std::to_string(d) +
            " beyond the store's " + std::to_string(store->num_docs_) +
            " documents");
      }
      store->tombstones_.insert(d);
    }
  }
  PRIX_RETURN_NOT_OK(need(4));
  uint32_t num_streams = GetU32(p);
  p += 4;
  for (uint32_t i = 0; i < num_streams; ++i) {
    PRIX_RETURN_NOT_OK(need(12));
    LabelId label = GetU32(p);
    p += 4;
    StreamInfo info;
    info.count = GetU32(p);
    p += 4;
    uint32_t num_pages = GetU32(p);
    p += 4;
    // The entry count must fit the page list, or ReadEntry would index
    // past it; every page must exist in the file.
    uint64_t needed_pages =
        (static_cast<uint64_t>(info.count) + kEntriesPerPage - 1) /
        kEntriesPerPage;
    if (needed_pages > num_pages) {
      return Status::Corruption("stream-store catalog: stream with " +
                                std::to_string(info.count) +
                                " entries lists only " +
                                std::to_string(num_pages) + " pages");
    }
    PRIX_RETURN_NOT_OK(need(4ull * num_pages));
    uint32_t file_pages = pool->disk()->num_pages();
    info.pages.reserve(num_pages);
    for (uint32_t j = 0; j < num_pages; ++j, p += 4) {
      info.pages.push_back(GetU32(p));
      if (info.pages.back() >= file_pages) {
        return Status::Corruption(
            "stream-store catalog references page " +
            std::to_string(info.pages.back()) + " beyond the file (" +
            std::to_string(file_pages) + " pages)");
      }
    }
    store->total_entries_ += info.count;
    store->total_pages_ += info.pages.size();
    store->streams_.emplace(label, std::move(info));
  }
  return store;
}

Status StreamStore::AppendEntries(StreamInfo* info,
                                  const std::vector<ElementPos>& entries,
                                  CowContext* cow) {
  size_t i = 0;
  while (i < entries.size()) {
    uint32_t used = info->count % kEntriesPerPage;
    if (info->count > 0 && used == 0) used = kEntriesPerPage;
    if (info->pages.empty() || used == kEntriesPerPage) {
      // Tail full (or no pages yet): open a fresh page.
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
      SetPageType(page->data(), PageType::kStream);
      if (cow != nullptr) cow->MarkFresh(page->page_id());
      info->pages.push_back(page->page_id());
      pool_->UnpinPage(page->page_id(), /*dirty=*/true);
      ++total_pages_;
      used = 0;
    } else if (cow != nullptr && !cow->IsFresh(info->pages.back())) {
      // The partial tail page belongs to a committed generation: copy on
      // write before extending it.
      PRIX_ASSIGN_OR_RETURN(Page * copy, pool_->NewPage());
      PageId old_id = info->pages.back();
      {
        PRIX_ASSIGN_OR_RETURN(Page * old_page, pool_->FetchPage(old_id));
        std::memcpy(copy->data(), old_page->data(), kPageUsable);
        pool_->UnpinPage(old_id, /*dirty=*/false);
      }
      SetPageType(copy->data(), PageType::kStream);
      cow->MarkFresh(copy->page_id());
      cow->MarkFreed(old_id);
      info->pages.back() = copy->page_id();
      pool_->UnpinPage(copy->page_id(), /*dirty=*/true);
    }
    PageId tail = info->pages.back();
    size_t chunk = std::min(kEntriesPerPage - used, entries.size() - i);
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(tail));
    std::memcpy(page->data() + used * sizeof(ElementPos), entries.data() + i,
                chunk * sizeof(ElementPos));
    pool_->UnpinPage(tail, /*dirty=*/true);
    info->count += static_cast<uint32_t>(chunk);
    total_entries_ += chunk;
    i += chunk;
  }
  return Status::OK();
}

Status StreamStore::AppendDocument(const Document& doc, DocId assigned,
                                   CowContext* cow,
                                   std::vector<LabelId>* touched) {
  if (legacy_) {
    return Status::FailedPrecondition(
        "stream store predates ingest support (catalog v1); rebuild it");
  }
  if (assigned != num_docs_) {
    return Status::InvalidArgument(
        "stream append out of order: DocId " + std::to_string(assigned) +
        " with " + std::to_string(num_docs_) + " documents stored");
  }
  std::vector<ElementPos> regions = ComputeRegions(doc);
  std::map<LabelId, std::vector<ElementPos>> by_label;
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    ElementPos e = regions[v];
    e.doc = assigned;
    by_label[doc.label(v)].push_back(e);
  }
  for (auto& [label, entries] : by_label) {
    std::sort(entries.begin(), entries.end(),
              [](const ElementPos& a, const ElementPos& b) {
                return a.BeginKey() < b.BeginKey();
              });
    PRIX_RETURN_NOT_OK(AppendEntries(&streams_[label], entries, cow));
    if (touched != nullptr) touched->push_back(label);
  }
  ++num_docs_;
  return Status::OK();
}

Result<ElementPos> StreamStore::ReadEntry(const StreamInfo& info,
                                          uint32_t index) const {
  if (index >= info.count) {
    return Status::OutOfRange("stream entry out of range");
  }
  uint32_t page_idx = index / kEntriesPerPage;
  uint32_t offset = index % kEntriesPerPage;
  PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(info.pages[page_idx]));
  ElementPos out;
  std::memcpy(&out, page->data() + offset * sizeof(ElementPos),
              sizeof(ElementPos));
  pool_->UnpinPage(info.pages[page_idx], /*dirty=*/false);
  return out;
}

Status SimpleStreamCursor::LoadCurrent() {
  // Tombstoned documents keep their stream entries (streams are
  // append-only); the cursor hides them so consumers only ever see live
  // elements.
  while (!Eof()) {
    uint32_t page_idx = index_ / StreamStore::kEntriesPerPage;
    if (page_idx != buffer_page_) {
      PRIX_ASSIGN_OR_RETURN(
          Page * page, store_->pool()->FetchPage(info_->pages[page_idx]));
      uint32_t remaining = std::min<uint32_t>(
          StreamStore::kEntriesPerPage,
          info_->count - page_idx * StreamStore::kEntriesPerPage);
      buffer_.resize(remaining);
      std::memcpy(buffer_.data(), page->data(),
                  remaining * sizeof(ElementPos));
      store_->pool()->UnpinPage(info_->pages[page_idx], /*dirty=*/false);
      buffer_page_ = page_idx;
    }
    current_ = buffer_[index_ % StreamStore::kEntriesPerPage];
    if (!store_->IsDeleted(current_.doc)) break;
    ++index_;
  }
  return Status::OK();
}

}  // namespace prix
