#include "twigstack/twig_stack.h"

#include <algorithm>

#include "common/deadline.h"
#include "common/macros.h"
#include "storage/record_store.h"

namespace prix {

Result<std::unique_ptr<XbForest>> XbForest::Build(const StreamStore* store,
                                                  const TagDictionary& dict) {
  auto forest = std::make_unique<XbForest>();
  for (LabelId label = 0; label < dict.size(); ++label) {
    const StreamStore::StreamInfo* info = store->Find(label);
    if (info == nullptr) continue;
    PRIX_ASSIGN_OR_RETURN(std::unique_ptr<XbTree> tree,
                          XbTree::Build(store, info));
    forest->internal_pages_ += tree->internal_pages();
    forest->trees_.emplace(label, std::move(tree));
  }
  return forest;
}

Result<std::unique_ptr<XbForest>> XbForest::Build(const StreamStore* store) {
  auto forest = std::make_unique<XbForest>();
  for (const auto& [label, info] : store->streams()) {
    PRIX_ASSIGN_OR_RETURN(std::unique_ptr<XbTree> tree,
                          XbTree::Build(store, &info));
    forest->internal_pages_ += tree->internal_pages();
    forest->trees_.emplace(label, std::move(tree));
  }
  return forest;
}

Status XbForest::RebuildTree(LabelId label, const StreamStore* store,
                             CowContext* cow) {
  auto it = trees_.find(label);
  if (it != trees_.end()) {
    for (const XbTree::Level& level : it->second->levels()) {
      for (PageId page : level.pages) {
        if (cow != nullptr) cow->MarkFreed(page);
      }
    }
    internal_pages_ -= it->second->internal_pages();
    trees_.erase(it);
  }
  const StreamStore::StreamInfo* info = store->Find(label);
  PRIX_ASSIGN_OR_RETURN(std::unique_ptr<XbTree> tree,
                        XbTree::Build(store, info, cow));
  internal_pages_ += tree->internal_pages();
  trees_.emplace(label, std::move(tree));
  return Status::OK();
}

namespace {
constexpr uint32_t kForestCatalogMagic = 0x58424652;  // "XBFR"
constexpr uint32_t kForestCatalogVersion = 1;
}  // namespace

void XbForest::SerializeCatalog(std::vector<char>* blob) const {
  PutU32(blob, kForestCatalogMagic);
  PutU32(blob, kForestCatalogVersion);
  PutU32(blob, static_cast<uint32_t>(trees_.size()));
  for (const auto& [label, tree] : trees_) {
    PutU32(blob, label);
    PutU32(blob, static_cast<uint32_t>(tree->levels().size()));
    for (const XbTree::Level& level : tree->levels()) {
      PutU32(blob, level.entry_count);
      PutU32(blob, static_cast<uint32_t>(level.pages.size()));
      for (PageId page : level.pages) PutU32(blob, page);
    }
  }
}

Status XbForest::Save(Database* db, const std::string& name) const {
  std::vector<char> blob;
  SerializeCatalog(&blob);
  PRIX_ASSIGN_OR_RETURN(PageId first, WriteBlob(db->pool(), blob));
  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = Database::IndexKind::kXbForest;
  entry.root = first;
  return db->PutIndex(entry);
}

Result<std::unique_ptr<XbForest>> XbForest::Open(Database* db,
                                                 const std::string& name,
                                                 const StreamStore* store) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
  return OpenFromEntry(db->pool(), entry, store);
}

Result<std::unique_ptr<XbForest>> XbForest::OpenFromEntry(
    BufferPool* pool, const Database::IndexEntry& entry,
    const StreamStore* store) {
  if (entry.kind != Database::IndexKind::kXbForest) {
    return Status::InvalidArgument("catalog entry '" + entry.name +
                                   "' is not an XB-forest");
  }
  if (entry.stale_as_of_gen != 0) {
    // Stamped by Database::CommitBatch when online ingest outran this
    // derived structure; see the matching check in VistIndex::OpenFromEntry.
    return Status::FailedPrecondition(
        "index '" + entry.name + "' is stale as of generation " +
        std::to_string(entry.stale_as_of_gen) +
        ", rebuild or query the PRIX index");
  }
  std::vector<char> blob;
  PRIX_RETURN_NOT_OK(ReadBlob(pool, entry.root, &blob));
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) return Status::Corruption("truncated XB-forest");
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(12));
  if (GetU32(p) != kForestCatalogMagic) {
    return Status::Corruption("not an XB-forest catalog");
  }
  p += 4;
  if (GetU32(p) != kForestCatalogVersion) {
    return Status::Corruption("unsupported XB-forest catalog version");
  }
  p += 4;
  uint32_t num_trees = GetU32(p);
  p += 4;
  auto forest = std::make_unique<XbForest>();
  for (uint32_t t = 0; t < num_trees; ++t) {
    PRIX_RETURN_NOT_OK(need(8));
    LabelId label = GetU32(p);
    p += 4;
    uint32_t num_levels = GetU32(p);
    p += 4;
    std::vector<XbTree::Level> levels(num_levels);
    for (XbTree::Level& level : levels) {
      PRIX_RETURN_NOT_OK(need(8));
      level.entry_count = GetU32(p);
      p += 4;
      uint32_t num_pages = GetU32(p);
      p += 4;
      // The cursor turns entry indexes into page indexes by fanout; an
      // entry count the page list cannot cover would walk off the vector.
      uint64_t needed_pages =
          (static_cast<uint64_t>(level.entry_count) + XbTree::kFanout - 1) /
          XbTree::kFanout;
      if (needed_pages > num_pages) {
        return Status::Corruption(
            "XB-forest level with " + std::to_string(level.entry_count) +
            " entries lists only " + std::to_string(num_pages) + " pages");
      }
      PRIX_RETURN_NOT_OK(need(4ull * num_pages));
      uint32_t file_pages = pool->disk()->num_pages();
      level.pages.reserve(num_pages);
      for (uint32_t j = 0; j < num_pages; ++j, p += 4) {
        level.pages.push_back(GetU32(p));
        if (level.pages.back() >= file_pages) {
          return Status::Corruption(
              "XB-forest references page " +
              std::to_string(level.pages.back()) + " beyond the file (" +
              std::to_string(file_pages) + " pages)");
        }
      }
    }
    const StreamStore::StreamInfo* info = store->Find(label);
    if (info == nullptr) {
      return Status::Corruption("XB-forest references unknown stream label " +
                                std::to_string(label));
    }
    std::unique_ptr<XbTree> tree =
        XbTree::FromLevels(store, info, std::move(levels));
    forest->internal_pages_ += tree->internal_pages();
    forest->trees_.emplace(label, std::move(tree));
  }
  return forest;
}

namespace {

bool EdgeOk(const EdgeSpec& edge, const ElementPos& anc,
            const ElementPos& desc) {
  if (!(anc.doc == desc.doc && anc.left < desc.left &&
        desc.right < anc.right)) {
    return false;
  }
  uint32_t dist = desc.level - anc.level;
  return edge.exact ? dist == edge.min_edges : dist >= edge.min_edges;
}

bool AnchorOk(const EdgeSpec& anchor, const ElementPos& root_elem) {
  uint32_t depth = root_elem.level - 1;
  return anchor.exact ? depth == anchor.min_edges
                      : depth >= anchor.min_edges;
}

}  // namespace

/// Per-execution state of the holistic twig join.
class TwigStackEngine::Run {
 public:
  Run(const StreamStore* store, const XbForest* forest,
      const EffectiveTwig& twig)
      : store_(store), forest_(forest), twig_(twig) {}

  Status Init() {
    const size_t n = twig_.num_nodes();
    cursors_.resize(n);
    simple_.resize(n);
    xb_.resize(n);
    stacks_.resize(n);
    for (uint32_t q = 0; q < n; ++q) {
      const StreamStore::StreamInfo* info =
          twig_.node(q).label == kInvalidLabel
              ? nullptr
              : store_->Find(twig_.node(q).label);
      if (forest_ != nullptr) {
        const XbTree* tree =
            twig_.node(q).label == kInvalidLabel
                ? nullptr
                : forest_->Find(twig_.node(q).label);
        xb_[q] = std::make_unique<XbCursor>(
            tree != nullptr ? tree : &empty_tree());
        PRIX_RETURN_NOT_OK(xb_[q]->Init());
        cursors_[q] = xb_[q].get();
      } else {
        simple_[q] = std::make_unique<SimpleTagCursor>(store_, info);
        PRIX_RETURN_NOT_OK(simple_[q]->Init());
        cursors_[q] = simple_[q].get();
      }
    }
    // Root-to-leaf paths in syntactic order.
    std::vector<uint32_t> chain;
    CollectPaths(twig_.root(), chain);
    return Status::OK();
  }

  Status Execute(TwigStackResult* result) {
    uint64_t iterations = 0;
    while (!SubtreeEnded(twig_.root())) {
      // Deadline checkpoint, amortized: one TLS probe every 512 stream
      // advances keeps cancellation latency in the microseconds while
      // staying invisible next to the per-element stack work.
      if ((iterations++ & 511) == 0) PRIX_RETURN_NOT_OK(CheckDeadline());
      PRIX_ASSIGN_OR_RETURN(uint32_t q, GetNext(twig_.root()));
      TagCursor* cur = cursors_[q];
      if (cur->Eof()) break;  // defensive; GetNext avoids eof nodes
      if (forest_ != nullptr && q != twig_.root()) {
        // XB skip: if the parent stack is empty and every remaining parent
        // element starts after this (possibly whole-subtree) entry ends,
        // nothing under the entry can gain an ancestor — skip it without
        // drilling to the leaves (Sec. 6.4.2's "skipping data").
        uint32_t parent = twig_.node(q).parent;
        if (stacks_[parent].empty() &&
            cursors_[parent]->NextL() > cur->NextR()) {
          ++stats_.advances;
          PRIX_RETURN_NOT_OK(cur->Advance());
          continue;
        }
      }
      PRIX_RETURN_NOT_OK(cur->EnsureElement());
      const ElementPos elem = cur->Current();
      ++stats_.elements_processed;
      uint32_t parent = twig_.node(q).parent;
      if (q != twig_.root()) CleanStack(parent, elem.BeginKey());
      if (q == twig_.root() || !stacks_[parent].empty()) {
        CleanStack(q, elem.BeginKey());
        if (!twig_.node(q).children.empty()) {
          int parent_top = q == twig_.root()
                               ? -1
                               : static_cast<int>(stacks_[parent].size()) - 1;
          stacks_[q].push_back(StackEntry{elem, parent_top});
        } else {
          ExpandPathSolutions(q, elem);
        }
      }
      ++stats_.advances;
      PRIX_RETURN_NOT_OK(cur->Advance());
    }
    // Merge post-processing.
    std::vector<PathSolutionSet> sets;
    sets.reserve(paths_.size());
    for (auto& [leaf, set] : paths_) sets.push_back(std::move(set));
    result->matches = MergePathSolutions(twig_, sets, &stats_.join_rows);
    for (const TwigMatch& m : result->matches) result->docs.push_back(m.doc);
    std::sort(result->docs.begin(), result->docs.end());
    result->docs.erase(
        std::unique(result->docs.begin(), result->docs.end()),
        result->docs.end());
    if (forest_ != nullptr) {
      for (const auto& xb : xb_) {
        if (xb != nullptr) stats_.drilldowns += xb->drilldowns();
      }
    }
    result->stats = stats_;
    return Status::OK();
  }

 private:
  static const XbTree& empty_tree() {
    static const XbTree* kEmpty = [] {
      auto tree = XbTree::Build(nullptr, nullptr);
      PRIX_CHECK(tree.ok());
      return tree.ValueOrDie().release();
    }();
    return *kEmpty;
  }

  void CollectPaths(uint32_t q, std::vector<uint32_t>& chain) {
    chain.push_back(q);
    if (twig_.node(q).children.empty()) {
      paths_.emplace_back(q, PathSolutionSet{chain, {}});
    } else {
      for (uint32_t c : twig_.node(q).children) CollectPaths(c, chain);
    }
    chain.pop_back();
  }

  bool IsLeaf(uint32_t q) const { return twig_.node(q).children.empty(); }

  bool SubtreeEnded(uint32_t q) const {
    if (IsLeaf(q)) return cursors_[q]->Eof();
    for (uint32_t c : twig_.node(q).children) {
      if (!SubtreeEnded(c)) return false;
    }
    return true;
  }

  /// getNext of Bruno et al., with exhausted subtrees excluded so a live
  /// branch can still extend previously collected path solutions.
  Result<uint32_t> GetNext(uint32_t q) {
    if (IsLeaf(q)) return q;
    uint32_t nmin = q, nmax = q;
    uint64_t lmin = kInfiniteKey, lmax = 0;
    bool any_live = false;
    for (uint32_t c : twig_.node(q).children) {
      if (SubtreeEnded(c)) continue;
      PRIX_ASSIGN_OR_RETURN(uint32_t nc, GetNext(c));
      if (nc != c) return nc;
      any_live = true;
      uint64_t l = cursors_[c]->NextL();
      if (l < lmin) {
        lmin = l;
        nmin = c;
      }
      if (l >= lmax) {
        lmax = l;
        nmax = c;
      }
    }
    if (!any_live) return q;
    while (!cursors_[q]->Eof() &&
           cursors_[q]->NextR() < cursors_[nmax]->NextL()) {
      ++stats_.advances;
      PRIX_RETURN_NOT_OK(cursors_[q]->Advance());
    }
    if (cursors_[q]->NextL() < cursors_[nmin]->NextL()) return q;
    return nmin;
  }

  void CleanStack(uint32_t q, uint64_t begin_key) {
    auto& stack = stacks_[q];
    while (!stack.empty() && stack.back().elem.EndKey() < begin_key) {
      stack.pop_back();
    }
  }

  void ExpandPathSolutions(uint32_t leaf, const ElementPos& elem) {
    PathSolutionSet* set = nullptr;
    for (auto& [l, s] : paths_) {
      if (l == leaf) {
        set = &s;
        break;
      }
    }
    PRIX_CHECK(set != nullptr);
    const std::vector<uint32_t>& path = set->path;
    std::vector<ElementPos> partial(path.size());
    partial.back() = elem;
    uint32_t parent = twig_.node(leaf).parent;
    int bound = parent == TwigPattern::kNoParent
                    ? -1
                    : static_cast<int>(stacks_[parent].size()) - 1;
    if (path.size() == 1) {
      // Single-node query path: the leaf is the root.
      if (AnchorOk(twig_.root_anchor(), elem)) {
        set->solutions.push_back(partial);
        ++stats_.path_solutions;
      }
      return;
    }
    Expand(path, static_cast<int>(path.size()) - 2, bound, partial, set);
  }

  void Expand(const std::vector<uint32_t>& path, int idx, int bound,
              std::vector<ElementPos>& partial, PathSolutionSet* set) {
    if (idx < 0) {
      if (!AnchorOk(twig_.root_anchor(), partial[0])) return;
      set->solutions.push_back(partial);
      ++stats_.path_solutions;
      return;
    }
    uint32_t node = path[idx];
    const EdgeSpec edge = twig_.node(path[idx + 1]).edge;
    for (int j = 0; j <= bound; ++j) {
      const StackEntry& entry = stacks_[node][j];
      if (!EdgeOk(edge, entry.elem, partial[idx + 1])) continue;
      partial[idx] = entry.elem;
      Expand(path, idx - 1, entry.parent_top, partial, set);
    }
  }

  const StreamStore* store_;
  const XbForest* forest_;
  const EffectiveTwig& twig_;
  std::vector<TagCursor*> cursors_;
  std::vector<std::unique_ptr<SimpleTagCursor>> simple_;
  std::vector<std::unique_ptr<XbCursor>> xb_;
  std::vector<std::vector<StackEntry>> stacks_;
  std::vector<std::pair<uint32_t, PathSolutionSet>> paths_;
  TwigStackStats stats_;
};

Result<TwigStackResult> TwigStackEngine::Execute(const TwigPattern& pattern) {
  if (pattern.empty()) return Status::InvalidArgument("empty twig pattern");
  EffectiveTwig twig = EffectiveTwig::Build(pattern);
  for (uint32_t q = 0; q < twig.num_nodes(); ++q) {
    if (twig.is_star(q)) {
      return Status::NotImplemented(
          "TwigStack baseline does not stream '*' name tests");
    }
  }
  Run run(store_, forest_, twig);
  PRIX_RETURN_NOT_OK(run.Init());
  TwigStackResult result;
  PRIX_RETURN_NOT_OK(run.Execute(&result));
  return result;
}

}  // namespace prix
