#include "trie/range_labeler.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"

namespace prix {

namespace {

/// Root scope for dynamic labeling: large enough that only allocation
/// policy, not arithmetic, causes underflow.
constexpr uint64_t kRootScopeEnd = uint64_t{1} << 62;

}  // namespace

std::vector<RangeLabel> LabelTrieExact(const SequenceTrie& trie) {
  std::vector<RangeLabel> labels(trie.num_nodes());
  uint64_t counter = 0;
  // Iterative DFS assigning left on entry and right on exit.
  struct Frame {
    uint32_t node;
    std::vector<uint32_t> kids;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{trie.root(), trie.SortedChildren(trie.root()), 0});
  labels[trie.root()].left = ++counter;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.kids.size()) {
      uint32_t child = f.kids[f.next++];
      labels[child].left = ++counter;
      stack.push_back(Frame{child, trie.SortedChildren(child), 0});
    } else {
      labels[f.node].right = counter;
      stack.pop_back();
    }
  }
  return labels;
}

namespace {

/// State of the dynamic labeler: per-node scope plus the cursor for
/// allocating child scopes.
struct DynNode {
  RangeLabel scope;    // [left, right]; the node's own LeftPos is scope.left
  uint64_t next_free;  // first unallocated position within scope
  bool assigned = false;
};

class DynamicLabelerImpl {
 public:
  DynamicLabelerImpl(const SequenceTrie& trie, uint32_t alpha,
                     LabelerStats* stats)
      : trie_(trie), alpha_(alpha), stats_(stats) {
    nodes_.resize(trie.num_nodes());
  }

  void Run(const std::vector<std::vector<LabelId>>& sequences) {
    AssignRoot();
    if (alpha_ > 0) Preallocate(sequences);
    // Replay insertions: assign scopes to nodes on first touch.
    for (const auto& seq : sequences) {
      uint32_t cur = trie_.root();
      for (LabelId label : seq) {
        auto it = trie_.node(cur).children.find(label);
        PRIX_CHECK(it != trie_.node(cur).children.end());
        uint32_t child = it->second;
        if (!nodes_[child].assigned) AllocateChild(cur, child);
        cur = child;
      }
    }
  }

  std::vector<RangeLabel> TakeLabels() {
    std::vector<RangeLabel> labels(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) labels[i] = nodes_[i].scope;
    return labels;
  }

 private:
  void AssignRoot() {
    nodes_[trie_.root()].scope = RangeLabel{1, kRootScopeEnd};
    nodes_[trie_.root()].next_free = 2;
    nodes_[trie_.root()].assigned = true;
  }

  /// Pre-allocates scopes for all trie nodes at depth <= alpha,
  /// proportionally to weight = sum of remaining sequence lengths through
  /// the node (the paper's "frequency and length" criterion).
  void Preallocate(const std::vector<std::vector<LabelId>>& sequences) {
    std::vector<uint64_t> weight(trie_.num_nodes(), 0);
    for (const auto& seq : sequences) {
      uint32_t cur = trie_.root();
      for (size_t i = 0; i < seq.size(); ++i) {
        auto it = trie_.node(cur).children.find(seq[i]);
        PRIX_CHECK(it != trie_.node(cur).children.end());
        cur = it->second;
        if (trie_.node(cur).depth > alpha_) break;
        weight[cur] += seq.size() - i;  // remaining length incl. this label
      }
    }
    // BFS over preallocated levels, splitting each parent's tail scope.
    std::vector<uint32_t> frontier = {trie_.root()};
    while (!frontier.empty()) {
      std::vector<uint32_t> next;
      for (uint32_t p : frontier) {
        if (trie_.node(p).depth >= alpha_) continue;
        std::vector<uint32_t> kids = trie_.SortedChildren(p);
        if (kids.empty()) continue;
        uint64_t total_weight = 0;
        for (uint32_t c : kids) total_weight += std::max<uint64_t>(weight[c], 1);
        DynNode& pn = nodes_[p];
        uint64_t avail = pn.scope.right - pn.next_free + 1;
        // Keep a tail fraction of the parent scope unreserved for children
        // first seen after preallocation; 15/16 goes to the prealloc.
        uint64_t budget = avail / 16 * 15;
        PRIX_CHECK(budget >= 2 * kids.size() &&
                   "alpha-prefix trie too wide for the parent scope");
        // Proportional shares with a floor of 2, rescaled to fit the budget.
        std::vector<uint64_t> share(kids.size());
        uint64_t sum = 0;
        for (size_t i = 0; i < kids.size(); ++i) {
          uint64_t w = std::max<uint64_t>(weight[kids[i]], 1);
          share[i] = std::max<uint64_t>(budget / 2 * w / total_weight, 2);
          sum += share[i];
        }
        PRIX_CHECK(sum <= budget);
        uint64_t cursor = pn.next_free;
        for (size_t i = 0; i < kids.size(); ++i) {
          DynNode& cn = nodes_[kids[i]];
          cn.scope = RangeLabel{cursor, cursor + share[i] - 1};
          cn.next_free = cursor + 1;
          cn.assigned = true;
          cursor += share[i];
          next.push_back(kids[i]);
        }
        pn.next_free = cursor;
      }
      frontier = std::move(next);
    }
  }

  /// Dynamic allocation: the child takes 3/4 of the parent's remaining
  /// scope (deep chains then lose only a constant fraction per level, while
  /// a node's k-th late-arriving child sees a 4^-k slice — the high-fanout
  /// scope underflow the paper attributes to the dynamic scheme). On
  /// underflow, relabels the nearest ancestor subtree with slack.
  void AllocateChild(uint32_t parent, uint32_t child) {
    DynNode& pn = nodes_[parent];
    PRIX_CHECK(pn.assigned);
    uint64_t remaining =
        pn.scope.right >= pn.next_free ? pn.scope.right - pn.next_free + 1 : 0;
    if (remaining < 2) {
      ++stats_->underflows;
      Relabel(parent);
      // After relabeling, the child has been assigned iff it existed
      // already; it did not (we are creating it), so allocate again.
      AllocateChild(parent, child);
      return;
    }
    uint64_t share = std::max<uint64_t>(remaining / 4 * 3, 2);
    if (share > remaining) share = remaining;
    DynNode& cn = nodes_[child];
    cn.scope = RangeLabel{pn.next_free, pn.next_free + share - 1};
    cn.next_free = cn.scope.left + 1;
    cn.assigned = true;
    pn.next_free += share;
  }

  /// Computes assigned-subtree sizes for the subtree of `node` into
  /// `sizes_` (memoized per relabel; the recursion itself is linear).
  uint64_t ComputeSizes(uint32_t node) {
    uint64_t size = 1;
    for (const auto& [label, child] : trie_.node(node).children) {
      if (nodes_[child].assigned) size += ComputeSizes(child);
    }
    sizes_[node] = size;
    return size;
  }

  /// Finds the nearest ancestor of `node` whose scope can hold 16x the
  /// assigned subtree size, then reassigns proportional ranges (with slack)
  /// to the whole assigned subtree. Linear in the relabeled subtree.
  void Relabel(uint32_t node) {
    uint32_t anc = node;
    while (true) {
      sizes_.clear();
      uint64_t need = ComputeSizes(anc) * 16;
      uint64_t scope_size =
          nodes_[anc].scope.right - nodes_[anc].scope.left + 1;
      if (scope_size >= need || anc == trie_.root()) break;
      anc = trie_.node(anc).parent;
    }
    AssignRec(anc);
  }

  void AssignRec(uint32_t id) {
    ++stats_->relabeled_nodes;
    DynNode& dn = nodes_[id];
    std::vector<uint32_t> kids;
    uint64_t total_sub = 0;
    for (uint32_t c : trie_.SortedChildren(id)) {
      if (nodes_[c].assigned) {
        kids.push_back(c);
        total_sub += sizes_[c];
      }
    }
    // Spread existing children over half the scope; the other half stays
    // free for children that arrive after this relabel (otherwise a
    // high-fanout node relabels again almost immediately).
    uint64_t scope_size = dn.scope.right - dn.scope.left + 1;
    uint64_t cursor = dn.scope.left + 1;
    for (size_t i = 0; i < kids.size(); ++i) {
      uint64_t sub = sizes_[kids[i]];
      uint64_t share =
          std::max<uint64_t>(scope_size / 2 * sub / (total_sub + 1), sub * 4);
      uint64_t cap = dn.scope.right >= cursor ? dn.scope.right - cursor + 1 : 0;
      if (share > cap) share = cap;
      PRIX_CHECK(share >= sub * 2 && "relabel target scope too small");
      nodes_[kids[i]].scope = RangeLabel{cursor, cursor + share - 1};
      cursor += share;
      AssignRec(kids[i]);
    }
    dn.next_free = cursor;
  }

  const SequenceTrie& trie_;
  uint32_t alpha_;
  LabelerStats* stats_;
  std::vector<DynNode> nodes_;
  std::unordered_map<uint32_t, uint64_t> sizes_;  // per-relabel memo
};

}  // namespace

std::vector<RangeLabel> LabelTrieDynamic(
    const SequenceTrie& trie,
    const std::vector<std::vector<LabelId>>& sequences, uint32_t alpha,
    LabelerStats* stats) {
  LabelerStats local;
  DynamicLabelerImpl impl(trie, alpha, stats != nullptr ? stats : &local);
  impl.Run(sequences);
  return impl.TakeLabels();
}

bool ValidateContainment(const SequenceTrie& trie,
                         const std::vector<RangeLabel>& labels) {
  if (labels.size() != trie.num_nodes()) return false;
  for (uint32_t id = 0; id < trie.num_nodes(); ++id) {
    const RangeLabel& l = labels[id];
    if (l.left == 0 || l.right < l.left) return false;
    if (id != trie.root()) {
      const RangeLabel& p = labels[trie.node(id).parent];
      if (!(l.left > p.left && l.right <= p.right)) return false;
    }
    // Sibling disjointness.
    std::vector<uint32_t> kids = trie.SortedChildren(id);
    std::vector<RangeLabel> ranges;
    for (uint32_t c : kids) ranges.push_back(labels[c]);
    std::sort(ranges.begin(), ranges.end(),
              [](const RangeLabel& a, const RangeLabel& b) {
                return a.left < b.left;
              });
    for (size_t i = 1; i < ranges.size(); ++i) {
      if (ranges[i].left <= ranges[i - 1].right) return false;
    }
  }
  return true;
}

}  // namespace prix
