#include "trie/trie_builder.h"

#include <algorithm>

namespace prix {

SequenceTrie::SequenceTrie() {
  nodes_.push_back(Node{});  // root, depth 0
}

void SequenceTrie::Insert(const std::vector<LabelId>& seq, DocId doc) {
  uint32_t cur = root();
  ++nodes_[cur].seqs_through;
  for (LabelId label : seq) {
    auto it = nodes_[cur].children.find(label);
    uint32_t next;
    if (it == nodes_[cur].children.end()) {
      next = static_cast<uint32_t>(nodes_.size());
      Node n;
      n.label = label;
      n.parent = cur;
      n.depth = nodes_[cur].depth + 1;
      nodes_.push_back(std::move(n));
      nodes_[cur].children.emplace(label, next);
    } else {
      next = it->second;
    }
    cur = next;
    ++nodes_[cur].seqs_through;
  }
  nodes_[cur].end_docs.push_back(doc);
}

std::vector<uint32_t> SequenceTrie::SortedChildren(uint32_t id) const {
  std::vector<uint32_t> kids;
  kids.reserve(nodes_[id].children.size());
  for (const auto& [label, child] : nodes_[id].children) kids.push_back(child);
  std::sort(kids.begin(), kids.end(), [this](uint32_t a, uint32_t b) {
    return nodes_[a].label < nodes_[b].label;
  });
  return kids;
}

uint32_t SequenceTrie::MaxDepth() const {
  uint32_t max_depth = 0;
  for (const Node& n : nodes_) max_depth = std::max(max_depth, n.depth);
  return max_depth;
}

}  // namespace prix
