#ifndef PRIX_TRIE_RANGE_LABELER_H_
#define PRIX_TRIE_RANGE_LABELER_H_

#include <cstdint>
#include <vector>

#include "trie/trie_builder.h"

namespace prix {

/// Positional (LeftPos, RightPos) label of a virtual-trie node satisfying
/// the containment property (Sec. 5.2.1): every descendant's left falls in
/// (left, right], sibling ranges are disjoint.
struct RangeLabel {
  uint64_t left = 0;
  uint64_t right = 0;

  bool Contains(const RangeLabel& other) const {
    return other.left > left && other.right <= right;
  }
  bool operator==(const RangeLabel&) const = default;
};

/// Counters for the dynamic labeling ablation (A3 in DESIGN.md).
struct LabelerStats {
  uint64_t underflows = 0;       ///< scope underflow events
  uint64_t relabeled_nodes = 0;  ///< nodes whose range was reassigned
};

/// Exact two-pass labeling: left = preorder rank (1-based), right = largest
/// rank in the subtree. Never underflows; requires the full trie upfront.
/// Returned vector is indexed by trie node id (root gets [1, num_nodes]).
std::vector<RangeLabel> LabelTrieExact(const SequenceTrie& trie);

/// The paper's dynamic labeling scheme (after ViST): sequences arrive one at
/// a time; each new trie node takes half of its parent's remaining scope.
/// Prefixes of length <= `alpha` are PRE-allocated using an in-memory prefix
/// trie, with scopes proportional to frequency x remaining sequence length
/// (Sec. 5.2.1). A scope underflow triggers a counted relabel of the nearest
/// ancestor subtree with sufficient slack.
///
/// `sequences` must be the exact multiset inserted into `trie`, in insertion
/// order. Returns labels indexed by trie node id.
std::vector<RangeLabel> LabelTrieDynamic(
    const SequenceTrie& trie,
    const std::vector<std::vector<LabelId>>& sequences, uint32_t alpha,
    LabelerStats* stats);

/// Validates the containment property over all labels: children strictly
/// inside parents, siblings disjoint, left unique. Returns false on any
/// violation (used by tests and the A3 bench).
bool ValidateContainment(const SequenceTrie& trie,
                         const std::vector<RangeLabel>& labels);

}  // namespace prix

#endif  // PRIX_TRIE_RANGE_LABELER_H_
