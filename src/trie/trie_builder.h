#ifndef PRIX_TRIE_TRIE_BUILDER_H_
#define PRIX_TRIE_TRIE_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xml/document.h"

namespace prix {

/// A trie over label sequences (the LPS's of a collection, Sec. 5.2.1).
/// "Similarity in documents" shows up as shared root-to-leaf paths: the
/// paper reports one DBLP path shared by 31,864 sequences. The trie itself
/// is a build-time structure; queries only ever touch the B+-trees
/// materialized from it.
class SequenceTrie {
 public:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  struct Node {
    LabelId label = kInvalidLabel;
    uint32_t parent = kNoNode;
    uint32_t depth = 0;  ///< level: position of this label in the sequence
    uint64_t seqs_through = 0;  ///< sequences whose prefix reaches this node
    std::vector<DocId> end_docs;  ///< documents whose LPS ends here
    std::unordered_map<LabelId, uint32_t> children;
  };

  SequenceTrie();

  /// Inserts one sequence ending at a node that records `doc`.
  void Insert(const std::vector<LabelId>& seq, DocId doc);

  uint32_t root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(uint32_t id) const { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Children of `id` ordered by label id (deterministic iteration order).
  std::vector<uint32_t> SortedChildren(uint32_t id) const;

  /// Longest root-to-leaf path length.
  uint32_t MaxDepth() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace prix

#endif  // PRIX_TRIE_TRIE_BUILDER_H_
