#ifndef PRIX_TRIE_DYNAMIC_TRIE_H_
#define PRIX_TRIE_DYNAMIC_TRIE_H_

// Shared dynamic trie-labeling machinery for online ingest (DESIGN.md §5k).
//
// Both PRIX's virtual trie over Labeled Prüfer sequences and ViST's virtual
// trie over structure-encoded sequences are persisted the same way: one
// B+-tree entry per trie node carrying a (left, right] range label, plus a
// Docid entry at every sequence end node. Inserting a sequence therefore
// reduces, for either engine, to the same three moves — walk the shared
// prefix through an in-memory mirror of the trie, claim sub-ranges from the
// pre-allocated slack for the new suffix (Sec. 5.2.1), and fall back to a
// batched relabel of the nearest ancestor whose scope can host its whole
// subtree when the slack runs out.
//
// This class owns the engine-neutral half: the mirror, the range arithmetic,
// the relabel batch, and the Docid-key bookkeeping. Engine-specific
// persistence is injected through an Ops policy supplied per call:
//
//   struct Ops {
//     Status InsertNode(uint64_t ckey, uint64_t left, uint64_t right,
//                       uint32_t level);
//     Status DeleteNode(uint64_t ckey, uint64_t left);
//     Status InsertDoc(uint64_t left, uint32_t seq, DocId doc);
//     Status DeleteDoc(uint64_t left, uint32_t seq);
//     void SetRootRange(uint64_t left, uint64_t right);
//   };
//
// `ckey` is the engine's composite child key — the value that distinguishes
// one trie child from its siblings. PRIX packs the LPS label; ViST packs
// (symbol << 32) | prefix, exactly the key its build-time trie uses. The
// mirror never interprets ckeys beyond equality.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "xml/document.h"

namespace prix {

/// One persisted trie-node entry, as enumerated from an engine's node
/// B+-tree when (re)building the mirror.
struct DynTrieEntry {
  uint64_t ckey = 0;
  uint64_t left = 0;
  uint64_t right = 0;
  uint32_t level = 0;
};

/// The (left, seq) half of a Docid-index key; the engine adds its own
/// padding/layout when persisting.
struct DynDocKey {
  uint64_t left = 0;
  uint32_t seq = 0;
};

class DynamicTrie {
 public:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  /// Positions reserved per node when a relabel batch re-spreads a subtree,
  /// and the growth granularity of the root scope. 16 means a relabeled
  /// subtree can absorb ~15 more nodes per existing node before the next
  /// relabel touches it.
  static constexpr uint64_t kRelabelSpread = 16;

  /// Ceiling for the root scope; matches the dynamic labeler's budget and
  /// leaves headroom below 2^63 for interval arithmetic.
  static constexpr uint64_t kMaxRootScope = uint64_t{1} << 62;

  /// Writer-side image of one virtual-trie node. The trie is never stored
  /// as a tree on disk — only as range-labeled B+-tree entries — so the
  /// writer reconstructs it once per cache build and keeps it current
  /// across its own inserts.
  struct Node {
    uint64_t ckey = 0;
    uint64_t left = 0;
    uint64_t right = 0;
    uint32_t level = 0;  ///< 0 for the virtual root
    uint32_t parent = kNoNode;
    /// First unclaimed position in (left, right]: all children's ranges and
    /// the node's own position lie strictly below it.
    uint64_t next_free = 0;
    std::unordered_map<uint64_t, uint32_t> children;
  };

  /// Rebuilds the mirror from the persisted node entries: sort by LeftPos —
  /// range labels assign LeftPos in preorder, so that IS a preorder walk —
  /// and recover each node's parent as the nearest enclosing range on a
  /// stack, validating containment and level consistency as it goes.
  Status Init(std::vector<DynTrieEntry> ents, uint64_t root_left,
              uint64_t root_right) {
    std::sort(ents.begin(), ents.end(),
              [](const DynTrieEntry& a, const DynTrieEntry& b) {
                return a.left < b.left;
              });
    nodes_.clear();
    doc_keys_.clear();
    next_seq_ = 0;
    Node root;
    root.left = root_left;
    root.right = root_right;
    root.next_free = root_left + 1;
    nodes_.push_back(std::move(root));

    std::vector<uint32_t> stk{0};
    for (const DynTrieEntry& e : ents) {
      if (e.left <= root_left || e.left > root_right || e.right < e.left ||
          e.right > root_right) {
        return Status::Corruption("trie node range escapes the root scope");
      }
      while (stk.size() > 1 &&
             !(nodes_[stk.back()].left < e.left &&
               e.left <= nodes_[stk.back()].right)) {
        stk.pop_back();
      }
      const uint32_t parent = stk.back();
      if (e.right > nodes_[parent].right) {
        return Status::Corruption(
            "trie node range escapes its parent's scope");
      }
      if (e.level != nodes_[parent].level + 1) {
        return Status::Corruption(
            "trie node level does not match its range nesting depth");
      }
      Node node;
      node.ckey = e.ckey;
      node.left = e.left;
      node.right = e.right;
      node.level = e.level;
      node.parent = parent;
      node.next_free = e.left + 1;
      const uint32_t idx = static_cast<uint32_t>(nodes_.size());
      if (!nodes_[parent].children.emplace(e.ckey, idx).second) {
        return Status::Corruption("two sibling trie nodes share one key");
      }
      nodes_.push_back(std::move(node));
      if (nodes_[parent].next_free < e.right + 1) {
        nodes_[parent].next_free = e.right + 1;
      }
      stk.push_back(idx);
    }
    return Status::OK();
  }

  /// Registers one live document's Docid key (from the engine's Docid-index
  /// scan) and advances the sequence-number watermark past it.
  Status AddDocKey(DocId doc, uint64_t left, uint32_t seq) {
    if (!doc_keys_.emplace(doc, DynDocKey{left, seq}).second) {
      return Status::Corruption("two Docid-index entries map to DocId " +
                                std::to_string(doc));
    }
    if (seq >= next_seq_) next_seq_ = seq + 1;
    return Status::OK();
  }

  bool HasDoc(DocId doc) const {
    return doc_keys_.find(doc) != doc_keys_.end();
  }
  size_t num_doc_keys() const { return doc_keys_.size(); }
  uint64_t root_left() const { return nodes_[0].left; }
  uint64_t root_right() const { return nodes_[0].right; }

  /// Threads `ckeys` through the mirror, materializing the missing suffix
  /// as new persisted node entries, and returns the LeftPos of the end
  /// node. A new child's share of its parent's free scope is generous (3/4
  /// of what is left, floored at 4x the pending chain) so sibling
  /// insertions stay cheap; an exhausted scope triggers one relabel batch
  /// and a retry.
  template <typename Ops>
  Result<uint64_t> InsertPath(const std::vector<uint64_t>& ckeys, Ops& ops) {
    std::vector<Node>& m = nodes_;
    for (int attempt = 0; attempt < 8; ++attempt) {
      uint32_t cur = 0;
      size_t i = 0;
      while (i < ckeys.size()) {
        const auto it = m[cur].children.find(ckeys[i]);
        if (it == m[cur].children.end()) break;
        cur = it->second;
        ++i;
      }
      if (i == ckeys.size()) return m[cur].left;  // whole path shared

      uint64_t need = ckeys.size() - i;
      uint64_t remaining = m[cur].next_free > m[cur].right
                               ? 0
                               : m[cur].right - m[cur].next_free + 1;
      if (remaining < need) {
        PRIX_RETURN_NOT_OK(Relabel(cur, need, ops));
        continue;  // ranges moved under us; redo the walk
      }
      for (; i < ckeys.size(); ++i) {
        need = ckeys.size() - i;
        remaining = m[cur].right - m[cur].next_free + 1;
        if (remaining < need) {
          return Status::Internal("label scope underflow mid-chain");
        }
        const uint64_t share =
            std::min(remaining, std::max(need * 4, remaining - remaining / 4));
        const uint64_t left = m[cur].next_free;
        const uint64_t right = left + share - 1;
        m[cur].next_free = right + 1;
        const uint32_t level = m[cur].level + 1;
        PRIX_RETURN_NOT_OK(ops.InsertNode(ckeys[i], left, right, level));
        Node node;
        node.ckey = ckeys[i];
        node.left = left;
        node.right = right;
        node.level = level;
        node.parent = cur;
        node.next_free = left + 1;
        const uint32_t idx = static_cast<uint32_t>(m.size());
        m.push_back(std::move(node));
        m[cur].children.emplace(ckeys[i], idx);
        cur = idx;
      }
      return m[cur].left;
    }
    return Status::Internal("relabeling failed to open a large enough scope");
  }

  /// Persists the Docid entry of a sequence ending at `end_left` and
  /// records it for later deletes/relabels.
  template <typename Ops>
  Result<DynDocKey> InsertDocEntry(uint64_t end_left, DocId doc, Ops& ops) {
    const DynDocKey key{end_left, next_seq_++};
    PRIX_RETURN_NOT_OK(ops.InsertDoc(key.left, key.seq, doc));
    doc_keys_.emplace(doc, key);
    return key;
  }

  /// Removes `doc`'s Docid entry. NotFound when the trie holds no key for
  /// it (never inserted, or already deleted).
  template <typename Ops>
  Status DeleteDocEntry(DocId doc, Ops& ops) {
    const auto it = doc_keys_.find(doc);
    if (it == doc_keys_.end()) {
      return Status::NotFound("document " + std::to_string(doc) +
                              " has no Docid-index entry");
    }
    PRIX_RETURN_NOT_OK(ops.DeleteDoc(it->second.left, it->second.seq));
    doc_keys_.erase(it);
    return Status::OK();
  }

 private:
  /// Relabel batch (the Sec. 5.2.1 fallback): node `at` cannot host `need`
  /// more descendants. Walks up to the nearest ancestor A whose scope can
  /// hold its whole subtree — counting the pending chain — at
  /// kRelabelSpread positions per node (growing the root scope if even the
  /// root is too tight), then re-spreads every descendant of A: delete all
  /// their old node and Docid keys, assign fresh ranges preorder with the
  /// spread, reinsert. A's own range never changes, so nothing outside its
  /// subtree moves.
  template <typename Ops>
  Status Relabel(uint32_t at, uint64_t need, Ops& ops) {
    std::vector<Node>& m = nodes_;

    // Subtree sizes (nodes incl. self). Mirror slots are preorder (parent <
    // child), so one reverse sweep folds children into parents; then the
    // pending chain of `need` nodes is credited to every ancestor of `at`.
    std::vector<uint64_t> sz(m.size(), 1);
    for (uint32_t v = static_cast<uint32_t>(m.size()); v-- > 1;) {
      sz[m[v].parent] += sz[v];
    }
    for (uint32_t x = at;; x = m[x].parent) {
      sz[x] += need;
      if (x == 0) break;
    }

    uint32_t A = at;
    while (true) {
      const uint64_t descendants = sz[A] - 1;
      const uint64_t span = m[A].right - m[A].left;
      if (span / kRelabelSpread >= descendants) break;
      if (A == 0) {
        // Even the root scope is too small: grow it. The root is virtual
        // (no persisted node key), so only the engine's root range changes.
        const uint64_t want = std::max(descendants * kRelabelSpread, 2 * span);
        if (want < span || m[0].left + want > kMaxRootScope) {
          return Status::Internal("root label scope exhausted");
        }
        m[0].right = m[0].left + want;
        ops.SetRootRange(m[0].left, m[0].right);
        break;
      }
      A = m[A].parent;
    }

    const uint64_t descendants = sz[A] - 1;
    const uint64_t span = m[A].right - m[A].left;
    const uint64_t spread = span / descendants;  // >= kRelabelSpread

    // Preorder over A's proper descendants, children visited in old-left
    // order, captured BEFORE any range changes.
    std::vector<uint32_t> desc;
    {
      std::vector<uint32_t> stk;
      auto push_children = [&](uint32_t n) {
        std::vector<std::pair<uint64_t, uint32_t>> kids;
        kids.reserve(m[n].children.size());
        for (const auto& [ckey, c] : m[n].children) {
          kids.emplace_back(m[c].left, c);
        }
        std::sort(kids.begin(), kids.end());
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          stk.push_back(it->second);
        }
      };
      push_children(A);
      while (!stk.empty()) {
        const uint32_t n = stk.back();
        stk.pop_back();
        desc.push_back(n);
        push_children(n);
      }
    }
    if (desc.empty()) return Status::OK();  // pure root growth

    // Phase 1: delete every moved node's old key and every Docid entry
    // keyed under A's scope (exactly the moved nodes' entries; A's own, at
    // A.left, is outside the open interval). Deletes strictly precede
    // reinserts so a new key can never collide with a not-yet-moved old
    // one.
    std::vector<uint64_t> old_lefts(desc.size());
    for (size_t i = 0; i < desc.size(); ++i) {
      old_lefts[i] = m[desc[i]].left;
      PRIX_RETURN_NOT_OK(ops.DeleteNode(m[desc[i]].ckey, old_lefts[i]));
    }
    struct MovedDoc {
      DocId doc;
      DynDocKey old_key;
    };
    std::vector<MovedDoc> moved;
    for (const auto& [doc, key] : doc_keys_) {
      if (key.left > m[A].left && key.left <= m[A].right) {
        moved.push_back(MovedDoc{doc, key});
      }
    }
    for (const MovedDoc& md : moved) {
      PRIX_RETURN_NOT_OK(ops.DeleteDoc(md.old_key.left, md.old_key.seq));
    }

    // Phase 2: assign fresh ranges in one preorder pass. Each node claims
    // sz*spread positions from its parent's running cursor; processing
    // order guarantees the parent's cursor exists before any child reads
    // it.
    std::unordered_map<uint64_t, uint64_t> new_left_by_old;
    new_left_by_old.reserve(desc.size());
    std::unordered_map<uint32_t, uint64_t> cursor;
    cursor.reserve(desc.size() + 1);
    cursor[A] = m[A].left + 1;
    for (size_t i = 0; i < desc.size(); ++i) {
      const uint32_t n = desc[i];
      uint64_t& parent_cursor = cursor[m[n].parent];
      const uint64_t base = parent_cursor;
      parent_cursor = base + sz[n] * spread;
      m[n].left = base;
      m[n].right = base + sz[n] * spread - 1;
      cursor[n] = base + 1;
      new_left_by_old.emplace(old_lefts[i], base);
    }
    m[A].next_free = cursor[A];
    for (const uint32_t n : desc) m[n].next_free = cursor[n];

    // Phase 3: reinsert under the new ranges.
    for (const uint32_t n : desc) {
      PRIX_RETURN_NOT_OK(
          ops.InsertNode(m[n].ckey, m[n].left, m[n].right, m[n].level));
    }
    for (const MovedDoc& md : moved) {
      const auto it = new_left_by_old.find(md.old_key.left);
      if (it == new_left_by_old.end()) {
        return Status::Internal("Docid entry keyed at no relabeled trie node");
      }
      const DynDocKey nk{it->second, md.old_key.seq};
      PRIX_RETURN_NOT_OK(ops.InsertDoc(nk.left, nk.seq, md.doc));
      doc_keys_[md.doc] = nk;
    }

    MetricsRegistry& reg = MetricsRegistry::Global();
    if (reg.enabled()) {
      reg.counter("prix.ingest.relabels").Add(1);
      reg.counter("prix.ingest.relabeled_nodes").Add(desc.size());
    }
    return Status::OK();
  }

  std::vector<Node> nodes_;
  std::unordered_map<DocId, DynDocKey> doc_keys_;  ///< live documents only
  uint32_t next_seq_ = 0;  ///< next Docid-entry sequence number
};

}  // namespace prix

#endif  // PRIX_TRIE_DYNAMIC_TRIE_H_
