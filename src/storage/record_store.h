#ifndef PRIX_STORAGE_RECORD_STORE_H_
#define PRIX_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/cow.h"

namespace prix {

/// Append-only store of variable-length byte records laid out contiguously
/// across buffer-pool pages (records may span page boundaries). The catalog
/// of (offset, length) per record id is kept in memory; all data accesses go
/// through the buffer pool and are therefore I/O-accounted.
class RecordStore {
 public:
  explicit RecordStore(BufferPool* pool) : pool_(pool) {}
  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  /// Appends a record; returns its id (dense, starting at 0).
  Result<uint32_t> Append(const char* data, size_t len);

  /// Reads record `id` into `out` (resized to the record length).
  Status Load(uint32_t id, std::vector<char>* out) const;

  /// Attaches (or with nullptr detaches) copy-on-write bookkeeping for a
  /// write transaction. With a context installed, Append never edits a
  /// committed page in place: the partially-filled tail page is copied to a
  /// fresh page first (its id in the page list changes), and every page the
  /// store allocates is marked fresh. Pages the catalog no longer references
  /// are reported as freed.
  void SetCow(CowContext* cow) { cow_ = cow; }

  size_t num_records() const { return catalog_.size(); }
  uint64_t total_bytes() const { return next_offset_; }
  uint64_t num_pages() const { return pages_.size(); }

  /// Serializes the in-memory catalog (page list + extents) so the store
  /// can be reopened after a restart. `compressed` selects the v3 catalog
  /// encoding — varint fields, page ids and extent offsets as deltas (both
  /// are near-monotonic, so deltas are tiny) — instead of the fixed-width
  /// v1 layout. The caller owns format versioning (the index catalog blob
  /// records which encoding was used) and must pass the same flag to
  /// Deserialize.
  void SerializeTo(std::vector<char>* out, bool compressed = false) const;

  /// Rebuilds a store over existing pages from SerializeTo output. `p` is
  /// advanced past the consumed bytes. All v3 varint reads are
  /// bounds-checked against `end`; structural limits (pages within the
  /// file, extents within the logical size) are enforced identically in
  /// both formats.
  static Result<RecordStore> Deserialize(BufferPool* pool, const char** p,
                                         const char* end,
                                         bool compressed = false);

 private:
  struct Extent {
    uint64_t offset;
    uint32_t length;
  };

  Status AppendBytes(const char* data, size_t len);
  Status ReadBytes(uint64_t offset, char* out, size_t len) const;

  BufferPool* pool_;
  std::vector<PageId> pages_;
  std::vector<Extent> catalog_;
  uint64_t next_offset_ = 0;
  CowContext* cow_ = nullptr;  ///< not owned; null outside write transactions
};

/// Little-endian-on-disk helpers for record serialization.
void PutU32(std::vector<char>* buf, uint32_t v);
uint32_t GetU32(const char* p);
void PutU64(std::vector<char>* buf, uint64_t v);
uint64_t GetU64(const char* p);

/// Writes `data` into a chain of freshly allocated pages (each page holds a
/// next-page pointer, a length, and payload) and returns the first page id.
/// Used to persist index catalogs. `out_pages`, when non-null, receives the
/// ids of every page in the chain so a commit can retire the superseded
/// blob's pages into the free list.
Result<PageId> WriteBlob(BufferPool* pool, const std::vector<char>& data,
                         std::vector<PageId>* out_pages = nullptr);

/// Reads back a blob written by WriteBlob.
Status ReadBlob(BufferPool* pool, PageId first, std::vector<char>* out);

/// Collects the page ids of a blob chain without decoding its payload —
/// used to retire a superseded catalog blob into the free list.
Status ReadBlobPages(BufferPool* pool, PageId first,
                     std::vector<PageId>* out_pages);

}  // namespace prix

#endif  // PRIX_STORAGE_RECORD_STORE_H_
