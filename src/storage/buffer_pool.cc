#include "storage/buffer_pool.h"

#include "common/deadline.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "storage/page_format.h"

namespace prix {

namespace {

constexpr size_t kMaxShards = 16;
/// Below this many frames per shard, sharding would turn capacity pressure
/// into spurious per-shard exhaustion; shrink the shard count instead.
constexpr size_t kMinFramesPerShard = 16;

size_t PickShardCount(size_t pool_pages) {
  size_t shards = 1;
  while (shards * 2 <= kMaxShards &&
         pool_pages / (shards * 2) >= kMinFramesPerShard) {
    shards *= 2;
  }
  return shards;
}

/// Registry accounting for the verify-on-read path. Only physical reads
/// (pool misses) pay this, so the warm-cache hot path is untouched; the
/// enabled() check keeps the default cost to one relaxed load.
void ChargeChecksumVerify(bool failed) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  static MetricCounter& verifies = reg.counter("checksum_verifies");
  static MetricCounter& failures = reg.counter("checksum_failures");
  verifies.Add(1);
  if (failed) failures.Add(1);
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t pool_pages) : disk_(disk) {
  PRIX_CHECK(pool_pages > 0);
  capacity_ = pool_pages;
  size_t num_shards = PickShardCount(pool_pages);
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    size_t frames = pool_pages / num_shards + (s < pool_pages % num_shards);
    shard->frames.reserve(frames);
    for (size_t i = 0; i < frames; ++i) {
      shard->frames.push_back(std::make_unique<Page>());
      shard->free_frames.push_back(frames - 1 - i);  // pop_back yields frame 0
    }
    shard->lru_pos.assign(frames, shard->lru.end());
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors at teardown are not recoverable anyway.
  (void)FlushAll();
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto it = shard.table.find(id);
  if (it != shard.table.end()) {
    shard.stats.hits.fetch_add(1, std::memory_order_relaxed);
    ChargePoolHit();
    size_t frame = it->second;
    Page* page = shard.frames[frame].get();
    page->pin_count_.fetch_add(1, std::memory_order_acq_rel);
    Touch(shard, frame);
    return page;
  }
  shard.stats.misses.fetch_add(1, std::memory_order_relaxed);
  ChargePoolMiss();
  // Page-fetch deadline checkpoint (DESIGN.md §5j): a cancelled or expired
  // request stops faulting pages in before the physical read. Hits are not
  // checked — the hot path stays untouched and a cancelled query still dies
  // at its next miss or match-loop checkpoint.
  PRIX_RETURN_NOT_OK(CheckDeadline());
  PRIX_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  Status read_st = disk_->ReadPage(id, page->data_);
  if (read_st.ok()) {
    // Verify-on-read: every page entering the cache from disk must carry a
    // valid trailer CRC (or be all-zero — allocated, never written). This
    // is the line of defense against LYING I/O: pread returned "success"
    // but the bytes are not what was written (bit rot, torn sector,
    // misdirected write).
    read_st = VerifyPageTrailer(id, page->data_);
    ChargeChecksumVerify(!read_st.ok());
  }
  if (!read_st.ok()) {
    // The frame came off the free list or was just evicted; hand it back
    // before surfacing the error, or it would be unreachable (in neither
    // table, lru, nor free list) and every failed read would permanently
    // shrink the pool by one frame.
    page->Reset();
    shard.free_frames.push_back(frame);
    return read_st;
  }
  shard.stats.physical_reads.fetch_add(1, std::memory_order_relaxed);
  page->page_id_ = id;
  page->pin_count_.store(1, std::memory_order_release);
  page->dirty_ = false;
  shard.table[id] = frame;
  Touch(shard, frame);
  return page;
}

Result<Page*> BufferPool::NewPage() {
  // Allocation is internally synchronized (disk counter or the installed
  // allocator's own lock); no shard latch is held across it, so concurrent
  // NewPage calls interleave freely.
  PageId id;
  if (allocator_ != nullptr) {
    PRIX_ASSIGN_OR_RETURN(id, allocator_->AllocatePage());
  } else {
    PRIX_ASSIGN_OR_RETURN(id, disk_->AllocatePage());
  }
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto cached = shard.table.find(id);
  if (cached != shard.table.end()) {
    // A recycled id whose stale frame is still cached: reuse that frame in
    // place so the id never maps to two frames. The stale content belongs
    // to a generation no snapshot can reach (the allocator's invariant).
    size_t frame = cached->second;
    Page* page = shard.frames[frame].get();
    if (page->pin_count() != 0) {
      return Status::Internal("recycled page " + std::to_string(id) +
                              " still pinned");
    }
    std::memset(page->data_, 0, kPageSize);
    page->pin_count_.store(1, std::memory_order_release);
    page->dirty_ = true;
    Touch(shard, frame);
    return page;
  }
  PRIX_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame(shard));
  Page* page = shard.frames[frame].get();
  std::memset(page->data_, 0, kPageSize);
  page->page_id_ = id;
  page->pin_count_.store(1, std::memory_order_release);
  page->dirty_ = true;
  shard.table[id] = frame;
  Touch(shard, frame);
  return page;
}

Status BufferPool::DropPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto it = shard.table.find(id);
  if (it == shard.table.end()) return Status::OK();
  size_t frame = it->second;
  Page* page = shard.frames[frame].get();
  if (page->pin_count() != 0) {
    return Status::Internal("DropPage(" + std::to_string(id) +
                            ") with live pins");
  }
  shard.table.erase(it);
  if (shard.lru_pos[frame] != shard.lru.end()) {
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru_pos[frame] = shard.lru.end();
  }
  page->Reset();
  shard.free_frames.push_back(frame);
  return Status::OK();
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto it = shard.table.find(id);
  PRIX_CHECK(it != shard.table.end());
  Page* page = shard.frames[it->second].get();
  if (dirty) page->dirty_ = true;
  int prev = page->pin_count_.fetch_sub(1, std::memory_order_acq_rel);
  PRIX_CHECK(prev > 0);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    PRIX_RETURN_NOT_OK(FlushShard(*shard));
  }
  return Status::OK();
}

Status BufferPool::FlushShard(Shard& shard) {
  for (auto& [id, frame] : shard.table) {
    Page* page = shard.frames[frame].get();
    if (page->dirty_) {
      StampPageTrailer(page->data_);
      PRIX_RETURN_NOT_OK(disk_->WritePage(id, page->data_));
      shard.stats.physical_writes.fetch_add(1, std::memory_order_relaxed);
      page->dirty_ = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  // Latch ordering: ascending shard index, all held for the full reset.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  for (auto& shard : shards_) {
    for (auto& frame : shard->frames) {
      if (frame->page_id_ != kInvalidPage && frame->pin_count() > 0) {
        return Status::InvalidArgument("Clear() with pinned page " +
                                       std::to_string(frame->page_id_));
      }
    }
  }
  for (auto& shard : shards_) {
    PRIX_RETURN_NOT_OK(FlushShard(*shard));
    shard->table.clear();
    shard->lru.clear();
    size_t frames = shard->frames.size();
    shard->free_frames.clear();
    for (size_t i = 0; i < frames; ++i) {
      shard->frames[i]->Reset();
      shard->free_frames.push_back(frames - 1 - i);
      shard->lru_pos[i] = shard->lru.end();
    }
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  // Latch ordering: ascending shard index, as in Clear().
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  for (auto& shard : shards_) {
    shard->table.clear();
    shard->lru.clear();
    size_t frames = shard->frames.size();
    shard->free_frames.clear();
    for (size_t i = 0; i < frames; ++i) {
      shard->frames[i]->Reset();
      shard->free_frames.push_back(frames - 1 - i);
      shard->lru_pos[i] = shard->lru.end();
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (const auto& shard : shards_) {
    out.hits += shard->stats.hits.load(std::memory_order_relaxed);
    out.misses += shard->stats.misses.load(std::memory_order_relaxed);
    out.physical_reads +=
        shard->stats.physical_reads.load(std::memory_order_relaxed);
    out.physical_writes +=
        shard->stats.physical_writes.load(std::memory_order_relaxed);
    out.evictions += shard->stats.evictions.load(std::memory_order_relaxed);
    out.lock_waits += shard->stats.lock_waits.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    shard->stats.hits.store(0, std::memory_order_relaxed);
    shard->stats.misses.store(0, std::memory_order_relaxed);
    shard->stats.physical_reads.store(0, std::memory_order_relaxed);
    shard->stats.physical_writes.store(0, std::memory_order_relaxed);
    shard->stats.evictions.store(0, std::memory_order_relaxed);
    shard->stats.lock_waits.store(0, std::memory_order_relaxed);
  }
}

size_t BufferPool::pages_cached() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->table.size();
  }
  return total;
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return frame;
  }
  // LRU scan from the back (least recent) for an unpinned frame. A pin
  // count read under the shard latch cannot go 0 -> 1 concurrently (pinning
  // requires this latch), so an unpinned victim stays evictable.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    size_t frame = *it;
    if (shard.frames[frame]->pin_count() == 0) {
      PRIX_RETURN_NOT_OK(EvictFrame(shard, frame));
      return frame;
    }
  }
  return Status::ResourceExhausted("all buffer pool pages in shard pinned");
}

Status BufferPool::EvictFrame(Shard& shard, size_t frame) {
  Page* page = shard.frames[frame].get();
  PRIX_DCHECK(page->pin_count() == 0);
  if (page->dirty_) {
    // Write-back failure ordering matters: the victim is unregistered only
    // after its flush succeeds. On error it stays in table/lru, still
    // dirty, so no data is lost and a later fetch/flush can retry; the
    // error propagates to the FetchPage/NewPage caller.
    StampPageTrailer(page->data_);
    PRIX_RETURN_NOT_OK(disk_->WritePage(page->page_id_, page->data_));
    shard.stats.physical_writes.fetch_add(1, std::memory_order_relaxed);
  }
  shard.stats.evictions.fetch_add(1, std::memory_order_relaxed);
  shard.table.erase(page->page_id_);
  if (shard.lru_pos[frame] != shard.lru.end()) {
    shard.lru.erase(shard.lru_pos[frame]);
    shard.lru_pos[frame] = shard.lru.end();
  }
  page->Reset();
  return Status::OK();
}

void BufferPool::Touch(Shard& shard, size_t frame) {
  if (shard.lru_pos[frame] != shard.lru.end()) {
    shard.lru.erase(shard.lru_pos[frame]);
  }
  shard.lru.push_front(frame);
  shard.lru_pos[frame] = shard.lru.begin();
}

}  // namespace prix
