#include "storage/buffer_pool.h"

#include "common/macros.h"

namespace prix {

BufferPool::BufferPool(DiskManager* disk, size_t pool_pages) : disk_(disk) {
  PRIX_CHECK(pool_pages > 0);
  frames_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_pages - 1 - i);  // pop_back yields frame 0 first
  }
  lru_pos_.assign(pool_pages, lru_.end());
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors at teardown are not recoverable anyway.
  (void)FlushAll();
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++stats_.hits;
    size_t frame = it->second;
    Page* page = frames_[frame].get();
    ++page->pin_count_;
    Touch(frame);
    return page;
  }
  ++stats_.misses;
  PRIX_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  PRIX_RETURN_NOT_OK(disk_->ReadPage(id, page->data_));
  ++stats_.physical_reads;
  page->page_id_ = id;
  page->pin_count_ = 1;
  page->dirty_ = false;
  table_[id] = frame;
  Touch(frame);
  return page;
}

Result<Page*> BufferPool::NewPage() {
  PRIX_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  PRIX_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  std::memset(page->data_, 0, kPageSize);
  page->page_id_ = id;
  page->pin_count_ = 1;
  page->dirty_ = true;
  table_[id] = frame;
  Touch(frame);
  return page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  auto it = table_.find(id);
  PRIX_CHECK(it != table_.end());
  Page* page = frames_[it->second].get();
  PRIX_CHECK(page->pin_count_ > 0);
  --page->pin_count_;
  if (dirty) page->dirty_ = true;
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : table_) {
    Page* page = frames_[frame].get();
    if (page->dirty_) {
      PRIX_RETURN_NOT_OK(disk_->WritePage(id, page->data_));
      ++stats_.physical_writes;
      page->dirty_ = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  for (auto& frame : frames_) {
    if (frame->page_id_ != kInvalidPage && frame->pin_count_ > 0) {
      return Status::InvalidArgument("Clear() with pinned page " +
                                     std::to_string(frame->page_id_));
    }
  }
  PRIX_RETURN_NOT_OK(FlushAll());
  table_.clear();
  lru_.clear();
  size_t pool_pages = frames_.size();
  free_frames_.clear();
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_[i]->Reset();
    free_frames_.push_back(pool_pages - 1 - i);
    lru_pos_[i] = lru_.end();
  }
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // LRU scan from the back (least recent) for an unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t frame = *it;
    if (frames_[frame]->pin_count_ == 0) {
      PRIX_RETURN_NOT_OK(EvictFrame(frame));
      return frame;
    }
  }
  return Status::ResourceExhausted("all buffer pool pages are pinned");
}

Status BufferPool::EvictFrame(size_t frame) {
  Page* page = frames_[frame].get();
  PRIX_DCHECK(page->pin_count_ == 0);
  if (page->dirty_) {
    PRIX_RETURN_NOT_OK(disk_->WritePage(page->page_id_, page->data_));
    ++stats_.physical_writes;
  }
  ++stats_.evictions;
  table_.erase(page->page_id_);
  if (lru_pos_[frame] != lru_.end()) {
    lru_.erase(lru_pos_[frame]);
    lru_pos_[frame] = lru_.end();
  }
  page->Reset();
  return Status::OK();
}

void BufferPool::Touch(size_t frame) {
  if (lru_pos_[frame] != lru_.end()) {
    lru_.erase(lru_pos_[frame]);
  }
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
}

}  // namespace prix
