#ifndef PRIX_STORAGE_FAULT_INJECTOR_H_
#define PRIX_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace prix {

/// Deterministic storage fault injector, in the spirit of RocksDB's
/// FaultInjectionTestFS and SQLite's crash-test VFS. A DiskManager with an
/// injector installed consults it before every syscall attempt; the injector
/// answers with an Action (proceed, fail with an errno, transfer fewer bytes,
/// or crash). All decisions are driven by an explicit schedule plus a seeded
/// PRNG, so every failure a test provokes is reproducible from (schedule,
/// seed).
///
/// Two layers of realism:
///
/// 1. **Single-fault schedules** — "the nth read fails with EIO", "the next
///    write transfers only 100 bytes", "every sync fails". These exercise the
///    DiskManager's EINTR/short-transfer loops and its bounded RetryPolicy,
///    and the Status paths of everything above it.
///
/// 2. **Crash simulation** — `CrashAtWrite(k)` arms a crash on the k-th
///    write. The injector models the kernel page cache: it records a
///    pre-image of every page written since the last successful sync, and at
///    the crash point it (a) gives the triggering write a fate (completes,
///    torn at a byte offset, or dropped entirely), (b) rolls every un-synced
///    page back to its pre-image, a torn mix, or leaves it — seeded per page,
///    exactly the set of states a real power cut admits — and (c) refuses all
///    subsequent I/O with ENODEV until the schedule is Reset. Writes that
///    were followed by a successful Sync() are never touched: fsynced data is
///    durable, un-fsynced data is fair game. This is what makes a commit
///    protocol's flush -> sync -> header -> sync ordering testable: omit a
///    sync and the crash matrix will produce a catalog naming rolled-back
///    pages.
///
/// Thread safety: all entry points lock an internal mutex; an injector may be
/// installed on a DiskManager shared by concurrent readers.
class FaultInjector {
 public:
  /// The DiskManager call sites that can be intercepted.
  enum class Op { kRead = 0, kWrite = 1, kExtend = 2, kSync = 3 };
  static constexpr int kNumOps = 4;

  /// What the intercepted syscall attempt should do.
  struct Action {
    enum class Kind {
      kProceed,   ///< perform the real syscall
      kError,     ///< fail with `err` without touching the file
      kShortIo,   ///< transfer only `bytes` (short read / torn write start)
      kCrash,     ///< crash now; DiskManager calls ExecuteCrash()
    };
    Kind kind = Kind::kProceed;
    int err = 0;
    size_t bytes = 0;
  };

  /// Fate of the crash-triggering write and of each un-synced page.
  enum class WriteFate {
    kSeeded,    ///< pick per page from the seed (the default)
    kComplete,  ///< the new bytes all reach the platter
    kTorn,      ///< a prefix of the new bytes lands, the old suffix remains
    kDropped,   ///< none of the new bytes land (pre-image restored)
  };

  explicit FaultInjector(uint64_t seed = 0);

  // ---- schedule construction (test-facing) ----------------------------

  /// Fails the `nth` (1-based, counted from now) op of type `op` with
  /// `err`, `times` consecutive attempts long. times < 0 means permanent.
  void FailNth(Op op, uint64_t nth, int err, int times = 1);

  /// Every attempt of `op` fails with `err` until Reset.
  void FailAlways(Op op, int err) { FailNth(op, 1, err, -1); }

  /// The `nth` read attempt transfers only `bytes` (0 = EOF-shaped).
  void ShortReadNth(uint64_t nth, size_t bytes);

  /// The `nth` write attempt transfers only `bytes` of the page.
  void TornWriteNth(uint64_t nth, size_t bytes);

  /// The `nth` (1-based, counted from now) successful read comes back with
  /// `bits` seeded random bit flips — LYING I/O: pread reports success but
  /// the buffer differs from what was written. One-shot.
  void FlipBitsInRead(uint64_t nth, int bits = 1);

  /// Every successful read of the page starting at byte `offset` comes back
  /// overwritten with seeded random bytes — persistent media rot at one
  /// location. Lasts until Reset.
  void GarblePageAt(uint64_t offset);

  /// Arms a crash on the k-th write (1-based, counted from now). `fate`
  /// controls the triggering write; un-synced earlier writes always get
  /// seeded fates. `torn_bytes` pins the tear point for kTorn (otherwise
  /// seeded).
  void CrashAtWrite(uint64_t k, WriteFate fate = WriteFate::kSeeded,
                    size_t torn_bytes = 0);

  /// Arms a crash on the k-th sync instead (the commit-point crash).
  void CrashAtSync(uint64_t k);

  /// Clears the schedule, the crashed flag, and the pre-image log (but not
  /// the op counters, which tests read to build schedules).
  void Reset();

  // ---- observability ---------------------------------------------------

  bool crashed() const;
  uint64_t op_count(Op op) const;
  /// Total injected faults (errors + short transfers + crashes) so far.
  uint64_t faults_injected() const;

  // ---- DiskManager-facing hooks ---------------------------------------
  // Nothing below is meant for tests to call directly.

  /// Consults the schedule for one syscall attempt. `attempt` is 0-based
  /// within the DiskManager's retry loop; only attempt 0 advances the op
  /// counter, so a retried op does not consume later scheduled faults.
  Action OnAttempt(Op op, uint64_t offset, int attempt);

  /// Applies any scheduled read corruption (bit flips, garbled pages) to a
  /// buffer a successful read just filled. DiskManager calls this after the
  /// full-transfer loop completes; the injector's own pre-image reads use
  /// raw pread and are never mutated. Counts as an injected fault when it
  /// changes the buffer.
  void MutateReadBuffer(uint64_t offset, char* buf, size_t len);

  /// Records the pre-image of a page about to be overwritten (crash
  /// tracking only; DiskManager calls this before the first write attempt
  /// while a crash is armed). `len` may be short if the page was never
  /// fully written before.
  void RecordPreImage(uint64_t offset, const char* data, size_t len,
                      size_t page_size);

  /// A successful fdatasync: everything written so far is durable. Clears
  /// the pre-image log and advances the synced file size.
  void OnSyncSucceeded(uint64_t file_size);

  /// A successful file extension grew the (un-synced) file to `new_size`.
  void OnFileGrown(uint64_t new_size);

  /// Called on Open/OpenExisting so crash surgery can reach the file, and
  /// so the synced size starts at the on-disk size.
  void AttachFile(int fd, uint64_t file_size);
  void DetachFile();

  /// Performs the crash: applies the triggering write's fate, rolls back
  /// un-synced pages per seeded fate, picks a crash file length between the
  /// synced and current sizes (possibly mid-page), and marks the injector
  /// crashed. `offset`/`buf`/`len` describe the write (or sync: len == 0)
  /// that tripped the crash. Returns the error the caller must surface.
  Status ExecuteCrash(uint64_t offset, const char* buf, size_t len);

  /// True while a crash is armed — DiskManager then records pre-images.
  bool tracking() const;

 private:
  struct Rule {
    Op op;
    uint64_t nth;       // 1-based op index at which the rule fires
    int times;          // consecutive attempts to fail; < 0 == permanent
    Action::Kind kind;
    int err = 0;
    size_t bytes = 0;
  };

  struct PreImage {
    std::vector<char> data;  // old content, zero-padded to page_size
    size_t valid = 0;        // bytes that existed before (rest was EOF)
  };

  /// Read-corruption schedule entry (applied post-transfer, not per
  /// syscall attempt like Rule).
  struct Mutation {
    enum class Kind { kFlipBits, kGarblePage };
    Kind kind;
    uint64_t nth = 0;     // kFlipBits: absolute read index that fires it
    uint64_t offset = 0;  // kGarblePage: byte offset of the doomed page
    int bits = 1;
    bool fired = false;   // kFlipBits is one-shot
  };

  WriteFate SeedFate(uint64_t salt);
  Status RestorePage(uint64_t offset, const PreImage& pre, WriteFate fate,
                     size_t torn_bytes, uint64_t crash_len);

  mutable std::mutex mu_;
  Random rng_;
  std::vector<Rule> rules_;
  std::vector<Mutation> mutations_;
  uint64_t counts_[kNumOps] = {0, 0, 0, 0};
  uint64_t faults_ = 0;

  // Crash state.
  bool crash_armed_ = false;
  Op crash_op_ = Op::kWrite;
  uint64_t crash_at_ = 0;       // absolute op index that trips the crash
  WriteFate crash_fate_ = WriteFate::kSeeded;
  size_t crash_torn_bytes_ = 0;
  bool crashed_ = false;

  int fd_ = -1;
  uint64_t synced_size_ = 0;    // file size at the last successful sync
  uint64_t current_size_ = 0;   // file size including un-synced extends
  std::map<uint64_t, PreImage> preimages_;  // offset -> pre-image
};

}  // namespace prix

#endif  // PRIX_STORAGE_FAULT_INJECTOR_H_
