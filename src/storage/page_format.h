#ifndef PRIX_STORAGE_PAGE_FORMAT_H_
#define PRIX_STORAGE_PAGE_FORMAT_H_

#include "common/status.h"
#include "storage/page.h"

namespace prix {

/// Helpers for the v2 page trailer (see storage/page.h). All take a raw
/// kPageSize buffer so they work both on pinned BufferPool frames and on
/// scratch buffers used by the offline verifier.

/// Records `type` in the trailer's page-type byte. Content layers call this
/// when they format a fresh page; the CRC is stamped later, at flush.
void SetPageType(char* page, PageType type);
PageType GetPageType(const char* page);

/// Computes the trailer CRC (payload + type byte) and writes it, along with
/// zeroed reserved bytes. Called by the BufferPool on every flush and by
/// anything that writes a page through DiskManager directly.
void StampPageTrailer(char* page);

/// True when all kPageSize bytes are zero — the state of an allocated but
/// never-written page, which carries no trailer yet and must verify clean.
bool IsZeroPage(const char* page);

/// Verifies the trailer CRC of page `id`. OK for a matching CRC or an
/// all-zero page; otherwise
/// `Corruption("page 7: checksum mismatch (stored deadbeef, computed ...)")`.
Status VerifyPageTrailer(PageId id, const char* page);

}  // namespace prix

#endif  // PRIX_STORAGE_PAGE_FORMAT_H_
