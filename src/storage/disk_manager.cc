#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prix {

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::Open(const std::string& path) {
  if (fd_ >= 0) return Status::InvalidArgument("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  path_ = path;
  num_pages_ = 0;
  return Status::OK();
}

Status DiskManager::OpenExisting(const std::string& path) {
  if (fd_ >= 0) return Status::InvalidArgument("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR);
  if (fd_ < 0) {
    // A missing file is the common operator error ("did you build the
    // database?"); keep it distinguishable from I/O and corruption cases.
    if (errno == ENOENT) {
      return Status::NotFound("no database file at " + path);
    }
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    Status st = Status::IoError("lseek(" + path +
                                "): " + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::Corruption(
        path + " is not page-aligned: " + std::to_string(size) +
        " bytes is " + std::to_string(size % static_cast<off_t>(kPageSize)) +
        " bytes past a " + std::to_string(kPageSize) +
        "-byte page boundary (short or torn final write?)");
  }
  num_pages_ = static_cast<uint32_t>(size / static_cast<off_t>(kPageSize));
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    return Status::IoError("close: " + std::string(std::strerror(errno)));
  }
  fd_ = -1;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  std::lock_guard<std::mutex> lock(alloc_mu_);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  // Extend the file eagerly so reads of never-written pages see zeros.
  // The counter is published only after the extension succeeds, so a
  // concurrent ReadPage never sees an allocated-but-unextended page.
  char zeros[kPageSize] = {};
  off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  if (::pwrite(fd_, zeros, kPageSize, offset) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite(extend): " +
                           std::string(std::strerror(errno)));
  }
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  ssize_t n = ::pread(fd_, buf, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pread page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  ++read_count_;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  ssize_t n = ::pwrite(fd_, buf, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("pwrite page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  ++write_count_;
  return Status::OK();
}

}  // namespace prix
