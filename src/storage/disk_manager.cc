#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/macros.h"
#include "common/metrics.h"

namespace prix {

namespace {

const char* OpName(FaultInjector::Op op) {
  switch (op) {
    case FaultInjector::Op::kRead: return "pread";
    case FaultInjector::Op::kWrite: return "pwrite";
    case FaultInjector::Op::kExtend: return "pwrite(extend)";
    case FaultInjector::Op::kSync: return "fdatasync";
  }
  return "io";
}

/// Transient failures worth a bounded retry. ENODEV (the injector's
/// post-crash answer, and a genuinely departed device) is deliberately
/// absent: retrying a gone device only burns the backoff budget.
bool IsTransientErrno(int err) { return err == EIO || err == EAGAIN; }

}  // namespace

DiskManager::~DiskManager() {
  if (injector_ != nullptr) injector_->DetachFile();
  if (fd_ >= 0) ::close(fd_);
}

void DiskManager::set_fault_injector(FaultInjector* injector) {
  if (injector_ != nullptr && injector == nullptr) injector_->DetachFile();
  injector_ = injector;
  if (injector_ != nullptr && fd_ >= 0) {
    injector_->AttachFile(fd_,
                          static_cast<uint64_t>(num_pages()) * kPageSize);
  }
}

Status DiskManager::Open(const std::string& path) {
  if (fd_ >= 0) return Status::InvalidArgument("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  path_ = path;
  num_pages_ = 0;
  trailing_bytes_recovered_ = 0;
  if (injector_ != nullptr) injector_->AttachFile(fd_, 0);
  return Status::OK();
}

Status DiskManager::OpenExisting(const std::string& path,
                                 const OpenOptions& options) {
  if (fd_ >= 0) return Status::InvalidArgument("disk manager already open");
  fd_ = ::open(path.c_str(), O_RDWR);
  if (fd_ < 0) {
    // A missing file is the common operator error ("did you build the
    // database?"); keep it distinguishable from I/O and corruption cases.
    if (errno == ENOENT) {
      return Status::NotFound("no database file at " + path);
    }
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    Status st = Status::IoError("lseek(" + path +
                                "): " + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  trailing_bytes_recovered_ = 0;
  off_t tail = size % static_cast<off_t>(kPageSize);
  if (tail != 0) {
    if (!options.recover_trailing_partial_page) {
      ::close(fd_);
      fd_ = -1;
      return Status::Corruption(
          path + " is not page-aligned: " + std::to_string(size) +
          " bytes is " + std::to_string(tail) + " bytes past a " +
          std::to_string(kPageSize) +
          "-byte page boundary (short or torn final write?)");
    }
    // A torn file extension from a crash: the ragged tail is beyond every
    // page a page-aligned commit protocol can reference, so drop it.
    if (::ftruncate(fd_, size - tail) != 0) {
      Status st = Status::IoError("ftruncate(" + path + ") recovering a " +
                                  std::to_string(tail) +
                                  "-byte torn tail: " + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return st;
    }
    trailing_bytes_recovered_ = static_cast<uint64_t>(tail);
    size -= tail;
  }
  if (size == 0) {
    // A zero-page file cannot hold even a superblock. This is what a
    // truncated-at-birth crash or an accidental `touch` leaves behind;
    // name what a real database would start with so the operator knows
    // this is not a format mismatch.
    ::close(fd_);
    fd_ = -1;
    return Status::Corruption(
        path + " is empty (0 pages): expected a superblock page with magic "
               "\"PRDB\"");
  }
  num_pages_ = static_cast<uint32_t>(size / static_cast<off_t>(kPageSize));
  if (injector_ != nullptr) {
    injector_->AttachFile(fd_, static_cast<uint64_t>(size));
  }
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ < 0) return Status::OK();
  if (injector_ != nullptr) injector_->DetachFile();
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IoError("close: " + std::string(std::strerror(errno)));
  }
  fd_ = -1;
  return Status::OK();
}

Status DiskManager::TransferOnce(FaultInjector::Op op, PageId id,
                                 char* read_buf, const char* write_buf,
                                 int attempt, bool* retryable) {
  *retryable = false;
  off_t base = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  size_t done = 0;
  int icall = attempt;
  while (done < kPageSize) {
    FaultInjector::Action act;
    if (injector_ != nullptr) {
      act = injector_->OnAttempt(op, static_cast<uint64_t>(base) + done,
                                 icall);
    }
    ++icall;
    if (act.kind == FaultInjector::Action::Kind::kCrash) {
      return injector_->ExecuteCrash(static_cast<uint64_t>(base), write_buf,
                                     write_buf != nullptr ? kPageSize : 0);
    }
    ssize_t n;
    if (act.kind == FaultInjector::Action::Kind::kError) {
      errno = act.err;
      n = -1;
    } else {
      size_t want = kPageSize - done;
      if (act.kind == FaultInjector::Action::Kind::kShortIo) {
        want = std::min(act.bytes, want);
      }
      if (want == 0) {
        n = 0;  // injected EOF-shaped transfer
      } else if (op == FaultInjector::Op::kRead) {
        n = ::pread(fd_, read_buf + done, want, base + done);
      } else {
        n = ::pwrite(fd_, write_buf + done, want, base + done);
      }
    }
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted: resume immediately
      *retryable = IsTransientErrno(errno);
      return Status::IoError(std::string(OpName(op)) + " page " +
                             std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      // Zero-byte progress: EOF on read, a pathological pwrite otherwise.
      // errno is meaningless here — report the transfer arithmetic, not a
      // stale strerror.
      const char* what = op == FaultInjector::Op::kRead ? "short read"
                                                        : "short write";
      return Status::IoError(std::string(OpName(op)) + " page " +
                             std::to_string(id) + ": " + what + ": got " +
                             std::to_string(done) + " of " +
                             std::to_string(kPageSize) + " bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DiskManager::TransferPage(FaultInjector::Op op, PageId id,
                                 char* read_buf, const char* write_buf) {
  Status st;
  for (int attempt = 0; attempt < std::max(retry_.max_attempts, 1);
       ++attempt) {
    if (attempt > 0 && retry_.backoff_us > 0) {
      ::usleep(static_cast<useconds_t>(retry_.backoff_us) *
               static_cast<useconds_t>(attempt));
    }
    bool retryable = false;
    st = TransferOnce(op, id, read_buf, write_buf, attempt, &retryable);
    if (st.ok() || !retryable) return st;
  }
  return Status::IoError(std::string(st.message()) + " (gave up after " +
                         std::to_string(std::max(retry_.max_attempts, 1)) +
                         " attempts)");
}

Result<PageId> DiskManager::AllocatePage() {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  std::lock_guard<std::mutex> lock(alloc_mu_);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  // Extend the file eagerly so reads of never-written pages see zeros.
  // The counter is published only after the extension succeeds, so a
  // concurrent ReadPage never sees an allocated-but-unextended page.
  char zeros[kPageSize] = {};
  Status st = TransferPage(FaultInjector::Op::kExtend, id, nullptr, zeros);
  if (!st.ok()) {
    // A failed extension may have left a ragged tail; drop it so the file
    // stays page-aligned for the next attempt or a clean reopen. A crash
    // keeps its deliberately torn shape.
    if (injector_ == nullptr || !injector_->crashed()) {
      (void)::ftruncate(fd_,
                        static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
    }
    return st;
  }
  num_pages_.store(id + 1, std::memory_order_release);
  if (injector_ != nullptr) {
    injector_->OnFileGrown(static_cast<uint64_t>(id + 1) * kPageSize);
  }
  return id;
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  PRIX_RETURN_NOT_OK(TransferPage(FaultInjector::Op::kRead, id, buf, nullptr));
  if (injector_ != nullptr) {
    // Lying-I/O injection point: the syscall "succeeded", now the injector
    // may corrupt what it returned (bit flips, garbled pages).
    injector_->MutateReadBuffer(
        static_cast<uint64_t>(id) * static_cast<uint64_t>(kPageSize), buf,
        kPageSize);
  }
  ++read_count_;
  ChargePhysicalRead();
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (injector_ != nullptr && injector_->tracking()) {
    // Crash simulation is armed: capture this page's durable pre-image so
    // the injector can roll an un-synced write back at the crash point.
    char old[kPageSize];
    off_t base = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
    size_t got = 0;
    while (got < kPageSize) {
      ssize_t n = ::pread(fd_, old + got, kPageSize - got, base + got);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break;
      got += static_cast<size_t>(n);
    }
    injector_->RecordPreImage(static_cast<uint64_t>(base), old, got,
                              kPageSize);
  }
  PRIX_RETURN_NOT_OK(TransferPage(FaultInjector::Op::kWrite, id, nullptr,
                                  buf));
  ++write_count_;
  ChargePhysicalWrite();
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("disk manager not open");
  Status st;
  int icall = 0;
  for (int attempt = 0; attempt < std::max(retry_.max_attempts, 1);
       ++attempt) {
    if (attempt > 0 && retry_.backoff_us > 0) {
      ::usleep(static_cast<useconds_t>(retry_.backoff_us) *
               static_cast<useconds_t>(attempt));
    }
    while (true) {
      FaultInjector::Action act;
      if (injector_ != nullptr) {
        act = injector_->OnAttempt(FaultInjector::Op::kSync, 0, icall);
      }
      ++icall;
      if (act.kind == FaultInjector::Action::Kind::kCrash) {
        return injector_->ExecuteCrash(0, nullptr, 0);
      }
      int rc;
      if (act.kind == FaultInjector::Action::Kind::kError) {
        errno = act.err;
        rc = -1;
      } else {
        rc = ::fdatasync(fd_);
      }
      if (rc == 0) {
        ++sync_count_;
        if (injector_ != nullptr) {
          injector_->OnSyncSucceeded(static_cast<uint64_t>(num_pages()) *
                                     kPageSize);
        }
        return Status::OK();
      }
      if (errno == EINTR) continue;  // interrupted: resume immediately
      st = Status::IoError("fdatasync(" + path_ +
                           "): " + std::strerror(errno));
      if (!IsTransientErrno(errno)) return st;
      break;  // transient: consume one bounded retry attempt
    }
  }
  return Status::IoError(std::string(st.message()) + " (gave up after " +
                         std::to_string(std::max(retry_.max_attempts, 1)) +
                         " attempts)");
}

}  // namespace prix
