#ifndef PRIX_STORAGE_OPLOG_H_
#define PRIX_STORAGE_OPLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/fault_injector.h"

namespace prix {

/// What one committed catalog generation did to the database, as far as a
/// replica needs to know (DESIGN.md §5l). The payload encoding depends on
/// the kind and is owned by db/op_codec.h; the oplog treats it as opaque
/// bytes.
enum class OpKind : uint8_t {
  /// A commit that changed no replayable state (Close(), Create(), a
  /// free-list-only commit). Replayed as an empty commit so the follower's
  /// cursor stays aligned with the manifest chain.
  kNoop = 0,
  kInsert = 1,  ///< InsertDocument: index name + assigned DocId + document
  kUpdate = 2,  ///< UpdateDocument: index name + old id + new id + document
  kDelete = 3,  ///< DeleteDocument: index name + DocId
  /// PutIndex of a kBlob entry (e.g. the CLI's tag dictionary): entry name
  /// + blob bytes. Replayable — the follower writes its own blob chain.
  kPutBlob = 4,
  /// PutIndex of an engine index (a build/rebuild publishing page roots the
  /// record cannot carry). NOT replayable: a follower hitting a barrier
  /// must resync from a full snapshot.
  kBarrier = 5,
  kDrop = 6,  ///< DropIndex: entry name
};

const char* OpKindName(OpKind kind);

/// One oplog record: exactly one per committed generation.
struct OpRecord {
  uint64_t gen = 0;
  OpKind kind = OpKind::kNoop;
  /// Chained CRC32C through this record: manifest(g) =
  /// ChainManifest(manifest(g-1), gen, kind, payload). Two nodes that hold
  /// the same manifest at the same generation hold byte-identical op
  /// histories, which is the replication divergence check.
  uint32_t manifest = 0;
  std::vector<char> payload;
};

/// Append-only, checksummed log of committed operations, one sidecar file
/// per database (`<db>.oplog`). Database::CommitLocked appends the record
/// for generation g and fsyncs it BEFORE the catalog header flips to g, so
/// after any crash the log covers every committed generation (a record for
/// an uncommitted generation may survive; Open trims it). Replication reads
/// records back by generation to stream them to followers.
///
/// On-disk layout:
///   header  .=. u32 magic "PLOG" | u32 version | u64 base_gen |
///               u32 base_manifest | u32 crc32c(first 20 bytes)
///   record  .=. u32 body_len | u32 crc32c(body) | body
///   body    .=. u64 gen | u8 kind | u32 manifest | payload
///
/// `base_gen` is the generation the chain starts after: record generations
/// are contiguous from base_gen+1. A log created for a database that
/// already has committed generations (a pre-oplog file, or a follower that
/// just installed a snapshot) starts with base_gen = that generation and an
/// empty chain — history before the base is only reachable by snapshot.
///
/// Open() is the recovery path: it validates the header, walks the records
/// verifying length, CRC, generation contiguity, and manifest chaining, and
/// truncates at the first invalid byte (a torn tail from a crash mid-append
/// is expected, not an error). If the surviving chain does not reach the
/// database's committed generation (a gap: the file vanished or was
/// foreign), the log is rebased — truncated to empty at the committed
/// generation — which a follower detects as a manifest mismatch and repairs
/// by snapshot resync.
///
/// Thread safety: all methods serialize on an internal mutex. Append is
/// called under the Database catalog lock; readers (the replication sender)
/// pread concurrently-appended regions safely because records are never
/// modified in place.
class OpLog {
 public:
  /// Payload cap per record. A kReplRecord frame carries the payload plus
  /// ~30 bytes of framing and must fit the wire's 1 MiB frame-body cap.
  static constexpr size_t kMaxPayload = 768u << 10;

  OpLog() = default;
  ~OpLog();
  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  static std::string PathFor(const std::string& db_path) {
    return db_path + ".oplog";
  }

  /// Manifest chaining rule (shared with the replication client, which
  /// recomputes it per applied record).
  static uint32_t ChainManifest(uint32_t prev, uint64_t gen, OpKind kind,
                                const char* payload, size_t len);

  /// Opens (creating if absent) the log at `path` and recovers it against
  /// the database's recovered `committed_gen` as described above. With
  /// `truncate` (Database::Create) any existing file is discarded first.
  Status Open(const std::string& path, uint64_t committed_gen, bool truncate);

  /// Fsyncs and closes; idempotent.
  Status Close();

  /// Drops the fd without syncing (the crash-simulation teardown).
  void Abandon();

  /// Appends and fsyncs the record for generation `gen` (must be
  /// last_gen()+1). The record is durable when this returns OK.
  Status Append(uint64_t gen, OpKind kind, const std::vector<char>& payload);

  /// Drops records with generation > `gen` (the commit-failure rollback:
  /// the header never flipped, so the appended record must not survive a
  /// reopen as committed history).
  Status TruncateTo(uint64_t gen);

  /// Test-only: installed before Open so fault schedules and crash points
  /// cover every oplog write and sync. Must be a DIFFERENT injector from
  /// the database file's (each instance tracks one fd). Must outlive the
  /// OpLog.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  uint64_t base_gen() const;
  uint32_t base_manifest() const;
  uint64_t last_gen() const;       ///< == base_gen() when the chain is empty
  uint32_t last_manifest() const;  ///< == base_manifest() when empty
  size_t record_count() const;

  /// Manifest at `gen`, which must lie in [base_gen, last_gen]. This is how
  /// the leader validates a follower's hello cursor: OutOfRange means the
  /// follower predates the chain (or leads it) and needs a snapshot.
  Result<uint32_t> ManifestAt(uint64_t gen) const;

  /// Full record for `gen` in (base_gen, last_gen] — payload read back from
  /// disk and CRC-verified.
  Result<OpRecord> RecordAt(uint64_t gen) const;

 private:
  struct Slot {
    uint64_t offset = 0;    ///< of the record's length prefix
    uint32_t body_len = 0;  ///< bytes after the crc field
    uint32_t manifest = 0;
    OpKind kind = OpKind::kNoop;
  };

  Status WriteBytesLocked(uint64_t offset, const char* data, size_t len);
  Status SyncLocked();
  Status RebaseLocked(uint64_t committed_gen);
  Status ScanLocked(uint64_t file_size);
  Result<OpRecord> ReadRecordLocked(size_t idx) const;

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  uint64_t base_gen_ = 0;
  uint32_t base_manifest_ = 0;
  std::vector<Slot> slots_;  ///< slots_[i] holds generation base_gen_+1+i
  uint64_t file_size_ = 0;
  FaultInjector* injector_ = nullptr;
};

}  // namespace prix

#endif  // PRIX_STORAGE_OPLOG_H_
