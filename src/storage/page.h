#ifndef PRIX_STORAGE_PAGE_H_
#define PRIX_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <cstring>

namespace prix {

/// Identifier of an 8 KB page within a database file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;

/// Page size used throughout, matching the paper's experimental setup
/// (Sec. 6.1: "The page size of 8K was used").
inline constexpr size_t kPageSize = 8192;

/// An in-memory frame holding one disk page. Access to `data()` is valid
/// while the page is pinned in the buffer pool.
///
/// Concurrency: the pin count is atomic so it can be read without the
/// owning shard's latch (see BufferPool); `page_id_` and `dirty_` are
/// only touched under that latch. Page payloads carry no internal
/// synchronization — concurrent readers are safe, but any writer must be
/// the only thread touching the page (the single-writer rule, DESIGN.md).
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }
  bool is_dirty() const { return dirty_; }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPage;
    pin_count_.store(0, std::memory_order_release);
    dirty_ = false;
  }

 private:
  friend class BufferPool;
  char data_[kPageSize];
  PageId page_id_ = kInvalidPage;
  std::atomic<int> pin_count_{0};
  bool dirty_ = false;
};

}  // namespace prix

#endif  // PRIX_STORAGE_PAGE_H_
