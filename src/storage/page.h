#ifndef PRIX_STORAGE_PAGE_H_
#define PRIX_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <cstring>

namespace prix {

/// Identifier of an 8 KB page within a database file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;

/// Page size used throughout, matching the paper's experimental setup
/// (Sec. 6.1: "The page size of 8K was used").
inline constexpr size_t kPageSize = 8192;

/// Page format v2 (DESIGN.md §5g): the last kPageTrailerSize bytes of every
/// page belong to the storage layer —
///
///   bytes [kPageUsable + 0 .. +4) : CRC32C over bytes [0, kPageUsable)
///                                   extended with the page-type byte
///   byte  [kPageUsable + 4]       : PageType of the page's content
///   bytes [kPageUsable + 5 .. +8) : reserved, zero
///
/// The BufferPool stamps the CRC on every flush and verifies it on every
/// physical read, so media bit rot and torn sectors surface as
/// Status::Corruption instead of silently wrong query results. Content
/// layers (B+-tree, blob chains, record/stream stores) may only use bytes
/// [0, kPageUsable) and should SetPageType when they format a fresh page.
/// An all-zero page (allocated, never written) is considered valid.
inline constexpr size_t kPageTrailerSize = 8;
inline constexpr size_t kPageUsable = kPageSize - kPageTrailerSize;

/// What a page holds, recorded in its trailer. Used by `prix verify` to
/// drive structural checks and by readers to reject a catalog that points
/// at the wrong kind of page. kUnknown (0) is what an unstamped or
/// freshly-zeroed page reports.
enum class PageType : uint8_t {
  kUnknown = 0,
  kCatalogHeader = 1,  ///< database superblock / catalog header slot
  kBtreeMeta = 2,      ///< B+-tree meta page (btree.h Meta)
  kBtreeNode = 3,      ///< B+-tree leaf or internal node
  kBlob = 4,           ///< WriteBlob chain page (index catalogs)
  kHeapData = 5,       ///< RecordStore data page
  kStream = 6,         ///< StreamStore position page
  kXbNode = 7,         ///< XB-tree internal page
};

/// Human-readable PageType name ("btree-node", ...), for reports.
const char* PageTypeName(PageType type);

/// An in-memory frame holding one disk page. Access to `data()` is valid
/// while the page is pinned in the buffer pool.
///
/// Concurrency: the pin count is atomic so it can be read without the
/// owning shard's latch (see BufferPool); `page_id_` and `dirty_` are
/// only touched under that latch. Page payloads carry no internal
/// synchronization — concurrent readers are safe, but any writer must be
/// the only thread touching the page (the single-writer rule, DESIGN.md).
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }
  bool is_dirty() const { return dirty_; }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPage;
    pin_count_.store(0, std::memory_order_release);
    dirty_ = false;
  }

 private:
  friend class BufferPool;
  char data_[kPageSize];
  PageId page_id_ = kInvalidPage;
  std::atomic<int> pin_count_{0};
  bool dirty_ = false;
};

}  // namespace prix

#endif  // PRIX_STORAGE_PAGE_H_
