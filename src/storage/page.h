#ifndef PRIX_STORAGE_PAGE_H_
#define PRIX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace prix {

/// Identifier of an 8 KB page within a database file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;

/// Page size used throughout, matching the paper's experimental setup
/// (Sec. 6.1: "The page size of 8K was used").
inline constexpr size_t kPageSize = 8192;

/// An in-memory frame holding one disk page. Access to `data()` is valid
/// while the page is pinned in the buffer pool.
class Page {
 public:
  Page() { Reset(); }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return dirty_; }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPage;
    pin_count_ = 0;
    dirty_ = false;
  }

 private:
  friend class BufferPool;
  char data_[kPageSize];
  PageId page_id_ = kInvalidPage;
  int pin_count_ = 0;
  bool dirty_ = false;
};

}  // namespace prix

#endif  // PRIX_STORAGE_PAGE_H_
