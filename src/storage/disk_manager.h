#ifndef PRIX_STORAGE_DISK_MANAGER_H_
#define PRIX_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace prix {

/// Raw page I/O over one database file. Pages are allocated append-only.
/// Counts physical reads/writes; the benchmarks report the read counter as
/// the paper's "Disk IO (pages)" column.
///
/// Thread safety: ReadPage/WritePage use pread/pwrite on a shared fd and may
/// run concurrently; AllocatePage serializes under an internal mutex so the
/// append-only page counter and the eager file extension stay consistent.
/// Open/OpenExisting/Close must not race with I/O.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates (truncating if present) the database file at `path`.
  Status Open(const std::string& path);

  /// Opens an existing database file; page count is taken from its size.
  Status OpenExisting(const std::string& path);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Allocates a fresh page at the end of the file.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const char* buf);

  uint32_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  uint64_t read_count() const {
    return read_count_.load(std::memory_order_relaxed);
  }
  uint64_t write_count() const {
    return write_count_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    read_count_.store(0, std::memory_order_relaxed);
    write_count_.store(0, std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::string path_;
  std::mutex alloc_mu_;
  std::atomic<uint32_t> num_pages_{0};
  std::atomic<uint64_t> read_count_{0};
  std::atomic<uint64_t> write_count_{0};
};

}  // namespace prix

#endif  // PRIX_STORAGE_DISK_MANAGER_H_
