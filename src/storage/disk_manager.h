#ifndef PRIX_STORAGE_DISK_MANAGER_H_
#define PRIX_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace prix {

/// Bounded retry for transient I/O errors (EIO/EAGAIN — the class a flaky
/// device or an injected transient fault produces). EINTR is not governed
/// here: interrupted syscalls are always resumed immediately and do not
/// consume attempts.
struct RetryPolicy {
  int max_attempts = 4;  ///< total attempts per page operation (>= 1)
  int backoff_us = 100;  ///< sleep between attempts, multiplied by attempt #
};

/// Raw page I/O over one database file. Pages are allocated append-only.
/// Counts physical reads/writes; the benchmarks report the read counter as
/// the paper's "Disk IO (pages)" column.
///
/// Failure model (DESIGN.md §5e): every operation moves exactly kPageSize
/// bytes or returns a non-OK Status. Short transfers are resumed in a loop,
/// EINTR is retried unconditionally, transient errors (EIO/EAGAIN) are
/// retried under the RetryPolicy, and a short count with errno == 0 is
/// reported as what it is ("short read: got N of 8192 bytes") rather than a
/// stale strerror. Durability is explicit: nothing is guaranteed on the
/// platter until Sync() returns OK.
///
/// A FaultInjector may be installed (tests only); it then intercepts every
/// syscall attempt. With no injector the hot path pays one null check.
///
/// Thread safety: ReadPage/WritePage use pread/pwrite on a shared fd and may
/// run concurrently; AllocatePage serializes under an internal mutex so the
/// append-only page counter and the eager file extension stay consistent.
/// Open/OpenExisting/Close/set_fault_injector must not race with I/O.
class DiskManager {
 public:
  /// Crash-recovery knobs for OpenExisting.
  struct OpenOptions {
    /// A real crash can leave a ragged, non-page-aligned tail (a torn file
    /// extension). When set, the tail is truncated back to the last full
    /// page instead of failing the open; callers whose commit protocol
    /// guarantees committed data is page-aligned (Database) enable this.
    bool recover_trailing_partial_page = false;
  };

  DiskManager() = default;
  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates (truncating if present) the database file at `path`.
  Status Open(const std::string& path);

  /// Opens an existing database file; page count is taken from its size.
  Status OpenExisting(const std::string& path, const OpenOptions& options);
  Status OpenExisting(const std::string& path) {
    return OpenExisting(path, OpenOptions{});
  }
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Allocates a fresh page at the end of the file.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const char* buf);

  /// Makes every completed write durable (fdatasync). Until this returns
  /// OK, a crash may lose or tear any write since the previous Sync.
  Status Sync();

  /// Installs (or removes, with nullptr) a fault injector. Test-only; the
  /// injector must outlive its installation.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  uint32_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  uint64_t read_count() const {
    return read_count_.load(std::memory_order_relaxed);
  }
  uint64_t write_count() const {
    return write_count_.load(std::memory_order_relaxed);
  }
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  /// Bytes discarded by the last OpenExisting trailing-partial-page
  /// recovery (0 when the file was clean).
  uint64_t trailing_bytes_recovered() const {
    return trailing_bytes_recovered_;
  }
  void ResetCounters() {
    read_count_.store(0, std::memory_order_relaxed);
    write_count_.store(0, std::memory_order_relaxed);
    sync_count_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One full-transfer pass over a page (resumes short transfers, retries
  /// EINTR). `attempt` seeds the injector's attempt numbering so outer
  /// retries do not re-consume scheduled one-shot faults. Sets *retryable
  /// when the failure is transient under the RetryPolicy.
  Status TransferOnce(FaultInjector::Op op, PageId id, char* read_buf,
                      const char* write_buf, int attempt, bool* retryable);

  /// Retry wrapper around TransferOnce.
  Status TransferPage(FaultInjector::Op op, PageId id, char* read_buf,
                      const char* write_buf);

  int fd_ = -1;
  std::string path_;
  std::mutex alloc_mu_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  uint64_t trailing_bytes_recovered_ = 0;
  std::atomic<uint32_t> num_pages_{0};
  std::atomic<uint64_t> read_count_{0};
  std::atomic<uint64_t> write_count_{0};
  std::atomic<uint64_t> sync_count_{0};
};

}  // namespace prix

#endif  // PRIX_STORAGE_DISK_MANAGER_H_
