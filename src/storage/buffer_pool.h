#ifndef PRIX_STORAGE_BUFFER_POOL_H_
#define PRIX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace prix {

/// Counters the benchmarks report. `physical_reads` is the paper's
/// "Disk IO (pages)" metric.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;
};

/// Fixed-capacity page cache with LRU replacement and pin counting, mirroring
/// the paper's 2000-page buffer pool (Sec. 6.1). Clearing the pool before a
/// query emulates the paper's direct-I/O cold-cache measurement.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t pool_pages);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Fetches page `id`, reading from disk on a miss. The page is pinned;
  /// callers must UnpinPage (or use PageGuard).
  Result<Page*> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins an empty frame for it.
  Result<Page*> NewPage();

  /// Drops a pin. `dirty` marks the frame for write-back on eviction/flush.
  void UnpinPage(PageId id, bool dirty);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Flushes then evicts every frame — the cold-cache reset used before each
  /// benchmarked query. Requires no pinned pages.
  Status Clear();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  size_t capacity() const { return frames_.size(); }
  size_t pages_cached() const { return table_.size(); }
  DiskManager* disk() const { return disk_; }

 private:
  using LruList = std::list<size_t>;  // frame indexes, front = most recent

  /// Finds a frame to (re)use: a free frame or the LRU unpinned victim.
  Result<size_t> GetVictimFrame();
  void Touch(size_t frame);
  Status EvictFrame(size_t frame);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> table_;  // page id -> frame index
  LruList lru_;
  std::vector<LruList::iterator> lru_pos_;  // per-frame position (or end)
  BufferPoolStats stats_;
};

/// RAII pin holder. Unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace prix

#endif  // PRIX_STORAGE_BUFFER_POOL_H_
