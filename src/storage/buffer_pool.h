#ifndef PRIX_STORAGE_BUFFER_POOL_H_
#define PRIX_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace prix {

/// Counters the benchmarks report. `physical_reads` is the paper's
/// "Disk IO (pages)" metric. `lock_waits` counts shard-latch acquisitions
/// that found the latch already held (a direct contention signal: it stays
/// 0 single-threaded and grows with cross-thread collisions on one shard).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;
  uint64_t lock_waits = 0;
};

/// Source of page ids for BufferPool::NewPage. The default is the
/// DiskManager's append-only counter; a Database installs itself so freed
/// pages from its persistent free list are recycled before the file grows.
/// Implementations must be thread-safe (NewPage may be called concurrently).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  virtual Result<PageId> AllocatePage() = 0;
};

/// Fixed-capacity page cache with LRU replacement and pin counting, mirroring
/// the paper's 2000-page buffer pool (Sec. 6.1). Clearing the pool before a
/// query emulates the paper's direct-I/O cold-cache measurement.
///
/// Thread safety: the pool is sharded by PageId. Each shard owns a disjoint
/// subset of the frames plus its own latch, hash table, LRU list, and stat
/// counters, so fetches of pages in different shards proceed fully in
/// parallel. FetchPage / NewPage / UnpinPage / FlushAll may be called from
/// any thread. Clear() takes every shard latch (in ascending shard order —
/// the pool-wide latch ordering) and must not race with in-flight fetches
/// that hold pins. Large pools use up to 16 shards; small pools (fewer than
/// 32 frames) collapse to one shard and behave exactly like a global-LRU
/// pool, which also preserves the eviction order single-threaded callers and
/// tests rely on.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t pool_pages);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Fetches page `id`, reading from disk on a miss. The page is pinned;
  /// callers must UnpinPage (or use PageGuard).
  Result<Page*> FetchPage(PageId id);

  /// Allocates a fresh page (via the installed PageAllocator, falling back
  /// to the disk's append-only counter) and pins an empty frame for it. When
  /// the allocator recycles an id the pool may still be caching that page's
  /// stale frame; it is reused in place — zeroed, pinned, dirty — so no
  /// duplicate frame can exist for one id.
  Result<Page*> NewPage();

  /// Evicts page `id` WITHOUT writing it back, discarding any dirty data —
  /// the abort path for pages a failed transaction allocated but never
  /// published. No-op when the page is not cached; Internal when pinned.
  Status DropPage(PageId id);

  /// Installs (or, with nullptr, removes) the page-id source for NewPage.
  /// Must not race with NewPage calls.
  void set_allocator(PageAllocator* allocator) { allocator_ = allocator; }

  /// Drops a pin. `dirty` marks the frame for write-back on eviction/flush.
  void UnpinPage(PageId id, bool dirty);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Flushes then evicts every frame — the cold-cache reset used before each
  /// benchmarked query. Requires no pinned pages.
  Status Clear();

  /// Drops every frame WITHOUT writing anything back — the crash-simulation
  /// teardown (Database::Abandon). Dirty data is lost by design and any
  /// outstanding pin becomes dangling; callers must hold none.
  void DiscardAll();

  /// Snapshot of the counters, merged across shards — taken WITHOUT the
  /// shard latches. Semantics:
  ///
  ///  - Each individual counter is a single relaxed 64-bit atomic load, so
  ///    no counter value is ever torn, and because the per-shard counters
  ///    only ever increase, every counter in the snapshot is monotonically
  ///    non-decreasing across successive stats() calls.
  ///  - The snapshot is NOT atomic across counters or shards: while fetches
  ///    are in flight, one shard may be read before and another after a
  ///    concurrent increment, so cross-counter invariants (e.g.
  ///    hits + misses == total fetches) can be transiently off by the
  ///    number of in-flight operations.
  ///  - After all workers have joined (any happens-before edge such as
  ///    thread join or ThreadPool::Wait), the snapshot is exact and
  ///    sum-consistent. tests/buffer_pool_test.cc pins down both halves of
  ///    this contract.
  ///
  /// For exact per-query attribution do not diff this (pool-wide) snapshot;
  /// open a MetricsContext (common/metrics.h) around the operation instead.
  BufferPoolStats stats() const;
  void ResetStats();

  size_t capacity() const { return capacity_; }
  size_t pages_cached() const;
  size_t num_shards() const { return shards_.size(); }
  DiskManager* disk() const { return disk_; }

 private:
  using LruList = std::list<size_t>;  // frame indexes, front = most recent

  /// Relaxed per-shard counters; merged by stats().
  struct ShardStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> physical_reads{0};
    std::atomic<uint64_t> physical_writes{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> lock_waits{0};
  };

  /// One latch-protected slice of the pool. Frames never migrate between
  /// shards; a page always lives in the shard its id hashes to.
  struct Shard {
    std::mutex mu;
    std::vector<std::unique_ptr<Page>> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> table;  // page id -> frame index
    LruList lru;
    std::vector<LruList::iterator> lru_pos;  // per-frame position (or end)
    ShardStats stats;
  };

  Shard& ShardFor(PageId id) {
    return *shards_[static_cast<size_t>(id) & shard_mask_];
  }

  /// Acquires the shard latch, counting a lock_wait when it was contended.
  /// Inline: this sits on the page-fetch hot path, and the uncontended case
  /// must stay one try_lock (see tools/check_metrics_overhead.sh).
  std::unique_lock<std::mutex> LockShard(Shard& shard) {
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      shard.stats.lock_waits.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }

  /// Finds a frame to (re)use: a free frame or the LRU unpinned victim.
  /// Caller holds the shard latch.
  Result<size_t> GetVictimFrame(Shard& shard);
  void Touch(Shard& shard, size_t frame);
  Status EvictFrame(Shard& shard, size_t frame);
  Status FlushShard(Shard& shard);

  DiskManager* disk_;
  PageAllocator* allocator_ = nullptr;
  size_t capacity_ = 0;
  size_t shard_mask_ = 0;  // shard count is a power of two
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII pin holder. Unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_ = false;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace prix

#endif  // PRIX_STORAGE_BUFFER_POOL_H_
