#include "storage/oplog.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/build_info.h"
#include "common/crc32c.h"
#include "common/macros.h"
#include "storage/record_store.h"

namespace prix {

namespace {

constexpr uint32_t kOpLogMagic = 0x504c4f47;  // "PLOG"
constexpr uint32_t kOpLogVersion = kOpLogFormatVersion;
/// magic + version + base_gen + base_manifest + header crc.
constexpr size_t kOpLogHeaderBytes = 4 + 4 + 8 + 4 + 4;
/// gen + kind + manifest, preceding the payload inside a record body.
constexpr size_t kRecordFixedBytes = 8 + 1 + 4;

bool ValidOpKind(uint8_t k) {
  return k <= static_cast<uint8_t>(OpKind::kDrop);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kNoop: return "noop";
    case OpKind::kInsert: return "insert";
    case OpKind::kUpdate: return "update";
    case OpKind::kDelete: return "delete";
    case OpKind::kPutBlob: return "put-blob";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kDrop: return "drop";
  }
  return "unknown";
}

uint32_t OpLog::ChainManifest(uint32_t prev, uint64_t gen, OpKind kind,
                              const char* payload, size_t len) {
  char fixed[9];
  for (int i = 0; i < 8; ++i) {
    fixed[i] = static_cast<char>(gen >> (8 * i));
  }
  fixed[8] = static_cast<char>(kind);
  uint32_t m = Crc32cExtend(prev, fixed, sizeof(fixed));
  return Crc32cExtend(m, payload, len);
}

OpLog::~OpLog() {
  Status st = Close();
  if (!st.ok()) {
    // Destruction cannot report; the next Open re-validates the tail anyway.
    (void)st;
  }
}

Status OpLog::WriteBytesLocked(uint64_t offset, const char* data,
                               size_t len) {
  if (injector_ != nullptr) {
    FaultInjector::Action a =
        injector_->OnAttempt(FaultInjector::Op::kWrite, offset, 0);
    switch (a.kind) {
      case FaultInjector::Action::Kind::kProceed:
      case FaultInjector::Action::Kind::kShortIo:
        break;  // short transfers are resumed by the loop below anyway
      case FaultInjector::Action::Kind::kError:
        errno = a.err;
        return ErrnoStatus("oplog write (injected)");
      case FaultInjector::Action::Kind::kCrash:
        // The injector applies the triggering write's fate (complete, torn,
        // dropped) and truncates to a crash length itself; everything
        // un-synced past the last fsync may be lost, which is exactly what
        // the Open-time scan must tolerate.
        return injector_->ExecuteCrash(offset, data, len);
    }
  }
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd_, data + done, len - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("oplog write");
    }
    done += static_cast<size_t>(n);
  }
  if (injector_ != nullptr) injector_->OnFileGrown(offset + len);
  return Status::OK();
}

Status OpLog::SyncLocked() {
  if (injector_ != nullptr) {
    FaultInjector::Action a =
        injector_->OnAttempt(FaultInjector::Op::kSync, 0, 0);
    switch (a.kind) {
      case FaultInjector::Action::Kind::kProceed:
      case FaultInjector::Action::Kind::kShortIo:
        break;
      case FaultInjector::Action::Kind::kError:
        errno = a.err;
        return ErrnoStatus("oplog fdatasync (injected)");
      case FaultInjector::Action::Kind::kCrash:
        return injector_->ExecuteCrash(0, nullptr, 0);
    }
  }
  if (::fdatasync(fd_) != 0) return ErrnoStatus("oplog fdatasync");
  if (injector_ != nullptr) injector_->OnSyncSucceeded(file_size_);
  return Status::OK();
}

Status OpLog::RebaseLocked(uint64_t committed_gen) {
  if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("oplog rebase truncate");
  base_gen_ = committed_gen;
  base_manifest_ = 0;
  slots_.clear();
  file_size_ = 0;
  std::vector<char> header;
  header.reserve(kOpLogHeaderBytes);
  PutU32(&header, kOpLogMagic);
  PutU32(&header, kOpLogVersion);
  PutU64(&header, base_gen_);
  PutU32(&header, base_manifest_);
  PutU32(&header, Crc32c(header.data(), header.size()));
  PRIX_CHECK(header.size() == kOpLogHeaderBytes);
  PRIX_RETURN_NOT_OK(WriteBytesLocked(0, header.data(), header.size()));
  file_size_ = header.size();
  return SyncLocked();
}

Status OpLog::ScanLocked(uint64_t file_size) {
  // Walk the records, stopping (and truncating) at the first byte that does
  // not validate: a torn tail from a crash mid-append is the expected case.
  uint64_t off = kOpLogHeaderBytes;
  uint64_t good_end = off;
  uint64_t next_gen = base_gen_ + 1;
  uint32_t prev_manifest = base_manifest_;
  std::vector<char> body;
  while (off + 8 <= file_size) {
    char prefix[8];
    ssize_t n = ::pread(fd_, prefix, sizeof(prefix), static_cast<off_t>(off));
    if (n != static_cast<ssize_t>(sizeof(prefix))) break;
    uint32_t body_len = GetU32(prefix);
    uint32_t crc = GetU32(prefix + 4);
    if (body_len < kRecordFixedBytes ||
        body_len > kRecordFixedBytes + kMaxPayload) {
      break;
    }
    if (off + 8 + body_len > file_size) break;
    body.resize(body_len);
    n = ::pread(fd_, body.data(), body_len, static_cast<off_t>(off + 8));
    if (n != static_cast<ssize_t>(body_len)) break;
    if (Crc32c(body.data(), body_len) != crc) break;
    const char* p = body.data();
    uint64_t gen = GetU64(p);
    p += 8;
    uint8_t kind = static_cast<uint8_t>(*p++);
    uint32_t manifest = GetU32(p);
    p += 4;
    if (gen != next_gen || !ValidOpKind(kind)) break;
    if (ChainManifest(prev_manifest, gen, static_cast<OpKind>(kind),
                      body.data() + kRecordFixedBytes,
                      body_len - kRecordFixedBytes) != manifest) {
      break;
    }
    Slot slot;
    slot.offset = off;
    slot.body_len = body_len;
    slot.manifest = manifest;
    slot.kind = static_cast<OpKind>(kind);
    slots_.push_back(slot);
    off += 8 + body_len;
    good_end = off;
    ++next_gen;
    prev_manifest = manifest;
  }
  if (good_end < file_size) {
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      return ErrnoStatus("oplog tail truncate");
    }
  }
  file_size_ = good_end;
  return Status::OK();
}

Status OpLog::Open(const std::string& path, uint64_t committed_gen,
                   bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  PRIX_CHECK(fd_ < 0);
  path_ = path;
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status err = ErrnoStatus("fstat " + path);
    ::close(fd_);
    fd_ = -1;
    return err;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (injector_ != nullptr) injector_->AttachFile(fd_, size);

  bool rebase = size < kOpLogHeaderBytes;
  if (!rebase) {
    char header[kOpLogHeaderBytes];
    ssize_t n = ::pread(fd_, header, sizeof(header), 0);
    rebase = n != static_cast<ssize_t>(sizeof(header)) ||
             GetU32(header) != kOpLogMagic ||
             GetU32(header + 4) != kOpLogVersion ||
             GetU32(header + 20) != Crc32c(header, 20);
    if (!rebase) {
      base_gen_ = GetU64(header + 8);
      base_manifest_ = GetU32(header + 16);
      slots_.clear();
      Status scan = ScanLocked(size);
      if (!scan.ok()) {
        ::close(fd_);
        fd_ = -1;
        return scan;
      }
      // A record for a generation past the recovered catalog is a commit
      // that never flipped its header: trim it, it is not history.
      while (!slots_.empty() && base_gen_ + slots_.size() > committed_gen) {
        slots_.pop_back();
      }
      uint64_t keep_end = slots_.empty()
                              ? kOpLogHeaderBytes
                              : slots_.back().offset + 8 + slots_.back().body_len;
      if (keep_end < file_size_) {
        if (::ftruncate(fd_, static_cast<off_t>(keep_end)) != 0) {
          Status err = ErrnoStatus("oplog trim truncate");
          ::close(fd_);
          fd_ = -1;
          return err;
        }
        file_size_ = keep_end;
      }
      // The chain must reach the committed generation, or it has a gap
      // (pre-oplog database, foreign file) and cannot serve anyone.
      rebase = base_gen_ > committed_gen ||
               base_gen_ + slots_.size() < committed_gen;
    }
  }
  if (rebase) {
    Status st_rebase = RebaseLocked(committed_gen);
    if (!st_rebase.ok()) {
      ::close(fd_);
      fd_ = -1;
      return st_rebase;
    }
  }
  return Status::OK();
}

Status OpLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  Status st = Status::OK();
  if (::fdatasync(fd_) != 0) st = ErrnoStatus("oplog close fdatasync");
  if (::close(fd_) != 0 && st.ok()) st = ErrnoStatus("oplog close");
  fd_ = -1;
  if (injector_ != nullptr) injector_->DetachFile();
  return st;
}

void OpLog::Abandon() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  (void)::close(fd_);
  fd_ = -1;
  if (injector_ != nullptr) injector_->DetachFile();
}

Status OpLog::Append(uint64_t gen, OpKind kind,
                     const std::vector<char>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("oplog is not open");
  if (payload.size() > kMaxPayload) {
    return Status::ResourceExhausted(
        "oplog payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayload) + "-byte cap");
  }
  uint64_t expect = base_gen_ + slots_.size() + 1;
  if (gen != expect) {
    return Status::Internal("oplog append at generation " +
                            std::to_string(gen) + ", expected " +
                            std::to_string(expect));
  }
  uint32_t prev = slots_.empty() ? base_manifest_ : slots_.back().manifest;
  uint32_t manifest =
      ChainManifest(prev, gen, kind, payload.data(), payload.size());
  std::vector<char> frame;
  frame.reserve(8 + kRecordFixedBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(kRecordFixedBytes + payload.size()));
  PutU32(&frame, 0);  // crc patched below
  size_t body_at = frame.size();
  PutU64(&frame, gen);
  frame.push_back(static_cast<char>(kind));
  PutU32(&frame, manifest);
  frame.insert(frame.end(), payload.begin(), payload.end());
  uint32_t crc = Crc32c(frame.data() + body_at, frame.size() - body_at);
  frame[4] = static_cast<char>(crc);
  frame[5] = static_cast<char>(crc >> 8);
  frame[6] = static_cast<char>(crc >> 16);
  frame[7] = static_cast<char>(crc >> 24);

  uint64_t off = file_size_;
  PRIX_RETURN_NOT_OK(WriteBytesLocked(off, frame.data(), frame.size()));
  file_size_ = off + frame.size();
  PRIX_RETURN_NOT_OK(SyncLocked());
  Slot slot;
  slot.offset = off;
  slot.body_len = static_cast<uint32_t>(kRecordFixedBytes + payload.size());
  slot.manifest = manifest;
  slot.kind = kind;
  slots_.push_back(slot);
  return Status::OK();
}

Status OpLog::TruncateTo(uint64_t gen) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("oplog is not open");
  if (gen < base_gen_) {
    return Status::InvalidArgument("cannot truncate the oplog below its base");
  }
  while (!slots_.empty() && base_gen_ + slots_.size() > gen) {
    slots_.pop_back();
  }
  uint64_t keep_end = slots_.empty()
                          ? kOpLogHeaderBytes
                          : slots_.back().offset + 8 + slots_.back().body_len;
  if (keep_end < file_size_) {
    if (::ftruncate(fd_, static_cast<off_t>(keep_end)) != 0) {
      return ErrnoStatus("oplog truncate");
    }
    file_size_ = keep_end;
  }
  return SyncLocked();
}

uint64_t OpLog::base_gen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_gen_;
}

uint32_t OpLog::base_manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_manifest_;
}

uint64_t OpLog::last_gen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_gen_ + slots_.size();
}

uint32_t OpLog::last_manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.empty() ? base_manifest_ : slots_.back().manifest;
}

size_t OpLog::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

Result<uint32_t> OpLog::ManifestAt(uint64_t gen) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (gen < base_gen_ || gen > base_gen_ + slots_.size()) {
    return Status::OutOfRange(
        "generation " + std::to_string(gen) + " outside the oplog's [" +
        std::to_string(base_gen_) + ", " +
        std::to_string(base_gen_ + slots_.size()) + "] range");
  }
  if (gen == base_gen_) return base_manifest_;
  return slots_[gen - base_gen_ - 1].manifest;
}

Result<OpRecord> OpLog::ReadRecordLocked(size_t idx) const {
  const Slot& slot = slots_[idx];
  std::vector<char> body(slot.body_len);
  char prefix[8];
  ssize_t n =
      ::pread(fd_, prefix, sizeof(prefix), static_cast<off_t>(slot.offset));
  if (n != static_cast<ssize_t>(sizeof(prefix))) {
    return ErrnoStatus("oplog record prefix read");
  }
  n = ::pread(fd_, body.data(), body.size(),
              static_cast<off_t>(slot.offset + 8));
  if (n != static_cast<ssize_t>(body.size())) {
    return ErrnoStatus("oplog record read");
  }
  if (Crc32c(body.data(), body.size()) != GetU32(prefix + 4)) {
    return Status::Corruption("oplog record for generation " +
                              std::to_string(base_gen_ + idx + 1) +
                              " fails its checksum");
  }
  OpRecord rec;
  rec.gen = GetU64(body.data());
  rec.kind = static_cast<OpKind>(body[8]);
  rec.manifest = GetU32(body.data() + 9);
  rec.payload.assign(body.begin() + kRecordFixedBytes, body.end());
  return rec;
}

Result<OpRecord> OpLog::RecordAt(uint64_t gen) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("oplog is not open");
  if (gen <= base_gen_ || gen > base_gen_ + slots_.size()) {
    return Status::OutOfRange(
        "generation " + std::to_string(gen) + " outside the oplog's (" +
        std::to_string(base_gen_) + ", " +
        std::to_string(base_gen_ + slots_.size()) + "] range");
  }
  return ReadRecordLocked(gen - base_gen_ - 1);
}

}  // namespace prix
