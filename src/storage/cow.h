#ifndef PRIX_STORAGE_COW_H_
#define PRIX_STORAGE_COW_H_

#include <unordered_set>
#include <vector>

#include "storage/page.h"

namespace prix {

/// Page-level copy-on-write bookkeeping for one write transaction.
///
/// Writers under the snapshot protocol (DESIGN.md §5i) never mutate a page
/// that a committed generation can reach: a structure that wants to change a
/// committed page copies it to a fresh page first and records the old id here
/// as superseded. Pages the transaction itself allocated ("fresh") may be
/// edited in place — no snapshot can see them until the commit publishes new
/// roots.
///
/// One CowContext spans one commit: every participating structure (B+-trees,
/// record stores) registers the pages it allocates and supersedes, and the
/// Database either stages `freed` into the free-page list at commit or drops
/// `fresh` from the pool on abort.
class CowContext {
 public:
  bool IsFresh(PageId id) const { return fresh.count(id) != 0; }
  void MarkFresh(PageId id) { fresh.insert(id); }
  void MarkFreed(PageId id) {
    // A page both allocated and discarded inside the same transaction never
    // existed for any snapshot; it goes back to the allocator immediately at
    // commit (gen of the staging caller) like any other superseded page.
    freed.push_back(id);
  }

  /// Pages allocated by this transaction (safe to mutate in place; must be
  /// dropped from the pool if the transaction aborts).
  std::unordered_set<PageId> fresh;
  /// Committed pages this transaction superseded (reclaimable once no
  /// snapshot pins a generation that can reach them).
  std::vector<PageId> freed;
};

}  // namespace prix

#endif  // PRIX_STORAGE_COW_H_
