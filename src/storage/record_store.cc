#include "storage/record_store.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/varint.h"
#include "storage/page_format.h"

namespace prix {

void PutU32(std::vector<char>* buf, uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf->insert(buf->end(), tmp, tmp + 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void PutU64(std::vector<char>* buf, uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf->insert(buf->end(), tmp, tmp + 8);
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Blob page layout: [next PageId u32][chunk len u32][payload], all within
// the usable area (the trailer is the storage layer's).
constexpr size_t kBlobPayload = kPageUsable - 8;

Result<PageId> WriteBlob(BufferPool* pool, const std::vector<char>& data,
                         std::vector<PageId>* out_pages) {
  size_t num_pages =
      std::max<size_t>(1, (data.size() + kBlobPayload - 1) / kBlobPayload);
  std::vector<PageId> ids(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool->NewPage());
    ids[i] = page->page_id();
    pool->UnpinPage(ids[i], /*dirty=*/true);
  }
  if (out_pages != nullptr) *out_pages = ids;
  for (size_t i = 0; i < num_pages; ++i) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(ids[i]));
    PageId next = i + 1 < num_pages ? ids[i + 1] : kInvalidPage;
    size_t offset = i * kBlobPayload;
    uint32_t chunk =
        static_cast<uint32_t>(std::min(kBlobPayload, data.size() - offset));
    std::memcpy(page->data(), &next, 4);
    std::memcpy(page->data() + 4, &chunk, 4);
    if (chunk > 0) std::memcpy(page->data() + 8, data.data() + offset, chunk);
    SetPageType(page->data(), PageType::kBlob);
    pool->UnpinPage(ids[i], /*dirty=*/true);
  }
  return ids[0];
}

Status ReadBlob(BufferPool* pool, PageId first, std::vector<char>* out) {
  out->clear();
  PageId cur = first;
  uint64_t hops = 0;
  while (cur != kInvalidPage) {
    // A corrupt next pointer can close a cycle of individually valid
    // pages; any legitimate chain has at most one link per file page.
    if (++hops > pool->disk()->num_pages()) {
      return Status::Corruption("blob chain does not terminate (cycle via "
                                "page " +
                                std::to_string(cur) + ")");
    }
    PRIX_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(cur));
    if (GetPageType(page->data()) != PageType::kBlob) {
      Status st = Status::Corruption(
          "page " + std::to_string(cur) + " is not a blob page (type " +
          PageTypeName(GetPageType(page->data())) + ")");
      pool->UnpinPage(cur, false);
      return st;
    }
    PageId next;
    uint32_t chunk;
    std::memcpy(&next, page->data(), 4);
    std::memcpy(&chunk, page->data() + 4, 4);
    if (chunk > kBlobPayload) {
      pool->UnpinPage(cur, false);
      return Status::Corruption("blob page " + std::to_string(cur) +
                                ": chunk length " + std::to_string(chunk) +
                                " out of range");
    }
    out->insert(out->end(), page->data() + 8, page->data() + 8 + chunk);
    pool->UnpinPage(cur, false);
    cur = next;
  }
  return Status::OK();
}

Status ReadBlobPages(BufferPool* pool, PageId first,
                     std::vector<PageId>* out_pages) {
  out_pages->clear();
  PageId cur = first;
  uint64_t hops = 0;
  while (cur != kInvalidPage) {
    if (++hops > pool->disk()->num_pages()) {
      return Status::Corruption("blob chain does not terminate (cycle via "
                                "page " +
                                std::to_string(cur) + ")");
    }
    PRIX_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(cur));
    if (GetPageType(page->data()) != PageType::kBlob) {
      Status st = Status::Corruption(
          "page " + std::to_string(cur) + " is not a blob page (type " +
          PageTypeName(GetPageType(page->data())) + ")");
      pool->UnpinPage(cur, false);
      return st;
    }
    out_pages->push_back(cur);
    PageId next;
    std::memcpy(&next, page->data(), 4);
    pool->UnpinPage(cur, false);
    cur = next;
  }
  return Status::OK();
}

void RecordStore::SerializeTo(std::vector<char>* out, bool compressed) const {
  if (!compressed) {
    PutU64(out, next_offset_);
    PutU32(out, static_cast<uint32_t>(pages_.size()));
    for (PageId id : pages_) PutU32(out, id);
    PutU32(out, static_cast<uint32_t>(catalog_.size()));
    for (const Extent& e : catalog_) {
      PutU64(out, e.offset);
      PutU32(out, e.length);
    }
    return;
  }
  // v3: varint fields; page ids as zig-zag deltas (allocation makes them
  // near-consecutive), extent offsets as plain deltas (append-only makes
  // them monotonic, and storing the delta also proves monotonicity to the
  // decoder for free).
  PutVarint64(out, next_offset_);
  PutVarint64(out, pages_.size());
  PageId prev_page = 0;
  for (PageId id : pages_) {
    PutVarint64(out, ZigzagEncode64(static_cast<int64_t>(id) -
                                    static_cast<int64_t>(prev_page)));
    prev_page = id;
  }
  PutVarint64(out, catalog_.size());
  uint64_t prev_offset = 0;
  for (const Extent& e : catalog_) {
    PutVarint64(out, e.offset - prev_offset);
    PutVarint32(out, e.length);
    prev_offset = e.offset;
  }
}

Result<RecordStore> RecordStore::Deserialize(BufferPool* pool, const char** p,
                                             const char* end,
                                             bool compressed) {
  RecordStore store(pool);
  uint32_t file_pages = pool->disk()->num_pages();
  uint64_t num_pages = 0;
  uint64_t num_records = 0;
  if (!compressed) {
    auto need = [&](size_t bytes) -> Status {
      if (*p + bytes > end) {
        return Status::Corruption("truncated store catalog");
      }
      return Status::OK();
    };
    PRIX_RETURN_NOT_OK(need(12));
    store.next_offset_ = GetU64(*p);
    *p += 8;
    num_pages = GetU32(*p);
    *p += 4;
    PRIX_RETURN_NOT_OK(need(4ull * num_pages + 4));
    // Every page the catalog references must exist in the file, and the
    // logical size must fit the page list — arbitrary bytes here must fail
    // now, not as a wild fetch during a later Load.
    store.pages_.resize(num_pages);
    for (uint64_t i = 0; i < num_pages; ++i, *p += 4) {
      store.pages_[i] = GetU32(*p);
    }
  } else {
    if (!GetVarint64(p, end, &store.next_offset_) ||
        !GetVarint64(p, end, &num_pages)) {
      return Status::Corruption("truncated store catalog");
    }
    // A fabricated count cannot force a huge allocation: each page id
    // costs at least one encoded byte, so the count is bounded by the
    // remaining catalog bytes.
    if (num_pages > static_cast<uint64_t>(end - *p)) {
      return Status::Corruption("record store catalog page count " +
                                std::to_string(num_pages) +
                                " exceeds the catalog size");
    }
    store.pages_.resize(num_pages);
    int64_t prev_page = 0;
    for (uint64_t i = 0; i < num_pages; ++i) {
      uint64_t enc;
      if (!GetVarint64(p, end, &enc)) {
        return Status::Corruption("truncated store catalog (page list)");
      }
      int64_t id = prev_page + ZigzagDecode64(enc);
      if (id < 0 || id >= static_cast<int64_t>(file_pages)) {
        return Status::Corruption("record store catalog references page " +
                                  std::to_string(id) + " beyond the file (" +
                                  std::to_string(file_pages) + " pages)");
      }
      store.pages_[i] = static_cast<PageId>(id);
      prev_page = id;
    }
  }
  for (PageId id : store.pages_) {
    if (id >= file_pages) {
      return Status::Corruption("record store catalog references page " +
                                std::to_string(id) + " beyond the file (" +
                                std::to_string(file_pages) + " pages)");
    }
  }
  if (store.next_offset_ > num_pages * kPageUsable) {
    return Status::Corruption(
        "record store logical size " + std::to_string(store.next_offset_) +
        " exceeds its " + std::to_string(num_pages) + " data pages");
  }
  if (!compressed) {
    if (*p + 4 > end) return Status::Corruption("truncated store catalog");
    num_records = GetU32(*p);
    *p += 4;
    if (*p + 12ull * num_records > end) {
      return Status::Corruption("truncated store catalog");
    }
    store.catalog_.resize(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
      store.catalog_[i].offset = GetU64(*p);
      *p += 8;
      store.catalog_[i].length = GetU32(*p);
      *p += 4;
    }
  } else {
    if (!GetVarint64(p, end, &num_records)) {
      return Status::Corruption("truncated store catalog");
    }
    if (num_records > static_cast<uint64_t>(end - *p)) {
      return Status::Corruption("record store catalog record count " +
                                std::to_string(num_records) +
                                " exceeds the catalog size");
    }
    store.catalog_.resize(num_records);
    uint64_t prev_offset = 0;
    for (uint64_t i = 0; i < num_records; ++i) {
      uint64_t delta;
      uint32_t length;
      if (!GetVarint64(p, end, &delta) || !GetVarint32(p, end, &length)) {
        return Status::Corruption("truncated store catalog (extent list)");
      }
      uint64_t offset = prev_offset + delta;
      if (offset < prev_offset) {  // wrapped
        return Status::Corruption("record " + std::to_string(i) +
                                  " extent offset overflows");
      }
      store.catalog_[i] = Extent{offset, length};
      prev_offset = offset;
    }
  }
  for (uint64_t i = 0; i < num_records; ++i) {
    if (store.catalog_[i].offset + store.catalog_[i].length >
        store.next_offset_) {
      return Status::Corruption("record " + std::to_string(i) +
                                " extent exceeds the store's logical size");
    }
  }
  return store;
}

Result<uint32_t> RecordStore::Append(const char* data, size_t len) {
  Extent extent{next_offset_, static_cast<uint32_t>(len)};
  PRIX_RETURN_NOT_OK(AppendBytes(data, len));
  uint32_t id = static_cast<uint32_t>(catalog_.size());
  catalog_.push_back(extent);
  return id;
}

Status RecordStore::Load(uint32_t id, std::vector<char>* out) const {
  if (id >= catalog_.size()) {
    return Status::NotFound("record " + std::to_string(id) + " not in store");
  }
  const Extent& e = catalog_[id];
  out->resize(e.length);
  return ReadBytes(e.offset, out->data(), e.length);
}

Status RecordStore::AppendBytes(const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    size_t page_index = static_cast<size_t>(next_offset_ / kPageUsable);
    size_t page_off = static_cast<size_t>(next_offset_ % kPageUsable);
    if (page_index == pages_.size()) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
      SetPageType(page->data(), PageType::kHeapData);
      if (cow_ != nullptr) cow_->MarkFresh(page->page_id());
      pages_.push_back(page->page_id());
      pool_->UnpinPage(page->page_id(), /*dirty=*/true);
    } else if (page_off > 0 && cow_ != nullptr &&
               !cow_->IsFresh(pages_[page_index])) {
      // The tail page is committed (a snapshot can reach it through an
      // older catalog); copy it to a fresh page before extending it.
      PRIX_ASSIGN_OR_RETURN(Page * old_page,
                            pool_->FetchPage(pages_[page_index]));
      PageGuard old_guard(pool_, old_page);
      PRIX_ASSIGN_OR_RETURN(Page * copy, pool_->NewPage());
      std::memcpy(copy->data(), old_page->data(), kPageSize);
      old_guard.Release();
      cow_->MarkFresh(copy->page_id());
      cow_->MarkFreed(pages_[page_index]);
      pages_[page_index] = copy->page_id();
      pool_->UnpinPage(copy->page_id(), /*dirty=*/true);
    }
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pages_[page_index]));
    size_t chunk = std::min(len - written, kPageUsable - page_off);
    std::memcpy(page->data() + page_off, data + written, chunk);
    pool_->UnpinPage(pages_[page_index], /*dirty=*/true);
    written += chunk;
    next_offset_ += chunk;
  }
  return Status::OK();
}

Status RecordStore::ReadBytes(uint64_t offset, char* out, size_t len) const {
  size_t done = 0;
  while (done < len) {
    size_t page_index = static_cast<size_t>((offset + done) / kPageUsable);
    size_t page_off = static_cast<size_t>((offset + done) % kPageUsable);
    if (page_index >= pages_.size()) {
      return Status::OutOfRange("RecordStore read past end");
    }
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pages_[page_index]));
    size_t chunk = std::min(len - done, kPageUsable - page_off);
    std::memcpy(out + done, page->data() + page_off, chunk);
    pool_->UnpinPage(pages_[page_index], /*dirty=*/false);
    done += chunk;
  }
  return Status::OK();
}

}  // namespace prix
