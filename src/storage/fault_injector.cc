#include "storage/fault_injector.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace prix {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::FailNth(Op op, uint64_t nth, int err, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.op = op;
  rule.nth = counts_[static_cast<int>(op)] + nth;
  rule.times = times;
  rule.kind = Action::Kind::kError;
  rule.err = err;
  rules_.push_back(rule);
}

void FaultInjector::ShortReadNth(uint64_t nth, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.op = Op::kRead;
  rule.nth = counts_[static_cast<int>(Op::kRead)] + nth;
  rule.times = 1;
  rule.kind = Action::Kind::kShortIo;
  rule.bytes = bytes;
  rules_.push_back(rule);
}

void FaultInjector::TornWriteNth(uint64_t nth, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule rule;
  rule.op = Op::kWrite;
  rule.nth = counts_[static_cast<int>(Op::kWrite)] + nth;
  rule.times = 1;
  rule.kind = Action::Kind::kShortIo;
  rule.bytes = bytes;
  rules_.push_back(rule);
}

void FaultInjector::FlipBitsInRead(uint64_t nth, int bits) {
  std::lock_guard<std::mutex> lock(mu_);
  Mutation m;
  m.kind = Mutation::Kind::kFlipBits;
  m.nth = counts_[static_cast<int>(Op::kRead)] + nth;
  m.bits = bits;
  mutations_.push_back(m);
}

void FaultInjector::GarblePageAt(uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  Mutation m;
  m.kind = Mutation::Kind::kGarblePage;
  m.offset = offset;
  mutations_.push_back(m);
}

void FaultInjector::MutateReadBuffer(uint64_t offset, char* buf, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mutations_.empty() || len == 0) return;
  uint64_t read_idx = counts_[static_cast<int>(Op::kRead)];
  for (Mutation& m : mutations_) {
    switch (m.kind) {
      case Mutation::Kind::kFlipBits:
        if (m.fired || read_idx != m.nth) continue;
        m.fired = true;
        for (int i = 0; i < m.bits; ++i) {
          uint64_t bit = rng_.Uniform(static_cast<uint64_t>(len) * 8);
          buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
        ++faults_;
        break;
      case Mutation::Kind::kGarblePage:
        if (m.offset != offset) continue;
        for (size_t i = 0; i < len; ++i) {
          buf[i] = static_cast<char>(rng_.Next());
        }
        ++faults_;
        break;
    }
  }
}

void FaultInjector::CrashAtWrite(uint64_t k, WriteFate fate,
                                 size_t torn_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_op_ = Op::kWrite;
  // Writes and extends share the crash clock: both move bytes a power cut
  // can interrupt, so "crash at the k-th write" covers file extension too.
  crash_at_ = counts_[static_cast<int>(Op::kWrite)] +
              counts_[static_cast<int>(Op::kExtend)] + k;
  crash_fate_ = fate;
  crash_torn_bytes_ = torn_bytes;
}

void FaultInjector::CrashAtSync(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_armed_ = true;
  crash_op_ = Op::kSync;
  crash_at_ = counts_[static_cast<int>(Op::kSync)] + k;
  crash_fate_ = WriteFate::kSeeded;
  crash_torn_bytes_ = 0;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  mutations_.clear();
  crash_armed_ = false;
  crashed_ = false;
  preimages_.clear();
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

bool FaultInjector::tracking() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_armed_ && !crashed_;
}

uint64_t FaultInjector::op_count(Op op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<int>(op)];
}

uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

FaultInjector::Action FaultInjector::OnAttempt(Op op, uint64_t offset,
                                               int attempt) {
  (void)offset;
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    // The device is gone. ENODEV is deliberately not in the DiskManager's
    // retryable set, so post-crash errors surface immediately.
    ++faults_;
    return Action{Action::Kind::kError, ENODEV, 0};
  }
  if (attempt == 0) ++counts_[static_cast<int>(op)];
  uint64_t idx = counts_[static_cast<int>(op)];

  if (crash_armed_) {
    uint64_t clock = (crash_op_ == Op::kSync)
                         ? counts_[static_cast<int>(Op::kSync)]
                         : counts_[static_cast<int>(Op::kWrite)] +
                               counts_[static_cast<int>(Op::kExtend)];
    bool on_clock = (crash_op_ == Op::kSync)
                        ? (op == Op::kSync)
                        : (op == Op::kWrite || op == Op::kExtend);
    if (on_clock && clock >= crash_at_) {
      ++faults_;
      return Action{Action::Kind::kCrash, 0, 0};
    }
  }

  for (const Rule& rule : rules_) {
    if (rule.op != op) continue;
    bool fires = rule.times < 0
                     ? idx >= rule.nth
                     : (idx == rule.nth && attempt < rule.times);
    if (!fires) continue;
    ++faults_;
    return Action{rule.kind, rule.err, rule.bytes};
  }
  return Action{};
}

void FaultInjector::RecordPreImage(uint64_t offset, const char* data,
                                   size_t len, size_t page_size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!crash_armed_ || crashed_) return;
  // Keep only the oldest pre-image per page: that is the durable content
  // from before the first un-synced write, the state a total rollback of
  // this page must restore.
  if (preimages_.count(offset) != 0) return;
  PreImage pre;
  pre.data.assign(page_size, 0);
  std::memcpy(pre.data.data(), data, std::min(len, page_size));
  pre.valid = std::min(len, page_size);
  preimages_.emplace(offset, std::move(pre));
}

void FaultInjector::OnSyncSucceeded(uint64_t file_size) {
  std::lock_guard<std::mutex> lock(mu_);
  preimages_.clear();
  synced_size_ = std::max(synced_size_, file_size);
  current_size_ = std::max(current_size_, file_size);
}

void FaultInjector::OnFileGrown(uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  current_size_ = std::max(current_size_, new_size);
}

void FaultInjector::AttachFile(int fd, uint64_t file_size) {
  std::lock_guard<std::mutex> lock(mu_);
  fd_ = fd;
  synced_size_ = file_size;
  current_size_ = file_size;
  preimages_.clear();
}

void FaultInjector::DetachFile() {
  std::lock_guard<std::mutex> lock(mu_);
  fd_ = -1;
}

FaultInjector::WriteFate FaultInjector::SeedFate(uint64_t salt) {
  // rng_ state advances deterministically; salt keeps distinct pages from
  // sharing one draw when the map iteration order is fixed anyway.
  uint64_t r = rng_.Next() ^ (salt * 0x9e3779b97f4a7c15ULL);
  switch (r % 3) {
    case 0: return WriteFate::kComplete;
    case 1: return WriteFate::kTorn;
    default: return WriteFate::kDropped;
  }
}

Status FaultInjector::RestorePage(uint64_t offset, const PreImage& pre,
                                  WriteFate fate, size_t torn_bytes,
                                  uint64_t crash_len) {
  if (fate == WriteFate::kComplete) return Status::OK();
  size_t page_size = pre.data.size();
  size_t start = (fate == WriteFate::kDropped) ? 0 : torn_bytes;
  if (start >= page_size) return Status::OK();
  uint64_t end = std::min<uint64_t>(offset + page_size, crash_len);
  if (offset + start >= end) return Status::OK();
  size_t len = static_cast<size_t>(end - offset - start);
  ssize_t n = ::pwrite(fd_, pre.data.data() + start, len,
                       static_cast<off_t>(offset + start));
  if (n != static_cast<ssize_t>(len)) {
    return Status::Internal("fault injector could not apply crash rollback");
  }
  return Status::OK();
}

Status FaultInjector::ExecuteCrash(uint64_t offset, const char* buf,
                                   size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  crash_armed_ = false;
  Status surgery = Status::OK();
  if (fd_ >= 0) {
    // 1. Fate of the triggering write (nothing of it has hit the file yet).
    if (buf != nullptr && len > 0) {
      WriteFate fate = crash_fate_ == WriteFate::kSeeded
                           ? SeedFate(offset)
                           : crash_fate_;
      size_t put = 0;
      if (fate == WriteFate::kComplete) {
        put = len;
      } else if (fate == WriteFate::kTorn) {
        put = crash_torn_bytes_ != 0
                  ? std::min(crash_torn_bytes_, len - 1)
                  : 1 + rng_.Uniform(len - 1);
      }
      if (put > 0) {
        if (::pwrite(fd_, buf, put, static_cast<off_t>(offset)) !=
            static_cast<ssize_t>(put)) {
          surgery = Status::Internal(
              "fault injector could not apply triggering-write fate");
        }
        current_size_ = std::max(current_size_, offset + put);
      }
    }
    // 2. Pick the crash file length: everything synced survives, anything
    // beyond that may or may not have reached the platter — including a
    // ragged, non-page-aligned tail.
    uint64_t crash_len = current_size_;
    if (current_size_ > synced_size_) {
      switch (rng_.Uniform(3)) {
        case 0: crash_len = current_size_; break;
        case 1: crash_len = synced_size_; break;
        default:
          crash_len =
              synced_size_ + rng_.Uniform(current_size_ - synced_size_ + 1);
      }
      if (::ftruncate(fd_, static_cast<off_t>(crash_len)) != 0) {
        surgery = Status::Internal(
            "fault injector could not truncate to the crash length");
      }
    }
    // 3. Seeded per-page fate for every other un-synced write.
    for (const auto& [pre_off, pre] : preimages_) {
      if (pre_off == offset && buf != nullptr) continue;  // handled above
      if (pre_off >= crash_len) continue;                 // truncated away
      WriteFate fate = SeedFate(pre_off);
      size_t tear = 1 + rng_.Uniform(pre.data.size() - 1);
      Status st = RestorePage(pre_off, pre, fate, tear, crash_len);
      if (!st.ok()) surgery = st;
    }
  }
  preimages_.clear();
  if (!surgery.ok()) return surgery;
  return Status::IoError(
      "injected crash: device refuses all I/O until the injector is reset");
}

}  // namespace prix
