#include "storage/page_format.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/crc32c.h"

namespace prix {

namespace {

constexpr size_t kCrcOffset = kPageUsable;
constexpr size_t kTypeOffset = kPageUsable + 4;

std::string Hex32(uint32_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// CRC over the payload extended with the type byte, so a trailer whose
/// type byte was flipped fails verification too.
uint32_t ComputeTrailerCrc(const char* page) {
  uint32_t crc = Crc32c(page, kPageUsable);
  return Crc32cExtend(crc, page + kTypeOffset, 1);
}

}  // namespace

const char* PageTypeName(PageType type) {
  switch (type) {
    case PageType::kUnknown: return "unknown";
    case PageType::kCatalogHeader: return "catalog-header";
    case PageType::kBtreeMeta: return "btree-meta";
    case PageType::kBtreeNode: return "btree-node";
    case PageType::kBlob: return "blob";
    case PageType::kHeapData: return "heap-data";
    case PageType::kStream: return "stream";
    case PageType::kXbNode: return "xb-node";
  }
  return "invalid";
}

void SetPageType(char* page, PageType type) {
  page[kTypeOffset] = static_cast<char>(type);
}

PageType GetPageType(const char* page) {
  return static_cast<PageType>(static_cast<uint8_t>(page[kTypeOffset]));
}

void StampPageTrailer(char* page) {
  std::memset(page + kTypeOffset + 1, 0, kPageSize - kTypeOffset - 1);
  uint32_t crc = ComputeTrailerCrc(page);
  std::memcpy(page + kCrcOffset, &crc, sizeof(crc));
}

bool IsZeroPage(const char* page) {
  // memcmp against the page's own prefix: byte 0 must be zero, then each
  // half-open window doubles. In practice the compiler turns the memcmp
  // into wide vector compares; a non-zero page exits on the first window.
  if (page[0] != 0) return false;
  size_t checked = 1;
  while (checked < kPageSize) {
    size_t span = std::min(checked, kPageSize - checked);
    if (std::memcmp(page, page + checked, span) != 0) return false;
    checked += span;
  }
  return true;
}

Status VerifyPageTrailer(PageId id, const char* page) {
  uint32_t stored;
  std::memcpy(&stored, page + kCrcOffset, sizeof(stored));
  uint32_t computed = ComputeTrailerCrc(page);
  if (stored == computed) return Status::OK();
  if (IsZeroPage(page)) return Status::OK();  // allocated, never written
  return Status::Corruption("page " + std::to_string(id) +
                            ": checksum mismatch (stored " + Hex32(stored) +
                            ", computed " + Hex32(computed) + ")");
}

}  // namespace prix
