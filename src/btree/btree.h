#ifndef PRIX_BTREE_BTREE_H_
#define PRIX_BTREE_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/varint.h"
#include "storage/buffer_pool.h"
#include "storage/cow.h"
#include "storage/page_format.h"

namespace prix {

/// Counters from one WalkReachable scrub/salvage pass.
struct BtreeScrubStats {
  uint64_t nodes_visited = 0;
  uint64_t entries_seen = 0;
  uint64_t subtrees_skipped = 0;  ///< unreadable/invalid subtrees not walked
};

/// Counters from one index salvage pass (PrixIndex/VistIndex::Salvage):
/// what made it into the rebuilt index versus what the corruption took.
struct SalvageStats {
  uint64_t entries_recovered = 0;  ///< B+-tree entries re-inserted
  uint64_t entries_dropped = 0;    ///< duplicates a corrupt tree yielded
  uint64_t subtrees_skipped = 0;   ///< poisoned subtrees not walked
  uint64_t records_recovered = 0;  ///< document/sequence records copied
  uint64_t records_lost = 0;       ///< records replaced by placeholders
};

/// Disk-based B+-tree over the buffer pool, templated on trivially copyable
/// key/value types. This is the index structure behind PRIX's Trie-Symbol and
/// Docid indexes and ViST's D-Ancestorship index (the paper used GiST
/// B+-trees, Sec. 6).
///
/// - Keys are unique; callers needing duplicates append a sequence number to
///   the key (all in-tree composite keys do this).
/// - `Compare` is a strict weak order over Key.
/// - Supported operations: Insert, Get, Delete (with empty-node unlinking —
///   freed pages are reported to the CowContext when one is installed),
///   ordered iteration via Iterator with Seek/Next.
///
/// Concurrency (DESIGN.md §5c/§5i): the read paths — Get, Seek,
/// SeekToFirst, and Iterator traversal — are safe from any number of
/// threads over a thread-safe BufferPool. They hold page pins frame by
/// frame via PageGuard, keep no shared mutable state (the cached `meta_` is
/// written only by Create/Open/Insert/Delete), and never write page
/// payloads. Insert/Delete/Create are NOT safe against concurrent writers
/// on the same tree (one writer at a time). Readers may run concurrently
/// with a writer ONLY under the copy-on-write protocol: the writer
/// installs a CowContext (SetCow) so every mutation lands on pages no
/// committed generation can reach, while readers traverse from the root
/// recorded in the generation their snapshot pins. Without a CowContext
/// (bulk builds) the single-writer rule of old applies: the build must
/// finish before readers start.
///
/// Corruption defense (DESIGN.md §5g): the page trailer CRC catches bytes
/// the disk changed; the checks here catch bytes that are internally
/// inconsistent anyway (a stale page a misdirected write put in the wrong
/// place still has a valid CRC). Every node fetched is validated by
/// CheckNode — magic, leaf flag/format/level coherence, entry count and
/// payload length within capacity — and descents track the expected level,
/// so a corrupt child pointer that jumps across levels (or into a cycle)
/// fails in at most `height` steps. Compressed-leaf varint decoding is
/// bounds-checked against the recorded payload length and must consume it
/// exactly; any mismatch is a Corruption status, never an overread.
///
/// Node layout (within the kPageUsable payload; the page trailer is the
/// storage layer's):
///   bytes 0..1  : node magic (0xb7e3)
///   byte 2      : is_leaf flag
///   byte 3      : level (leaves are 0, root is height-1)
///   bytes 4..5  : entry count (uint16)
///   byte 6      : leaf format: 0 = fixed-stride, 1 = compressed (v3).
///                 Always 0 on internal nodes and on every pre-v3 page.
///   byte 7      : reserved
///   bytes 8..11 : leaf: next-leaf PageId; internal: leftmost child PageId
///   bytes 12..13: compressed leaf: encoded payload byte length (uint16);
///                 reserved (zero) otherwise
///   bytes 14..15: reserved
///   bytes 16..  : entries
///
/// Leaf format 0 (fixed): packed (Key, Value) pairs at stride
/// sizeof(Key)+sizeof(Value); capacity kLeafCapacity, binary-searchable in
/// place. Internal entries are always fixed (Key, PageId child) pairs where
/// child holds keys >= Key, so descents keep their in-page binary search.
///
/// Leaf format 1 (compressed, DESIGN.md §5h): entries are delta-coded
/// against their predecessor. Each (Key, Value) is viewed as kEntryWords
/// little-endian uint64 words (key words then value words, zero-padded);
/// each word is stored as the zig-zag LEB128 varint of its delta versus the
/// same word of the previous entry (the first entry deltas against zero, so
/// its leading key words are effectively a shared-prefix code for the whole
/// run). Sorted composite keys make these deltas tiny, so leaf fanout rises
/// several-fold; the entry count is variable and bounded only by the encoded
/// payload fitting the page. Mutations decode the whole leaf, edit, and
/// re-encode; splits cut at the encoded-byte midpoint. Inserts re-encode
/// only up to kCompressedInsertLimit — one max-size entry of headroom below
/// the page capacity — because removing an entry can GROW the encoding (its
/// successor re-deltas against a farther predecessor), and the headroom
/// guarantees the delete path always has room to re-encode in place.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class BPlusTree {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

  /// One decoded leaf entry (compressed leaves are materialized as runs of
  /// these; declared up front so Iterator can hold a cache of them).
  struct LeafEntryKV {
    Key key;
    Value value;
  };

 public:
  static constexpr uint32_t kMetaMagic = 0xb7ee3e7au;

  /// Persistent tree metadata, kept in the tree's meta page. The leaf
  /// format is deliberately NOT stored here: pre-v3 meta pages carry
  /// indeterminate bytes past the fields below, so a flag added to this
  /// struct could not be trusted on old files. The format is a property of
  /// the owning index, recorded in its catalog blob and passed to
  /// Create/Open; the per-page format byte cross-checks it on every fetch.
  struct Meta {
    uint32_t magic = kMetaMagic;
    PageId root = kInvalidPage;
    uint64_t num_entries = 0;
    uint32_t height = 0;
  };

  BPlusTree() = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Creates an empty tree: allocates a meta page and an empty root leaf.
  /// `compressed_leaves` selects the v3 delta-coded leaf format; it must be
  /// passed identically to every later Open (the owning index's catalog
  /// records it). A non-null `cow` registers the new pages as
  /// transaction-fresh (trees created inside a write transaction).
  static Result<BPlusTree> Create(BufferPool* pool, Compare cmp = Compare(),
                                  bool compressed_leaves = false,
                                  CowContext* cow = nullptr) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    tree.compressed_ = compressed_leaves;
    tree.cow_ = cow;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, tree.AllocNode());
    tree.meta_page_id_ = meta_page->page_id();
    SetPageType(meta_page->data(), PageType::kBtreeMeta);
    pool->UnpinPage(tree.meta_page_id_, /*dirty=*/true);
    PRIX_ASSIGN_OR_RETURN(Page * root, tree.AllocNode());
    InitNode(root, /*is_leaf=*/true, /*level=*/0, tree.LeafFormatByte());
    tree.meta_.root = root->page_id();
    tree.meta_.height = 1;
    pool->UnpinPage(root->page_id(), /*dirty=*/true);
    PRIX_RETURN_NOT_OK(tree.SaveMeta());
    return tree;
  }

  /// Opens an existing tree whose meta page is `meta_page_id`.
  /// `compressed_leaves` must match what the tree was created with; a
  /// mismatch surfaces as Corruption at the first leaf fetch (the per-page
  /// format byte disagrees), never as silently misread entries.
  static Result<BPlusTree> Open(BufferPool* pool, PageId meta_page_id,
                                Compare cmp = Compare(),
                                bool compressed_leaves = false) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    tree.compressed_ = compressed_leaves;
    tree.meta_page_id_ = meta_page_id;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool->FetchPage(meta_page_id));
    {
      PageGuard guard(pool, meta_page);
      std::memcpy(&tree.meta_, meta_page->data(), sizeof(Meta));
    }
    if (tree.meta_.magic != kMetaMagic) {
      return Status::Corruption("B+-tree meta page " +
                                std::to_string(meta_page_id) +
                                ": bad magic (not a B+-tree meta page)");
    }
    if (tree.meta_.root == kInvalidPage || tree.meta_.height == 0) {
      return Status::Corruption("B+-tree meta page " +
                                std::to_string(meta_page_id) + " has no root");
    }
    return tree;
  }

  PageId meta_page_id() const { return meta_page_id_; }
  uint64_t num_entries() const { return meta_.num_entries; }
  uint32_t height() const { return meta_.height; }
  bool compressed_leaves() const { return compressed_; }

  /// Installs (or, with nullptr, removes) the copy-on-write context. With a
  /// context set, every mutation copies committed pages aside first and the
  /// meta page id CHANGES on the first SaveMeta of the transaction — the
  /// caller must re-record meta_page_id() when it publishes new roots.
  void SetCow(CowContext* cow) { cow_ = cow; }

  /// Inserts (key, value). Fails with AlreadyExists on duplicate key.
  Status Insert(const Key& key, const Value& value) {
    SplitResult split;
    PageId new_root = meta_.root;
    PRIX_RETURN_NOT_OK(InsertRecursive(meta_.root,
                                       static_cast<int>(meta_.height) - 1,
                                       key, value, &split, &new_root));
    meta_.root = new_root;
    if (split.happened) {
      // Grow a new root: children are the old root and the split sibling.
      PRIX_ASSIGN_OR_RETURN(Page * new_root_page, AllocNode());
      InitNode(new_root_page, /*is_leaf=*/false, /*level=*/meta_.height);
      SetExtra(new_root_page, meta_.root);
      SetCount(new_root_page, 1);
      WriteInternalEntry(new_root_page, 0, split.separator, split.right);
      meta_.root = new_root_page->page_id();
      ++meta_.height;
      pool_->UnpinPage(new_root_page->page_id(), /*dirty=*/true);
    }
    ++meta_.num_entries;
    return SaveMeta();
  }

  /// Point lookup. Returns NotFound if absent.
  /// Node-visit charges are batched per descent (one TLS access at the
  /// leaf); a fetch error loses that descent's node count, never its I/O.
  Result<Value> Get(const Key& key) const {
    PageId node = meta_.root;
    int level = static_cast<int>(meta_.height) - 1;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);
      PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        if (compressed_) {
          std::vector<LeafEntryKV> entries;
          PRIX_RETURN_NOT_OK(DecodeCompressedLeaf(page, node, &entries));
          auto it = LowerBoundEntries(entries, key);
          if (it != entries.end() && !cmp_(key, it->key)) return it->value;
          return Status::NotFound("key not in tree");
        }
        int idx = LeafLowerBound(page, key);
        if (idx < Count(page)) {
          Key k;
          Value v;
          ReadLeafEntry(page, idx, &k, &v);
          if (!cmp_(key, k) && !cmp_(k, key)) return v;
        }
        return Status::NotFound("key not in tree");
      }
      node = ChildForKey(page, key);
      --level;
    }
  }

  /// Removes `key`. Returns NotFound if absent — checked before any page is
  /// mutated or copied, so a NotFound delete leaves no trace. A leaf that
  /// becomes empty is unlinked from its parent and its page freed (into the
  /// CowContext when one is installed), cascading up through internal nodes
  /// that lose their last child; the root collapses when it is an internal
  /// node with a single remaining child. An empty tree keeps one empty root
  /// leaf, exactly as Create made it — iteration relies on no OTHER leaf
  /// ever being empty.
  Status Delete(const Key& key) {
    PageId new_root = meta_.root;
    bool freed = false;
    PRIX_RETURN_NOT_OK(DeleteRecursive(meta_.root,
                                       static_cast<int>(meta_.height) - 1,
                                       /*is_root=*/true, key, &new_root,
                                       &freed));
    meta_.root = new_root;
    if (freed) {
      // The whole tree emptied: recreate the empty root leaf.
      PRIX_ASSIGN_OR_RETURN(Page * root, AllocNode());
      InitNode(root, /*is_leaf=*/true, /*level=*/0, LeafFormatByte());
      meta_.root = root->page_id();
      meta_.height = 1;
      pool_->UnpinPage(root->page_id(), /*dirty=*/true);
    } else {
      PRIX_RETURN_NOT_OK(CollapseRoot());
    }
    --meta_.num_entries;
    return SaveMeta();
  }

  /// Forward iterator over (key, value) pairs in key order.
  ///
  /// Each leaf is decoded/copied into an owned cache on arrival and its pin
  /// dropped immediately, so iteration never holds a page pin across user
  /// code. Advancing past a leaf does NOT follow the on-page next-leaf
  /// chain: copy-on-write writers leave those pointers stale by design (a
  /// superseded leaf's left neighbor still names the old page), so the
  /// iterator instead remembers, from every internal node it descended
  /// through, the child subtrees to the right of its path and jumps to the
  /// nearest such subtree's leftmost leaf. Under the snapshot protocol all
  /// of those page ids stay valid as long as the reader's snapshot is
  /// pinned; no page a concurrent writer touches is ever reachable from
  /// this iterator's root.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return pos_ < cache_.size(); }
    const Key& key() const { return cache_[pos_].key; }
    const Value& value() const { return cache_[pos_].value; }

    /// Advances to the next entry; invalidates at the end.
    Status Next() {
      PRIX_DCHECK(Valid());
      ++pos_;
      if (pos_ < cache_.size()) return Status::OK();
      if (pending_.empty()) {
        cache_.clear();
        pos_ = 0;
        return Status::OK();  // end of tree
      }
      PendingSubtree next = pending_.back();
      pending_.pop_back();
      return DescendFrom(next.id, next.level, /*seek_key=*/nullptr);
    }

   private:
    friend class BPlusTree;

    /// An internal-node child to the right of the descent path; everything
    /// under it is greater than every key the iterator has produced.
    struct PendingSubtree {
      PageId id;
      int level;
    };

    /// Descends from `node` (at `level`) to the leaf holding the first key
    /// >= *seek_key (the subtree's leftmost leaf when null) and fills the
    /// cache. Right-sibling children of every internal node on the path are
    /// stacked rightmost-first, so the nearest unexplored subtree ends on
    /// top. If the reached leaf has no entry at or after the position, the
    /// descent continues into the next pending subtree until an entry or
    /// the end of the tree is found.
    Status DescendFrom(PageId node, int level, const Key* seek_key) {
      cache_.clear();
      pos_ = 0;
      while (true) {
        // A corrupt child pointer can form a cycle the per-node checks
        // cannot see (every node in it is individually valid). An honest
        // traversal fetches each tree node at most once over the whole
        // iteration, so the lifetime total is bounded by the file size.
        if (++hops_ > tree_->pool_->disk()->num_pages()) {
          return Status::Corruption(
              "B+-tree iteration does not terminate (cycle via page " +
              std::to_string(node) + ")");
        }
        PRIX_ASSIGN_OR_RETURN(Page * page, tree_->pool_->FetchPage(node));
        ChargeBtreeNode();
        PageGuard guard(tree_->pool_, page);
        PRIX_RETURN_NOT_OK(tree_->CheckNode(page, node, level));
        if (IsLeaf(page)) {
          PRIX_RETURN_NOT_OK(tree_->FillCache(page, node, &cache_));
          guard.Release();
          pos_ = seek_key == nullptr
                     ? 0
                     : static_cast<size_t>(
                           tree_->LowerBoundEntries(cache_, *seek_key) -
                           cache_.begin());
          if (pos_ < cache_.size()) return Status::OK();
          if (pending_.empty()) {
            cache_.clear();
            pos_ = 0;
            return Status::OK();  // end of tree
          }
          node = pending_.back().id;
          level = pending_.back().level;
          pending_.pop_back();
          seek_key = nullptr;  // everything there is greater anyway
          continue;
        }
        int count = Count(page);
        int slot = seek_key == nullptr
                       ? 0
                       : tree_->ChildSlotForKey(page, *seek_key);
        for (int s = count; s > slot; --s) {
          pending_.push_back(PendingSubtree{ChildAtSlot(page, s), level - 1});
        }
        node = ChildAtSlot(page, slot);
        guard.Release();
        --level;
      }
    }

    const BPlusTree* tree_ = nullptr;
    std::vector<LeafEntryKV> cache_;  ///< current leaf, copied/decoded out
    size_t pos_ = 0;                  ///< position within cache_
    std::vector<PendingSubtree> pending_;  ///< unexplored subtrees, nearest last
    uint64_t hops_ = 0;
  };

  /// Iterator positioned at the first entry with key >= `key`.
  Result<Iterator> Seek(const Key& key) const {
    Iterator it;
    it.tree_ = this;
    PRIX_RETURN_NOT_OK(it.DescendFrom(
        meta_.root, static_cast<int>(meta_.height) - 1, &key));
    return it;
  }

  /// Iterator positioned at the smallest entry.
  Result<Iterator> SeekToFirst() const {
    Iterator it;
    it.tree_ = this;
    PRIX_RETURN_NOT_OK(it.DescendFrom(
        meta_.root, static_cast<int>(meta_.height) - 1, /*seek_key=*/nullptr));
    return it;
  }

  /// Structural scrub/salvage walk: visits every node reachable from the
  /// root via internal child pointers (NOT the next-leaf chain, which
  /// corruption can cycle), calling `emit(key, value) -> Status` for each
  /// leaf entry in tree order and `issue(PageId, const Status&,
  /// const std::string& path)` for every unreadable or structurally invalid
  /// node, whose subtree is then skipped rather than aborting the walk. A
  /// visited set makes re-converging (shared or cyclic) child pointers an
  /// issue instead of an infinite walk. Only an `emit` failure (the salvage
  /// destination broke) aborts with its non-OK Status. A compressed leaf
  /// whose payload fails to decode is issued and skipped like any other
  /// invalid node.
  template <typename EmitFn, typename IssueFn>
  Status WalkReachable(EmitFn emit, IssueFn issue,
                       BtreeScrubStats* stats) const {
    std::unordered_set<PageId> visited;
    return WalkNode(meta_.root, static_cast<int>(meta_.height) - 1, "root",
                    &visited, emit, issue, stats);
  }

  // Exposed for tests.
  static constexpr int LeafCapacity() { return kLeafCapacity; }
  static constexpr int InternalCapacity() { return kInternalCapacity; }
  static constexpr size_t CompressedInsertLimit() {
    return kCompressedInsertLimit;
  }
  static constexpr size_t MaxEntryEncoded() { return kMaxEntryEncoded; }

 private:
  static constexpr uint16_t kNodeMagic = 0xb7e3;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kLeafStride = sizeof(Key) + sizeof(Value);
  static constexpr size_t kInternalStride = sizeof(Key) + sizeof(PageId);
  static constexpr int kLeafCapacity =
      static_cast<int>((kPageUsable - kHeaderSize) / kLeafStride);
  static constexpr int kInternalCapacity =
      static_cast<int>((kPageUsable - kHeaderSize) / kInternalStride);
  static_assert(kLeafCapacity >= 4, "key/value too large for a page");
  static_assert(kInternalCapacity >= 4, "key too large for a page");

  // ---- compressed (v3) leaf format ----
  static constexpr uint8_t kLeafFormatFixed = 0;
  static constexpr uint8_t kLeafFormatCompressed = 1;
  /// Bytes available to the encoded entry stream.
  static constexpr size_t kLeafPayloadMax = kPageUsable - kHeaderSize;
  static constexpr size_t kKeyWords = (sizeof(Key) + 7) / 8;
  static constexpr size_t kValueWords = (sizeof(Value) + 7) / 8;
  static constexpr size_t kEntryWords = kKeyWords + kValueWords;
  /// Worst/best case encoded entry size: 10 / 1 byte(s) per word.
  static constexpr size_t kMaxEntryEncoded = kEntryWords * kMaxVarint64Bytes;
  static constexpr size_t kMinEntryEncoded = kEntryWords;
  /// Insert-side fill limit: one max-size entry of headroom below the page
  /// so the delete path (which can only grow the encoding by less than one
  /// max-size entry) always re-encodes in place. See the class comment.
  static constexpr size_t kCompressedInsertLimit =
      kLeafPayloadMax - kMaxEntryEncoded;
  static_assert(kCompressedInsertLimit >= 4 * kMaxEntryEncoded,
                "key/value too large for a compressed leaf page");

  struct SplitResult {
    bool happened = false;
    Key separator{};
    PageId right = kInvalidPage;
  };

  uint8_t LeafFormatByte() const {
    return compressed_ ? kLeafFormatCompressed : kLeafFormatFixed;
  }

  // ---- node accessors (memcpy-based to sidestep alignment issues) ----
  static void InitNode(Page* page, bool is_leaf, uint32_t level,
                       uint8_t leaf_format = kLeafFormatFixed) {
    std::memset(page->data(), 0, kHeaderSize);
    uint16_t magic = kNodeMagic;
    std::memcpy(page->data(), &magic, sizeof(magic));
    page->data()[2] = is_leaf ? 1 : 0;
    page->data()[3] = static_cast<char>(level);
    page->data()[6] = static_cast<char>(leaf_format);
    PageId invalid = kInvalidPage;
    std::memcpy(page->data() + 8, &invalid, sizeof(PageId));
    SetPageType(page->data(), PageType::kBtreeNode);
  }
  static bool IsLeaf(const Page* page) { return page->data()[2] == 1; }
  static int Level(const Page* page) {
    return static_cast<uint8_t>(page->data()[3]);
  }
  static uint8_t LeafFormat(const Page* page) {
    return static_cast<uint8_t>(page->data()[6]);
  }
  static int Count(const Page* page) {
    uint16_t c;
    std::memcpy(&c, page->data() + 4, sizeof(c));
    return c;
  }
  static void SetCount(Page* page, int count) {
    uint16_t c = static_cast<uint16_t>(count);
    std::memcpy(page->data() + 4, &c, sizeof(c));
  }
  /// Leaf: next-leaf pointer. Internal: leftmost child.
  static PageId Extra(const Page* page) {
    PageId id;
    std::memcpy(&id, page->data() + 8, sizeof(id));
    return id;
  }
  static void SetExtra(Page* page, PageId id) {
    std::memcpy(page->data() + 8, &id, sizeof(id));
  }
  /// Compressed leaf: byte length of the encoded entry stream.
  static uint16_t PayloadLen(const Page* page) {
    uint16_t n;
    std::memcpy(&n, page->data() + 12, sizeof(n));
    return n;
  }
  static void SetPayloadLen(Page* page, size_t n) {
    uint16_t len = static_cast<uint16_t>(n);
    std::memcpy(page->data() + 12, &len, sizeof(len));
  }

  /// Structural validation of a just-fetched node: magic, leaf flag/format,
  /// level coherence, and an entry count within capacity — together these
  /// bound every entry offset the accessors below will touch. For a
  /// compressed leaf the capacity bound is payload-relative (count entries
  /// need at least count * kMinEntryEncoded encoded bytes) and the recorded
  /// payload length must fit the page, which bounds the decoder's cursor.
  /// The per-page format byte must match the tree's mode, so opening a v3
  /// index without its catalog flag (or vice versa) fails loudly here
  /// instead of misreading entries. `expected_level` (from the descent
  /// counter; -1 skips the check) catches child pointers that jump across
  /// levels or into a cycle: the counter strictly decreases, so any descent
  /// ends within `height` steps.
  Status CheckNode(const Page* page, PageId id, int expected_level) const {
    uint16_t magic;
    std::memcpy(&magic, page->data(), sizeof(magic));
    const std::string where = "B+-tree node page " + std::to_string(id);
    if (magic != kNodeMagic) {
      return Status::Corruption(where + ": bad node magic");
    }
    uint8_t leaf_flag = static_cast<uint8_t>(page->data()[2]);
    if (leaf_flag > 1) {
      return Status::Corruption(where + ": bad leaf flag " +
                                std::to_string(leaf_flag));
    }
    int level = Level(page);
    if ((level == 0) != (leaf_flag == 1)) {
      return Status::Corruption(where + ": leaf flag " +
                                std::to_string(leaf_flag) +
                                " contradicts level " + std::to_string(level));
    }
    if (expected_level >= 0 && level != expected_level) {
      return Status::Corruption(
          where + ": level " + std::to_string(level) + " where " +
          std::to_string(expected_level) +
          " was expected (corrupt child pointer?)");
    }
    int count = Count(page);
    if (leaf_flag == 1) {
      uint8_t format = LeafFormat(page);
      if (format > kLeafFormatCompressed) {
        return Status::Corruption(where + ": bad leaf format " +
                                  std::to_string(format));
      }
      if (format != LeafFormatByte()) {
        return Status::Corruption(
            where + ": leaf format " + std::to_string(format) + " in a " +
            (compressed_ ? "compressed" : "fixed-format") +
            " tree (index format mismatch?)");
      }
      if (format == kLeafFormatCompressed) {
        size_t plen = PayloadLen(page);
        if (plen > kLeafPayloadMax) {
          return Status::Corruption(
              where + ": compressed payload length " + std::to_string(plen) +
              " exceeds page capacity " + std::to_string(kLeafPayloadMax));
        }
        if (static_cast<size_t>(count) * kMinEntryEncoded > plen) {
          return Status::Corruption(
              where + ": entry count " + std::to_string(count) +
              " cannot fit in " + std::to_string(plen) + " encoded bytes");
        }
        return Status::OK();
      }
      if (count > kLeafCapacity) {
        return Status::Corruption(where + ": entry count " +
                                  std::to_string(count) +
                                  " exceeds capacity " +
                                  std::to_string(kLeafCapacity));
      }
      return Status::OK();
    }
    if (LeafFormat(page) != kLeafFormatFixed) {
      return Status::Corruption(where + ": internal node with leaf format " +
                                std::to_string(LeafFormat(page)));
    }
    if (count > kInternalCapacity) {
      return Status::Corruption(where + ": entry count " +
                                std::to_string(count) + " exceeds capacity " +
                                std::to_string(kInternalCapacity));
    }
    return Status::OK();
  }

  static void ReadLeafEntry(const Page* page, int idx, Key* key, Value* val) {
    const char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(val, base + sizeof(Key), sizeof(Value));
  }
  static void WriteLeafEntry(Page* page, int idx, const Key& key,
                             const Value& val) {
    char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &val, sizeof(Value));
  }
  static void ReadInternalEntry(const Page* page, int idx, Key* key,
                                PageId* child) {
    const char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(child, base + sizeof(Key), sizeof(PageId));
  }
  static void WriteInternalEntry(Page* page, int idx, const Key& key,
                                 PageId child) {
    char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &child, sizeof(PageId));
  }

  // ---- compressed leaf codec ----
  static void WordsFromEntry(const LeafEntryKV& e, uint64_t* words) {
    char buf[kEntryWords * 8] = {};
    std::memcpy(buf, &e.key, sizeof(Key));
    std::memcpy(buf + kKeyWords * 8, &e.value, sizeof(Value));
    std::memcpy(words, buf, kEntryWords * 8);
  }
  static LeafEntryKV EntryFromWords(const uint64_t* words) {
    char buf[kEntryWords * 8];
    std::memcpy(buf, words, kEntryWords * 8);
    LeafEntryKV e;
    std::memcpy(&e.key, buf, sizeof(Key));
    std::memcpy(&e.value, buf + kKeyWords * 8, sizeof(Value));
    return e;
  }

  /// Appends entry `e`'s delta code versus `prev` to `out` and rolls `prev`
  /// forward. Returns the encoded byte count.
  static size_t EncodeEntryDelta(const LeafEntryKV& e, uint64_t* prev,
                                 std::vector<char>* out) {
    uint64_t words[kEntryWords];
    WordsFromEntry(e, words);
    size_t before = out->size();
    for (size_t w = 0; w < kEntryWords; ++w) {
      PutVarint64(out, ZigzagEncode64(
                           static_cast<int64_t>(words[w] - prev[w])));
      prev[w] = words[w];
    }
    return out->size() - before;
  }

  /// Encodes the whole entry run. `sizes`, if non-null, receives each
  /// entry's encoded byte count (used to pick byte-balanced split points).
  static void EncodeCompressedLeaf(const std::vector<LeafEntryKV>& entries,
                                   std::vector<char>* out,
                                   std::vector<size_t>* sizes = nullptr) {
    out->clear();
    if (sizes != nullptr) {
      sizes->clear();
      sizes->reserve(entries.size());
    }
    uint64_t prev[kEntryWords] = {};
    for (const LeafEntryKV& e : entries) {
      size_t n = EncodeEntryDelta(e, prev, out);
      if (sizes != nullptr) sizes->push_back(n);
    }
  }

  /// Decodes a compressed leaf's payload into `out`. Every varint read is
  /// bounds-checked against the recorded payload length, and the stream
  /// must consume it exactly — corrupt counts or lengths surface as
  /// Corruption, never an overread.
  Status DecodeCompressedLeaf(const Page* page, PageId id,
                              std::vector<LeafEntryKV>* out) const {
    int count = Count(page);
    size_t plen = PayloadLen(page);
    const std::string where =
        "B+-tree compressed leaf page " + std::to_string(id);
    if (plen > kLeafPayloadMax) {
      return Status::Corruption(where + ": payload length " +
                                std::to_string(plen) + " exceeds capacity");
    }
    const char* p = page->data() + kHeaderSize;
    const char* end = p + plen;
    out->clear();
    out->reserve(count);
    uint64_t prev[kEntryWords] = {};
    for (int i = 0; i < count; ++i) {
      uint64_t words[kEntryWords];
      for (size_t w = 0; w < kEntryWords; ++w) {
        uint64_t enc;
        if (!GetVarint64(&p, end, &enc)) {
          return Status::Corruption(where + ": truncated or invalid varint in entry " +
                                    std::to_string(i));
        }
        words[w] = prev[w] + static_cast<uint64_t>(ZigzagDecode64(enc));
        prev[w] = words[w];
      }
      out->push_back(EntryFromWords(words));
    }
    if (p != end) {
      return Status::Corruption(where + ": " +
                                std::to_string(end - p) +
                                " trailing bytes after the last entry");
    }
    return Status::OK();
  }

  /// Overwrites a compressed leaf's entry stream (header fields other than
  /// count/payload-length are preserved).
  static void WriteCompressedLeaf(Page* page,
                                  const std::vector<char>& payload,
                                  size_t count) {
    PRIX_DCHECK(payload.size() <= kLeafPayloadMax);
    SetCount(page, static_cast<int>(count));
    SetPayloadLen(page, payload.size());
    if (!payload.empty()) {
      std::memcpy(page->data() + kHeaderSize, payload.data(), payload.size());
    }
  }

  /// First decoded entry with key >= `key`.
  typename std::vector<LeafEntryKV>::const_iterator LowerBoundEntries(
      const std::vector<LeafEntryKV>& entries, const Key& key) const {
    return std::lower_bound(
        entries.begin(), entries.end(), key,
        [this](const LeafEntryKV& e, const Key& k) { return cmp_(e.key, k); });
  }

  /// First index whose key is >= `key` in a fixed-format leaf.
  int LeafLowerBound(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      Value v;
      ReadLeafEntry(page, mid, &k, &v);
      if (cmp_(k, key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Copies (fixed) or decodes (compressed) a leaf's entries into `out`.
  Status FillCache(const Page* page, PageId id,
                   std::vector<LeafEntryKV>* out) const {
    if (compressed_) return DecodeCompressedLeaf(page, id, out);
    int count = Count(page);
    out->clear();
    out->reserve(count);
    for (int i = 0; i < count; ++i) {
      LeafEntryKV e;
      ReadLeafEntry(page, i, &e.key, &e.value);
      out->push_back(e);
    }
    return Status::OK();
  }

  /// Child slot to descend into for `key`: slot 0 is the leftmost child
  /// (Extra), slot i > 0 is entry i-1's child. Entries hold keys >=
  /// separator, so this is the upper bound over separators.
  int ChildSlotForKey(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(key, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  static PageId ChildAtSlot(const Page* page, int slot) {
    if (slot == 0) return Extra(page);
    Key k;
    PageId c;
    ReadInternalEntry(page, slot - 1, &k, &c);
    return c;
  }

  static void SetChildAtSlot(Page* page, int slot, PageId child) {
    if (slot == 0) {
      SetExtra(page, child);
      return;
    }
    Key k;
    PageId c;
    ReadInternalEntry(page, slot - 1, &k, &c);
    WriteInternalEntry(page, slot - 1, k, child);
  }

  PageId ChildForKey(const Page* page, const Key& key) const {
    return ChildAtSlot(page, ChildSlotForKey(page, key));
  }

  /// Allocates a node page, registering it as transaction-fresh.
  Result<Page*> AllocNode() {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
    if (cow_ != nullptr) cow_->MarkFresh(page->page_id());
    return page;
  }

  /// The copy-on-write barrier: with a CowContext installed, a page that a
  /// committed generation can reach is copied to a fresh page before it is
  /// written, the original marked superseded; pages this transaction
  /// allocated are edited in place. `page`/`guard` are re-pointed at the
  /// writable copy. Without a context this is a no-op (bulk builds own
  /// their pages outright).
  Status MakeMutable(Page** page, PageGuard* guard) {
    if (cow_ == nullptr || cow_->IsFresh((*page)->page_id())) {
      return Status::OK();
    }
    PRIX_ASSIGN_OR_RETURN(Page * copy, pool_->NewPage());
    cow_->MarkFresh(copy->page_id());
    PageGuard copy_guard(pool_, copy);
    std::memcpy(copy->data(), (*page)->data(), kPageSize);
    cow_->MarkFreed((*page)->page_id());
    *page = copy;
    *guard = std::move(copy_guard);
    guard->MarkDirty();
    return Status::OK();
  }

  Status SaveMeta() {
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool_->FetchPage(meta_page_id_));
    PageGuard guard(pool_, meta_page);
    // The meta page follows the same COW rule as every node: snapshots of
    // older generations keep reading their own (root, height) through their
    // own meta page, so it must never be rewritten in place mid-transaction.
    PRIX_RETURN_NOT_OK(MakeMutable(&meta_page, &guard));
    if (meta_page->page_id() != meta_page_id_) {
      meta_page_id_ = meta_page->page_id();
      SetPageType(meta_page->data(), PageType::kBtreeMeta);
    }
    std::memcpy(meta_page->data(), &meta_, sizeof(Meta));
    guard.MarkDirty();
    return Status::OK();
  }

  template <typename EmitFn, typename IssueFn>
  Status WalkNode(PageId node, int level, const std::string& path,
                  std::unordered_set<PageId>* visited, EmitFn& emit,
                  IssueFn& issue, BtreeScrubStats* stats) const {
    if (node == kInvalidPage || !visited->insert(node).second) {
      issue(node,
            Status::Corruption("child pointer revisits page " +
                               std::to_string(node) +
                               " (cycle or shared subtree)"),
            path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    Result<Page*> fetched = pool_->FetchPage(node);
    if (!fetched.ok()) {
      issue(node, fetched.status(), path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    PageGuard guard(pool_, *fetched);
    Page* page = *fetched;
    Status st = CheckNode(page, node, level);
    if (!st.ok()) {
      issue(node, st, path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    ++stats->nodes_visited;
    int count = Count(page);
    if (IsLeaf(page)) {
      if (compressed_) {
        std::vector<LeafEntryKV> entries;
        Status decode_st = DecodeCompressedLeaf(page, node, &entries);
        if (!decode_st.ok()) {
          issue(node, decode_st, path);
          ++stats->subtrees_skipped;
          return Status::OK();
        }
        for (const LeafEntryKV& e : entries) {
          ++stats->entries_seen;
          PRIX_RETURN_NOT_OK(emit(e.key, e.value));
        }
        return Status::OK();
      }
      for (int i = 0; i < count; ++i) {
        Key k;
        Value v;
        ReadLeafEntry(page, i, &k, &v);
        ++stats->entries_seen;
        PRIX_RETURN_NOT_OK(emit(k, v));
      }
      return Status::OK();
    }
    // Children: the leftmost child, then one per entry. Release the pin
    // before descending (child ids are copied out first) so the walk holds
    // one pin at a time, like a query descent.
    std::vector<PageId> children;
    children.reserve(static_cast<size_t>(count) + 1);
    children.push_back(Extra(page));
    for (int i = 0; i < count; ++i) {
      Key k;
      PageId c;
      ReadInternalEntry(page, i, &k, &c);
      children.push_back(c);
    }
    guard.Release();
    for (size_t i = 0; i < children.size(); ++i) {
      PRIX_RETURN_NOT_OK(WalkNode(children[i], level - 1,
                                  path + ">" + std::to_string(children[i]),
                                  visited, emit, issue, stats));
    }
    return Status::OK();
  }

  /// Inserts along the descent path. `*out_id` receives the node's id after
  /// the call — under COW a touched node moves to a fresh page, and the
  /// parent must re-point its child slot at the copy.
  Status InsertRecursive(PageId node, int level, const Key& key,
                         const Value& value, SplitResult* split,
                         PageId* out_id) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
    PageGuard guard(pool_, page);
    PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
    *out_id = node;
    if (IsLeaf(page)) {
      if (compressed_) {
        // Duplicate-key detection must precede the COW copy so a failed
        // insert leaves no trace; the decode doubles as the check.
        std::vector<LeafEntryKV> entries;
        PRIX_RETURN_NOT_OK(DecodeCompressedLeaf(page, node, &entries));
        auto pos = LowerBoundEntries(entries, key);
        if (pos != entries.end() && !cmp_(key, pos->key)) {
          return Status::AlreadyExists("duplicate key in B+-tree");
        }
        PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
        *out_id = page->page_id();
        size_t idx = static_cast<size_t>(pos - entries.begin());
        entries.insert(entries.begin() + idx, LeafEntryKV{key, value});
        return FinishCompressedLeafInsert(page, &guard, entries, split);
      }
      int idx = LeafLowerBound(page, key);
      if (idx < Count(page)) {
        Key k;
        Value v;
        ReadLeafEntry(page, idx, &k, &v);
        if (!cmp_(key, k) && !cmp_(k, key)) {
          return Status::AlreadyExists("duplicate key in B+-tree");
        }
      }
      PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
      *out_id = page->page_id();
      return InsertIntoLeaf(page, &guard, key, value, split);
    }
    int slot = ChildSlotForKey(page, key);
    PageId child = ChildAtSlot(page, slot);
    SplitResult child_split;
    PageId child_new = child;
    {
      // Release the parent pin during the recursive descent to keep the
      // pinned set small (depth is re-fetched only when it must change).
      guard.Release();
      PRIX_RETURN_NOT_OK(InsertRecursive(child, level - 1, key, value,
                                         &child_split, &child_new));
    }
    if (!child_split.happened && child_new == child) {
      split->happened = false;
      return Status::OK();
    }
    PRIX_ASSIGN_OR_RETURN(page, pool_->FetchPage(node));
    guard = PageGuard(pool_, page);
    PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
    *out_id = page->page_id();
    if (child_new != child) {
      SetChildAtSlot(page, slot, child_new);
      guard.MarkDirty();
    }
    if (!child_split.happened) {
      split->happened = false;
      return Status::OK();
    }
    return InsertIntoInternal(page, &guard, child_split.separator,
                              child_split.right, split);
  }

  Status InsertIntoLeaf(Page* page, PageGuard* guard, const Key& key,
                        const Value& value, SplitResult* split) {
    int idx = LeafLowerBound(page, key);
    int count = Count(page);
    if (idx < count) {
      Key k;
      Value v;
      ReadLeafEntry(page, idx, &k, &v);
      if (!cmp_(key, k) && !cmp_(k, key)) {
        return Status::AlreadyExists("duplicate key in B+-tree");
      }
    }
    if (count < kLeafCapacity) {
      char* base = page->data() + kHeaderSize + idx * kLeafStride;
      std::memmove(base + kLeafStride, base, (count - idx) * kLeafStride);
      WriteLeafEntry(page, idx, key, value);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split: left keeps the lower half, right gets the rest.
    PRIX_ASSIGN_OR_RETURN(Page * right, AllocNode());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/true, /*level=*/0);
    int left_count = (count + 1) / 2;
    int right_count = count - left_count;
    std::memcpy(right->data() + kHeaderSize,
                page->data() + kHeaderSize + left_count * kLeafStride,
                right_count * kLeafStride);
    SetCount(right, right_count);
    SetCount(page, left_count);
    SetExtra(right, Extra(page));
    SetExtra(page, right->page_id());
    guard->MarkDirty();
    right_guard.MarkDirty();
    // Insert into the proper half.
    Key right_first;
    Value unused;
    ReadLeafEntry(right, 0, &right_first, &unused);
    SplitResult ignore;
    if (cmp_(key, right_first)) {
      PRIX_RETURN_NOT_OK(InsertIntoLeaf(page, guard, key, value, &ignore));
    } else {
      PRIX_RETURN_NOT_OK(
          InsertIntoLeaf(right, &right_guard, key, value, &ignore));
    }
    PRIX_DCHECK(!ignore.happened);
    split->happened = true;
    ReadLeafEntry(right, 0, &split->separator, &unused);
    split->right = right->page_id();
    return Status::OK();
  }

  /// Compressed-leaf insert, after the caller decoded the leaf, verified
  /// uniqueness, COW'd the page, and spliced the new entry into `entries`:
  /// re-encode in place, or — past the insert fill limit — split at the
  /// encoded-byte midpoint so both halves land near half full regardless of
  /// how unevenly the deltas compress.
  Status FinishCompressedLeafInsert(Page* page, PageGuard* guard,
                                    const std::vector<LeafEntryKV>& entries,
                                    SplitResult* split) {
    std::vector<char> payload;
    std::vector<size_t> sizes;
    EncodeCompressedLeaf(entries, &payload, &sizes);
    if (payload.size() <= kCompressedInsertLimit) {
      WriteCompressedLeaf(page, payload, entries.size());
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Pick the split index whose byte prefix first reaches half the run.
    size_t n = entries.size();
    PRIX_DCHECK(n >= 2);
    size_t half = payload.size() / 2;
    size_t split_idx = 1, prefix = sizes[0];
    while (split_idx < n - 1 && prefix < half) {
      prefix += sizes[split_idx];
      ++split_idx;
    }
    std::vector<LeafEntryKV> left_entries(entries.begin(),
                                          entries.begin() + split_idx);
    std::vector<LeafEntryKV> right_entries(entries.begin() + split_idx,
                                           entries.end());
    std::vector<char> left_payload, right_payload;
    EncodeCompressedLeaf(left_entries, &left_payload);
    EncodeCompressedLeaf(right_entries, &right_payload);
    // Each half is about half the bytes plus one re-based first entry; a
    // page is dozens of max-size entries wide, so this cannot trip unless
    // the split math is broken.
    if (left_payload.size() > kCompressedInsertLimit ||
        right_payload.size() > kCompressedInsertLimit) {
      return Status::Internal("compressed leaf split produced an oversized half");
    }
    PRIX_ASSIGN_OR_RETURN(Page * right, AllocNode());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/true, /*level=*/0, kLeafFormatCompressed);
    WriteCompressedLeaf(right, right_payload, right_entries.size());
    SetExtra(right, Extra(page));
    WriteCompressedLeaf(page, left_payload, left_entries.size());
    SetExtra(page, right->page_id());
    guard->MarkDirty();
    right_guard.MarkDirty();
    split->happened = true;
    split->separator = right_entries.front().key;
    split->right = right->page_id();
    return Status::OK();
  }

  /// Deletes along the descent path, unlinking nodes that empty out.
  /// `*out_id` reports the node's id after the call (it moves under COW);
  /// `*out_freed` reports that the node became empty and was freed, so the
  /// parent must drop its child slot entirely. NotFound is established at
  /// the leaf BEFORE any page is copied or written.
  ///
  /// Compressed-leaf note: removal can grow the encoding (the successor
  /// re-deltas against a farther predecessor) by strictly less than one
  /// max-size entry, which the insert-side headroom
  /// (kCompressedInsertLimit) covers after any insert. A chain of growing
  /// deletes could in principle exhaust it; that is unreachable for sorted
  /// composite keys, and if it ever trips the leaf is left untouched and an
  /// Internal status says to rebuild.
  Status DeleteRecursive(PageId node, int level, bool is_root, const Key& key,
                         PageId* out_id, bool* out_freed) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
    PageGuard guard(pool_, page);
    PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
    *out_id = node;
    *out_freed = false;
    if (IsLeaf(page)) {
      if (compressed_) {
        std::vector<LeafEntryKV> entries;
        PRIX_RETURN_NOT_OK(DecodeCompressedLeaf(page, node, &entries));
        auto pos = LowerBoundEntries(entries, key);
        if (pos == entries.end() || cmp_(key, pos->key)) {
          return Status::NotFound("key not in tree");
        }
        std::vector<LeafEntryKV> remaining(entries.cbegin(), pos);
        remaining.insert(remaining.end(), pos + 1, entries.cend());
        std::vector<char> payload;
        EncodeCompressedLeaf(remaining, &payload);
        if (payload.size() > kLeafPayloadMax) {
          return Status::Internal(
              "compressed leaf re-encode after delete exceeds the page; "
              "rebuild the index to reclaim space");
        }
        PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
        WriteCompressedLeaf(page, payload, remaining.size());
        guard.MarkDirty();
      } else {
        int idx = LeafLowerBound(page, key);
        int count = Count(page);
        if (idx >= count) return Status::NotFound("key not in tree");
        Key k;
        Value v;
        ReadLeafEntry(page, idx, &k, &v);
        if (cmp_(key, k) || cmp_(k, key)) {
          return Status::NotFound("key not in tree");
        }
        PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
        // Shift the tail left by one entry.
        char* base = page->data() + kHeaderSize + idx * kLeafStride;
        std::memmove(base, base + kLeafStride,
                     (count - idx - 1) * kLeafStride);
        SetCount(page, count - 1);
        guard.MarkDirty();
      }
      *out_id = page->page_id();
      if (Count(page) == 0 && !is_root) {
        // Unlink the emptied leaf: iteration assumes no reachable non-root
        // leaf is ever empty, so the parent must drop this child.
        *out_freed = true;
        if (cow_ != nullptr) cow_->MarkFreed(page->page_id());
      }
      return Status::OK();
    }
    int slot = ChildSlotForKey(page, key);
    PageId child = ChildAtSlot(page, slot);
    guard.Release();
    PageId child_new = child;
    bool child_freed = false;
    PRIX_RETURN_NOT_OK(DeleteRecursive(child, level - 1, /*is_root=*/false,
                                       key, &child_new, &child_freed));
    if (!child_freed && child_new == child) return Status::OK();
    PRIX_ASSIGN_OR_RETURN(page, pool_->FetchPage(node));
    guard = PageGuard(pool_, page);
    PRIX_RETURN_NOT_OK(MakeMutable(&page, &guard));
    *out_id = page->page_id();
    if (!child_freed) {
      SetChildAtSlot(page, slot, child_new);
      guard.MarkDirty();
      return Status::OK();
    }
    int count = Count(page);
    if (slot == 0) {
      if (count == 0) {
        // The last child is gone: this node frees too (cascading unlink).
        *out_freed = true;
        if (cow_ != nullptr) cow_->MarkFreed(page->page_id());
        return Status::OK();
      }
      // Promote the first entry's child into the leftmost slot. Keys under
      // it are >= its old separator, which only makes the separator bounds
      // looser — descents stay correct because separators merely guide.
      Key k;
      PageId c;
      ReadInternalEntry(page, 0, &k, &c);
      SetExtra(page, c);
      char* base = page->data() + kHeaderSize;
      std::memmove(base, base + kInternalStride,
                   (count - 1) * kInternalStride);
      SetCount(page, count - 1);
    } else {
      char* base = page->data() + kHeaderSize + (slot - 1) * kInternalStride;
      std::memmove(base, base + kInternalStride,
                   (count - slot) * kInternalStride);
      SetCount(page, count - 1);
    }
    guard.MarkDirty();
    return Status::OK();
  }

  /// Shrinks the tree while the root is an internal node with one child.
  Status CollapseRoot() {
    while (meta_.height > 1) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(meta_.root));
      PageGuard guard(pool_, page);
      PRIX_RETURN_NOT_OK(
          CheckNode(page, meta_.root, static_cast<int>(meta_.height) - 1));
      if (IsLeaf(page) || Count(page) > 0) return Status::OK();
      PageId only_child = Extra(page);
      guard.Release();
      if (cow_ != nullptr) cow_->MarkFreed(meta_.root);
      meta_.root = only_child;
      --meta_.height;
    }
    return Status::OK();
  }

  Status InsertIntoInternal(Page* page, PageGuard* guard, const Key& sep,
                            PageId new_child, SplitResult* split) {
    int count = Count(page);
    // Position: first entry with separator > sep.
    int lo = 0, hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(sep, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    int idx = lo;
    if (count < kInternalCapacity) {
      char* base = page->data() + kHeaderSize + idx * kInternalStride;
      std::memmove(base + kInternalStride, base,
                   (count - idx) * kInternalStride);
      WriteInternalEntry(page, idx, sep, new_child);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split the internal node. Gather entries (including the new one) into a
    // scratch array, then redistribute around the median.
    struct Entry {
      Key key;
      PageId child;
    };
    std::vector<Entry> entries(count + 1);
    for (int i = 0; i < count; ++i) {
      ReadInternalEntry(page, i, &entries[i + (i >= idx ? 1 : 0)].key,
                        &entries[i + (i >= idx ? 1 : 0)].child);
    }
    entries[idx] = Entry{sep, new_child};
    int total = count + 1;
    int mid = total / 2;  // entries[mid] moves up
    PRIX_ASSIGN_OR_RETURN(Page * right, AllocNode());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/false, /*level=*/Level(page));
    // Left keeps entries [0, mid); right gets (mid, total) with leftmost
    // child = entries[mid].child.
    SetCount(page, mid);
    for (int i = 0; i < mid; ++i) {
      WriteInternalEntry(page, i, entries[i].key, entries[i].child);
    }
    SetExtra(right, entries[mid].child);
    SetCount(right, total - mid - 1);
    for (int i = mid + 1; i < total; ++i) {
      WriteInternalEntry(right, i - mid - 1, entries[i].key,
                         entries[i].child);
    }
    guard->MarkDirty();
    right_guard.MarkDirty();
    split->happened = true;
    split->separator = entries[mid].key;
    split->right = right->page_id();
    return Status::OK();
  }

  BufferPool* pool_ = nullptr;
  Compare cmp_{};
  PageId meta_page_id_ = kInvalidPage;
  Meta meta_;
  bool compressed_ = false;
  CowContext* cow_ = nullptr;  ///< not owned; null outside write transactions
};

}  // namespace prix

#endif  // PRIX_BTREE_BTREE_H_
