#ifndef PRIX_BTREE_BTREE_H_
#define PRIX_BTREE_BTREE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page_format.h"

namespace prix {

/// Counters from one WalkReachable scrub/salvage pass.
struct BtreeScrubStats {
  uint64_t nodes_visited = 0;
  uint64_t entries_seen = 0;
  uint64_t subtrees_skipped = 0;  ///< unreadable/invalid subtrees not walked
};

/// Counters from one index salvage pass (PrixIndex/VistIndex::Salvage):
/// what made it into the rebuilt index versus what the corruption took.
struct SalvageStats {
  uint64_t entries_recovered = 0;  ///< B+-tree entries re-inserted
  uint64_t entries_dropped = 0;    ///< duplicates a corrupt tree yielded
  uint64_t subtrees_skipped = 0;   ///< poisoned subtrees not walked
  uint64_t records_recovered = 0;  ///< document/sequence records copied
  uint64_t records_lost = 0;       ///< records replaced by placeholders
};

/// Disk-based B+-tree over the buffer pool, templated on trivially copyable
/// key/value types. This is the index structure behind PRIX's Trie-Symbol and
/// Docid indexes and ViST's D-Ancestorship index (the paper used GiST
/// B+-trees, Sec. 6).
///
/// - Keys are unique; callers needing duplicates append a sequence number to
///   the key (all in-tree composite keys do this).
/// - `Compare` is a strict weak order over Key.
/// - Supported operations: Insert, Get, Delete (lazy, no rebalancing),
///   ordered iteration via Iterator with Seek/Next.
///
/// Concurrency (single-writer rule, see DESIGN.md): the read paths — Get,
/// Seek, SeekToFirst, and Iterator traversal — are safe from any number of
/// threads over a thread-safe BufferPool. They hold page pins frame by
/// frame via PageGuard, keep no shared mutable state (the cached `meta_` is
/// written only by Create/Open/Insert/Delete), and never write page
/// payloads. Insert/Delete/Create are NOT safe against any concurrent
/// access to the same tree; index builds must finish, single-threaded,
/// before readers start.
///
/// Corruption defense (DESIGN.md §5g): the page trailer CRC catches bytes
/// the disk changed; the checks here catch bytes that are internally
/// inconsistent anyway (a stale page a misdirected write put in the wrong
/// place still has a valid CRC). Every node fetched is validated by
/// CheckNode — magic, leaf/level coherence, entry count within capacity —
/// and descents track the expected level, so a corrupt child pointer that
/// jumps across levels (or into a cycle) fails in at most `height` steps.
///
/// Node layout (within the kPageUsable payload; the page trailer is the
/// storage layer's):
///   bytes 0..1  : node magic (0xb7e3)
///   byte 2      : is_leaf flag
///   byte 3      : level (leaves are 0, root is height-1)
///   bytes 4..5  : entry count (uint16)
///   bytes 6..7  : reserved
///   bytes 8..11 : leaf: next-leaf PageId; internal: leftmost child PageId
///   bytes 12..15: reserved
///   bytes 16..  : packed entries
/// Leaf entries are (Key, Value); internal entries are (Key, PageId child)
/// where child holds keys >= Key.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class BPlusTree {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  static constexpr uint32_t kMetaMagic = 0xb7ee3e7au;

  /// Persistent tree metadata, kept in the tree's meta page.
  struct Meta {
    uint32_t magic = kMetaMagic;
    PageId root = kInvalidPage;
    uint64_t num_entries = 0;
    uint32_t height = 0;
  };

  BPlusTree() = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Creates an empty tree: allocates a meta page and an empty root leaf.
  static Result<BPlusTree> Create(BufferPool* pool, Compare cmp = Compare()) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool->NewPage());
    tree.meta_page_id_ = meta_page->page_id();
    SetPageType(meta_page->data(), PageType::kBtreeMeta);
    pool->UnpinPage(tree.meta_page_id_, /*dirty=*/true);
    PRIX_ASSIGN_OR_RETURN(Page * root, pool->NewPage());
    InitNode(root, /*is_leaf=*/true, /*level=*/0);
    tree.meta_.root = root->page_id();
    tree.meta_.height = 1;
    pool->UnpinPage(root->page_id(), /*dirty=*/true);
    PRIX_RETURN_NOT_OK(tree.SaveMeta());
    return tree;
  }

  /// Opens an existing tree whose meta page is `meta_page_id`.
  static Result<BPlusTree> Open(BufferPool* pool, PageId meta_page_id,
                                Compare cmp = Compare()) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    tree.meta_page_id_ = meta_page_id;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool->FetchPage(meta_page_id));
    {
      PageGuard guard(pool, meta_page);
      std::memcpy(&tree.meta_, meta_page->data(), sizeof(Meta));
    }
    if (tree.meta_.magic != kMetaMagic) {
      return Status::Corruption("B+-tree meta page " +
                                std::to_string(meta_page_id) +
                                ": bad magic (not a B+-tree meta page)");
    }
    if (tree.meta_.root == kInvalidPage || tree.meta_.height == 0) {
      return Status::Corruption("B+-tree meta page " +
                                std::to_string(meta_page_id) + " has no root");
    }
    return tree;
  }

  PageId meta_page_id() const { return meta_page_id_; }
  uint64_t num_entries() const { return meta_.num_entries; }
  uint32_t height() const { return meta_.height; }

  /// Inserts (key, value). Fails with AlreadyExists on duplicate key.
  Status Insert(const Key& key, const Value& value) {
    SplitResult split;
    PRIX_RETURN_NOT_OK(InsertRecursive(meta_.root,
                                       static_cast<int>(meta_.height) - 1,
                                       key, value, &split));
    if (split.happened) {
      // Grow a new root: children are the old root and the split sibling.
      PRIX_ASSIGN_OR_RETURN(Page * new_root, pool_->NewPage());
      InitNode(new_root, /*is_leaf=*/false, /*level=*/meta_.height);
      SetExtra(new_root, meta_.root);
      SetCount(new_root, 1);
      WriteInternalEntry(new_root, 0, split.separator, split.right);
      meta_.root = new_root->page_id();
      ++meta_.height;
      pool_->UnpinPage(new_root->page_id(), /*dirty=*/true);
    }
    ++meta_.num_entries;
    return SaveMeta();
  }

  /// Point lookup. Returns NotFound if absent.
  /// Node-visit charges are batched per descent (one TLS access at the
  /// leaf); a fetch error loses that descent's node count, never its I/O.
  Result<Value> Get(const Key& key) const {
    PageId node = meta_.root;
    int level = static_cast<int>(meta_.height) - 1;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);
      PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        int idx = LeafLowerBound(page, key);
        if (idx < Count(page)) {
          Key k;
          Value v;
          ReadLeafEntry(page, idx, &k, &v);
          if (!cmp_(key, k) && !cmp_(k, key)) return v;
        }
        return Status::NotFound("key not in tree");
      }
      node = ChildForKey(page, key);
      --level;
    }
  }

  /// Removes `key` from its leaf (no rebalancing — deletes are rare in every
  /// workload this library serves, so space is reclaimed only by rebuild).
  /// Returns NotFound if absent.
  Status Delete(const Key& key) {
    PageId node = meta_.root;
    int level = static_cast<int>(meta_.height) - 1;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      PageGuard guard(pool_, page);
      PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
      if (IsLeaf(page)) {
        int idx = LeafLowerBound(page, key);
        int count = Count(page);
        if (idx >= count) return Status::NotFound("key not in tree");
        Key k;
        Value v;
        ReadLeafEntry(page, idx, &k, &v);
        if (cmp_(key, k) || cmp_(k, key)) {
          return Status::NotFound("key not in tree");
        }
        // Shift the tail left by one entry.
        char* base = page->data() + kHeaderSize + idx * kLeafStride;
        std::memmove(base, base + kLeafStride,
                     (count - idx - 1) * kLeafStride);
        SetCount(page, count - 1);
        guard.MarkDirty();
        --meta_.num_entries;
        return SaveMeta();
      }
      node = ChildForKey(page, key);
      --level;
    }
  }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return static_cast<bool>(guard_); }
    const Key& key() const { return key_; }
    const Value& value() const { return value_; }

    /// Advances to the next entry; invalidates at the end.
    Status Next() {
      PRIX_DCHECK(Valid());
      ++index_;
      return LoadCurrent();
    }

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageGuard guard, int index)
        : tree_(tree), guard_(std::move(guard)), index_(index) {}

    /// Positions on (leaf_, index_), hopping to the next leaf as needed.
    Status LoadCurrent() {
      while (guard_) {
        if (index_ < Count(guard_.get())) {
          ReadLeafEntry(guard_.get(), index_, &key_, &value_);
          return Status::OK();
        }
        PageId next = Extra(guard_.get());
        guard_.Release();
        if (next == kInvalidPage) return Status::OK();  // end
        // A corrupt next-leaf pointer can form a cycle the per-node checks
        // cannot see (every node in it is individually valid); bound the
        // chain by the file size, which any acyclic chain satisfies.
        if (++hops_ > tree_->pool_->disk()->num_pages()) {
          return Status::Corruption(
              "B+-tree leaf chain does not terminate (cycle via page " +
              std::to_string(next) + ")");
        }
        PRIX_ASSIGN_OR_RETURN(Page * page, tree_->pool_->FetchPage(next));
        ChargeBtreeNode();
        guard_ = PageGuard(tree_->pool_, page);
        PRIX_RETURN_NOT_OK(CheckNode(page, next, /*expected_level=*/0));
        index_ = 0;
      }
      return Status::OK();
    }

    const BPlusTree* tree_ = nullptr;
    PageGuard guard_;
    int index_ = 0;
    uint64_t hops_ = 0;
    Key key_{};
    Value value_{};
  };

  /// Iterator positioned at the first entry with key >= `key`.
  Result<Iterator> Seek(const Key& key) const {
    PageId node = meta_.root;
    int level = static_cast<int>(meta_.height) - 1;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);  // no error return may leak this pin
      PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        Iterator it(this, std::move(guard), LeafLowerBound(page, key));
        PRIX_RETURN_NOT_OK(it.LoadCurrent());
        return it;
      }
      node = ChildForKey(page, key);
      --level;
    }
  }

  /// Iterator positioned at the smallest entry.
  Result<Iterator> SeekToFirst() const {
    PageId node = meta_.root;
    int level = static_cast<int>(meta_.height) - 1;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);  // no error return may leak this pin
      PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        Iterator it(this, std::move(guard), 0);
        PRIX_RETURN_NOT_OK(it.LoadCurrent());
        return it;
      }
      node = Extra(page);  // leftmost child
      --level;
    }
  }

  /// Structural scrub/salvage walk: visits every node reachable from the
  /// root via internal child pointers (NOT the next-leaf chain, which
  /// corruption can cycle), calling `emit(key, value) -> Status` for each
  /// leaf entry in tree order and `issue(PageId, const Status&,
  /// const std::string& path)` for every unreadable or structurally invalid
  /// node, whose subtree is then skipped rather than aborting the walk. A
  /// visited set makes re-converging (shared or cyclic) child pointers an
  /// issue instead of an infinite walk. Only an `emit` failure (the salvage
  /// destination broke) aborts with its non-OK Status.
  template <typename EmitFn, typename IssueFn>
  Status WalkReachable(EmitFn emit, IssueFn issue,
                       BtreeScrubStats* stats) const {
    std::unordered_set<PageId> visited;
    return WalkNode(meta_.root, static_cast<int>(meta_.height) - 1, "root",
                    &visited, emit, issue, stats);
  }

  // Exposed for tests.
  static constexpr int LeafCapacity() { return kLeafCapacity; }
  static constexpr int InternalCapacity() { return kInternalCapacity; }

 private:
  static constexpr uint16_t kNodeMagic = 0xb7e3;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kLeafStride = sizeof(Key) + sizeof(Value);
  static constexpr size_t kInternalStride = sizeof(Key) + sizeof(PageId);
  static constexpr int kLeafCapacity =
      static_cast<int>((kPageUsable - kHeaderSize) / kLeafStride);
  static constexpr int kInternalCapacity =
      static_cast<int>((kPageUsable - kHeaderSize) / kInternalStride);
  static_assert(kLeafCapacity >= 4, "key/value too large for a page");
  static_assert(kInternalCapacity >= 4, "key too large for a page");

  struct SplitResult {
    bool happened = false;
    Key separator{};
    PageId right = kInvalidPage;
  };

  // ---- node accessors (memcpy-based to sidestep alignment issues) ----
  static void InitNode(Page* page, bool is_leaf, uint32_t level) {
    std::memset(page->data(), 0, kHeaderSize);
    uint16_t magic = kNodeMagic;
    std::memcpy(page->data(), &magic, sizeof(magic));
    page->data()[2] = is_leaf ? 1 : 0;
    page->data()[3] = static_cast<char>(level);
    PageId invalid = kInvalidPage;
    std::memcpy(page->data() + 8, &invalid, sizeof(PageId));
    SetPageType(page->data(), PageType::kBtreeNode);
  }
  static bool IsLeaf(const Page* page) { return page->data()[2] == 1; }
  static int Level(const Page* page) {
    return static_cast<uint8_t>(page->data()[3]);
  }
  static int Count(const Page* page) {
    uint16_t c;
    std::memcpy(&c, page->data() + 4, sizeof(c));
    return c;
  }
  static void SetCount(Page* page, int count) {
    uint16_t c = static_cast<uint16_t>(count);
    std::memcpy(page->data() + 4, &c, sizeof(c));
  }
  /// Leaf: next-leaf pointer. Internal: leftmost child.
  static PageId Extra(const Page* page) {
    PageId id;
    std::memcpy(&id, page->data() + 8, sizeof(id));
    return id;
  }
  static void SetExtra(Page* page, PageId id) {
    std::memcpy(page->data() + 8, &id, sizeof(id));
  }

  /// Structural validation of a just-fetched node: magic, leaf/level
  /// coherence, and an entry count within capacity — together these bound
  /// every entry offset the accessors below will touch. `expected_level`
  /// (from the descent counter; -1 skips the check) catches child pointers
  /// that jump across levels or into a cycle: the counter strictly
  /// decreases, so any descent ends within `height` steps.
  static Status CheckNode(const Page* page, PageId id, int expected_level) {
    uint16_t magic;
    std::memcpy(&magic, page->data(), sizeof(magic));
    const std::string where = "B+-tree node page " + std::to_string(id);
    if (magic != kNodeMagic) {
      return Status::Corruption(where + ": bad node magic");
    }
    uint8_t leaf_flag = static_cast<uint8_t>(page->data()[2]);
    if (leaf_flag > 1) {
      return Status::Corruption(where + ": bad leaf flag " +
                                std::to_string(leaf_flag));
    }
    int level = Level(page);
    if ((level == 0) != (leaf_flag == 1)) {
      return Status::Corruption(where + ": leaf flag " +
                                std::to_string(leaf_flag) +
                                " contradicts level " + std::to_string(level));
    }
    if (expected_level >= 0 && level != expected_level) {
      return Status::Corruption(
          where + ": level " + std::to_string(level) + " where " +
          std::to_string(expected_level) +
          " was expected (corrupt child pointer?)");
    }
    int count = Count(page);
    int capacity = leaf_flag == 1 ? kLeafCapacity : kInternalCapacity;
    if (count > capacity) {
      return Status::Corruption(where + ": entry count " +
                                std::to_string(count) + " exceeds capacity " +
                                std::to_string(capacity));
    }
    return Status::OK();
  }

  static void ReadLeafEntry(const Page* page, int idx, Key* key, Value* val) {
    const char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(val, base + sizeof(Key), sizeof(Value));
  }
  static void WriteLeafEntry(Page* page, int idx, const Key& key,
                             const Value& val) {
    char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &val, sizeof(Value));
  }
  static void ReadInternalEntry(const Page* page, int idx, Key* key,
                                PageId* child) {
    const char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(child, base + sizeof(Key), sizeof(PageId));
  }
  static void WriteInternalEntry(Page* page, int idx, const Key& key,
                                 PageId child) {
    char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &child, sizeof(PageId));
  }

  /// First index whose key is >= `key` in a leaf.
  int LeafLowerBound(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      Value v;
      ReadLeafEntry(page, mid, &k, &v);
      if (cmp_(k, key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child page to descend into for `key`: entries hold keys >= separator,
  /// so take the last entry whose separator is <= key, else leftmost child.
  PageId ChildForKey(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    // upper_bound over separators
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(key, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == 0) return Extra(page);
    Key k;
    PageId c;
    ReadInternalEntry(page, lo - 1, &k, &c);
    return c;
  }

  Status SaveMeta() {
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool_->FetchPage(meta_page_id_));
    PageGuard guard(pool_, meta_page);
    std::memcpy(meta_page->data(), &meta_, sizeof(Meta));
    guard.MarkDirty();
    return Status::OK();
  }

  template <typename EmitFn, typename IssueFn>
  Status WalkNode(PageId node, int level, const std::string& path,
                  std::unordered_set<PageId>* visited, EmitFn& emit,
                  IssueFn& issue, BtreeScrubStats* stats) const {
    if (node == kInvalidPage || !visited->insert(node).second) {
      issue(node,
            Status::Corruption("child pointer revisits page " +
                               std::to_string(node) +
                               " (cycle or shared subtree)"),
            path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    Result<Page*> fetched = pool_->FetchPage(node);
    if (!fetched.ok()) {
      issue(node, fetched.status(), path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    PageGuard guard(pool_, *fetched);
    Page* page = *fetched;
    Status st = CheckNode(page, node, level);
    if (!st.ok()) {
      issue(node, st, path);
      ++stats->subtrees_skipped;
      return Status::OK();
    }
    ++stats->nodes_visited;
    int count = Count(page);
    if (IsLeaf(page)) {
      for (int i = 0; i < count; ++i) {
        Key k;
        Value v;
        ReadLeafEntry(page, i, &k, &v);
        ++stats->entries_seen;
        PRIX_RETURN_NOT_OK(emit(k, v));
      }
      return Status::OK();
    }
    // Children: the leftmost child, then one per entry. Release the pin
    // before descending (child ids are copied out first) so the walk holds
    // one pin at a time, like a query descent.
    std::vector<PageId> children;
    children.reserve(static_cast<size_t>(count) + 1);
    children.push_back(Extra(page));
    for (int i = 0; i < count; ++i) {
      Key k;
      PageId c;
      ReadInternalEntry(page, i, &k, &c);
      children.push_back(c);
    }
    guard.Release();
    for (size_t i = 0; i < children.size(); ++i) {
      PRIX_RETURN_NOT_OK(WalkNode(children[i], level - 1,
                                  path + ">" + std::to_string(children[i]),
                                  visited, emit, issue, stats));
    }
    return Status::OK();
  }

  Status InsertRecursive(PageId node, int level, const Key& key,
                         const Value& value, SplitResult* split) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
    PageGuard guard(pool_, page);
    PRIX_RETURN_NOT_OK(CheckNode(page, node, level));
    if (IsLeaf(page)) {
      return InsertIntoLeaf(page, &guard, key, value, split);
    }
    PageId child = ChildForKey(page, key);
    SplitResult child_split;
    {
      // Release the parent pin during the recursive descent to keep the
      // pinned set small (depth is re-fetched only on split).
      guard.Release();
      PRIX_RETURN_NOT_OK(
          InsertRecursive(child, level - 1, key, value, &child_split));
    }
    if (!child_split.happened) {
      split->happened = false;
      return Status::OK();
    }
    PRIX_ASSIGN_OR_RETURN(page, pool_->FetchPage(node));
    guard = PageGuard(pool_, page);
    return InsertIntoInternal(page, &guard, child_split.separator,
                              child_split.right, split);
  }

  Status InsertIntoLeaf(Page* page, PageGuard* guard, const Key& key,
                        const Value& value, SplitResult* split) {
    int idx = LeafLowerBound(page, key);
    int count = Count(page);
    if (idx < count) {
      Key k;
      Value v;
      ReadLeafEntry(page, idx, &k, &v);
      if (!cmp_(key, k) && !cmp_(k, key)) {
        return Status::AlreadyExists("duplicate key in B+-tree");
      }
    }
    if (count < kLeafCapacity) {
      char* base = page->data() + kHeaderSize + idx * kLeafStride;
      std::memmove(base + kLeafStride, base, (count - idx) * kLeafStride);
      WriteLeafEntry(page, idx, key, value);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split: left keeps the lower half, right gets the rest.
    PRIX_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/true, /*level=*/0);
    int left_count = (count + 1) / 2;
    int right_count = count - left_count;
    std::memcpy(right->data() + kHeaderSize,
                page->data() + kHeaderSize + left_count * kLeafStride,
                right_count * kLeafStride);
    SetCount(right, right_count);
    SetCount(page, left_count);
    SetExtra(right, Extra(page));
    SetExtra(page, right->page_id());
    guard->MarkDirty();
    right_guard.MarkDirty();
    // Insert into the proper half.
    Key right_first;
    Value unused;
    ReadLeafEntry(right, 0, &right_first, &unused);
    SplitResult ignore;
    if (cmp_(key, right_first)) {
      PRIX_RETURN_NOT_OK(InsertIntoLeaf(page, guard, key, value, &ignore));
    } else {
      PRIX_RETURN_NOT_OK(
          InsertIntoLeaf(right, &right_guard, key, value, &ignore));
    }
    PRIX_DCHECK(!ignore.happened);
    split->happened = true;
    ReadLeafEntry(right, 0, &split->separator, &unused);
    split->right = right->page_id();
    return Status::OK();
  }

  Status InsertIntoInternal(Page* page, PageGuard* guard, const Key& sep,
                            PageId new_child, SplitResult* split) {
    int count = Count(page);
    // Position: first entry with separator > sep.
    int lo = 0, hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(sep, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    int idx = lo;
    if (count < kInternalCapacity) {
      char* base = page->data() + kHeaderSize + idx * kInternalStride;
      std::memmove(base + kInternalStride, base,
                   (count - idx) * kInternalStride);
      WriteInternalEntry(page, idx, sep, new_child);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split the internal node. Gather entries (including the new one) into a
    // scratch array, then redistribute around the median.
    struct Entry {
      Key key;
      PageId child;
    };
    std::vector<Entry> entries(count + 1);
    for (int i = 0; i < count; ++i) {
      ReadInternalEntry(page, i, &entries[i + (i >= idx ? 1 : 0)].key,
                        &entries[i + (i >= idx ? 1 : 0)].child);
    }
    entries[idx] = Entry{sep, new_child};
    int total = count + 1;
    int mid = total / 2;  // entries[mid] moves up
    PRIX_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/false, /*level=*/Level(page));
    // Left keeps entries [0, mid); right gets (mid, total) with leftmost
    // child = entries[mid].child.
    SetCount(page, mid);
    for (int i = 0; i < mid; ++i) {
      WriteInternalEntry(page, i, entries[i].key, entries[i].child);
    }
    SetExtra(right, entries[mid].child);
    SetCount(right, total - mid - 1);
    for (int i = mid + 1; i < total; ++i) {
      WriteInternalEntry(right, i - mid - 1, entries[i].key,
                         entries[i].child);
    }
    guard->MarkDirty();
    right_guard.MarkDirty();
    split->happened = true;
    split->separator = entries[mid].key;
    split->right = right->page_id();
    return Status::OK();
  }

  BufferPool* pool_ = nullptr;
  Compare cmp_{};
  PageId meta_page_id_ = kInvalidPage;
  Meta meta_;
};

}  // namespace prix

#endif  // PRIX_BTREE_BTREE_H_
