#ifndef PRIX_BTREE_BTREE_H_
#define PRIX_BTREE_BTREE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/result.h"
#include "storage/buffer_pool.h"

namespace prix {

/// Disk-based B+-tree over the buffer pool, templated on trivially copyable
/// key/value types. This is the index structure behind PRIX's Trie-Symbol and
/// Docid indexes and ViST's D-Ancestorship index (the paper used GiST
/// B+-trees, Sec. 6).
///
/// - Keys are unique; callers needing duplicates append a sequence number to
///   the key (all in-tree composite keys do this).
/// - `Compare` is a strict weak order over Key.
/// - Supported operations: Insert, Get, Delete (lazy, no rebalancing),
///   ordered iteration via Iterator with Seek/Next.
///
/// Concurrency (single-writer rule, see DESIGN.md): the read paths — Get,
/// Seek, SeekToFirst, and Iterator traversal — are safe from any number of
/// threads over a thread-safe BufferPool. They hold page pins frame by
/// frame via PageGuard, keep no shared mutable state (the cached `meta_` is
/// written only by Create/Open/Insert/Delete), and never write page
/// payloads. Insert/Delete/Create are NOT safe against any concurrent
/// access to the same tree; index builds must finish, single-threaded,
/// before readers start.
///
/// Page layout (8 KB pages):
///   byte 0      : is_leaf flag
///   byte 1      : unused
///   bytes 2..3  : entry count (uint16)
///   bytes 4..7  : leaf: next-leaf PageId; internal: leftmost child PageId
///   bytes 8..   : packed entries
/// Leaf entries are (Key, Value); internal entries are (Key, PageId child)
/// where child holds keys >= Key.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class BPlusTree {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  /// Persistent tree metadata, kept in the tree's meta page.
  struct Meta {
    PageId root = kInvalidPage;
    uint64_t num_entries = 0;
    uint32_t height = 0;
  };

  BPlusTree() = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Creates an empty tree: allocates a meta page and an empty root leaf.
  static Result<BPlusTree> Create(BufferPool* pool, Compare cmp = Compare()) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool->NewPage());
    tree.meta_page_id_ = meta_page->page_id();
    pool->UnpinPage(tree.meta_page_id_, /*dirty=*/true);
    PRIX_ASSIGN_OR_RETURN(Page * root, pool->NewPage());
    InitNode(root, /*is_leaf=*/true);
    tree.meta_.root = root->page_id();
    tree.meta_.height = 1;
    pool->UnpinPage(root->page_id(), /*dirty=*/true);
    PRIX_RETURN_NOT_OK(tree.SaveMeta());
    return tree;
  }

  /// Opens an existing tree whose meta page is `meta_page_id`.
  static Result<BPlusTree> Open(BufferPool* pool, PageId meta_page_id,
                                Compare cmp = Compare()) {
    BPlusTree tree;
    tree.pool_ = pool;
    tree.cmp_ = cmp;
    tree.meta_page_id_ = meta_page_id;
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool->FetchPage(meta_page_id));
    {
      PageGuard guard(pool, meta_page);
      std::memcpy(&tree.meta_, meta_page->data(), sizeof(Meta));
    }
    if (tree.meta_.root == kInvalidPage) {
      return Status::Corruption("B+-tree meta page has no root");
    }
    return tree;
  }

  PageId meta_page_id() const { return meta_page_id_; }
  uint64_t num_entries() const { return meta_.num_entries; }
  uint32_t height() const { return meta_.height; }

  /// Inserts (key, value). Fails with AlreadyExists on duplicate key.
  Status Insert(const Key& key, const Value& value) {
    SplitResult split;
    PRIX_RETURN_NOT_OK(InsertRecursive(meta_.root, key, value, &split));
    if (split.happened) {
      // Grow a new root: children are the old root and the split sibling.
      PRIX_ASSIGN_OR_RETURN(Page * new_root, pool_->NewPage());
      InitNode(new_root, /*is_leaf=*/false);
      SetExtra(new_root, meta_.root);
      SetCount(new_root, 1);
      WriteInternalEntry(new_root, 0, split.separator, split.right);
      meta_.root = new_root->page_id();
      ++meta_.height;
      pool_->UnpinPage(new_root->page_id(), /*dirty=*/true);
    }
    ++meta_.num_entries;
    return SaveMeta();
  }

  /// Point lookup. Returns NotFound if absent.
  /// Node-visit charges are batched per descent (one TLS access at the
  /// leaf); a fetch error loses that descent's node count, never its I/O.
  Result<Value> Get(const Key& key) const {
    PageId node = meta_.root;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        int idx = LeafLowerBound(page, key);
        if (idx < Count(page)) {
          Key k;
          Value v;
          ReadLeafEntry(page, idx, &k, &v);
          if (!cmp_(key, k) && !cmp_(k, key)) return v;
        }
        return Status::NotFound("key not in tree");
      }
      node = ChildForKey(page, key);
    }
  }

  /// Removes `key` from its leaf (no rebalancing — deletes are rare in every
  /// workload this library serves, so space is reclaimed only by rebuild).
  /// Returns NotFound if absent.
  Status Delete(const Key& key) {
    PageId node = meta_.root;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      PageGuard guard(pool_, page);
      if (IsLeaf(page)) {
        int idx = LeafLowerBound(page, key);
        int count = Count(page);
        if (idx >= count) return Status::NotFound("key not in tree");
        Key k;
        Value v;
        ReadLeafEntry(page, idx, &k, &v);
        if (cmp_(key, k) || cmp_(k, key)) {
          return Status::NotFound("key not in tree");
        }
        // Shift the tail left by one entry.
        char* base = page->data() + kHeaderSize + idx * kLeafStride;
        std::memmove(base, base + kLeafStride,
                     (count - idx - 1) * kLeafStride);
        SetCount(page, count - 1);
        guard.MarkDirty();
        --meta_.num_entries;
        return SaveMeta();
      }
      node = ChildForKey(page, key);
    }
  }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return static_cast<bool>(guard_); }
    const Key& key() const { return key_; }
    const Value& value() const { return value_; }

    /// Advances to the next entry; invalidates at the end.
    Status Next() {
      PRIX_DCHECK(Valid());
      ++index_;
      return LoadCurrent();
    }

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageGuard guard, int index)
        : tree_(tree), guard_(std::move(guard)), index_(index) {}

    /// Positions on (leaf_, index_), hopping to the next leaf as needed.
    Status LoadCurrent() {
      while (guard_) {
        if (index_ < Count(guard_.get())) {
          ReadLeafEntry(guard_.get(), index_, &key_, &value_);
          return Status::OK();
        }
        PageId next = Extra(guard_.get());
        guard_.Release();
        if (next == kInvalidPage) return Status::OK();  // end
        PRIX_ASSIGN_OR_RETURN(Page * page, tree_->pool_->FetchPage(next));
        ChargeBtreeNode();
        guard_ = PageGuard(tree_->pool_, page);
        index_ = 0;
      }
      return Status::OK();
    }

    const BPlusTree* tree_ = nullptr;
    PageGuard guard_;
    int index_ = 0;
    Key key_{};
    Value value_{};
  };

  /// Iterator positioned at the first entry with key >= `key`.
  Result<Iterator> Seek(const Key& key) const {
    PageId node = meta_.root;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);  // no error return may leak this pin
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        Iterator it(this, std::move(guard), LeafLowerBound(page, key));
        PRIX_RETURN_NOT_OK(it.LoadCurrent());
        return it;
      }
      node = ChildForKey(page, key);
    }
  }

  /// Iterator positioned at the smallest entry.
  Result<Iterator> SeekToFirst() const {
    PageId node = meta_.root;
    uint64_t visited = 0;
    while (true) {
      PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
      ++visited;
      PageGuard guard(pool_, page);  // no error return may leak this pin
      if (IsLeaf(page)) {
        ChargeBtreeNodes(visited);
        Iterator it(this, std::move(guard), 0);
        PRIX_RETURN_NOT_OK(it.LoadCurrent());
        return it;
      }
      node = Extra(page);  // leftmost child
    }
  }

  // Exposed for tests.
  static constexpr int LeafCapacity() { return kLeafCapacity; }
  static constexpr int InternalCapacity() { return kInternalCapacity; }

 private:
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kLeafStride = sizeof(Key) + sizeof(Value);
  static constexpr size_t kInternalStride = sizeof(Key) + sizeof(PageId);
  static constexpr int kLeafCapacity =
      static_cast<int>((kPageSize - kHeaderSize) / kLeafStride);
  static constexpr int kInternalCapacity =
      static_cast<int>((kPageSize - kHeaderSize) / kInternalStride);
  static_assert(kLeafCapacity >= 4, "key/value too large for a page");
  static_assert(kInternalCapacity >= 4, "key too large for a page");

  struct SplitResult {
    bool happened = false;
    Key separator{};
    PageId right = kInvalidPage;
  };

  // ---- node accessors (memcpy-based to sidestep alignment issues) ----
  static void InitNode(Page* page, bool is_leaf) {
    std::memset(page->data(), 0, kHeaderSize);
    page->data()[0] = is_leaf ? 1 : 0;
    PageId invalid = kInvalidPage;
    std::memcpy(page->data() + 4, &invalid, sizeof(PageId));
  }
  static bool IsLeaf(const Page* page) { return page->data()[0] == 1; }
  static int Count(const Page* page) {
    uint16_t c;
    std::memcpy(&c, page->data() + 2, sizeof(c));
    return c;
  }
  static void SetCount(Page* page, int count) {
    uint16_t c = static_cast<uint16_t>(count);
    std::memcpy(page->data() + 2, &c, sizeof(c));
  }
  /// Leaf: next-leaf pointer. Internal: leftmost child.
  static PageId Extra(const Page* page) {
    PageId id;
    std::memcpy(&id, page->data() + 4, sizeof(id));
    return id;
  }
  static void SetExtra(Page* page, PageId id) {
    std::memcpy(page->data() + 4, &id, sizeof(id));
  }
  static void ReadLeafEntry(const Page* page, int idx, Key* key, Value* val) {
    const char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(val, base + sizeof(Key), sizeof(Value));
  }
  static void WriteLeafEntry(Page* page, int idx, const Key& key,
                             const Value& val) {
    char* base = page->data() + kHeaderSize + idx * kLeafStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &val, sizeof(Value));
  }
  static void ReadInternalEntry(const Page* page, int idx, Key* key,
                                PageId* child) {
    const char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(key, base, sizeof(Key));
    std::memcpy(child, base + sizeof(Key), sizeof(PageId));
  }
  static void WriteInternalEntry(Page* page, int idx, const Key& key,
                                 PageId child) {
    char* base = page->data() + kHeaderSize + idx * kInternalStride;
    std::memcpy(base, &key, sizeof(Key));
    std::memcpy(base + sizeof(Key), &child, sizeof(PageId));
  }

  /// First index whose key is >= `key` in a leaf.
  int LeafLowerBound(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      Value v;
      ReadLeafEntry(page, mid, &k, &v);
      if (cmp_(k, key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child page to descend into for `key`: entries hold keys >= separator,
  /// so take the last entry whose separator is <= key, else leftmost child.
  PageId ChildForKey(const Page* page, const Key& key) const {
    int lo = 0, hi = Count(page);
    // upper_bound over separators
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(key, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == 0) return Extra(page);
    Key k;
    PageId c;
    ReadInternalEntry(page, lo - 1, &k, &c);
    return c;
  }

  Status SaveMeta() {
    PRIX_ASSIGN_OR_RETURN(Page * meta_page, pool_->FetchPage(meta_page_id_));
    PageGuard guard(pool_, meta_page);
    std::memcpy(meta_page->data(), &meta_, sizeof(Meta));
    guard.MarkDirty();
    return Status::OK();
  }

  Status InsertRecursive(PageId node, const Key& key, const Value& value,
                         SplitResult* split) {
    PRIX_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(node));
    PageGuard guard(pool_, page);
    if (IsLeaf(page)) {
      return InsertIntoLeaf(page, &guard, key, value, split);
    }
    PageId child = ChildForKey(page, key);
    SplitResult child_split;
    {
      // Release the parent pin during the recursive descent to keep the
      // pinned set small (depth is re-fetched only on split).
      guard.Release();
      PRIX_RETURN_NOT_OK(InsertRecursive(child, key, value, &child_split));
    }
    if (!child_split.happened) {
      split->happened = false;
      return Status::OK();
    }
    PRIX_ASSIGN_OR_RETURN(page, pool_->FetchPage(node));
    guard = PageGuard(pool_, page);
    return InsertIntoInternal(page, &guard, child_split.separator,
                              child_split.right, split);
  }

  Status InsertIntoLeaf(Page* page, PageGuard* guard, const Key& key,
                        const Value& value, SplitResult* split) {
    int idx = LeafLowerBound(page, key);
    int count = Count(page);
    if (idx < count) {
      Key k;
      Value v;
      ReadLeafEntry(page, idx, &k, &v);
      if (!cmp_(key, k) && !cmp_(k, key)) {
        return Status::AlreadyExists("duplicate key in B+-tree");
      }
    }
    if (count < kLeafCapacity) {
      char* base = page->data() + kHeaderSize + idx * kLeafStride;
      std::memmove(base + kLeafStride, base, (count - idx) * kLeafStride);
      WriteLeafEntry(page, idx, key, value);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split: left keeps the lower half, right gets the rest.
    PRIX_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/true);
    int left_count = (count + 1) / 2;
    int right_count = count - left_count;
    std::memcpy(right->data() + kHeaderSize,
                page->data() + kHeaderSize + left_count * kLeafStride,
                right_count * kLeafStride);
    SetCount(right, right_count);
    SetCount(page, left_count);
    SetExtra(right, Extra(page));
    SetExtra(page, right->page_id());
    guard->MarkDirty();
    right_guard.MarkDirty();
    // Insert into the proper half.
    Key right_first;
    Value unused;
    ReadLeafEntry(right, 0, &right_first, &unused);
    SplitResult ignore;
    if (cmp_(key, right_first)) {
      PRIX_RETURN_NOT_OK(InsertIntoLeaf(page, guard, key, value, &ignore));
    } else {
      PRIX_RETURN_NOT_OK(
          InsertIntoLeaf(right, &right_guard, key, value, &ignore));
    }
    PRIX_DCHECK(!ignore.happened);
    split->happened = true;
    ReadLeafEntry(right, 0, &split->separator, &unused);
    split->right = right->page_id();
    return Status::OK();
  }

  Status InsertIntoInternal(Page* page, PageGuard* guard, const Key& sep,
                            PageId new_child, SplitResult* split) {
    int count = Count(page);
    // Position: first entry with separator > sep.
    int lo = 0, hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      Key k;
      PageId c;
      ReadInternalEntry(page, mid, &k, &c);
      if (cmp_(sep, k)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    int idx = lo;
    if (count < kInternalCapacity) {
      char* base = page->data() + kHeaderSize + idx * kInternalStride;
      std::memmove(base + kInternalStride, base,
                   (count - idx) * kInternalStride);
      WriteInternalEntry(page, idx, sep, new_child);
      SetCount(page, count + 1);
      guard->MarkDirty();
      split->happened = false;
      return Status::OK();
    }
    // Split the internal node. Gather entries (including the new one) into a
    // scratch array, then redistribute around the median.
    struct Entry {
      Key key;
      PageId child;
    };
    std::vector<Entry> entries(count + 1);
    for (int i = 0; i < count; ++i) {
      ReadInternalEntry(page, i, &entries[i + (i >= idx ? 1 : 0)].key,
                        &entries[i + (i >= idx ? 1 : 0)].child);
    }
    entries[idx] = Entry{sep, new_child};
    int total = count + 1;
    int mid = total / 2;  // entries[mid] moves up
    PRIX_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
    PageGuard right_guard(pool_, right);
    InitNode(right, /*is_leaf=*/false);
    // Left keeps entries [0, mid); right gets (mid, total) with leftmost
    // child = entries[mid].child.
    SetCount(page, mid);
    for (int i = 0; i < mid; ++i) {
      WriteInternalEntry(page, i, entries[i].key, entries[i].child);
    }
    SetExtra(right, entries[mid].child);
    SetCount(right, total - mid - 1);
    for (int i = mid + 1; i < total; ++i) {
      WriteInternalEntry(right, i - mid - 1, entries[i].key,
                         entries[i].child);
    }
    guard->MarkDirty();
    right_guard.MarkDirty();
    split->happened = true;
    split->separator = entries[mid].key;
    split->right = right->page_id();
    return Status::OK();
  }

  BufferPool* pool_ = nullptr;
  Compare cmp_{};
  PageId meta_page_id_ = kInvalidPage;
  Meta meta_;
};

}  // namespace prix

#endif  // PRIX_BTREE_BTREE_H_
