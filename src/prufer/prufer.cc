#include "prufer/prufer.h"

#include <algorithm>
#include <queue>

#include "common/macros.h"

namespace prix {

PruferSequences BuildPruferSequences(const Document& doc) {
  PruferSequences out;
  const size_t n = doc.num_nodes();
  out.num_nodes = static_cast<uint32_t>(n);
  if (n == 0) return out;
  std::vector<uint32_t> number = doc.ComputePostorder();
  std::vector<NodeId> node_of = doc.ComputePostorderInverse();
  out.root_label = doc.label(doc.root());
  out.lps.resize(n - 1);
  out.nps.resize(n - 1);
  // Lemma 1: the i-th deleted node is node i, so entry i-1 records node i's
  // parent.
  for (uint32_t i = 1; i < n; ++i) {
    NodeId v = node_of[i];
    NodeId p = doc.parent(v);
    out.lps[i - 1] = doc.label(p);
    out.nps[i - 1] = number[p];
  }
  return out;
}

PruferSequences BuildPruferSequencesBySimulation(const Document& doc) {
  PruferSequences out;
  const size_t n = doc.num_nodes();
  out.num_nodes = static_cast<uint32_t>(n);
  if (n == 0) return out;
  out.root_label = doc.label(doc.root());
  std::vector<uint32_t> number = doc.ComputePostorder();
  std::vector<NodeId> node_of = doc.ComputePostorderInverse();

  std::vector<uint32_t> live_children(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    live_children[number[v]] = static_cast<uint32_t>(doc.children(v).size());
  }
  // Min-heap of the postorder numbers of current leaves.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> leaves;
  for (uint32_t k = 1; k <= n; ++k) {
    if (live_children[k] == 0) leaves.push(k);
  }
  out.lps.reserve(n - 1);
  out.nps.reserve(n - 1);
  for (size_t step = 0; step + 1 < n; ++step) {
    uint32_t k = leaves.top();
    leaves.pop();
    NodeId v = node_of[k];
    NodeId p = doc.parent(v);
    uint32_t pk = number[p];
    out.lps.push_back(doc.label(p));
    out.nps.push_back(pk);
    if (--live_children[pk] == 0) leaves.push(pk);
  }
  return out;
}

std::vector<LeafEntry> CollectLeaves(const Document& doc) {
  std::vector<uint32_t> number = doc.ComputePostorder();
  std::vector<LeafEntry> leaves;
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    if (doc.is_leaf(v)) leaves.push_back(LeafEntry{doc.label(v), number[v]});
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              return a.postorder < b.postorder;
            });
  return leaves;
}

Document ExtendWithDummyLeaves(const Document& doc, LabelId dummy_label) {
  Document ext(doc.doc_id());
  if (doc.empty()) return ext;
  // Copy preserving document order; attach a dummy child under each leaf.
  struct Frame {
    NodeId src;
    NodeId dst_parent;
  };
  std::vector<Frame> stack;
  NodeId root = ext.AddRoot(doc.label(doc.root()), doc.kind(doc.root()));
  if (doc.is_leaf(doc.root())) {
    ext.AddChild(root, dummy_label);
    return ext;
  }
  // Push children in reverse so they are popped in document order.
  const auto& root_kids = doc.children(doc.root());
  for (auto it = root_kids.rbegin(); it != root_kids.rend(); ++it) {
    stack.push_back(Frame{*it, root});
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    NodeId copied = ext.AddChild(f.dst_parent, doc.label(f.src),
                                 doc.kind(f.src));
    if (doc.is_leaf(f.src)) {
      ext.AddChild(copied, dummy_label);
    } else {
      const auto& kids = doc.children(f.src);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(Frame{*it, copied});
      }
    }
  }
  return ext;
}

std::vector<uint32_t> ExtendedToOriginalPostorder(const PruferSequences& ext) {
  const uint32_t n = ext.num_nodes;
  // Leaves of the extended tree are exactly the dummy nodes: a number that
  // never occurs as an NPS value has no children.
  std::vector<bool> has_children(n + 1, false);
  for (uint32_t p : ext.nps) has_children[p] = true;
  std::vector<uint32_t> orig(n + 1, 0);
  uint32_t rank = 0;
  for (uint32_t v = 1; v <= n; ++v) {
    if (has_children[v]) {
      orig[v] = ++rank;
    }
  }
  return orig;
}

Result<Document> ReconstructTree(const PruferSequences& seq,
                                 const std::vector<LeafEntry>& leaves) {
  const uint32_t n = seq.num_nodes;
  if (n == 0) return Document();
  if (seq.lps.size() != n - 1 || seq.nps.size() != n - 1) {
    return Status::InvalidArgument("sequence length must be num_nodes - 1");
  }
  // Recover labels: internal nodes from the LPS, leaves from the leaf list.
  std::vector<LabelId> label_of(n + 1, kInvalidLabel);
  label_of[n] = seq.root_label;
  std::vector<std::vector<uint32_t>> children(n + 1);
  for (uint32_t i = 1; i < n; ++i) {
    uint32_t p = seq.nps[i - 1];
    if (p <= i || p > n) {
      return Status::Corruption("NPS is not a valid postorder parent array");
    }
    label_of[p] = seq.lps[i - 1];
    children[p].push_back(i);  // ascending i => document order of siblings
  }
  for (const LeafEntry& leaf : leaves) {
    if (leaf.postorder == 0 || leaf.postorder > n) {
      return Status::Corruption("leaf postorder out of range");
    }
    label_of[leaf.postorder] = leaf.label;
  }
  for (uint32_t v = 1; v <= n; ++v) {
    if (label_of[v] == kInvalidLabel) {
      return Status::Corruption("node " + std::to_string(v) +
                                " has no recoverable label");
    }
  }
  // Create nodes in preorder so every parent exists before its children;
  // children[v] is ascending, which is sibling document order.
  Document doc;
  std::vector<NodeId> built(n + 1, kInvalidNode);
  built[n] = doc.AddRoot(label_of[n]);
  std::vector<std::pair<uint32_t, size_t>> frames = {{n, 0}};
  while (!frames.empty()) {
    auto& [v, idx] = frames.back();
    if (idx < children[v].size()) {
      uint32_t c = children[v][idx++];
      built[c] = doc.AddChild(built[v], label_of[c]);
      frames.emplace_back(c, 0);
    } else {
      frames.pop_back();
    }
  }
  return doc;
}

std::vector<uint32_t> ClassicPruferEncode(
    const Document& doc, const std::vector<uint32_t>& number) {
  // The classic algorithm works on the undirected view of the tree.
  const size_t n = doc.num_nodes();
  PRIX_CHECK(n >= 2);
  PRIX_CHECK(number.size() == n);
  std::vector<std::vector<uint32_t>> adj(n + 1);
  for (NodeId v = 0; v < n; ++v) {
    PRIX_CHECK(number[v] >= 1 && number[v] <= n);
    if (doc.parent(v) != kInvalidNode) {
      adj[number[v]].push_back(number[doc.parent(v)]);
      adj[number[doc.parent(v)]].push_back(number[v]);
    }
  }
  std::vector<uint32_t> degree(n + 1, 0);
  for (uint32_t k = 1; k <= n; ++k) {
    degree[k] = static_cast<uint32_t>(adj[k].size());
  }
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> leaves;
  for (uint32_t k = 1; k <= n; ++k) {
    if (degree[k] == 1) leaves.push(k);
  }
  std::vector<bool> deleted(n + 1, false);
  std::vector<uint32_t> seq;
  seq.reserve(n - 2);
  for (size_t step = 0; step + 2 < n; ++step) {
    uint32_t k = leaves.top();
    leaves.pop();
    deleted[k] = true;
    uint32_t neighbor = 0;
    for (uint32_t m : adj[k]) {
      if (!deleted[m]) {
        neighbor = m;
        break;
      }
    }
    PRIX_CHECK(neighbor != 0);
    seq.push_back(neighbor);
    if (--degree[neighbor] == 1) leaves.push(neighbor);
  }
  return seq;
}

Result<std::vector<uint32_t>> ClassicPruferDecode(
    const std::vector<uint32_t>& seq) {
  const uint32_t n = static_cast<uint32_t>(seq.size()) + 2;
  std::vector<uint32_t> degree(n + 1, 1);
  for (uint32_t a : seq) {
    if (a < 1 || a > n) {
      return Status::InvalidArgument("sequence value out of range");
    }
    ++degree[a];
  }
  // adjacency built from the classic decode; then orient away from root n.
  std::vector<std::vector<uint32_t>> adj(n + 1);
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> leaves;
  for (uint32_t k = 1; k <= n; ++k) {
    if (degree[k] == 1) leaves.push(k);
  }
  for (uint32_t a : seq) {
    uint32_t b = leaves.top();
    leaves.pop();
    adj[a].push_back(b);
    adj[b].push_back(a);
    --degree[b];
    if (--degree[a] == 1) leaves.push(a);
  }
  uint32_t u = leaves.top();
  leaves.pop();
  if (leaves.empty()) return Status::Corruption("decode ended with one leaf");
  uint32_t v = leaves.top();
  adj[u].push_back(v);
  adj[v].push_back(u);
  // Orient from root n by BFS.
  std::vector<uint32_t> parent(n + 1, 0);
  std::vector<bool> seen(n + 1, false);
  std::queue<uint32_t> bfs;
  bfs.push(n);
  seen[n] = true;
  uint32_t visited = 0;
  while (!bfs.empty()) {
    uint32_t x = bfs.front();
    bfs.pop();
    ++visited;
    for (uint32_t y : adj[x]) {
      if (!seen[y]) {
        seen[y] = true;
        parent[y] = x;
        bfs.push(y);
      }
    }
  }
  if (visited != n) return Status::Corruption("decoded graph is not a tree");
  return parent;
}

}  // namespace prix
