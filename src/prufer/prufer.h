#ifndef PRIX_PRUFER_PRUFER_H_
#define PRIX_PRUFER_PRUFER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace prix {

/// A leaf of the original tree: its label and 1-based postorder number.
/// The paper stores these alongside LPS/NPS because Regular-Prüfer sequences
/// contain only non-leaf labels (Sec. 4.3).
struct LeafEntry {
  LabelId label;
  uint32_t postorder;

  bool operator==(const LeafEntry&) const = default;
};

/// The Prüfer transform of one tree, per the paper's modified construction
/// (Sec. 3.1): nodes are numbered 1..n in postorder and deleted smallest-
/// number-first until ONE node remains, so the sequence has length n-1.
///
/// By Lemma 1 the i-th deleted node is the node numbered i, hence
///   nps[i-1] = postorder number of the parent of node i, and
///   lps[i-1] = label of the parent of node i.
/// In other words, `nps` doubles as the parent array of the tree, which is
/// what makes O(1) parent lookups possible during refinement.
struct PruferSequences {
  std::vector<LabelId> lps;   ///< Labeled Prüfer sequence, length n-1.
  std::vector<uint32_t> nps;  ///< Numbered Prüfer sequence, length n-1.
  uint32_t num_nodes = 0;     ///< n: node count of the transformed tree.
  LabelId root_label = kInvalidLabel;  ///< Label of node n (never deleted).

  /// Parent postorder number of node `v` (1 <= v < num_nodes).
  uint32_t Parent(uint32_t v) const { return nps[v - 1]; }

  bool operator==(const PruferSequences&) const = default;
};

/// Builds LPS/NPS for `doc` in O(n) using Lemma 1 (no simulated deletions).
PruferSequences BuildPruferSequences(const Document& doc);

/// Builds LPS/NPS by literally simulating the node-removal process of
/// Sec. 3.1 (delete the smallest-numbered leaf, record its parent, repeat
/// until one node is left). O(n log n); used to property-test the O(n) path.
PruferSequences BuildPruferSequencesBySimulation(const Document& doc);

/// Leaf entries (label, postorder) of `doc`, ordered by postorder number.
std::vector<LeafEntry> CollectLeaves(const Document& doc);

/// Returns a copy of `doc` with a dummy child attached to every leaf — the
/// Extended-Prüfer transformation of Sec. 5.6. The extended tree's LPS
/// contains the labels of ALL original nodes. `dummy_label` is the label for
/// dummy nodes (it never appears in any sequence because dummies are leaves).
Document ExtendWithDummyLeaves(const Document& doc, LabelId dummy_label);

/// For the extended tree's numbering: dummy nodes are exactly the leaves of
/// the extended tree. Returns, for each extended postorder number v in
/// [1, num_nodes], the corresponding ORIGINAL postorder number, or 0 if v is
/// a dummy. Derived purely from the extended NPS.
std::vector<uint32_t> ExtendedToOriginalPostorder(const PruferSequences& ext);

/// Rebuilds the tree encoded by `seq`. Internal-node labels are recovered
/// from the LPS (label of node v = lps[k] for any k with nps[k] == v); leaf
/// labels come from `leaves`. Children are attached in postorder-number order,
/// which reproduces the original document order. Fails on malformed input.
Result<Document> ReconstructTree(const PruferSequences& seq,
                                 const std::vector<LeafEntry>& leaves);

/// Classic Prüfer encoding (1918): for a tree on n >= 2 nodes labeled by the
/// arbitrary numbering `number[node]` in [1, n], repeatedly delete the
/// smallest-numbered leaf and record its parent's number; stops when two
/// nodes remain, yielding the classic length n-2 sequence.
std::vector<uint32_t> ClassicPruferEncode(const Document& doc,
                                          const std::vector<uint32_t>& number);

/// Classic Prüfer decoding: rebuilds the unique labeled tree on n = seq.size()
/// + 2 nodes whose classic Prüfer sequence is `seq`. Returns the parent array
/// indexed by node number (1-based; parent[root] = 0). Proves the one-to-one
/// correspondence the paper's correctness rests on.
Result<std::vector<uint32_t>> ClassicPruferDecode(
    const std::vector<uint32_t>& seq);

}  // namespace prix

#endif  // PRIX_PRUFER_PRUFER_H_
