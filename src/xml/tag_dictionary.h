#ifndef PRIX_XML_TAG_DICTIONARY_H_
#define PRIX_XML_TAG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace prix {

/// Identifier of an interned label (an element tag or a value string).
using LabelId = uint32_t;

/// Sentinel returned by Find() when the label is unknown.
inline constexpr LabelId kInvalidLabel = 0xffffffffu;

/// Interns element tags and value strings into dense LabelIds shared by all
/// documents of a collection. Prüfer sequences, query twigs, and every index
/// operate on LabelIds, never on raw strings.
class TagDictionary {
 public:
  TagDictionary() = default;
  TagDictionary(const TagDictionary&) = delete;
  TagDictionary& operator=(const TagDictionary&) = delete;
  TagDictionary(TagDictionary&&) = default;
  TagDictionary& operator=(TagDictionary&&) = default;

  /// Returns the id of `label`, interning it if new.
  LabelId Intern(std::string_view label);

  /// Returns the id of `label` or kInvalidLabel if never interned.
  LabelId Find(std::string_view label) const;

  /// Returns the string for `id`. Requires id < size().
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> index_;
  std::vector<std::string> names_;
};

}  // namespace prix

#endif  // PRIX_XML_TAG_DICTIONARY_H_
