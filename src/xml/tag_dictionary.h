#ifndef PRIX_XML_TAG_DICTIONARY_H_
#define PRIX_XML_TAG_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace prix {

/// Identifier of an interned label (an element tag or a value string).
using LabelId = uint32_t;

/// Sentinel returned by Find() when the label is unknown.
inline constexpr LabelId kInvalidLabel = 0xffffffffu;

/// Interns element tags and value strings into dense LabelIds shared by all
/// documents of a collection. Prüfer sequences, query twigs, and every index
/// operate on LabelIds, never on raw strings.
///
/// Thread safety: all operations are safe from any thread. Intern takes a
/// shared lock on the hit path and upgrades to exclusive only for a new
/// label, so concurrent XPath parsing (which mostly re-interns known tags)
/// stays read-mostly. Names live in a deque, whose elements never move, so
/// the references returned by Name() and the string_view keys of the index
/// stay valid across concurrent growth.
class TagDictionary {
 public:
  TagDictionary() = default;
  TagDictionary(const TagDictionary&) = delete;
  TagDictionary& operator=(const TagDictionary&) = delete;
  TagDictionary(TagDictionary&& other) noexcept;
  TagDictionary& operator=(TagDictionary&& other) noexcept;

  /// Returns the id of `label`, interning it if new.
  LabelId Intern(std::string_view label);

  /// Returns the id of `label` or kInvalidLabel if never interned.
  LabelId Find(std::string_view label) const;

  /// Returns the string for `id`. Requires id < size().
  const std::string& Name(LabelId id) const;

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  // Keys are views into names_ elements (stable under deque growth).
  std::unordered_map<std::string_view, LabelId> index_;
  std::deque<std::string> names_;
};

}  // namespace prix

#endif  // PRIX_XML_TAG_DICTIONARY_H_
