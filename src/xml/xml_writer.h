#ifndef PRIX_XML_XML_WRITER_H_
#define PRIX_XML_XML_WRITER_H_

#include <string>

#include "xml/document.h"

namespace prix {

/// Options controlling document-to-XML serialization.
struct XmlWriteOptions {
  bool indent = true;
  int indent_width = 2;
};

/// Serializes `doc` to XML text. Value nodes become character data with the
/// five predefined entities escaped; "@name" subelements are emitted back as
/// attributes when they carry exactly one value child.
std::string WriteXml(const Document& doc, const TagDictionary& dict,
                     XmlWriteOptions options = {});

/// Escapes &, <, >, ", ' for inclusion in XML character data.
std::string EscapeXml(std::string_view text);

}  // namespace prix

#endif  // PRIX_XML_XML_WRITER_H_
