#include "xml/tag_dictionary.h"

#include "common/macros.h"

namespace prix {

LabelId TagDictionary::Intern(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(label);
  index_.emplace(names_.back(), id);
  return id;
}

LabelId TagDictionary::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string& TagDictionary::Name(LabelId id) const {
  PRIX_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace prix
