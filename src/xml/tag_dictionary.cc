#include "xml/tag_dictionary.h"

#include <mutex>

#include "common/macros.h"

namespace prix {

TagDictionary::TagDictionary(TagDictionary&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  index_ = std::move(other.index_);
  names_ = std::move(other.names_);
  other.index_.clear();
  other.names_.clear();
}

TagDictionary& TagDictionary::operator=(TagDictionary&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  index_ = std::move(other.index_);
  names_ = std::move(other.names_);
  other.index_.clear();
  other.names_.clear();
  return *this;
}

LabelId TagDictionary::Intern(std::string_view label) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(label);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check: another thread may have interned it between the locks.
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(label);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

LabelId TagDictionary::Find(std::string_view label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(label);
  return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string& TagDictionary::Name(LabelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PRIX_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace prix
