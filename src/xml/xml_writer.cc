#include "xml/xml_writer.h"

#include "common/string_util.h"

namespace prix {

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// True if `id` is an attribute subelement (@name with one value child).
bool IsAttributeNode(const Document& doc, const TagDictionary& dict,
                     NodeId id) {
  if (doc.kind(id) != NodeKind::kElement) return false;
  const std::string& name = dict.Name(doc.label(id));
  if (name.empty() || name[0] != '@') return false;
  const auto& kids = doc.children(id);
  return kids.size() == 1 && doc.kind(kids[0]) == NodeKind::kValue;
}

void WriteNode(const Document& doc, const TagDictionary& dict,
               const XmlWriteOptions& options, NodeId id, int depth,
               std::string& out) {
  std::string pad =
      options.indent ? std::string(depth * options.indent_width, ' ') : "";
  const std::string& name = dict.Name(doc.label(id));
  out += pad;
  out += '<';
  out += name;

  // Emit leading attribute subelements as real attributes.
  std::vector<NodeId> content_children;
  for (NodeId child : doc.children(id)) {
    if (IsAttributeNode(doc, dict, child)) {
      const std::string& attr = dict.Name(doc.label(child));
      const std::string& value =
          dict.Name(doc.label(doc.children(child)[0]));
      out += ' ';
      out += attr.substr(1);
      out += "=\"";
      out += EscapeXml(value);
      out += '"';
    } else {
      content_children.push_back(child);
    }
  }

  if (content_children.empty()) {
    out += "/>";
    if (options.indent) out += '\n';
    return;
  }
  out += '>';

  // A single value child is written inline: <a>text</a>.
  if (content_children.size() == 1 &&
      doc.kind(content_children[0]) == NodeKind::kValue) {
    out += EscapeXml(dict.Name(doc.label(content_children[0])));
    out += "</";
    out += name;
    out += '>';
    if (options.indent) out += '\n';
    return;
  }

  if (options.indent) out += '\n';
  for (NodeId child : content_children) {
    if (doc.kind(child) == NodeKind::kValue) {
      if (options.indent) {
        out += std::string((depth + 1) * options.indent_width, ' ');
      }
      out += EscapeXml(dict.Name(doc.label(child)));
      if (options.indent) out += '\n';
    } else {
      WriteNode(doc, dict, options, child, depth + 1, out);
    }
  }
  out += pad;
  out += "</";
  out += name;
  out += '>';
  if (options.indent) out += '\n';
}

}  // namespace

std::string WriteXml(const Document& doc, const TagDictionary& dict,
                     XmlWriteOptions options) {
  std::string out;
  if (doc.empty()) return out;
  WriteNode(doc, dict, options, doc.root(), 0, out);
  return out;
}

}  // namespace prix
