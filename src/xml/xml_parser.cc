#include "xml/xml_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"

namespace prix {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

}  // namespace

Result<Document> ParseXml(std::string_view text, TagDictionary* dict,
                          XmlParseOptions options) {
  XmlParser parser(dict, options);
  return parser.Parse(text);
}

Result<Document> XmlParser::Parse(std::string_view text) {
  text_ = text;
  pos_ = 0;
  doc_ = Document();
  PRIX_RETURN_NOT_OK(ParseProlog());
  SkipWhitespace();
  if (AtEnd() || Peek() != '<') {
    return Error("expected root element");
  }
  PRIX_RETURN_NOT_OK(ParseElement(kInvalidNode));
  PRIX_RETURN_NOT_OK(SkipMisc());
  SkipWhitespace();
  if (!AtEnd()) return Error("trailing content after root element");
  return std::move(doc_);
}

Status XmlParser::ParseProlog() {
  while (true) {
    SkipWhitespace();
    if (Lookahead("<?")) {
      PRIX_RETURN_NOT_OK(SkipProcessingInstruction());
    } else if (Lookahead("<!--")) {
      PRIX_RETURN_NOT_OK(SkipComment());
    } else if (Lookahead("<!DOCTYPE")) {
      PRIX_RETURN_NOT_OK(SkipDoctype());
    } else {
      return Status::OK();
    }
  }
}

Status XmlParser::SkipMisc() {
  while (true) {
    SkipWhitespace();
    if (Lookahead("<?")) {
      PRIX_RETURN_NOT_OK(SkipProcessingInstruction());
    } else if (Lookahead("<!--")) {
      PRIX_RETURN_NOT_OK(SkipComment());
    } else {
      return Status::OK();
    }
  }
}

Status XmlParser::ParseElement(NodeId parent) {
  PRIX_DCHECK(Peek() == '<');
  ++pos_;  // consume '<'
  PRIX_ASSIGN_OR_RETURN(std::string name, ParseName());
  LabelId label = dict_->Intern(name);
  NodeId element = parent == kInvalidNode ? doc_.AddRoot(label)
                                          : doc_.AddChild(parent, label);
  bool self_closing = false;
  PRIX_RETURN_NOT_OK(ParseAttributes(element, &self_closing));
  if (self_closing) return Status::OK();
  PRIX_RETURN_NOT_OK(ParseContent(element));
  // ParseContent stops at "</"; consume the end tag.
  pos_ += 2;
  PRIX_ASSIGN_OR_RETURN(std::string end_name, ParseName());
  if (end_name != name) {
    return Error("mismatched end tag </" + end_name + "> for <" + name + ">");
  }
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
  ++pos_;
  return Status::OK();
}

Status XmlParser::ParseAttributes(NodeId element, bool* self_closing) {
  *self_closing = false;
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input in tag");
    if (Consume("/>")) {
      *self_closing = true;
      return Status::OK();
    }
    if (Peek() == '>') {
      ++pos_;
      return Status::OK();
    }
    PRIX_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
    SkipWhitespace();
    if (!Consume("=")) return Error("expected '=' after attribute name");
    SkipWhitespace();
    PRIX_ASSIGN_OR_RETURN(std::string raw_value, ParseQuotedValue());
    PRIX_ASSIGN_OR_RETURN(std::string value, DecodeText(raw_value));
    if (options_.attributes_as_subelements) {
      NodeId attr_node = doc_.AddChild(element, dict_->Intern("@" + attr_name));
      doc_.AddChild(attr_node, dict_->Intern(value), NodeKind::kValue);
    }
  }
}

Status XmlParser::ParseContent(NodeId element) {
  std::string pending_text;
  auto flush_text = [&]() -> Status {
    if (pending_text.empty()) return Status::OK();
    PRIX_ASSIGN_OR_RETURN(std::string decoded, DecodeText(pending_text));
    AddTextNode(element, decoded);
    pending_text.clear();
    return Status::OK();
  };
  while (true) {
    if (AtEnd()) return Error("unexpected end of input in element content");
    if (Lookahead("</")) {
      PRIX_RETURN_NOT_OK(flush_text());
      return Status::OK();
    }
    if (Lookahead("<!--")) {
      PRIX_RETURN_NOT_OK(SkipComment());
      continue;
    }
    if (Lookahead("<![CDATA[")) {
      pos_ += 9;
      size_t end = text_.find("]]>", pos_);
      if (end == std::string_view::npos) return Error("unterminated CDATA");
      // CDATA content is literal; bypass entity decoding by adding directly.
      PRIX_RETURN_NOT_OK(flush_text());
      AddTextNode(element, text_.substr(pos_, end - pos_));
      pos_ = end + 3;
      continue;
    }
    if (Lookahead("<?")) {
      PRIX_RETURN_NOT_OK(SkipProcessingInstruction());
      continue;
    }
    if (Peek() == '<') {
      PRIX_RETURN_NOT_OK(flush_text());
      PRIX_RETURN_NOT_OK(ParseElement(element));
      continue;
    }
    pending_text += Peek();
    ++pos_;
  }
}

void XmlParser::AddTextNode(NodeId parent, std::string_view text) {
  std::string_view content =
      options_.keep_whitespace_text ? text : TrimWhitespace(text);
  if (content.empty()) return;
  doc_.AddChild(parent, dict_->Intern(content), NodeKind::kValue);
}

Status XmlParser::SkipComment() {
  PRIX_DCHECK(Lookahead("<!--"));
  size_t end = text_.find("-->", pos_ + 4);
  if (end == std::string_view::npos) return Error("unterminated comment");
  pos_ = end + 3;
  return Status::OK();
}

Status XmlParser::SkipProcessingInstruction() {
  PRIX_DCHECK(Lookahead("<?"));
  size_t end = text_.find("?>", pos_ + 2);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  pos_ = end + 2;
  return Status::OK();
}

Status XmlParser::SkipDoctype() {
  PRIX_DCHECK(Lookahead("<!DOCTYPE"));
  // Skip to the matching '>' accounting for an optional internal subset [...].
  int bracket_depth = 0;
  for (size_t i = pos_; i < text_.size(); ++i) {
    char c = text_[i];
    if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    } else if (c == '>' && bracket_depth == 0) {
      pos_ = i + 1;
      return Status::OK();
    }
  }
  return Error("unterminated DOCTYPE");
}

Result<std::string> XmlParser::ParseName() {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected XML name");
  }
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;
  return std::string(text_.substr(start, pos_ - start));
}

Result<std::string> XmlParser::ParseQuotedValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = Peek();
  ++pos_;
  size_t end = text_.find(quote, pos_);
  if (end == std::string_view::npos) return Error("unterminated attribute");
  std::string value(text_.substr(pos_, end - pos_));
  pos_ = end + 1;
  return value;
}

Result<std::string> XmlParser::DecodeText(std::string_view raw) const {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string digits(entity.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      char* endptr = nullptr;
      long code = std::strtol(digits.c_str(), &endptr, base);
      if (endptr == digits.c_str() || *endptr != '\0' || code <= 0 ||
          code > 0x10ffff) {
        return Status::ParseError("bad character reference &" +
                                  std::string(entity) + ";");
      }
      // UTF-8 encode the code point.
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xc0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3f));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xe0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
      } else {
        out += static_cast<char>(0xf0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
      }
    } else {
      // Unknown entity: keep it verbatim (non-validating parser).
      out += '&';
      out += entity;
      out += ';';
    }
    i = semi + 1;
  }
  return out;
}

bool XmlParser::Lookahead(std::string_view token) const {
  return text_.substr(pos_, token.size()) == token;
}

bool XmlParser::Consume(std::string_view token) {
  if (!Lookahead(token)) return false;
  pos_ += token.size();
  return true;
}

void XmlParser::SkipWhitespace() {
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
}

Status XmlParser::Error(std::string msg) const {
  // Report 1-based line/column for the current position.
  size_t line = 1, col = 1;
  for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
    if (text_[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return Status::ParseError(msg + " at line " + std::to_string(line) +
                            ", column " + std::to_string(col));
}

}  // namespace prix
