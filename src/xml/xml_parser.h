#ifndef PRIX_XML_XML_PARSER_H_
#define PRIX_XML_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace prix {

/// Options controlling XML-to-tree conversion.
struct XmlParseOptions {
  /// Represent each attribute as a subelement named "@attr" with a value
  /// child, as the paper prescribes (Sec. 2: "An attribute is usually
  /// represented as a subelement of an element").
  bool attributes_as_subelements = true;
  /// Keep text nodes that consist solely of whitespace.
  bool keep_whitespace_text = false;
};

/// A recursive-descent, non-validating XML parser producing a Document whose
/// labels are interned in `dict`. Supports elements, attributes, character
/// data, CDATA sections, comments, processing instructions, a DOCTYPE
/// declaration, and the predefined + numeric character entities. Namespaces
/// are kept verbatim in tag names (prefix:local).
class XmlParser {
 public:
  explicit XmlParser(TagDictionary* dict, XmlParseOptions options = {})
      : dict_(dict), options_(options) {}

  /// Parses a complete document with a single root element.
  Result<Document> Parse(std::string_view text);

 private:
  Status ParseProlog();
  Status ParseElement(NodeId parent);
  Status ParseContent(NodeId element);
  Status ParseAttributes(NodeId element, bool* self_closing);
  Status SkipMisc();
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status SkipDoctype();
  Result<std::string> ParseName();
  Result<std::string> ParseQuotedValue();
  /// Decodes entities in raw character data.
  Result<std::string> DecodeText(std::string_view raw) const;
  void AddTextNode(NodeId parent, std::string_view text);

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Lookahead(std::string_view token) const;
  bool Consume(std::string_view token);
  void SkipWhitespace();
  Status Error(std::string msg) const;

  TagDictionary* dict_;
  XmlParseOptions options_;
  std::string_view text_;
  size_t pos_ = 0;
  Document doc_;
};

/// Convenience wrapper: parse one document.
Result<Document> ParseXml(std::string_view text, TagDictionary* dict,
                          XmlParseOptions options = {});

}  // namespace prix

#endif  // PRIX_XML_XML_PARSER_H_
