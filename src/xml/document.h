#ifndef PRIX_XML_DOCUMENT_H_
#define PRIX_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "xml/tag_dictionary.h"

namespace prix {

/// Index of a node within one Document's node arena.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Identifier of a document within a collection.
using DocId = uint32_t;

/// Whether a node is an element (tag label) or a value (character data).
enum class NodeKind : uint8_t { kElement, kValue };

/// An ordered labeled tree modeling one XML document (Sec. 2 of the paper).
/// Nodes live in an arena; node 0 is the root. Children are kept in document
/// order. Attributes are represented as subelements, as the paper prescribes.
class Document {
 public:
  struct Node {
    LabelId label = kInvalidLabel;
    NodeKind kind = NodeKind::kElement;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
  };

  Document() = default;
  explicit Document(DocId id) : doc_id_(id) {}

  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;
  Document(const Document&) = default;
  Document& operator=(const Document&) = default;

  DocId doc_id() const { return doc_id_; }
  void set_doc_id(DocId id) { doc_id_ = id; }

  /// Creates the root node. Requires the document to be empty.
  NodeId AddRoot(LabelId label, NodeKind kind = NodeKind::kElement);

  /// Appends a child of `parent` (in document order). Requires valid parent.
  NodeId AddChild(NodeId parent, LabelId label,
                  NodeKind kind = NodeKind::kElement);

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return 0; }

  const Node& node(NodeId id) const {
    PRIX_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  LabelId label(NodeId id) const { return node(id).label; }
  NodeKind kind(NodeId id) const { return node(id).kind; }
  NodeId parent(NodeId id) const { return node(id).parent; }
  const std::vector<NodeId>& children(NodeId id) const {
    return node(id).children;
  }
  bool is_leaf(NodeId id) const { return node(id).children.empty(); }

  /// 1-based postorder numbers: out[node] in [1, num_nodes()]. The root gets
  /// num_nodes(). This is the numbering scheme PRIX uses for Prüfer
  /// construction (Sec. 3.2).
  std::vector<uint32_t> ComputePostorder() const;

  /// Inverse of ComputePostorder(): node_of[k] is the node with postorder
  /// number k (index 0 unused).
  std::vector<NodeId> ComputePostorderInverse() const;

  /// Depth of each node (root = 1). Max depth is the paper's Table 2 metric.
  std::vector<uint32_t> ComputeDepths() const;
  uint32_t MaxDepth() const;

  /// Number of element / value nodes.
  size_t CountElements() const;
  size_t CountValues() const;

 private:
  DocId doc_id_ = 0;
  std::vector<Node> nodes_;
};

/// A set of documents sharing one TagDictionary — the paper's collection Δ.
struct DocumentCollection {
  TagDictionary dictionary;
  std::vector<Document> documents;

  DocumentCollection() = default;
  DocumentCollection(const DocumentCollection&) = delete;
  DocumentCollection& operator=(const DocumentCollection&) = delete;
  DocumentCollection(DocumentCollection&&) = default;
  DocumentCollection& operator=(DocumentCollection&&) = default;

  size_t TotalNodes() const {
    size_t n = 0;
    for (const auto& d : documents) n += d.num_nodes();
    return n;
  }
};

/// Splits `doc` into one document per child of its root — how the paper turns
/// a monolithic dataset file (e.g. the whole DBLP tree) into its collection
/// of 328858 record documents.
std::vector<Document> SplitIntoRecords(const Document& doc);

}  // namespace prix

#endif  // PRIX_XML_DOCUMENT_H_
