#include "xml/document.h"

#include <algorithm>

namespace prix {

NodeId Document::AddRoot(LabelId label, NodeKind kind) {
  PRIX_CHECK(nodes_.empty());
  nodes_.push_back(Node{label, kind, kInvalidNode, {}});
  return 0;
}

NodeId Document::AddChild(NodeId parent, LabelId label, NodeKind kind) {
  PRIX_CHECK(parent < nodes_.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{label, kind, parent, {}});
  nodes_[parent].children.push_back(id);
  return id;
}

std::vector<uint32_t> Document::ComputePostorder() const {
  std::vector<uint32_t> number(nodes_.size(), 0);
  if (nodes_.empty()) return number;
  uint32_t counter = 0;
  // Iterative postorder: (node, next-child-index) stack.
  std::vector<std::pair<NodeId, size_t>> stack;
  stack.emplace_back(root(), 0);
  while (!stack.empty()) {
    auto& [node_id, child_idx] = stack.back();
    const auto& kids = nodes_[node_id].children;
    if (child_idx < kids.size()) {
      NodeId next = kids[child_idx++];
      stack.emplace_back(next, 0);
    } else {
      number[node_id] = ++counter;
      stack.pop_back();
    }
  }
  return number;
}

std::vector<NodeId> Document::ComputePostorderInverse() const {
  std::vector<uint32_t> number = ComputePostorder();
  std::vector<NodeId> inverse(nodes_.size() + 1, kInvalidNode);
  for (NodeId v = 0; v < nodes_.size(); ++v) inverse[number[v]] = v;
  return inverse;
}

std::vector<uint32_t> Document::ComputeDepths() const {
  std::vector<uint32_t> depth(nodes_.size(), 0);
  if (nodes_.empty()) return depth;
  depth[root()] = 1;
  // Arena order puts parents before children, so one forward pass suffices.
  for (NodeId v = 1; v < nodes_.size(); ++v) {
    depth[v] = depth[nodes_[v].parent] + 1;
  }
  return depth;
}

uint32_t Document::MaxDepth() const {
  auto depths = ComputeDepths();
  return depths.empty() ? 0 : *std::max_element(depths.begin(), depths.end());
}

size_t Document::CountElements() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node.kind == NodeKind::kElement;
  return n;
}

size_t Document::CountValues() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node.kind == NodeKind::kValue;
  return n;
}

namespace {

void CopySubtree(const Document& src, NodeId src_node, Document& dst,
                 NodeId dst_parent) {
  NodeId copied = dst_parent == kInvalidNode
                      ? dst.AddRoot(src.label(src_node), src.kind(src_node))
                      : dst.AddChild(dst_parent, src.label(src_node),
                                     src.kind(src_node));
  for (NodeId child : src.children(src_node)) {
    CopySubtree(src, child, dst, copied);
  }
}

}  // namespace

std::vector<Document> SplitIntoRecords(const Document& doc) {
  std::vector<Document> records;
  if (doc.empty()) return records;
  records.reserve(doc.children(doc.root()).size());
  for (NodeId child : doc.children(doc.root())) {
    Document record(static_cast<DocId>(records.size()));
    CopySubtree(doc, child, record, kInvalidNode);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace prix
