#include "prix/query_driver.h"

#include <optional>
#include <utility>

#include "common/macros.h"
#include "prix/snapshot_view.h"
#include "query/xpath_parser.h"

namespace prix {

Result<BatchResult> QueryDriver::ExecuteBatch(
    const std::vector<TwigPattern>& patterns, const QueryOptions& options) {
  BatchResult batch;
  batch.results.resize(patterns.size());
  std::vector<Status> statuses(patterns.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    // Workers write disjoint slots; the future join publishes them.
    futures.push_back(pool_.Submit([this, &patterns, &batch, i, options] {
      PRIX_ASSIGN_OR_RETURN(batch.results[i],
                            processor_.Execute(patterns[i], options));
      return Status::OK();
    }));
  }
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status st = futures[i].get();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  PRIX_RETURN_NOT_OK(first_error);
  for (const QueryResult& r : batch.results) batch.total.MergeFrom(r.stats);
  return batch;
}

Result<BatchResult> QueryDriver::RunXPathBatch(
    const QueryProcessor* processor, const std::vector<std::string>& xpaths,
    TagDictionary* dict, const QueryOptions& options) {
  BatchResult batch;
  batch.results.resize(xpaths.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(xpaths.size());
  for (size_t i = 0; i < xpaths.size(); ++i) {
    // Parse inside the worker: TagDictionary::Intern is thread-safe, and
    // workers write disjoint result slots; the future join publishes them.
    futures.push_back(
        pool_.Submit([processor, &xpaths, dict, &batch, i, options] {
          PRIX_ASSIGN_OR_RETURN(TwigPattern pattern,
                                ParseXPath(xpaths[i], dict));
          PRIX_ASSIGN_OR_RETURN(batch.results[i],
                                processor->Execute(pattern, options));
          return Status::OK();
        }));
  }
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status st = futures[i].get();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  PRIX_RETURN_NOT_OK(first_error);
  for (const QueryResult& r : batch.results) batch.total.MergeFrom(r.stats);
  return batch;
}

Result<BatchResult> QueryDriver::ExecuteXPathBatch(
    const std::vector<std::string>& xpaths, TagDictionary* dict,
    const QueryOptions& options) {
  return RunXPathBatch(&processor_, xpaths, dict, options);
}

Result<BatchResult> QueryDriver::ExecuteXPathBatchSnapshot(
    const std::string& rp_name, const std::string& ep_name,
    const std::vector<std::string>& xpaths, TagDictionary* dict,
    const QueryOptions& options) {
  // One snapshot pins both indexes to the same generation; the views (and
  // with them the pin) live until every worker has joined.
  std::shared_ptr<const Snapshot> snap = db_->OpenSnapshot();
  PRIX_ASSIGN_OR_RETURN(SnapshotView rp,
                        SnapshotView::OpenAt(db_, snap, rp_name));
  std::optional<SnapshotView> ep;
  if (!ep_name.empty()) {
    PRIX_ASSIGN_OR_RETURN(SnapshotView view,
                          SnapshotView::OpenAt(db_, snap, ep_name));
    ep.emplace(std::move(view));
  }
  QueryProcessor processor(*db_, rp.index(),
                           ep.has_value() ? ep->index() : nullptr);
  PRIX_ASSIGN_OR_RETURN(BatchResult batch,
                        RunXPathBatch(&processor, xpaths, dict, options));
  batch.generation = snap->generation();
  return batch;
}

}  // namespace prix
