#include "prix/query_driver.h"

#include "common/macros.h"
#include "query/xpath_parser.h"

namespace prix {

Result<BatchResult> QueryDriver::ExecuteBatch(
    const std::vector<TwigPattern>& patterns, const QueryOptions& options) {
  BatchResult batch;
  batch.results.resize(patterns.size());
  std::vector<Status> statuses(patterns.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    // Workers write disjoint slots; the future join publishes them.
    futures.push_back(pool_.Submit([this, &patterns, &batch, i, options] {
      PRIX_ASSIGN_OR_RETURN(batch.results[i],
                            processor_.Execute(patterns[i], options));
      return Status::OK();
    }));
  }
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status st = futures[i].get();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  PRIX_RETURN_NOT_OK(first_error);
  for (const QueryResult& r : batch.results) batch.total.MergeFrom(r.stats);
  return batch;
}

Result<BatchResult> QueryDriver::ExecuteXPathBatch(
    const std::vector<std::string>& xpaths, TagDictionary* dict,
    const QueryOptions& options) {
  BatchResult batch;
  batch.results.resize(xpaths.size());
  std::vector<std::future<Status>> futures;
  futures.reserve(xpaths.size());
  for (size_t i = 0; i < xpaths.size(); ++i) {
    // Parse inside the worker: TagDictionary::Intern is thread-safe, and
    // workers write disjoint result slots; the future join publishes them.
    futures.push_back(pool_.Submit([this, &xpaths, dict, &batch, i, options] {
      PRIX_ASSIGN_OR_RETURN(TwigPattern pattern,
                            ParseXPath(xpaths[i], dict));
      PRIX_ASSIGN_OR_RETURN(batch.results[i],
                            processor_.Execute(pattern, options));
      return Status::OK();
    }));
  }
  Status first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    Status st = futures[i].get();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  PRIX_RETURN_NOT_OK(first_error);
  for (const QueryResult& r : batch.results) batch.total.MergeFrom(r.stats);
  return batch;
}

}  // namespace prix
