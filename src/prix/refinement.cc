#include "prix/refinement.h"

#include <algorithm>
#include <cstdlib>

#include "common/macros.h"
#include "prufer/prufer.h"

namespace prix {

RefinableDoc RefinableDoc::Make(StoredDoc stored, bool extended) {
  RefinableDoc doc;
  doc.stored = std::move(stored);
  const PruferSequences& seq = doc.stored.seq;
  const uint32_t n = seq.num_nodes;
  doc.label_of.assign(n + 1, kInvalidLabel);
  if (n > 0) doc.label_of[n] = seq.root_label;
  // Internal labels from the LPS: node nps[k] is the parent of node k+1 and
  // carries label lps[k] (Example 6's LPS/NPS search, done once).
  for (uint32_t k = 0; k + 1 < n; ++k) {
    doc.label_of[seq.nps[k]] = seq.lps[k];
  }
  for (const LeafEntry& leaf : doc.stored.leaves) {
    doc.label_of[leaf.postorder] = leaf.label;
  }
  if (extended) {
    doc.orig_post = ExtendedToOriginalPostorder(seq);
  }
  return doc;
}

namespace {

/// N_D value at matched position p (1-based): the postorder number of the
/// parent of the node deleted there.
inline uint32_t DataN(const RefinableDoc& doc, uint32_t p) {
  return doc.stored.seq.nps[p - 1];
}

}  // namespace

bool CheckConnectedness(const RefinableDoc& doc,
                        const std::vector<uint32_t>& positions,
                        bool generalized) {
  const size_t k = positions.size();
  // N = postorder number sequence of the matched subsequence.
  uint32_t max_n = 0;
  for (uint32_t p : positions) max_n = std::max(max_n, DataN(doc, p));
  for (size_t i = 0; i < k; ++i) {
    uint32_t ni = DataN(doc, positions[i]);
    if (ni == max_n) continue;
    bool later = false;
    for (size_t j = i + 1; j < k && !later; ++j) {
      later = DataN(doc, positions[j]) == ni;
    }
    if (later) continue;
    // Last occurrence of ni: in the deletion order the node deleted next is
    // ni itself (Lemma 1), so the next MATCHED deletion must be ni — which
    // also forces N_{i+1} = N_T[ni], the published Theorem 2 condition.
    // Matching only the published condition on N values would accept
    // occurrences where a different node with an identically-labeled parent
    // stands in for ni (no embedding exists); Example 6's leaf matching
    // relies on the matched positions being the images, so we anchor here.
    // Generalized queries (Sec. 4.5): the next matched deletion is the top
    // of the connecting path — an ancestor-or-self of ni whose parent is
    // N_{i+1}.
    if (i + 1 >= k) return false;
    uint32_t next_deleted = positions[i + 1];
    if (!generalized) {
      if (next_deleted != ni) return false;
      continue;
    }
    uint32_t chain = ni;
    while (chain < next_deleted) {
      chain = doc.stored.seq.nps[chain - 1];  // parent of node `chain`
    }
    if (chain != next_deleted) return false;
  }
  return true;
}

bool CheckGapConsistency(const RefinableDoc& doc, const QuerySequence& q,
                         const std::vector<uint32_t>& positions) {
  for (size_t i = 0; i + 1 < positions.size(); ++i) {
    int64_t data_gap = static_cast<int64_t>(DataN(doc, positions[i])) -
                       static_cast<int64_t>(DataN(doc, positions[i + 1]));
    int64_t query_gap =
        static_cast<int64_t>(q.nps[i]) - static_cast<int64_t>(q.nps[i + 1]);
    if ((data_gap == 0) != (query_gap == 0)) return false;
    if (data_gap * query_gap < 0) return false;
    if (std::llabs(query_gap) > std::llabs(data_gap)) return false;
  }
  return true;
}

bool CheckFrequencyConsistency(const RefinableDoc& doc,
                               const QuerySequence& q,
                               const std::vector<uint32_t>& positions) {
  const size_t k = positions.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      bool q_eq = q.nps[i] == q.nps[j];
      bool d_eq = DataN(doc, positions[i]) == DataN(doc, positions[j]);
      if (q_eq != d_eq) return false;
    }
  }
  return true;
}

namespace {

bool CheckLeaves(const RefinableDoc& doc, const QuerySequence& q,
                 const std::vector<uint32_t>& positions, bool generalized) {
  // RP stores only; the node deleted at matched position p is node p itself
  // (Lemma 1), so a query leaf at sequence position k maps to data node
  // positions[k-1]. Under a non-child edge the matched deletion is the top
  // of the connecting path, not the leaf image, so the check applies only
  // to leaves attached by an exact child edge (generalized queries get a
  // final direct verification anyway).
  for (const QuerySequence::QueryLeaf& leaf : q.rp_leaves) {
    if (leaf.is_star) continue;
    if (generalized && !leaf.exact_child_edge) continue;
    uint32_t data_node = positions[leaf.position - 1];
    if (doc.label_of[data_node] != leaf.label) return false;
  }
  return true;
}

}  // namespace

bool RefineCandidate(const RefinableDoc& doc, const QuerySequence& q,
                     const std::vector<uint32_t>& positions, bool generalized,
                     RefineStats* stats) {
  ++stats->candidates;
  PRIX_DCHECK(positions.size() == q.lps.size());
  if (!CheckConnectedness(doc, positions, generalized)) {
    ++stats->failed_connectedness;
    return false;
  }
  if (!CheckGapConsistency(doc, q, positions)) {
    ++stats->failed_gap;
    return false;
  }
  if (!CheckFrequencyConsistency(doc, q, positions)) {
    ++stats->failed_frequency;
    return false;
  }
  if (!q.extended && !CheckLeaves(doc, q, positions, generalized)) {
    ++stats->failed_leaves;
    return false;
  }
  ++stats->passed;
  return true;
}

std::vector<uint32_t> ExtractImage(const RefinableDoc& doc,
                                   const QuerySequence& q,
                                   const std::vector<uint32_t>& positions,
                                   size_t num_effective_nodes) {
  std::vector<uint32_t> image(num_effective_nodes, 0);
  auto translate = [&](uint32_t v) {
    return doc.orig_post.empty() ? v : doc.orig_post[v];
  };
  for (uint32_t e = 0; e < num_effective_nodes; ++e) {
    uint32_t k = q.position_of_eff[e];
    if (k == q.num_nodes) {
      // Query root: parent of the last matched deletion.
      image[e] = translate(DataN(doc, positions.back()));
    } else {
      image[e] = translate(positions[k - 1]);
    }
  }
  return image;
}

void BuildOriginalArrays(const RefinableDoc& doc, bool extended,
                         std::vector<uint32_t>* parent,
                         std::vector<LabelId>* label, uint32_t* n) {
  const PruferSequences& seq = doc.stored.seq;
  if (!extended) {
    *n = seq.num_nodes;
    parent->assign(*n + 1, 0);
    label->assign(*n + 1, kInvalidLabel);
    for (uint32_t v = 1; v < *n; ++v) (*parent)[v] = seq.nps[v - 1];
    for (uint32_t v = 1; v <= *n; ++v) (*label)[v] = doc.label_of[v];
    return;
  }
  // Strip dummies: original node count = non-dummy count.
  PRIX_CHECK(!doc.orig_post.empty());
  uint32_t orig_n = 0;
  for (uint32_t v = 1; v <= seq.num_nodes; ++v) {
    orig_n = std::max(orig_n, doc.orig_post[v]);
  }
  *n = orig_n;
  parent->assign(orig_n + 1, 0);
  label->assign(orig_n + 1, kInvalidLabel);
  for (uint32_t v = 1; v <= seq.num_nodes; ++v) {
    uint32_t ov = doc.orig_post[v];
    if (ov == 0) continue;  // dummy
    (*label)[ov] = doc.label_of[v];
    if (v < seq.num_nodes) {
      // Parent of a non-dummy node is always non-dummy.
      (*parent)[ov] = doc.orig_post[seq.nps[v - 1]];
    }
  }
}

}  // namespace prix
