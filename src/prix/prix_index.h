#ifndef PRIX_PRIX_PRIX_INDEX_H_
#define PRIX_PRIX_PRIX_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "db/database.h"
#include "prix/doc_store.h"
#include "prix/maxgap.h"
#include "trie/range_labeler.h"
#include "trie/trie_builder.h"
#include "xml/document.h"

namespace prix {

/// Label used for the dummy children of Extended-Prüfer trees. Dummies are
/// always leaves, so this label never enters any sequence or index.
inline constexpr LabelId kDummyLabel = 0xfffffffeu;

/// Key of the Trie-Symbol index: all symbols share one B+-tree, keyed by
/// (symbol, LeftPos). Range descent for symbol e over trie scope (l, r]
/// scans keys (e, l+1) .. (e, r). The paper builds one B+-tree per tag;
/// a shared tree with a composite key has the same asymptotics and page
/// behaviour without needing one tree per distinct value label (see
/// DESIGN.md).
struct SymbolKey {
  LabelId label;
  uint32_t pad = 0;
  uint64_t left;

  friend bool operator<(const SymbolKey& a, const SymbolKey& b) {
    if (a.label != b.label) return a.label < b.label;
    return a.left < b.left;
  }
};

/// Value of the Trie-Symbol index: the node's RightPos and its level in the
/// trie (= the position of this label within the LPS, 1-based).
struct TrieNodeValue {
  uint64_t right;
  uint32_t level;
  uint32_t pad = 0;
};

/// Key of the Docid index: (LeftPos of the trie node where an LPS ends,
/// sequence number to disambiguate multiple documents ending at one node).
struct DocKey {
  uint64_t left;
  uint32_t seq;
  uint32_t pad = 0;

  friend bool operator<(const DocKey& a, const DocKey& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.seq < b.seq;
  }
};

/// True when the PRIX_COMPRESS environment variable is set to 1 (read once).
/// The default for PrixIndexOptions::compress, so entire test/bench suites
/// can run against compressed indexes without threading the flag through
/// every construction site (tools/ci.sh uses this for its compressed tier).
bool CompressFromEnv();

/// Options controlling index construction.
struct PrixIndexOptions {
  /// false: RPIndex (Regular-Prüfer); true: EPIndex (Extended-Prüfer,
  /// Sec. 5.6) — leaves get dummy children so every label enters the LPS.
  bool extended = false;
  enum class Labeling { kExact, kDynamic };
  Labeling labeling = Labeling::kExact;
  /// Pre-allocated prefix depth for dynamic labeling (Sec. 5.2.1).
  uint32_t alpha = 2;
  /// v3 compressed on-disk formats (DESIGN.md §5h): delta-coded B+-tree
  /// leaf pages and varint/block-coded document records. Recorded in the
  /// index's catalog blob (version 2), so mixed-format databases reopen
  /// correctly; query answers are identical either way.
  bool compress = CompressFromEnv();
};

/// Construction statistics (reported by benches and EXPERIMENTS.md).
struct PrixIndexBuildStats {
  uint64_t trie_nodes = 0;
  uint64_t max_path_sharing = 0;  ///< most sequences through one deepest node
  uint64_t symbol_entries = 0;
  uint64_t docid_entries = 0;
  uint64_t total_sequence_length = 0;
  LabelerStats labeler;
  uint64_t pages_after_build = 0;
};

/// The PRIX index of Fig. 3: a virtual trie over the collection's Labeled
/// Prüfer sequences, materialized as a Trie-Symbol B+-tree and a Docid
/// B+-tree, plus the document store (NPS + leaf lists) and the MaxGap table.
class PrixIndex {
 public:
  using SymbolTree = BPlusTree<SymbolKey, TrieNodeValue>;
  using DocTree = BPlusTree<DocKey, DocId>;

  /// Builds the index over `documents` (DocIds must equal vector positions).
  static Result<std::unique_ptr<PrixIndex>> Build(
      const std::vector<Document>& documents, BufferPool* pool,
      PrixIndexOptions options, PrixIndexBuildStats* stats = nullptr);

  /// Persists the index (tree roots, doc-store extents, MaxGap table,
  /// childless labels) into `db` and registers it in the database catalog
  /// under `name` (kind kPrixRegular/kPrixExtended), committing the catalog
  /// crash-safely. Overwrites any previous entry of that name.
  Status Save(Database* db, const std::string& name) const;

  /// Reopens the index registered under `name` in `db`'s catalog.
  static Result<std::unique_ptr<PrixIndex>> Open(Database* db,
                                                 const std::string& name);

  /// Reopens an index from a catalog entry directly — the snapshot read
  /// path, where the entry comes from a pinned Snapshot instead of the live
  /// catalog (see db/snapshot_view.h).
  static Result<std::unique_ptr<PrixIndex>> OpenFromEntry(
      BufferPool* pool, const Database::IndexEntry& entry);

  /// Best-effort salvage into `dst` (a different, fresh database): walks
  /// both B+-trees via WalkReachable, re-inserting every reachable entry
  /// into new trees and skipping poisoned subtrees, and copies every
  /// readable document record (unreadable ones become empty placeholders so
  /// DocIds stay aligned with surviving Docid-index entries). The rebuilt
  /// index is registered in `dst`'s catalog under `name`. Only a failure to
  /// WRITE to `dst` returns non-OK; source corruption is counted in
  /// `stats`, never fatal.
  Status Salvage(Database* dst, const std::string& name,
                 SalvageStats* stats) const;

  SymbolTree& symbol_index() { return *symbol_index_; }
  DocTree& docid_index() { return *docid_index_; }
  const DocStore& docs() const { return *docs_; }
  const MaxGapTable& maxgap() const { return maxgap_; }

  // ---- online-ingest surface (src/prix/database_ingest.cc) ----

  /// Routes every subsequent page write of both B+-trees and the doc store
  /// through the copy-on-write context (nullptr detaches). While attached,
  /// the trees' meta page ids change on first mutation; re-read
  /// meta_page_id() when serializing the catalog for publication.
  void SetCow(CowContext* cow) {
    symbol_index_->SetCow(cow);
    docid_index_->SetCow(cow);
    docs_->SetCow(cow);
  }

  /// True when `doc` has been deleted. Tombstoned DocIds keep their
  /// DocStore record (the store is append-only) but are skipped by the
  /// matcher and query processor and never reused.
  bool IsDeleted(DocId doc) const {
    return tombstones_.find(doc) != tombstones_.end();
  }
  void Tombstone(DocId doc) { tombstones_.insert(doc); }
  const std::unordered_set<DocId>& tombstones() const { return tombstones_; }
  size_t num_live_docs() const {
    return docs_->num_docs() - tombstones_.size();
  }

  DocStore& docs_mut() { return *docs_; }
  MaxGapTable& maxgap_mut() { return maxgap_; }
  void AddChildlessLabel(LabelId label) { childless_labels_.insert(label); }
  void set_root_range(RangeLabel range) { root_range_ = range; }

  /// Serializes the full index catalog (format tag, options, tree roots,
  /// store extents, MaxGap, childless labels, tombstones) into `blob` —
  /// what Save writes, exposed so a write transaction can publish through
  /// Database::CommitBatch instead of PutIndex.
  void SerializeCatalog(std::vector<char>* blob) const;

  /// Rebuilds document `doc` from its stored Prüfer transform — RP records
  /// via the stored leaf list, EP records by synthesizing the dummy leaves
  /// and stripping them from the reconstruction. Used by ingest (to learn
  /// which tag streams a delete touches) and by salvage (to regenerate
  /// derived ViST/TwigStack indexes from the surviving documents). Fails on
  /// tombstoned or unreadable records.
  Result<Document> ReconstructDocument(DocId doc) const;

  /// Scope of the virtual trie root: every node's LeftPos lies in
  /// (root.left, root.right].
  RangeLabel root_range() const { return root_range_; }
  bool extended() const { return options_.extended; }
  size_t num_docs() const { return docs_->num_docs(); }
  const PrixIndexOptions& options() const { return options_; }

  /// True if some node labeled `label` occurs WITHOUT children anywhere in
  /// the collection. Labels for which this is false may be safely added to
  /// regular query sequences via a dummy child (the Sec. 4.4 leaf
  /// treatment): any matching data node is guaranteed a deletion recording
  /// its label.
  bool LabelOccursChildless(LabelId label) const {
    return childless_labels_.find(label) != childless_labels_.end();
  }

 private:
  PrixIndex() = default;

  PrixIndexOptions options_;
  std::unique_ptr<SymbolTree> symbol_index_;
  std::unique_ptr<DocTree> docid_index_;
  std::unique_ptr<DocStore> docs_;
  MaxGapTable maxgap_;
  RangeLabel root_range_;
  std::unordered_set<LabelId> childless_labels_;
  std::unordered_set<DocId> tombstones_;
};

}  // namespace prix

#endif  // PRIX_PRIX_PRIX_INDEX_H_
