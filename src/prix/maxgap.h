#ifndef PRIX_PRIX_MAXGAP_H_
#define PRIX_PRIX_MAXGAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace prix {

/// MaxGap(e, Delta) of Definition 5: the maximum, over all nodes labeled e in
/// the collection, of (postorder of last child - postorder of first child).
/// Labels whose occurrences all have at most one child get 0; so do labels
/// never seen. Used as the upper-bounding distance metric of Theorem 4.
class MaxGapTable {
 public:
  MaxGapTable() = default;

  /// Folds one document (already extended, for EP tables) into the table.
  void AddDocument(const Document& doc);

  uint32_t Get(LabelId label) const {
    auto it = table_.find(label);
    return it == table_.end() ? 0 : it->second;
  }

  size_t size() const { return table_.size(); }

  /// Catalog (de)serialization for index persistence.
  void SerializeTo(std::vector<char>* out) const;
  static Result<MaxGapTable> Deserialize(const char** p, const char* end);

 private:
  std::unordered_map<LabelId, uint32_t> table_;
};

}  // namespace prix

#endif  // PRIX_PRIX_MAXGAP_H_
