#include "prix/doc_store.h"

#include "common/macros.h"

namespace prix {

Status DocStore::Append(DocId doc, const PruferSequences& seq,
                        const std::vector<LeafEntry>& leaves) {
  if (doc != store_.num_records()) {
    return Status::InvalidArgument("DocStore::Append out of DocId order");
  }
  std::vector<char> buf;
  const uint32_t n = seq.num_nodes;
  buf.reserve(16 + 8ull * (n > 0 ? n - 1 : 0) + 8ull * leaves.size());
  PutU32(&buf, n);
  PutU32(&buf, seq.root_label);
  for (LabelId l : seq.lps) PutU32(&buf, l);
  for (uint32_t p : seq.nps) PutU32(&buf, p);
  PutU32(&buf, static_cast<uint32_t>(leaves.size()));
  for (const LeafEntry& leaf : leaves) {
    PutU32(&buf, leaf.label);
    PutU32(&buf, leaf.postorder);
  }
  PRIX_ASSIGN_OR_RETURN(uint32_t id, store_.Append(buf.data(), buf.size()));
  PRIX_DCHECK(id == doc);
  (void)id;
  return Status::OK();
}

Result<StoredDoc> DocStore::Load(DocId doc) const {
  std::vector<char> buf;
  PRIX_RETURN_NOT_OK(store_.Load(doc, &buf));
  StoredDoc out;
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) return Status::Corruption("truncated doc record");
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(8));
  uint32_t n = GetU32(p);
  p += 4;
  out.seq.num_nodes = n;
  out.seq.root_label = GetU32(p);
  p += 4;
  uint32_t len = n > 0 ? n - 1 : 0;
  PRIX_RETURN_NOT_OK(need(8ull * len + 4));
  out.seq.lps.resize(len);
  for (uint32_t i = 0; i < len; ++i, p += 4) out.seq.lps[i] = GetU32(p);
  out.seq.nps.resize(len);
  for (uint32_t i = 0; i < len; ++i, p += 4) out.seq.nps[i] = GetU32(p);
  uint32_t leaf_count = GetU32(p);
  p += 4;
  PRIX_RETURN_NOT_OK(need(8ull * leaf_count));
  out.leaves.resize(leaf_count);
  for (uint32_t i = 0; i < leaf_count; ++i, p += 8) {
    out.leaves[i] = LeafEntry{GetU32(p), GetU32(p + 4)};
  }
  return out;
}

}  // namespace prix
