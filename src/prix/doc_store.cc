#include "prix/doc_store.h"

#include <algorithm>

#include "common/macros.h"
#include "common/varint.h"

namespace prix {

namespace {

/// v3 array coding: 128-entry blocks, each a restart value plus zig-zag
/// deltas, preceded by a directory of per-block byte lengths (skip
/// offsets). See the DocStore class comment.
constexpr uint32_t kDocBlockEntries = 128;

void BlockEncodeU32(const uint32_t* v, size_t len, std::vector<char>* out) {
  size_t num_blocks = (len + kDocBlockEntries - 1) / kDocBlockEntries;
  std::vector<char> data;
  std::vector<size_t> block_lens;
  block_lens.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    size_t before = data.size();
    size_t lo = b * kDocBlockEntries;
    size_t hi = std::min(len, lo + kDocBlockEntries);
    PutVarint32(&data, v[lo]);  // restart value
    for (size_t i = lo + 1; i < hi; ++i) {
      PutVarint64(&data, ZigzagEncode64(static_cast<int64_t>(v[i]) -
                                        static_cast<int64_t>(v[i - 1])));
    }
    block_lens.push_back(data.size() - before);
  }
  for (size_t n : block_lens) PutVarint64(out, n);
  out->insert(out->end(), data.begin(), data.end());
}

Status BlockDecodeU32(const char** p, const char* end, size_t len,
                      uint32_t* dst) {
  size_t num_blocks = (len + kDocBlockEntries - 1) / kDocBlockEntries;
  std::vector<uint64_t> block_lens(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    if (!GetVarint64(p, end, &block_lens[b])) {
      return Status::Corruption("doc record: truncated block directory");
    }
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    if (block_lens[b] > static_cast<uint64_t>(end - *p)) {
      return Status::Corruption("doc record: block length " +
                                std::to_string(block_lens[b]) +
                                " runs past the record");
    }
    // Each block's varints are bounded by its own directory entry, and the
    // cursor must land exactly on the block end — a garbled delta cannot
    // desynchronize the blocks after it.
    const char* block_end = *p + block_lens[b];
    size_t lo = b * kDocBlockEntries;
    size_t hi = std::min(len, lo + kDocBlockEntries);
    uint32_t restart;
    if (!GetVarint32(p, block_end, &restart)) {
      return Status::Corruption("doc record: bad block restart value");
    }
    dst[lo] = restart;
    int64_t prev = restart;
    for (size_t i = lo + 1; i < hi; ++i) {
      uint64_t enc;
      if (!GetVarint64(p, block_end, &enc)) {
        return Status::Corruption("doc record: truncated block delta");
      }
      int64_t value = prev + ZigzagDecode64(enc);
      if (value < 0 || value > 0xffffffffll) {
        return Status::Corruption("doc record: block delta out of range");
      }
      dst[i] = static_cast<uint32_t>(value);
      prev = value;
    }
    if (*p != block_end) {
      return Status::Corruption("doc record: trailing bytes in block");
    }
  }
  return Status::OK();
}

}  // namespace

Status DocStore::Append(DocId doc, const PruferSequences& seq,
                        const std::vector<LeafEntry>& leaves) {
  if (doc != store_.num_records()) {
    return Status::InvalidArgument("DocStore::Append out of DocId order");
  }
  std::vector<char> buf;
  const uint32_t n = seq.num_nodes;
  const uint32_t len = n > 0 ? n - 1 : 0;
  if (!compressed_) {
    buf.reserve(16 + 8ull * len + 8ull * leaves.size());
    PutU32(&buf, n);
    PutU32(&buf, seq.root_label);
    for (LabelId l : seq.lps) PutU32(&buf, l);
    for (uint32_t p : seq.nps) PutU32(&buf, p);
    PutU32(&buf, static_cast<uint32_t>(leaves.size()));
    for (const LeafEntry& leaf : leaves) {
      PutU32(&buf, leaf.label);
      PutU32(&buf, leaf.postorder);
    }
  } else {
    PutVarint32(&buf, n);
    PutVarint32(&buf, seq.root_label);
    BlockEncodeU32(seq.lps.data(), len, &buf);
    BlockEncodeU32(seq.nps.data(), len, &buf);
    PutVarint64(&buf, leaves.size());
    uint32_t prev_post = 0;
    for (const LeafEntry& leaf : leaves) {
      PutVarint32(&buf, leaf.label);
      PutVarint64(&buf, ZigzagEncode64(static_cast<int64_t>(leaf.postorder) -
                                       static_cast<int64_t>(prev_post)));
      prev_post = leaf.postorder;
    }
  }
  PRIX_ASSIGN_OR_RETURN(uint32_t id, store_.Append(buf.data(), buf.size()));
  PRIX_DCHECK(id == doc);
  (void)id;
  return Status::OK();
}

Result<StoredDoc> DocStore::Load(DocId doc) const {
  std::vector<char> buf;
  PRIX_RETURN_NOT_OK(store_.Load(doc, &buf));
  StoredDoc out;
  const char* p = buf.data();
  const char* end = buf.data() + buf.size();
  if (!compressed_) {
    auto need = [&](size_t bytes) -> Status {
      if (p + bytes > end) return Status::Corruption("truncated doc record");
      return Status::OK();
    };
    PRIX_RETURN_NOT_OK(need(8));
    uint32_t n = GetU32(p);
    p += 4;
    out.seq.num_nodes = n;
    out.seq.root_label = GetU32(p);
    p += 4;
    uint32_t len = n > 0 ? n - 1 : 0;
    PRIX_RETURN_NOT_OK(need(8ull * len + 4));
    out.seq.lps.resize(len);
    for (uint32_t i = 0; i < len; ++i, p += 4) out.seq.lps[i] = GetU32(p);
    out.seq.nps.resize(len);
    for (uint32_t i = 0; i < len; ++i, p += 4) out.seq.nps[i] = GetU32(p);
    uint32_t leaf_count = GetU32(p);
    p += 4;
    PRIX_RETURN_NOT_OK(need(8ull * leaf_count));
    out.leaves.resize(leaf_count);
    for (uint32_t i = 0; i < leaf_count; ++i, p += 8) {
      out.leaves[i] = LeafEntry{GetU32(p), GetU32(p + 4)};
    }
    return out;
  }
  uint32_t n;
  if (!GetVarint32(&p, end, &n) ||
      !GetVarint32(&p, end, &out.seq.root_label)) {
    return Status::Corruption("truncated doc record");
  }
  out.seq.num_nodes = n;
  uint32_t len = n > 0 ? n - 1 : 0;
  // Every encoded entry costs at least one byte, so a fabricated node count
  // is caught before it can size an allocation.
  if (len > static_cast<uint64_t>(end - p)) {
    return Status::Corruption("doc record: node count " + std::to_string(n) +
                              " exceeds the record size");
  }
  out.seq.lps.resize(len);
  out.seq.nps.resize(len);
  PRIX_RETURN_NOT_OK(BlockDecodeU32(&p, end, len, out.seq.lps.data()));
  PRIX_RETURN_NOT_OK(BlockDecodeU32(&p, end, len, out.seq.nps.data()));
  uint64_t leaf_count;
  if (!GetVarint64(&p, end, &leaf_count)) {
    return Status::Corruption("truncated doc record (leaf count)");
  }
  if (leaf_count > static_cast<uint64_t>(end - p)) {
    return Status::Corruption("doc record: leaf count " +
                              std::to_string(leaf_count) +
                              " exceeds the record size");
  }
  out.leaves.resize(leaf_count);
  int64_t prev_post = 0;
  for (uint64_t i = 0; i < leaf_count; ++i) {
    uint64_t enc;
    if (!GetVarint32(&p, end, &out.leaves[i].label) ||
        !GetVarint64(&p, end, &enc)) {
      return Status::Corruption("truncated doc record (leaf list)");
    }
    int64_t post = prev_post + ZigzagDecode64(enc);
    if (post < 0 || post > 0xffffffffll) {
      return Status::Corruption("doc record: leaf postorder out of range");
    }
    out.leaves[i].postorder = static_cast<uint32_t>(post);
    prev_post = post;
  }
  if (p != end) {
    return Status::Corruption("doc record: trailing bytes after leaf list");
  }
  return out;
}

}  // namespace prix
