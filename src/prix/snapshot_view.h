#ifndef PRIX_PRIX_SNAPSHOT_VIEW_H_
#define PRIX_PRIX_SNAPSHOT_VIEW_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "db/database.h"
#include "prix/prix_index.h"

namespace prix {

/// A PRIX index opened against one pinned catalog generation (DESIGN.md
/// §5i). Readers that must stay consistent while writers commit open a
/// SnapshotView instead of PrixIndex::Open: the view resolves the index
/// root through a Database::Snapshot and keeps that snapshot alive, so
/// every page the query touches — tree nodes, doc records, the catalog
/// blob — is protected from recycling until the view is destroyed. The
/// result set of any query run through the view is exactly the pinned
/// generation's answer, never a mix of generations.
///
/// Thread safety: one SnapshotView (like one PrixIndex) serves one reader
/// thread; concurrent readers each open their own view. Opening is cheap —
/// a catalog-map copy plus the index-catalog blob read.
class SnapshotView {
 public:
  /// Pins the current committed generation of `db` and opens the named PRIX
  /// index out of it. The Database must outlive the view.
  static Result<SnapshotView> Open(Database* db,
                                   const std::string& index_name);

  /// Opens the named index out of an already-pinned snapshot (several views
  /// can share one snapshot when a batch queries multiple indexes).
  static Result<SnapshotView> OpenAt(Database* db,
                                     std::shared_ptr<const Snapshot> snapshot,
                                     const std::string& index_name);

  SnapshotView(SnapshotView&&) = default;
  SnapshotView& operator=(SnapshotView&&) = default;

  PrixIndex* index() { return index_.get(); }
  const Snapshot& snapshot() const { return *snapshot_; }
  uint64_t generation() const { return snapshot_->generation(); }

 private:
  SnapshotView(std::shared_ptr<const Snapshot> snapshot,
               std::unique_ptr<PrixIndex> index)
      : snapshot_(std::move(snapshot)), index_(std::move(index)) {}

  std::shared_ptr<const Snapshot> snapshot_;  ///< pin released on destruction
  std::unique_ptr<PrixIndex> index_;
};

}  // namespace prix

#endif  // PRIX_PRIX_SNAPSHOT_VIEW_H_
