#include "prix/prix_index.h"

#include <algorithm>
#include <cstdlib>

#include "common/macros.h"

namespace prix {

bool CompressFromEnv() {
  static const bool value = [] {
    const char* env = std::getenv("PRIX_COMPRESS");
    return env != nullptr && env[0] == '1';
  }();
  return value;
}

Result<std::unique_ptr<PrixIndex>> PrixIndex::Build(
    const std::vector<Document>& documents, BufferPool* pool,
    PrixIndexOptions options, PrixIndexBuildStats* stats) {
  auto index = std::unique_ptr<PrixIndex>(new PrixIndex());
  index->options_ = options;
  index->docs_ = std::make_unique<DocStore>(pool, options.compress);
  PRIX_ASSIGN_OR_RETURN(SymbolTree sym,
                        SymbolTree::Create(pool, {}, options.compress));
  index->symbol_index_ = std::make_unique<SymbolTree>(std::move(sym));
  PRIX_ASSIGN_OR_RETURN(DocTree doct,
                        DocTree::Create(pool, {}, options.compress));
  index->docid_index_ = std::make_unique<DocTree>(std::move(doct));

  PrixIndexBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Phase 1: transform every document, populate the doc store and MaxGap
  // table, and insert every LPS into the (in-memory, build-time) trie.
  SequenceTrie trie;
  std::vector<std::vector<LabelId>> sequences;
  sequences.reserve(documents.size());
  for (DocId d = 0; d < documents.size(); ++d) {
    const Document& original = documents[d];
    PRIX_CHECK(original.doc_id() == d);
    PruferSequences seq;
    std::vector<LeafEntry> leaves;
    if (options.extended) {
      Document ext = ExtendWithDummyLeaves(original, kDummyLabel);
      seq = BuildPruferSequences(ext);
      index->maxgap_.AddDocument(ext);
      // EP stores need no leaf list: every original label is in the LPS.
    } else {
      seq = BuildPruferSequences(original);
      index->maxgap_.AddDocument(original);
      leaves = CollectLeaves(original);
      for (NodeId v = 0; v < original.num_nodes(); ++v) {
        if (original.is_leaf(v)) {
          index->childless_labels_.insert(original.label(v));
        }
      }
    }
    stats->total_sequence_length += seq.lps.size();
    PRIX_RETURN_NOT_OK(index->docs_->Append(d, seq, leaves));
    trie.Insert(seq.lps, d);
    sequences.push_back(std::move(seq.lps));
  }
  stats->trie_nodes = trie.num_nodes();
  for (uint32_t v = 0; v < trie.num_nodes(); ++v) {
    const auto& node = trie.node(v);
    if (node.children.empty()) {
      stats->max_path_sharing =
          std::max(stats->max_path_sharing, node.seqs_through);
    }
  }

  // Phase 2: range-label the trie.
  std::vector<RangeLabel> labels;
  if (options.labeling == PrixIndexOptions::Labeling::kExact) {
    labels = LabelTrieExact(trie);
  } else {
    labels = LabelTrieDynamic(trie, sequences, options.alpha,
                              &stats->labeler);
  }
  index->root_range_ = labels[trie.root()];

  // Phase 3: materialize the Trie-Symbol and Docid B+-trees.
  uint32_t doc_seq = 0;
  for (uint32_t v = 0; v < trie.num_nodes(); ++v) {
    if (v == trie.root()) continue;
    const auto& node = trie.node(v);
    PRIX_RETURN_NOT_OK(index->symbol_index_->Insert(
        SymbolKey{node.label, 0, labels[v].left},
        TrieNodeValue{labels[v].right, node.depth, 0}));
    ++stats->symbol_entries;
  }
  for (uint32_t v = 0; v < trie.num_nodes(); ++v) {
    for (DocId d : trie.node(v).end_docs) {
      PRIX_RETURN_NOT_OK(index->docid_index_->Insert(
          DocKey{labels[v].left, doc_seq++, 0}, d));
      ++stats->docid_entries;
    }
  }
  stats->pages_after_build = pool->disk()->num_pages();
  PRIX_RETURN_NOT_OK(pool->FlushAll());
  return index;
}

namespace {
constexpr uint32_t kCatalogMagic = 0x50524958;  // "PRIX"
/// Catalog version doubles as the format version: 1 = the original
/// fixed-width formats, 2 = the v3 compressed formats (delta-coded B+-tree
/// leaves, varint doc records, varint store catalog). Version-1 blobs are
/// written byte-identically to pre-compression builds, so old databases
/// keep working and new uncompressed databases stay readable by old code.
constexpr uint32_t kCatalogVersion = 1;
constexpr uint32_t kCatalogVersionCompressed = 2;
}  // namespace

void PrixIndex::SerializeCatalog(std::vector<char>* blob) const {
  PutU32(blob, kCatalogMagic);
  PutU32(blob, options_.compress ? kCatalogVersionCompressed
                                 : kCatalogVersion);
  PutU32(blob, options_.extended ? 1 : 0);
  PutU32(blob, static_cast<uint32_t>(options_.labeling));
  PutU32(blob, options_.alpha);
  PutU64(blob, root_range_.left);
  PutU64(blob, root_range_.right);
  PutU32(blob, symbol_index_->meta_page_id());
  PutU32(blob, docid_index_->meta_page_id());
  docs_->SerializeTo(blob);
  maxgap_.SerializeTo(blob);
  PutU32(blob, static_cast<uint32_t>(childless_labels_.size()));
  for (LabelId l : childless_labels_) PutU32(blob, l);
  // Tombstone set, appended after the childless labels. Blobs written
  // before ingest existed end right above; Open treats the absent section
  // as an empty set.
  PutU32(blob, static_cast<uint32_t>(tombstones_.size()));
  for (DocId d : tombstones_) PutU32(blob, d);
}

Status PrixIndex::Save(Database* db, const std::string& name) const {
  BufferPool* pool = db->pool();
  std::vector<char> blob;
  SerializeCatalog(&blob);
  auto first_result = WriteBlob(pool, blob);
  if (!first_result.ok()) {
    return first_result.status().Annotate("saving PRIX index '" + name + "'");
  }
  PageId first = *first_result;
  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = options_.extended ? Database::IndexKind::kPrixExtended
                                 : Database::IndexKind::kPrixRegular;
  entry.root = first;
  // PutIndex flushes the pool before the catalog commit, so the blob and
  // every tree page it references are durable before they become reachable.
  return db->PutIndex(entry);
}

Result<std::unique_ptr<PrixIndex>> PrixIndex::Open(Database* db,
                                                   const std::string& name) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
  return OpenFromEntry(db->pool(), entry);
}

Result<std::unique_ptr<PrixIndex>> PrixIndex::OpenFromEntry(
    BufferPool* pool, const Database::IndexEntry& entry) {
  if (entry.kind != Database::IndexKind::kPrixRegular &&
      entry.kind != Database::IndexKind::kPrixExtended) {
    return Status::InvalidArgument("catalog entry '" + entry.name +
                                   "' is not a PRIX index");
  }
  std::vector<char> blob;
  Status blob_st = ReadBlob(pool, entry.root, &blob);
  if (!blob_st.ok()) {
    return blob_st.Annotate("opening PRIX index '" + entry.name + "'");
  }
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) return Status::Corruption("truncated index catalog");
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(44));
  if (GetU32(p) != kCatalogMagic) {
    return Status::Corruption("not a PRIX index catalog");
  }
  p += 4;
  uint32_t version = GetU32(p);
  if (version != kCatalogVersion && version != kCatalogVersionCompressed) {
    return Status::Corruption("unsupported index catalog version " +
                              std::to_string(version));
  }
  bool compress = version == kCatalogVersionCompressed;
  p += 4;
  auto index = std::unique_ptr<PrixIndex>(new PrixIndex());
  index->options_.compress = compress;
  index->options_.extended = GetU32(p) != 0;
  p += 4;
  index->options_.labeling =
      static_cast<PrixIndexOptions::Labeling>(GetU32(p));
  p += 4;
  index->options_.alpha = GetU32(p);
  p += 4;
  index->root_range_.left = GetU64(p);
  p += 8;
  index->root_range_.right = GetU64(p);
  p += 8;
  PageId symbol_meta = GetU32(p);
  p += 4;
  PageId docid_meta = GetU32(p);
  p += 4;
  PRIX_ASSIGN_OR_RETURN(SymbolTree sym,
                        SymbolTree::Open(pool, symbol_meta, {}, compress));
  index->symbol_index_ = std::make_unique<SymbolTree>(std::move(sym));
  PRIX_ASSIGN_OR_RETURN(DocTree doct,
                        DocTree::Open(pool, docid_meta, {}, compress));
  index->docid_index_ = std::make_unique<DocTree>(std::move(doct));
  PRIX_ASSIGN_OR_RETURN(DocStore docs,
                        DocStore::Deserialize(pool, &p, end, compress));
  index->docs_ = std::make_unique<DocStore>(std::move(docs));
  PRIX_ASSIGN_OR_RETURN(index->maxgap_, MaxGapTable::Deserialize(&p, end));
  PRIX_RETURN_NOT_OK(need(4));
  uint32_t childless = GetU32(p);
  p += 4;
  PRIX_RETURN_NOT_OK(need(4ull * childless));
  for (uint32_t i = 0; i < childless; ++i, p += 4) {
    index->childless_labels_.insert(GetU32(p));
  }
  // Optional tombstone section (absent in blobs from before ingest).
  if (static_cast<size_t>(end - p) >= 4) {
    uint32_t dead = GetU32(p);
    p += 4;
    PRIX_RETURN_NOT_OK(need(4ull * dead));
    for (uint32_t i = 0; i < dead; ++i, p += 4) {
      DocId d = GetU32(p);
      if (d >= index->docs_->num_docs()) {
        return Status::Corruption("tombstone for DocId " + std::to_string(d) +
                                  " beyond the store's " +
                                  std::to_string(index->docs_->num_docs()) +
                                  " records");
      }
      index->tombstones_.insert(d);
    }
  }
  return index;
}

Result<Document> PrixIndex::ReconstructDocument(DocId doc) const {
  if (doc >= docs_->num_docs()) {
    return Status::NotFound("DocId " + std::to_string(doc) +
                            " beyond the store's " +
                            std::to_string(docs_->num_docs()) + " records");
  }
  if (IsDeleted(doc)) {
    return Status::NotFound("DocId " + std::to_string(doc) + " is deleted");
  }
  PRIX_ASSIGN_OR_RETURN(StoredDoc stored, docs_->Load(doc));
  if (stored.seq.num_nodes == 0) {
    return Status::Corruption("DocId " + std::to_string(doc) +
                              " is an empty placeholder record");
  }
  if (!options_.extended) {
    PRIX_ASSIGN_OR_RETURN(Document out,
                          ReconstructTree(stored.seq, stored.leaves));
    out.set_doc_id(doc);
    return out;
  }
  // EP stores keep no leaf list — the extended tree's leaves are exactly the
  // dummies, whose postorder numbers are the positions the original tree
  // does not claim. Synthesize them, rebuild the extended tree, then strip
  // every dummy in a child-order-preserving DFS copy.
  std::vector<uint32_t> ext_to_orig = ExtendedToOriginalPostorder(stored.seq);
  std::vector<LeafEntry> dummies;
  for (uint32_t v = 1; v <= stored.seq.num_nodes; ++v) {
    if (ext_to_orig[v] == 0) dummies.push_back(LeafEntry{kDummyLabel, v});
  }
  PRIX_ASSIGN_OR_RETURN(Document ext, ReconstructTree(stored.seq, dummies));
  Document out(doc);
  if (ext.empty() || ext.label(ext.root()) == kDummyLabel) {
    return Status::Corruption("extended tree reconstructs to a dummy root");
  }
  struct Frame {
    NodeId ext_node;
    NodeId out_parent;
  };
  std::vector<Frame> stack{{ext.root(), kInvalidNode}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    NodeId copied = f.out_parent == kInvalidNode
                        ? out.AddRoot(ext.label(f.ext_node))
                        : out.AddChild(f.out_parent, ext.label(f.ext_node));
    const std::vector<NodeId>& kids = ext.children(f.ext_node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      if (ext.label(*it) != kDummyLabel) stack.push_back(Frame{*it, copied});
    }
  }
  return out;
}

namespace {

/// Shared emit body for salvage walks: re-insert into the destination tree,
/// tolerating duplicate keys (a corrupt source can present one entry twice
/// through distinct leaves) and aborting only on destination failures.
template <typename Tree, typename Key, typename Value>
Status SalvageInsert(Tree* dst, const Key& key, const Value& value,
                     SalvageStats* stats) {
  Status st = dst->Insert(key, value);
  if (st.ok()) {
    ++stats->entries_recovered;
    return st;
  }
  if (st.code() == StatusCode::kAlreadyExists) {
    ++stats->entries_dropped;
    return Status::OK();
  }
  return st;
}

}  // namespace

Status PrixIndex::Salvage(Database* dst, const std::string& name,
                          SalvageStats* stats) const {
  SalvageStats local;
  if (stats == nullptr) stats = &local;
  auto out = std::unique_ptr<PrixIndex>(new PrixIndex());
  out->options_ = options_;
  out->root_range_ = root_range_;
  out->maxgap_ = maxgap_;
  out->childless_labels_ = childless_labels_;
  out->tombstones_ = tombstones_;
  out->docs_ = std::make_unique<DocStore>(dst->pool(), options_.compress);
  PRIX_ASSIGN_OR_RETURN(SymbolTree sym,
                        SymbolTree::Create(dst->pool(), {}, options_.compress));
  out->symbol_index_ = std::make_unique<SymbolTree>(std::move(sym));
  PRIX_ASSIGN_OR_RETURN(DocTree doct,
                        DocTree::Create(dst->pool(), {}, options_.compress));
  out->docid_index_ = std::make_unique<DocTree>(std::move(doct));

  auto skip_issue = [](PageId, const Status&, const std::string&) {};
  BtreeScrubStats walk;
  PRIX_RETURN_NOT_OK(symbol_index_->WalkReachable(
      [&](const SymbolKey& k, const TrieNodeValue& v) {
        return SalvageInsert(out->symbol_index_.get(), k, v, stats);
      },
      skip_issue, &walk));
  PRIX_RETURN_NOT_OK(docid_index_->WalkReachable(
      [&](const DocKey& k, const DocId& v) {
        return SalvageInsert(out->docid_index_.get(), k, v, stats);
      },
      skip_issue, &walk));
  stats->subtrees_skipped += walk.subtrees_skipped;

  for (DocId d = 0; d < docs_->num_docs(); ++d) {
    Result<StoredDoc> doc = docs_->Load(d);
    if (doc.ok()) {
      PRIX_RETURN_NOT_OK(out->docs_->Append(d, doc->seq, doc->leaves));
      ++stats->records_recovered;
    } else {
      // An empty placeholder keeps later DocIds aligned with the surviving
      // Docid-index entries; queries refine the lost document to no match.
      PRIX_RETURN_NOT_OK(out->docs_->Append(d, PruferSequences{}, {}));
      ++stats->records_lost;
    }
  }
  return out->Save(dst, name);
}

}  // namespace prix
