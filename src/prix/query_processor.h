#ifndef PRIX_PRIX_QUERY_PROCESSOR_H_
#define PRIX_PRIX_QUERY_PROCESSOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "db/database.h"
#include "naive/naive_matcher.h"
#include "prix/prix_index.h"
#include "prix/refinement.h"
#include "prix/subsequence_matcher.h"
#include "query/twig_pattern.h"
#include "query/twig_prufer.h"

namespace prix {

/// Per-query execution knobs.
struct QueryOptions {
  /// kOrdered (Sec. 4) or kUnorderedInjective (Sec. 5.7, arrangement
  /// enumeration). kStandard is not a PRIX semantics and is rejected.
  MatchSemantics semantics = MatchSemantics::kOrdered;

  enum class IndexChoice { kAuto, kRegular, kExtended };
  /// kAuto picks the EPIndex for queries with values when one exists
  /// (Sec. 5.6), the RPIndex otherwise.
  IndexChoice index = IndexChoice::kAuto;

  /// Apply the MaxGap upper-bounding metric during subsequence matching
  /// (Sec. 5.4). Off only for the ablation bench.
  bool use_maxgap = true;

  /// Filtering strategy for wildcard twigs at branch-coincidence risk (see
  /// DESIGN.md): kSound falls back to a root-to-leaf spine filter and never
  /// misses a document; kFullTwig filters with the whole twig sequence (the
  /// paper's strategy) — cheaper, but a document whose only embeddings nest
  /// two multi-node '//' branches inside one child subtree is missed.
  enum class WildcardFilter { kSound, kFullTwig };
  WildcardFilter wildcard_filter = WildcardFilter::kSound;

  /// Cap on raw branch permutations for unordered matching.
  size_t arrangement_limit = 40320;

  /// Optional per-request deadline + cancel token (common/deadline.h). When
  /// set, Execute installs it on the executing thread for its whole run, so
  /// every engine checkpoint — range descents, per-document verification,
  /// buffer-pool misses — can stop the query with DeadlineExceeded or
  /// Cancelled. Must outlive the call; nullptr (the default) costs nothing.
  const Deadline* deadline = nullptr;
};

/// Execution counters, aggregated across arrangements. MergeFrom folds the
/// stats of one query into a batch-wide aggregate (QueryDriver uses it; the
/// booleans OR together).
struct QueryStats {
  MatcherStats matcher;
  RefineStats refine;
  uint64_t docs_loaded = 0;
  uint64_t docs_verified = 0;
  uint64_t arrangements = 0;
  /// I/O attribution, read out of the thread-local MetricsContext that
  /// Execute opens (common/metrics.h): the storage layer charges the
  /// context on every pool hit/miss and physical transfer, so these are
  /// EXACT for this query — its own I/O and nothing else — no matter how
  /// many other queries fault pages concurrently. `pages_read` is the
  /// paper's "Disk IO" column.
  uint64_t pages_read = 0;     ///< physical page reads for this query
  uint64_t pages_written = 0;  ///< physical page writes for this query
  uint64_t pool_hits = 0;      ///< buffer-pool hits for this query
  uint64_t pool_misses = 0;    ///< buffer-pool misses for this query
  uint64_t btree_nodes = 0;    ///< B+-tree nodes visited for this query
  /// Phase latencies (wall microseconds), mirroring the phases the paper
  /// times (Sec. 6): subsequence matching, refinement, and — for
  /// generalized queries — document verification. `total_us` spans the
  /// whole Execute; the phases need not sum to it (setup, arrangement
  /// enumeration, and result assembly are outside all three).
  uint64_t match_us = 0;
  uint64_t refine_us = 0;
  uint64_t verify_us = 0;
  uint64_t total_us = 0;
  bool used_extended_index = false;
  bool used_scan = false;  ///< single-node query answered by doc-store scan

  void MergeFrom(const QueryStats& other) {
    matcher.MergeFrom(other.matcher);
    refine.MergeFrom(other.refine);
    docs_loaded += other.docs_loaded;
    docs_verified += other.docs_verified;
    arrangements += other.arrangements;
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    btree_nodes += other.btree_nodes;
    match_us += other.match_us;
    refine_us += other.refine_us;
    verify_us += other.verify_us;
    total_us += other.total_us;
    used_extended_index |= other.used_extended_index;
    used_scan |= other.used_scan;
  }
};

/// Query answer: all twig matches (images over effective-twig nodes, as
/// ORIGINAL postorder numbers) and the distinct matching documents.
struct QueryResult {
  std::vector<TwigMatch> matches;  // sorted, deduplicated
  std::vector<DocId> docs;         // sorted, distinct
  QueryStats stats;
};

/// PRIX query execution (Fig. 3, right side): twig -> Prüfer sequence ->
/// filtering by subsequence matching -> refinement phases -> matches.
/// Queries needing generalized matching ('//', '*', exact anchors) use the
/// sequence machinery as the I/O-bound filter and a direct embedding check
/// on each surviving document as the final phase (see DESIGN.md Sec. 5).
///
/// Thread safety: a QueryProcessor holds only pointers to read-only indexes
/// plus the Database they live in; all per-query scratch (the loaded-document
/// cache) lives on the Execute stack. Concurrent Execute calls on one shared
/// instance are safe over fully built indexes, and ExecuteXPath is too:
/// TagDictionary::Intern is internally synchronized.
class QueryProcessor {
 public:
  /// `ep` may be null; both indexes must be built over the same collection
  /// and backed by `db`'s buffer pool. Execute opens a thread-local
  /// MetricsContext around each query, so the I/O counters in QueryStats
  /// are exact per query even under concurrent execution.
  QueryProcessor(Database& db, PrixIndex* rp, PrixIndex* ep)
      : db_(&db), rp_(rp), ep_(ep) {}

  Result<QueryResult> Execute(const TwigPattern& pattern,
                              const QueryOptions& options = {}) const;

  /// Parses `xpath` against `dict` and executes it.
  Result<QueryResult> ExecuteXPath(std::string_view xpath,
                                   TagDictionary* dict,
                                   const QueryOptions& options = {}) const;

 private:
  /// Per-Execute scratch: the cache of documents loaded for refinement.
  /// Stack-owned by Execute, so the processor itself stays stateless.
  struct ExecContext {
    std::unordered_map<DocId, RefinableDoc> doc_cache;
  };

  PrixIndex* ChooseIndex(const EffectiveTwig& twig,
                         const QueryOptions& options) const;

  /// Runs one arrangement through filter + refine. Exact queries append
  /// matches directly; generalized queries record candidate documents into
  /// `candidates` for later verification.
  Status RunArrangement(PrixIndex* index, const EffectiveTwig& twig,
                        const QueryOptions& options, bool generalized,
                        ExecContext* ctx, std::vector<TwigMatch>* matches,
                        std::vector<DocId>* candidates,
                        QueryStats* stats) const;

  /// Single-node queries: scan the document store (see DESIGN.md).
  Status ScanSingleNode(PrixIndex* index, const EffectiveTwig& twig,
                        ExecContext* ctx, std::vector<TwigMatch>* matches,
                        QueryStats* stats) const;

  static Result<const RefinableDoc*> LoadDoc(PrixIndex* index, DocId doc,
                                             ExecContext* ctx,
                                             QueryStats* stats);

  Database* db_;
  PrixIndex* rp_;
  PrixIndex* ep_;
};

}  // namespace prix

#endif  // PRIX_PRIX_QUERY_PROCESSOR_H_
