#ifndef PRIX_PRIX_DOC_STORE_H_
#define PRIX_PRIX_DOC_STORE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "prufer/prufer.h"
#include "storage/record_store.h"

namespace prix {

/// Per-document data needed by the refinement phases: the LPS/NPS pair plus,
/// for Regular-Prüfer stores, the leaf list (Sec. 4.3: "the label and
/// postorder number of every leaf node should be stored in the database").
struct StoredDoc {
  PruferSequences seq;
  std::vector<LeafEntry> leaves;
};

/// Paged store of StoredDoc records, one per document, appended at build
/// time and fetched (with buffer-pool-counted I/O) during refinement.
///
/// Two record encodings exist (DESIGN.md §5h). v1 stores every integer as a
/// raw uint32. v3 (`compressed = true`) varint-codes the scalars and
/// block-codes the LPS/NPS arrays: 128-entry blocks, each opening with a
/// restart value followed by zig-zag varint deltas, preceded by a per-block
/// byte-length directory (the skip offsets — a reader can jump to block k
/// by summing k directory entries instead of decoding everything before
/// it, and the decoder uses them as hard bounds for each block's varints).
/// Leaf lists are short and stored as (varint label, zig-zag delta
/// postorder) pairs. The encoding is a per-store property recorded by the
/// owning index's catalog version, passed to the constructor/Deserialize.
class DocStore {
 public:
  explicit DocStore(BufferPool* pool, bool compressed = false)
      : store_(pool), compressed_(compressed) {}
  DocStore(DocStore&&) = default;
  DocStore& operator=(DocStore&&) = default;

  bool compressed() const { return compressed_; }

  /// Copy-on-write passthrough for write transactions (see RecordStore).
  void SetCow(CowContext* cow) { store_.SetCow(cow); }

  /// Appends the record for the next DocId (must be called in DocId order).
  Status Append(DocId doc, const PruferSequences& seq,
                const std::vector<LeafEntry>& leaves);

  /// Fetches the record for `doc`.
  Result<StoredDoc> Load(DocId doc) const;

  size_t num_docs() const { return store_.num_records(); }
  uint64_t total_bytes() const { return store_.total_bytes(); }
  uint64_t num_pages() const { return store_.num_pages(); }

  /// Catalog (de)serialization for index persistence. The record-store
  /// catalog is written in the matching encoding (v3 records get the v3
  /// varint-delta catalog).
  void SerializeTo(std::vector<char>* out) const {
    store_.SerializeTo(out, compressed_);
  }
  static Result<DocStore> Deserialize(BufferPool* pool, const char** p,
                                      const char* end,
                                      bool compressed = false) {
    PRIX_ASSIGN_OR_RETURN(RecordStore store,
                          RecordStore::Deserialize(pool, p, end, compressed));
    return DocStore(std::move(store), compressed);
  }

 private:
  DocStore(RecordStore store, bool compressed)
      : store_(std::move(store)), compressed_(compressed) {}

  RecordStore store_;
  bool compressed_ = false;
};

}  // namespace prix

#endif  // PRIX_PRIX_DOC_STORE_H_
