#ifndef PRIX_PRIX_DOC_STORE_H_
#define PRIX_PRIX_DOC_STORE_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "prufer/prufer.h"
#include "storage/record_store.h"

namespace prix {

/// Per-document data needed by the refinement phases: the LPS/NPS pair plus,
/// for Regular-Prüfer stores, the leaf list (Sec. 4.3: "the label and
/// postorder number of every leaf node should be stored in the database").
struct StoredDoc {
  PruferSequences seq;
  std::vector<LeafEntry> leaves;
};

/// Paged store of StoredDoc records, one per document, appended at build
/// time and fetched (with buffer-pool-counted I/O) during refinement.
class DocStore {
 public:
  explicit DocStore(BufferPool* pool) : store_(pool) {}
  DocStore(DocStore&&) = default;
  DocStore& operator=(DocStore&&) = default;

  /// Appends the record for the next DocId (must be called in DocId order).
  Status Append(DocId doc, const PruferSequences& seq,
                const std::vector<LeafEntry>& leaves);

  /// Fetches the record for `doc`.
  Result<StoredDoc> Load(DocId doc) const;

  size_t num_docs() const { return store_.num_records(); }
  uint64_t total_bytes() const { return store_.total_bytes(); }
  uint64_t num_pages() const { return store_.num_pages(); }

  /// Catalog (de)serialization for index persistence.
  void SerializeTo(std::vector<char>* out) const { store_.SerializeTo(out); }
  static Result<DocStore> Deserialize(BufferPool* pool, const char** p,
                                      const char* end) {
    PRIX_ASSIGN_OR_RETURN(RecordStore store,
                          RecordStore::Deserialize(pool, p, end));
    return DocStore(std::move(store));
  }

 private:
  explicit DocStore(RecordStore store) : store_(std::move(store)) {}

  RecordStore store_;
};

}  // namespace prix

#endif  // PRIX_PRIX_DOC_STORE_H_
