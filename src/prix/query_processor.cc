#include "prix/query_processor.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/macros.h"
#include "common/metrics.h"
#include "query/xpath_parser.h"

namespace prix {

namespace {

/// Upper bound on cached refinable documents per query.
constexpr size_t kDocCacheCap = 8192;

void SortUnique(std::vector<DocId>* docs) {
  std::sort(docs->begin(), docs->end());
  docs->erase(std::unique(docs->begin(), docs->end()), docs->end());
}

/// Folds one finished query into the process-wide registry (no-op unless a
/// bench/test/CLI enabled it). The references are resolved once and reused.
void RecordQueryInRegistry(const QueryStats& s) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  static MetricHistogram& match_us = reg.histogram("prix.query.match_us");
  static MetricHistogram& refine_us = reg.histogram("prix.query.refine_us");
  static MetricHistogram& verify_us = reg.histogram("prix.query.verify_us");
  static MetricHistogram& total_us = reg.histogram("prix.query.total_us");
  static MetricHistogram& pages = reg.histogram("prix.query.pages_read");
  static MetricHistogram& nodes = reg.histogram("prix.query.btree_nodes");
  static MetricCounter& queries = reg.counter("prix.query.count");
  static MetricCounter& hits = reg.counter("prix.pool.hits");
  static MetricCounter& misses = reg.counter("prix.pool.misses");
  match_us.Record(s.match_us);
  refine_us.Record(s.refine_us);
  verify_us.Record(s.verify_us);
  total_us.Record(s.total_us);
  pages.Record(s.pages_read);
  nodes.Record(s.btree_nodes);
  queries.Add(1);
  hits.Add(s.pool_hits);
  misses.Add(s.pool_misses);
}

}  // namespace

Result<QueryResult> QueryProcessor::ExecuteXPath(
    std::string_view xpath, TagDictionary* dict,
    const QueryOptions& options) const {
  TwigPattern pattern;
  {
    TraceSpan span("parse");
    PRIX_ASSIGN_OR_RETURN(pattern, ParseXPath(xpath, dict));
  }
  Result<QueryResult> result = Execute(pattern, options);
  if (!result.ok()) {
    // An I/O fault deep in a B+-tree descent should name the query it
    // failed, not just the page.
    return result.status().Annotate("executing '" + std::string(xpath) + "'");
  }
  return result;
}

PrixIndex* QueryProcessor::ChooseIndex(const EffectiveTwig& twig,
                                       const QueryOptions& options) const {
  switch (options.index) {
    case QueryOptions::IndexChoice::kRegular:
      return rp_;
    case QueryOptions::IndexChoice::kExtended:
      return ep_;
    case QueryOptions::IndexChoice::kAuto:
      break;
  }
  if (ep_ == nullptr || rp_ == nullptr) return ep_ == nullptr ? rp_ : ep_;
  // The paper's optimizer rule (Sec. 5.6): queries with values use the
  // EPIndex (value labels only appear in extended sequences, and their high
  // selectivity prunes paths early under the bottom-up transformation);
  // value-free queries use the RPIndex, whose shorter, value-free sequences
  // share trie paths heavily. On the RPIndex, element leaf labels still
  // enter the query sequence via the Sec. 4.4 leaf treatment (see
  // RunArrangement). A trailing '*' cannot be expressed in an EP sequence
  // and also forces the regular index.
  bool trailing_star = false;
  for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
    trailing_star |= twig.is_star(e);
  }
  if (twig.HasValue() && !trailing_star) return ep_;
  return rp_;
}

Result<QueryResult> QueryProcessor::Execute(const TwigPattern& pattern,
                                            const QueryOptions& options) const {
  if (options.semantics == MatchSemantics::kStandard) {
    return Status::InvalidArgument(
        "PRIX answers ordered or unordered-injective semantics");
  }
  if (pattern.empty()) return Status::InvalidArgument("empty twig pattern");

  // Per-query I/O accounting: every buffer-pool and disk charge made by
  // this thread while the context is open lands in `mctx.counters`, so the
  // numbers below are exact for this query regardless of what other
  // threads fault concurrently.
  MetricsContext mctx;
  // Publish the request deadline (if any) to this thread's checkpoints —
  // the matcher's range descents, the loops below, and the buffer pool's
  // miss path all call CheckDeadline() against it.
  ScopedDeadline deadline_scope(options.deadline);
  const uint64_t t_start = MetricsContext::NowMicros();

  QueryResult result;
  ExecContext ctx;

  EffectiveTwig base = EffectiveTwig::Build(pattern);
  PrixIndex* index = ChooseIndex(base, options);
  if (index == nullptr) {
    return Status::InvalidArgument("no index available for this query");
  }
  result.stats.used_extended_index = index->extended();

  bool generalized = base.NeedsGeneralizedMatching();

  std::vector<EffectiveTwig> arrangements;
  if (options.semantics == MatchSemantics::kOrdered) {
    arrangements.push_back(base);
  } else {
    PRIX_ASSIGN_OR_RETURN(
        arrangements, EnumerateArrangements(base, options.arrangement_limit));
  }
  result.stats.arrangements = arrangements.size();

  if (base.num_nodes() == 1) {
    TraceSpan span("scan");
    const uint64_t t0 = MetricsContext::NowMicros();
    PRIX_RETURN_NOT_OK(
        ScanSingleNode(index, base, &ctx, &result.matches, &result.stats));
    result.stats.verify_us += MetricsContext::NowMicros() - t0;
  } else {
    std::set<TwigMatch> match_set;
    for (const EffectiveTwig& arrangement : arrangements) {
      std::vector<TwigMatch> matches;
      std::vector<DocId> candidates;
      PRIX_RETURN_NOT_OK(RunArrangement(index, arrangement, options,
                                        generalized, &ctx, &matches,
                                        &candidates, &result.stats));
      for (auto& m : matches) match_set.insert(std::move(m));
      if (generalized) {
        TraceSpan span("verify");
        const uint64_t t0 = MetricsContext::NowMicros();
        SortUnique(&candidates);
        // Final phase for generalized queries: direct embedding check on
        // the reconstructed tree (parent array is the NPS, Lemma 1).
        for (DocId doc : candidates) {
          PRIX_RETURN_NOT_OK(CheckDeadline());
          PRIX_ASSIGN_OR_RETURN(const RefinableDoc* rdoc,
                                LoadDoc(index, doc, &ctx, &result.stats));
          std::vector<uint32_t> parent;
          std::vector<LabelId> label;
          uint32_t n = 0;
          BuildOriginalArrays(*rdoc, index->extended(), &parent, &label, &n);
          ParentArrayMatcher matcher(parent, label, n);
          ++result.stats.docs_verified;
          for (auto& image :
               matcher.Match(arrangement, MatchSemantics::kOrdered)) {
            match_set.insert(TwigMatch{doc, std::move(image)});
          }
        }
        result.stats.verify_us += MetricsContext::NowMicros() - t0;
      }
    }
    result.matches.assign(match_set.begin(), match_set.end());
  }

  result.docs.reserve(result.matches.size());
  for (const TwigMatch& m : result.matches) result.docs.push_back(m.doc);
  SortUnique(&result.docs);
  result.stats.pages_read = mctx.counters.physical_reads;
  result.stats.pages_written = mctx.counters.physical_writes;
  result.stats.pool_hits = mctx.counters.pool_hits;
  result.stats.pool_misses = mctx.counters.pool_misses;
  result.stats.btree_nodes = mctx.counters.btree_nodes;
  result.stats.total_us = MetricsContext::NowMicros() - t_start;
  RecordQueryInRegistry(result.stats);
  return result;
}

namespace {

/// A twig has branch-coincidence risk when two branches can embed into the
/// same child subtree of their parent's image in a way no monotone
/// subsequence witnesses. Closed-interval descent (SubsequenceMatcher's
/// generalized mode) covers coinciding SINGLE-node branches by repeating a
/// position; what remains unfixable is a non-first sibling branch with two
/// or more effective nodes when either its edge or an earlier sibling's
/// edge is not a plain '/': the deeper nodes of the later branch then map
/// to deletions BEFORE the earlier branch's matched top, breaking
/// monotonicity (see DESIGN.md). Exact twigs are never at risk.
bool HasBranchCoincidenceRisk(const EffectiveTwig& twig,
                              const std::vector<bool>& leaf_has_dummy) {
  // Subtree sizes in the SEQUENCE tree: a leaf that carries a dummy (all of
  // them on extended indexes; the Sec. 4.4-treated ones on regular indexes)
  // counts as two nodes and regains the risk (children have larger ids than
  // parents).
  const uint32_t n = static_cast<uint32_t>(twig.num_nodes());
  std::vector<uint32_t> size(n, 1);
  for (uint32_t e = n; e-- > 0;) {
    if (twig.node(e).children.empty() && leaf_has_dummy[e]) size[e] = 2;
    for (uint32_t c : twig.node(e).children) size[e] += size[c];
  }
  for (uint32_t e = 0; e < n; ++e) {
    const auto& kids = twig.node(e).children;
    for (size_t j = 1; j < kids.size(); ++j) {
      if (size[kids[j]] < 2) continue;
      bool later_nonsimple = twig.node(kids[j]).edge != EdgeSpec{1, true};
      bool earlier_nonsimple = false;
      for (size_t i = 0; i < j; ++i) {
        earlier_nonsimple |= twig.node(kids[i]).edge != EdgeSpec{1, true};
      }
      if (later_nonsimple || earlier_nonsimple) return true;
    }
  }
  return false;
}

/// Root-to-leaf path used as the sound filter for risky twigs: prefer the
/// branch holding a value (highest selectivity, Sec. 5.6), then the deepest
/// branch. For extended indexes a trailing-'*' tail is cut off.
std::vector<uint32_t> ChooseSpine(const EffectiveTwig& twig, bool extended) {
  const uint32_t n = static_cast<uint32_t>(twig.num_nodes());
  std::vector<bool> has_value(n, false);
  std::vector<uint32_t> depth(n, 1);
  // Children have larger ids than parents (construction order), so a
  // reverse pass aggregates subtrees.
  for (uint32_t e = n; e-- > 0;) {
    if (twig.node(e).is_value) has_value[e] = true;
    for (uint32_t c : twig.node(e).children) {
      has_value[e] = has_value[e] || has_value[c];
      depth[e] = std::max(depth[e], depth[c] + 1);
    }
  }
  std::vector<uint32_t> path = {twig.root()};
  uint32_t cur = twig.root();
  while (!twig.node(cur).children.empty()) {
    uint32_t best = twig.node(cur).children[0];
    for (uint32_t c : twig.node(cur).children) {
      auto rank = [&](uint32_t x) {
        return std::make_tuple(has_value[x], depth[x]);
      };
      if (rank(c) > rank(best)) best = c;
    }
    path.push_back(best);
    cur = best;
  }
  if (extended) {
    while (path.size() > 1 && twig.is_star(path.back())) path.pop_back();
  }
  return path;
}

}  // namespace

Status QueryProcessor::RunArrangement(
    PrixIndex* index, const EffectiveTwig& twig, const QueryOptions& options,
    bool generalized, ExecContext* ctx, std::vector<TwigMatch>* matches,
    std::vector<DocId>* candidates, QueryStats* stats) const {
  // Sec. 4.4 leaf treatment on regular indexes: give a query element leaf a
  // dummy (so its label is checked during subsequence matching) whenever
  // its label never occurs childless in the collection. Value and '*'
  // leaves stay in the leaf-refinement phase.
  auto extend_mask = [&](const EffectiveTwig& t) {
    std::vector<bool> mask(t.num_nodes(), index->extended());
    if (!index->extended()) {
      for (uint32_t e = 0; e < t.num_nodes(); ++e) {
        mask[e] = t.node(e).children.empty() && !t.is_star(e) &&
                  !t.node(e).is_value &&
                  !index->LabelOccursChildless(t.node(e).label);
      }
    }
    return mask;
  };

  const EffectiveTwig* filter_twig = &twig;
  EffectiveTwig spine;
  std::vector<bool> mask = extend_mask(twig);
  if (generalized &&
      options.wildcard_filter == QueryOptions::WildcardFilter::kSound &&
      HasBranchCoincidenceRisk(twig, mask)) {
    std::vector<uint32_t> path = ChooseSpine(twig, index->extended());
    if (path.size() < 2) {
      // Degenerate spine (e.g. lone '*' tail on an extended index): every
      // live document is a candidate; verification does the filtering.
      for (DocId d = 0; d < index->num_docs(); ++d) {
        if (!index->IsDeleted(d)) candidates->push_back(d);
      }
      return Status::OK();
    }
    spine = twig.ExtractPath(path);
    filter_twig = &spine;
    mask = extend_mask(spine);
  }
  std::vector<bool>* rp_mask = index->extended() ? nullptr : &mask;
  PRIX_ASSIGN_OR_RETURN(
      QuerySequence qseq,
      BuildQuerySequence(*filter_twig, index->extended(), rp_mask));
  SubsequenceMatcher matcher(index, options.use_maxgap, generalized);
  // Phase attribution: FindAll wall time is subsequence matching; the time
  // spent inside the emit callback (doc loads + refinement) is refinement
  // and is subtracted back out of the match phase.
  uint64_t emit_us = 0;
  auto emit = [&](const std::vector<DocId>& docs,
                  const std::vector<uint32_t>& positions) -> Status {
    const uint64_t t0 = MetricsContext::NowMicros();
    Status st = [&]() -> Status {
      for (DocId doc : docs) {
        PRIX_ASSIGN_OR_RETURN(const RefinableDoc* rdoc,
                              LoadDoc(index, doc, ctx, stats));
        if (!RefineCandidate(*rdoc, qseq, positions, generalized,
                             &stats->refine)) {
          continue;
        }
        if (generalized) {
          candidates->push_back(doc);
        } else {
          matches->push_back(TwigMatch{
              doc, ExtractImage(*rdoc, qseq, positions, twig.num_nodes())});
        }
      }
      return Status::OK();
    }();
    emit_us += MetricsContext::NowMicros() - t0;
    return st;
  };
  TraceSpan span("match+refine");
  const uint64_t t_find = MetricsContext::NowMicros();
  Status st = matcher.FindAll(qseq, emit, &stats->matcher);
  const uint64_t find_us = MetricsContext::NowMicros() - t_find;
  stats->refine_us += emit_us;
  stats->match_us += find_us > emit_us ? find_us - emit_us : 0;
  return st;
}

Status QueryProcessor::ScanSingleNode(PrixIndex* index,
                                      const EffectiveTwig& twig,
                                      ExecContext* ctx,
                                      std::vector<TwigMatch>* matches,
                                      QueryStats* stats) const {
  stats->used_scan = true;
  const EffectiveTwig::Node& qn = twig.node(twig.root());
  EdgeSpec anchor = twig.root_anchor();
  bool is_star = twig.is_star(twig.root());
  for (DocId doc = 0; doc < index->num_docs(); ++doc) {
    if (index->IsDeleted(doc)) continue;
    PRIX_RETURN_NOT_OK(CheckDeadline());
    PRIX_ASSIGN_OR_RETURN(const RefinableDoc* rdoc,
                          LoadDoc(index, doc, ctx, stats));
    std::vector<uint32_t> parent;
    std::vector<LabelId> label;
    uint32_t n = 0;
    BuildOriginalArrays(*rdoc, index->extended(), &parent, &label, &n);
    // Depths for anchor tests.
    std::vector<uint32_t> depth(n + 1, 0);
    for (uint32_t v = n > 0 ? n - 1 : 0; v >= 1; --v) {
      depth[v] = depth[parent[v]] + 1;
      if (v == 1) break;
    }
    for (uint32_t v = 1; v <= n; ++v) {
      if (!is_star && label[v] != qn.label) continue;
      bool anchor_ok = anchor.exact ? depth[v] == anchor.min_edges
                                    : depth[v] >= anchor.min_edges;
      if (!anchor_ok) continue;
      matches->push_back(TwigMatch{doc, {v}});
    }
  }
  return Status::OK();
}

Result<const RefinableDoc*> QueryProcessor::LoadDoc(PrixIndex* index,
                                                    DocId doc,
                                                    ExecContext* ctx,
                                                    QueryStats* stats) {
  auto& cache = ctx->doc_cache;
  auto it = cache.find(doc);
  if (it != cache.end()) return &it->second;
  if (cache.size() >= kDocCacheCap) cache.clear();
  PRIX_ASSIGN_OR_RETURN(StoredDoc stored, index->docs().Load(doc));
  ++stats->docs_loaded;
  auto [pos, inserted] = cache.emplace(
      doc, RefinableDoc::Make(std::move(stored), index->extended()));
  return &pos->second;
}

}  // namespace prix
