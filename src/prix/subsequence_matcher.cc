#include "prix/subsequence_matcher.h"

#include "common/macros.h"

namespace prix {

Status SubsequenceMatcher::FindAll(const QuerySequence& q, const EmitFn& emit,
                                   MatcherStats* stats) {
  if (q.lps.empty()) {
    return Status::InvalidArgument(
        "subsequence matching needs a non-empty query sequence");
  }
  std::vector<uint32_t> positions;
  positions.reserve(q.lps.size());
  RangeLabel root = index_->root_range();
  return Descend(q, 0, root.left, root.right, positions, emit, stats);
}

Status SubsequenceMatcher::Descend(const QuerySequence& q, size_t i,
                                   uint64_t ql, uint64_t qr,
                                   std::vector<uint32_t>& positions,
                                   const EmitFn& emit, MatcherStats* stats) {
  // Range query on the Trie-Symbol index: all trie nodes labeled q.lps[i]
  // whose LeftPos lies in (ql, qr] — i.e. descendants of the current node.
  LabelId label = q.lps[i];
  ++stats->range_queries;
  // Exact queries scan the open interval (ql, qr]; generalized queries
  // include ql itself so a slot may repeat its predecessor's position.
  uint64_t start = generalized_ && i > 0 ? ql : ql + 1;
  PRIX_ASSIGN_OR_RETURN(
      auto it, index_->symbol_index().Seek(SymbolKey{label, 0, start}));
  for (; it.Valid(); ) {
    const SymbolKey key = it.key();
    if (key.label != label || key.left > qr) break;
    ++stats->nodes_scanned;
    const TrieNodeValue node = it.value();
    PRIX_RETURN_NOT_OK(it.Next());
    // Optimized subsequence matching (Sec. 5.4): gap between adjacent
    // matched levels bounded by the MaxGap of the previous label.
    if (use_maxgap_ && i > 0 && q.prune[i].kind != GapPruneRule::kNone &&
        !(generalized_ && node.level == positions.back())) {
      uint32_t gap = node.level - positions.back();
      uint32_t bound = index_->maxgap().Get(q.prune[i].label);
      bool prune = false;
      switch (q.prune[i].kind) {
        case GapPruneRule::kSameParent:
          prune = gap > bound;
          break;
        case GapPruneRule::kChildEdge:
          prune = gap > bound + 1;
          break;
        case GapPruneRule::kAncestor:
          prune = gap >= bound;
          break;
        case GapPruneRule::kNone:
          break;
      }
      if (prune) {
        ++stats->pruned_by_maxgap;
        continue;
      }
    }
    positions.push_back(node.level);
    if (i + 1 == q.lps.size()) {
      // Terminal: fetch all documents whose LPS ends in [left, right].
      std::vector<DocId> docs;
      PRIX_ASSIGN_OR_RETURN(
          auto dit, index_->docid_index().Seek(DocKey{key.left, 0, 0}));
      while (dit.Valid() && dit.key().left <= node.right) {
        docs.push_back(dit.value());
        PRIX_RETURN_NOT_OK(dit.Next());
      }
      if (!docs.empty()) {
        ++stats->occurrences;
        PRIX_RETURN_NOT_OK(emit(docs, positions));
      }
    } else {
      PRIX_RETURN_NOT_OK(
          Descend(q, i + 1, key.left, node.right, positions, emit, stats));
    }
    positions.pop_back();
  }
  return Status::OK();
}

}  // namespace prix
