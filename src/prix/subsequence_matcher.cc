#include "prix/subsequence_matcher.h"

#include <cstring>

#include "common/deadline.h"
#include "common/macros.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PRIX_GAP_PRUNE_X86 1
#endif

namespace prix {

namespace {

/// Hoists the per-rule decision to a strict unsigned threshold: prune iff
/// gap > threshold, or unconditionally (kAncestor with bound 0). All three
/// rules reduce exactly (unsigned arithmetic throughout):
///   kSameParent: gap > bound
///   kChildEdge:  gap > bound + 1       (same wrap as the scalar expression)
///   kAncestor:   gap >= bound  <=>  bound == 0 ? always : gap > bound - 1
struct PruneThreshold {
  uint32_t gt = 0;
  bool always = false;
};

PruneThreshold HoistRule(GapPruneRule::Kind kind, uint32_t bound) {
  PruneThreshold t;
  switch (kind) {
    case GapPruneRule::kSameParent:
      t.gt = bound;
      break;
    case GapPruneRule::kChildEdge:
      t.gt = bound + 1;
      break;
    case GapPruneRule::kAncestor:
      if (bound == 0) {
        t.always = true;
      } else {
        t.gt = bound - 1;
      }
      break;
    case GapPruneRule::kNone:
      break;
  }
  return t;
}

inline uint8_t KeepOneScalar(uint32_t level, uint32_t prev, PruneThreshold t,
                             bool generalized) {
  if (generalized && level == prev) return 1;
  uint32_t gap = level - prev;
  bool prune = t.always || gap > t.gt;
  return prune ? 0 : 1;
}

}  // namespace

void GapPruneMaskScalar(const uint32_t* levels, size_t n, uint32_t prev_level,
                        uint32_t bound, GapPruneRule::Kind kind,
                        bool generalized, uint8_t* keep) {
  if (n == 0) return;  // empty batches may carry null data pointers
  if (kind == GapPruneRule::kNone) {
    std::memset(keep, 1, n);
    return;
  }
  PruneThreshold t = HoistRule(kind, bound);
  for (size_t j = 0; j < n; ++j) {
    keep[j] = KeepOneScalar(levels[j], prev_level, t, generalized);
  }
}

#ifdef PRIX_GAP_PRUNE_X86

namespace {

/// Vector body shared by both widths: unsigned gap > threshold via the
/// sign-bias trick (x >u y  <=>  (x ^ 0x80000000) >s (y ^ 0x80000000)),
/// keep = ~prune | (generalized & level == prev). Lane results become one
/// byte each via movemask.
__attribute__((target("avx2"))) void GapPruneMaskAvx2(
    const uint32_t* levels, size_t n, uint32_t prev_level, uint32_t bound,
    GapPruneRule::Kind kind, bool generalized, uint8_t* keep) {
  if (n == 0) return;
  if (kind == GapPruneRule::kNone) {
    std::memset(keep, 1, n);
    return;
  }
  PruneThreshold t = HoistRule(kind, bound);
  const __m256i vprev = _mm256_set1_epi32(static_cast<int>(prev_level));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vthresh =
      _mm256_set1_epi32(static_cast<int>(t.gt ^ 0x80000000u));
  const __m256i ones = _mm256_set1_epi32(-1);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i lv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(levels + j));
    __m256i gap = _mm256_sub_epi32(lv, vprev);
    __m256i prune =
        t.always ? ones
                 : _mm256_cmpgt_epi32(_mm256_xor_si256(gap, bias), vthresh);
    __m256i keep_mask = _mm256_xor_si256(prune, ones);
    if (generalized) {
      keep_mask =
          _mm256_or_si256(keep_mask, _mm256_cmpeq_epi32(lv, vprev));
    }
    int bits = _mm256_movemask_ps(_mm256_castsi256_ps(keep_mask));
    for (int k = 0; k < 8; ++k) {
      keep[j + k] = static_cast<uint8_t>((bits >> k) & 1);
    }
  }
  for (; j < n; ++j) {
    keep[j] = KeepOneScalar(levels[j], prev_level, t, generalized);
  }
}

/// SSE2 is part of the x86-64 baseline, so this needs no target attribute
/// or cpuid check — it is the floor when AVX2 is absent.
void GapPruneMaskSse2(const uint32_t* levels, size_t n, uint32_t prev_level,
                      uint32_t bound, GapPruneRule::Kind kind,
                      bool generalized, uint8_t* keep) {
  if (n == 0) return;
  if (kind == GapPruneRule::kNone) {
    std::memset(keep, 1, n);
    return;
  }
  PruneThreshold t = HoistRule(kind, bound);
  const __m128i vprev = _mm_set1_epi32(static_cast<int>(prev_level));
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vthresh = _mm_set1_epi32(static_cast<int>(t.gt ^ 0x80000000u));
  const __m128i ones = _mm_set1_epi32(-1);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m128i lv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(levels + j));
    __m128i gap = _mm_sub_epi32(lv, vprev);
    __m128i prune =
        t.always ? ones : _mm_cmpgt_epi32(_mm_xor_si128(gap, bias), vthresh);
    __m128i keep_mask = _mm_xor_si128(prune, ones);
    if (generalized) {
      keep_mask = _mm_or_si128(keep_mask, _mm_cmpeq_epi32(lv, vprev));
    }
    int bits = _mm_movemask_ps(_mm_castsi128_ps(keep_mask));
    for (int k = 0; k < 4; ++k) {
      keep[j + k] = static_cast<uint8_t>((bits >> k) & 1);
    }
  }
  for (; j < n; ++j) {
    keep[j] = KeepOneScalar(levels[j], prev_level, t, generalized);
  }
}

}  // namespace

#endif  // PRIX_GAP_PRUNE_X86

namespace {

using GapPruneFn = void (*)(const uint32_t*, size_t, uint32_t, uint32_t,
                            GapPruneRule::Kind, bool, uint8_t*);

GapPruneFn ChooseGapPrune() {
#ifdef PRIX_GAP_PRUNE_X86
  if (__builtin_cpu_supports("avx2")) return GapPruneMaskAvx2;
  return GapPruneMaskSse2;
#else
  return GapPruneMaskScalar;
#endif
}

/// One-time dispatch, same pattern as crc32c: the choice is made on first
/// use and cached in a function-local static.
GapPruneFn GapPruneImpl() {
  static const GapPruneFn impl = ChooseGapPrune();
  return impl;
}

}  // namespace

void GapPruneMask(const uint32_t* levels, size_t n, uint32_t prev_level,
                  uint32_t bound, GapPruneRule::Kind kind, bool generalized,
                  uint8_t* keep) {
  GapPruneImpl()(levels, n, prev_level, bound, kind, generalized, keep);
}

bool GapPruneUsingSimd() { return GapPruneImpl() != &GapPruneMaskScalar; }

Status SubsequenceMatcher::FindAll(const QuerySequence& q, const EmitFn& emit,
                                   MatcherStats* stats) {
  if (q.lps.empty()) {
    return Status::InvalidArgument(
        "subsequence matching needs a non-empty query sequence");
  }
  std::vector<uint32_t> positions;
  positions.reserve(q.lps.size());
  RangeLabel root = index_->root_range();
  return Descend(q, 0, root.left, root.right, positions, emit, stats);
}

namespace {
/// Range-scan entries are gathered into structure-of-arrays batches of this
/// many nodes, pruned with one GapPruneMask call, then recursed on. Large
/// enough to amortize the kernel dispatch, small enough that the per-level
/// scratch (~5 KB) stays cache-resident across the recursion.
constexpr size_t kScanBatch = 256;
}  // namespace

Status SubsequenceMatcher::Descend(const QuerySequence& q, size_t i,
                                   uint64_t ql, uint64_t qr,
                                   std::vector<uint32_t>& positions,
                                   const EmitFn& emit, MatcherStats* stats) {
  // Range query on the Trie-Symbol index: all trie nodes labeled q.lps[i]
  // whose LeftPos lies in (ql, qr] — i.e. descendants of the current node.
  LabelId label = q.lps[i];
  ++stats->range_queries;
  // Match-loop deadline checkpoint: once per range descent, so cancellation
  // latency is bounded by one batch scan even when every page is cached and
  // the buffer-pool miss checkpoint never fires.
  PRIX_RETURN_NOT_OK(CheckDeadline());
  // Exact queries scan the open interval (ql, qr]; generalized queries
  // include ql itself so a slot may repeat its predecessor's position.
  uint64_t start = generalized_ && i > 0 ? ql : ql + 1;
  PRIX_ASSIGN_OR_RETURN(
      auto it, index_->symbol_index().Seek(SymbolKey{label, 0, start}));
  // Optimized subsequence matching (Sec. 5.4): gap between adjacent matched
  // levels bounded by the MaxGap of the previous label. The rule and bound
  // are fixed for the whole scan, so they are hoisted out and the per-node
  // decisions batched through the (possibly SIMD) prune kernel.
  const bool prune_active =
      use_maxgap_ && i > 0 && q.prune[i].kind != GapPruneRule::kNone;
  const uint32_t bound =
      prune_active ? index_->maxgap().Get(q.prune[i].label) : 0;
  std::vector<uint64_t> lefts;
  std::vector<uint64_t> rights;
  std::vector<uint32_t> levels;
  std::vector<uint8_t> keep;
  lefts.reserve(kScanBatch);
  rights.reserve(kScanBatch);
  levels.reserve(kScanBatch);
  keep.reserve(kScanBatch);
  bool exhausted = false;
  while (!exhausted) {
    lefts.clear();
    rights.clear();
    levels.clear();
    while (lefts.size() < kScanBatch) {
      if (!it.Valid()) {
        exhausted = true;
        break;
      }
      const SymbolKey key = it.key();
      if (key.label != label || key.left > qr) {
        exhausted = true;
        break;
      }
      const TrieNodeValue node = it.value();
      lefts.push_back(key.left);
      rights.push_back(node.right);
      levels.push_back(node.level);
      PRIX_RETURN_NOT_OK(it.Next());
    }
    stats->nodes_scanned += lefts.size();
    keep.assign(lefts.size(), 1);
    if (prune_active && !lefts.empty()) {
      GapPruneMask(levels.data(), levels.size(), positions.back(), bound,
                   q.prune[i].kind, generalized_, keep.data());
      for (uint8_t k : keep) {
        if (k == 0) ++stats->pruned_by_maxgap;
      }
    }
    for (size_t j = 0; j < lefts.size(); ++j) {
      if (keep[j] == 0) continue;
      positions.push_back(levels[j]);
      if (i + 1 == q.lps.size()) {
        // Terminal: fetch all documents whose LPS ends in [left, right].
        std::vector<DocId> docs;
        PRIX_ASSIGN_OR_RETURN(
            auto dit, index_->docid_index().Seek(DocKey{lefts[j], 0, 0}));
        while (dit.Valid() && dit.key().left <= rights[j]) {
          // Tombstoned documents keep their Docid-index entries until a
          // compaction; they must never reach refinement.
          if (!index_->IsDeleted(dit.value())) docs.push_back(dit.value());
          PRIX_RETURN_NOT_OK(dit.Next());
        }
        if (!docs.empty()) {
          ++stats->occurrences;
          PRIX_RETURN_NOT_OK(emit(docs, positions));
        }
      } else {
        PRIX_RETURN_NOT_OK(
            Descend(q, i + 1, lefts[j], rights[j], positions, emit, stats));
      }
      positions.pop_back();
    }
  }
  return Status::OK();
}

}  // namespace prix
