#ifndef PRIX_PRIX_SUBSEQUENCE_MATCHER_H_
#define PRIX_PRIX_SUBSEQUENCE_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "prix/prix_index.h"
#include "query/twig_prufer.h"

namespace prix {

/// Counters for the filtering phase. Workers keep a private instance and
/// fold it into an aggregate with MergeFrom (no shared counters on the
/// parallel query path).
struct MatcherStats {
  uint64_t range_queries = 0;   ///< B+-tree range descents issued
  uint64_t nodes_scanned = 0;   ///< trie nodes touched across all scans
  uint64_t pruned_by_maxgap = 0;
  uint64_t occurrences = 0;     ///< subsequence occurrences emitted

  void MergeFrom(const MatcherStats& other) {
    range_queries += other.range_queries;
    nodes_scanned += other.nodes_scanned;
    pruned_by_maxgap += other.pruned_by_maxgap;
    occurrences += other.occurrences;
  }
};

/// Batched MaxGap prune kernel (Sec. 5.4 / DESIGN.md §5h). For each scanned
/// trie node level `levels[j]`, sets `keep[j]` to 1 unless the gap rule
/// prunes it: gap = levels[j] - prev_level (uint32 arithmetic, exactly as
/// the per-node code computed it), pruned when gap > bound (kSameParent),
/// gap > bound + 1 (kChildEdge), or gap >= bound (kAncestor); a
/// generalized-search node whose level equals prev_level is always kept
/// (zero-gap suppression). kNone keeps everything.
///
/// GapPruneMask dispatches once, crc32c-style, to an AVX2/SSE2
/// compare-and-mask implementation when the CPU has one, else to
/// GapPruneMaskScalar. Both are exposed so tests can assert the dispatched
/// and scalar paths are bit-identical over random inputs; the matcher's
/// end-to-end answers are covered by the property/e2e suites either way.
void GapPruneMaskScalar(const uint32_t* levels, size_t n, uint32_t prev_level,
                        uint32_t bound, GapPruneRule::Kind kind,
                        bool generalized, uint8_t* keep);
void GapPruneMask(const uint32_t* levels, size_t n, uint32_t prev_level,
                  uint32_t bound, GapPruneRule::Kind kind, bool generalized,
                  uint8_t* keep);
/// True when GapPruneMask resolved to a SIMD implementation on this host.
bool GapPruneUsingSimd();

/// Algorithm 1 (Sec. 5.3): finds every occurrence of a query LPS as a
/// subsequence of indexed LPS's by recursive range descent over the virtual
/// trie, optionally pruned with the MaxGap metric of Theorem 4 (Sec. 5.4).
///
/// A matcher holds no mutable state of its own — all scratch lives on the
/// FindAll stack and counters go to the caller-owned MatcherStats — so one
/// instance per thread (or even a shared one) is safe over a read-only
/// index.
class SubsequenceMatcher {
 public:
  /// `emit(docs, positions)` is called once per occurrence: `docs` holds the
  /// ids of all documents whose LPS passes through the matched path (the
  /// Docid-index range [r_l, r_r]); `positions` are the 1-based LPS
  /// positions (trie levels) of the matched labels.
  using EmitFn =
      std::function<Status(const std::vector<DocId>&,
                           const std::vector<uint32_t>&)>;

  /// `generalized` (wildcard queries): descend with CLOSED scopes so that
  /// two query slots may match the same trie position — the witness for two
  /// single-node '//' branches whose connecting paths enter the same child
  /// subtree (see DESIGN.md on branch coincidence) — and suppress zero-gap
  /// MaxGap pruning accordingly.
  SubsequenceMatcher(PrixIndex* index, bool use_maxgap, bool generalized)
      : index_(index), use_maxgap_(use_maxgap), generalized_(generalized) {}

  /// Runs the search for `q` (q.lps must be non-empty).
  Status FindAll(const QuerySequence& q, const EmitFn& emit,
                 MatcherStats* stats);

 private:
  Status Descend(const QuerySequence& q, size_t i, uint64_t ql, uint64_t qr,
                 std::vector<uint32_t>& positions, const EmitFn& emit,
                 MatcherStats* stats);

  PrixIndex* index_;
  bool use_maxgap_;
  bool generalized_;
};

}  // namespace prix

#endif  // PRIX_PRIX_SUBSEQUENCE_MATCHER_H_
