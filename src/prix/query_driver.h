#ifndef PRIX_PRIX_QUERY_DRIVER_H_
#define PRIX_PRIX_QUERY_DRIVER_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "prix/query_processor.h"

namespace prix {

/// Result of a batch run: per-query results in submission order plus the
/// batch-wide stats aggregate (QueryStats::MergeFrom over all queries).
/// `generation` is the catalog generation the batch ran against — the
/// pinned snapshot's for ExecuteXPathBatchSnapshot, 0 for the live-index
/// paths (which predate generations and never mix with writers).
struct BatchResult {
  std::vector<QueryResult> results;
  QueryStats total;
  uint64_t generation = 0;
};

/// Multi-threaded query driver: N workers execute a batch of parsed twig
/// queries against shared read-only PrixIndexes over the thread-safe buffer
/// pool. Each worker task runs one query through its own stack-local
/// execution state (QueryProcessor is stateless), so the only cross-thread
/// coordination is the buffer pool's shard latches and the work queue.
///
/// The driver owns its thread pool; one driver can serve many batches.
/// The constructor-supplied indexes must be fully built before the first
/// batch and never mutated while one runs — the single-writer rule of
/// DESIGN.md. To query concurrently WITH a writer, use
/// ExecuteXPathBatchSnapshot, which ignores the constructor indexes and
/// opens the named ones out of a pinned catalog generation instead. XPath
/// batches parse inside the workers (Intern is thread-safe), so submission
/// is O(1) in query count.
class QueryDriver {
 public:
  QueryDriver(Database& db, PrixIndex* rp, PrixIndex* ep, size_t num_threads)
      : db_(&db), processor_(db, rp, ep), pool_(num_threads) {}

  /// Executes `patterns[i]` into `results[i]`. All queries run to
  /// completion; the first error in submission order wins, if any.
  Result<BatchResult> ExecuteBatch(const std::vector<TwigPattern>& patterns,
                                   const QueryOptions& options = {});

  /// Fans the XPath batch out directly: each worker parses its query
  /// (interning into `dict` concurrently) and executes it.
  Result<BatchResult> ExecuteXPathBatch(const std::vector<std::string>& xpaths,
                                        TagDictionary* dict,
                                        const QueryOptions& options = {});

  /// Snapshot-isolated batch (DESIGN.md §5i): pins the current committed
  /// generation, opens the named RP index (and EP index, unless `ep_name`
  /// is empty) out of it, and runs the whole batch against that one
  /// generation. A concurrent writer's commits never change any answer
  /// mid-batch; the generation answered from is returned in the result.
  Result<BatchResult> ExecuteXPathBatchSnapshot(
      const std::string& rp_name, const std::string& ep_name,
      const std::vector<std::string>& xpaths, TagDictionary* dict,
      const QueryOptions& options = {});

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  /// Shared fan-out body for the XPath paths; `processor` outlives the join.
  Result<BatchResult> RunXPathBatch(const QueryProcessor* processor,
                                    const std::vector<std::string>& xpaths,
                                    TagDictionary* dict,
                                    const QueryOptions& options);

  Database* db_;
  QueryProcessor processor_;
  ThreadPool pool_;
};

}  // namespace prix

#endif  // PRIX_PRIX_QUERY_DRIVER_H_
