#ifndef PRIX_PRIX_REFINEMENT_H_
#define PRIX_PRIX_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "naive/naive_matcher.h"
#include "prix/doc_store.h"
#include "query/twig_prufer.h"

namespace prix {

/// Counters for the refinement phases (Algorithm 2). Merged across worker
/// threads with MergeFrom on the parallel query path.
struct RefineStats {
  uint64_t candidates = 0;
  uint64_t failed_connectedness = 0;
  uint64_t failed_gap = 0;
  uint64_t failed_frequency = 0;
  uint64_t failed_leaves = 0;
  uint64_t passed = 0;

  void MergeFrom(const RefineStats& other) {
    candidates += other.candidates;
    failed_connectedness += other.failed_connectedness;
    failed_gap += other.failed_gap;
    failed_frequency += other.failed_frequency;
    failed_leaves += other.failed_leaves;
    passed += other.passed;
  }
};

/// A document loaded for refinement, with derived arrays cached: the node
/// label table (leaf list + LPS/NPS as in Example 6) and, for extended
/// stores, the extended-to-original postorder translation.
struct RefinableDoc {
  StoredDoc stored;
  /// label_of[k] = label of the node with postorder number k (1-based).
  std::vector<LabelId> label_of;
  /// Extended stores only: orig_post[k] maps extended postorder -> original
  /// postorder (0 for dummy nodes). Empty for regular stores.
  std::vector<uint32_t> orig_post;

  /// Builds the derived arrays. `extended` selects EP handling.
  static RefinableDoc Make(StoredDoc stored, bool extended);

  uint32_t num_nodes() const { return stored.seq.num_nodes; }
  /// Parent postorder number of node v (v < num_nodes).
  uint32_t Parent(uint32_t v) const { return stored.seq.nps[v - 1]; }
};

/// Individual refinement checks, exposed for unit tests and the ablation
/// benches. `positions` are 1-based matched LPS positions.
bool CheckConnectedness(const RefinableDoc& doc,
                        const std::vector<uint32_t>& positions,
                        bool generalized);
bool CheckGapConsistency(const RefinableDoc& doc, const QuerySequence& q,
                         const std::vector<uint32_t>& positions);
bool CheckFrequencyConsistency(const RefinableDoc& doc,
                               const QuerySequence& q,
                               const std::vector<uint32_t>& positions);

/// Runs Algorithm 2 on one candidate subsequence occurrence: refinement by
/// connectedness (Theorem 2, with the Sec. 4.5 parent-chain generalization
/// when `generalized`), by structure (gap + frequency consistency,
/// Definitions 3 and 4), and by leaf nodes (RP stores only; skipped per
/// Sec. 5.6 for extended stores). Returns true if the candidate survives.
bool RefineCandidate(const RefinableDoc& doc, const QuerySequence& q,
                     const std::vector<uint32_t>& positions, bool generalized,
                     RefineStats* stats);

/// Recovers the embedding of the EFFECTIVE twig implied by a refined
/// occurrence (Sec. 4.4 / Example 6): effective node e deleted at sequence
/// position k maps to the data node deleted at matched position k, i.e.
/// positions[k-1]; the query root maps to the parent of the last matched
/// deletion. For extended stores, numbers are translated back to original
/// postorder. Valid only for candidates that passed RefineCandidate with
/// generalized == false (exact queries, Theorem 3).
std::vector<uint32_t> ExtractImage(const RefinableDoc& doc,
                                   const QuerySequence& q,
                                   const std::vector<uint32_t>& positions,
                                   size_t num_effective_nodes);

/// Original-tree parent and label arrays (postorder-indexed) for final
/// verification of generalized queries. For extended stores the dummy nodes
/// are removed.
void BuildOriginalArrays(const RefinableDoc& doc, bool extended,
                         std::vector<uint32_t>* parent,
                         std::vector<LabelId>* label, uint32_t* n);

}  // namespace prix

#endif  // PRIX_PRIX_REFINEMENT_H_
