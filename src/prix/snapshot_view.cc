#include "prix/snapshot_view.h"

#include <utility>

#include "common/macros.h"

namespace prix {

Result<SnapshotView> SnapshotView::Open(Database* db,
                                        const std::string& index_name) {
  return OpenAt(db, db->OpenSnapshot(), index_name);
}

Result<SnapshotView> SnapshotView::OpenAt(
    Database* db, std::shared_ptr<const Snapshot> snapshot,
    const std::string& index_name) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry,
                        snapshot->GetIndex(index_name));
  PRIX_ASSIGN_OR_RETURN(std::unique_ptr<PrixIndex> index,
                        PrixIndex::OpenFromEntry(db->pool(), entry));
  return SnapshotView(std::move(snapshot), std::move(index));
}

}  // namespace prix
