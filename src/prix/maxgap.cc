#include "prix/maxgap.h"

#include <algorithm>

#include "storage/record_store.h"

namespace prix {

void MaxGapTable::AddDocument(const Document& doc) {
  std::vector<uint32_t> number = doc.ComputePostorder();
  for (NodeId v = 0; v < doc.num_nodes(); ++v) {
    const auto& kids = doc.children(v);
    if (kids.size() < 2) continue;
    uint32_t gap = number[kids.back()] - number[kids.front()];
    uint32_t& slot = table_[doc.label(v)];
    slot = std::max(slot, gap);
  }
}

void MaxGapTable::SerializeTo(std::vector<char>* out) const {
  PutU32(out, static_cast<uint32_t>(table_.size()));
  for (const auto& [label, gap] : table_) {
    PutU32(out, label);
    PutU32(out, gap);
  }
}

Result<MaxGapTable> MaxGapTable::Deserialize(const char** p,
                                             const char* end) {
  if (*p + 4 > end) return Status::Corruption("truncated MaxGap table");
  uint32_t count = GetU32(*p);
  *p += 4;
  if (*p + 8ull * count > end) {
    return Status::Corruption("truncated MaxGap table");
  }
  MaxGapTable table;
  for (uint32_t i = 0; i < count; ++i, *p += 8) {
    table.table_[GetU32(*p)] = GetU32(*p + 4);
  }
  return table;
}

}  // namespace prix
