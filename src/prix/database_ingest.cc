// Online ingest: Database::InsertDocument / UpdateDocument / DeleteDocument
// (DESIGN.md §5i/§5k). The methods are declared on Database (db/database.h)
// but implemented here, in the engine library, because the write path runs
// the full PRIX transform — Prüfer sequences, trie labeling, B+-tree
// maintenance — which the storage-layer library must not depend on. A binary
// that calls them without linking the engine library fails at link time.
//
// Write protocol. Writers serialize on Database::ingest_mu_. Each call runs
// as one copy-on-write transaction: a fresh CowContext is attached to the
// PRIX index and every co-resident derived engine, so every page mutation
// copies committed pages instead of editing them in place, and the set of
// superseded pages is collected. Publication serializes every touched
// engine's catalog into new blob chains and hands (new entries, superseded
// pages) to Database::CommitBatch, which makes the new generation durable in
// fsync order — one commit covers all engines, so a reader pinned to any
// committed generation sees PRIX, ViST, and TwigStack answers that agree. On
// any failure the fresh pages are dropped from the pool un-flushed and the
// in-memory ingest cache is discarded; the committed generation is
// untouched.
//
// Derived engines (DESIGN.md §5k). Co-resident ViST indexes, TwigStack
// stream stores, and XB-forests found in the catalog ride along in the same
// commit:
//   - ViST's structure-encoded sequences insert exactly like LPS paths —
//     both persist a virtual trie as range-labeled B+-tree entries — so the
//     dynamic trie-labeling + relabel-batch machinery is shared
//     (trie/dynamic_trie.h) and only the persistence ops differ. Deletes
//     remove the Docid entry (candidates come solely from Docid scans).
//   - Stream stores append the new document's entries to the tail of each
//     touched tag stream (DocIds are monotone, so (doc, left) order holds)
//     and tombstone deletes; cursors hide dead entries.
//   - XB-forests re-bucket only the touched tag streams: each touched
//     label's tree is rebuilt over the stream's current pages with live-only
//     max-end summaries.
// An engine ingest cannot carry along — a v1 stream store, a ViST whose trie
// fails to mirror, a misaligned document count (all products of older
// binaries or external tampering) — is left out of the commit, which is
// exactly the case Database::CommitBatch still stamps stale_as_of_gen for.
//
// Labeling. New sequences are absorbed by the pre-allocated slack the
// dynamic labeler leaves in every range (Sec. 5.2.1); see
// trie/dynamic_trie.h for the shared walk/claim/relabel mechanics.
// Exact-labeled indexes (the build default for both PRIX and ViST) have no
// slack at all; their first insert triggers one root-scope growth + relabel
// and behaves dynamically from then on.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "db/database.h"
#include "db/op_codec.h"
#include "prix/prix_index.h"
#include "prufer/prufer.h"
#include "storage/cow.h"
#include "storage/record_store.h"
#include "trie/dynamic_trie.h"
#include "twigstack/twig_stack.h"
#include "vist/vist_index.h"
#include "vist/vist_sequence.h"
#include "xml/document.h"

namespace prix {
namespace {

/// DynamicTrie persistence ops for the PRIX Trie-Symbol/Docid trees. The
/// composite child key is just the LPS label.
struct PrixTrieOps {
  PrixIndex* index;

  Status InsertNode(uint64_t ckey, uint64_t left, uint64_t right,
                    uint32_t level) {
    return index->symbol_index().Insert(
        SymbolKey{static_cast<LabelId>(ckey), 0, left},
        TrieNodeValue{right, level, 0});
  }
  Status DeleteNode(uint64_t ckey, uint64_t left) {
    return index->symbol_index().Delete(
        SymbolKey{static_cast<LabelId>(ckey), 0, left});
  }
  Status InsertDoc(uint64_t left, uint32_t seq, DocId doc) {
    return index->docid_index().Insert(DocKey{left, seq, 0}, doc);
  }
  Status DeleteDoc(uint64_t left, uint32_t seq) {
    return index->docid_index().Delete(DocKey{left, seq, 0});
  }
  void SetRootRange(uint64_t left, uint64_t right) {
    index->set_root_range(RangeLabel{left, right});
  }
};

/// DynamicTrie persistence ops for ViST's D-Ancestorship/Docid trees. The
/// composite child key packs (symbol << 32) | prefix — the same key the
/// build-time VistTrie uses to distinguish siblings.
struct VistTrieOps {
  VistIndex* index;

  static LabelId SymbolOf(uint64_t ckey) {
    return static_cast<LabelId>(ckey >> 32);
  }
  static PrefixId PrefixOf(uint64_t ckey) {
    return static_cast<PrefixId>(ckey & 0xffffffffu);
  }

  Status InsertNode(uint64_t ckey, uint64_t left, uint64_t right,
                    uint32_t level) {
    PRIX_RETURN_NOT_OK(index->dancestor().Insert(
        VistKey{SymbolOf(ckey), 0, left},
        VistNodeValue{right, level, PrefixOf(ckey)}));
    index->AddSymbolPrefix(SymbolOf(ckey), PrefixOf(ckey));
    return Status::OK();
  }
  Status DeleteNode(uint64_t ckey, uint64_t left) {
    return index->dancestor().Delete(VistKey{SymbolOf(ckey), 0, left});
  }
  Status InsertDoc(uint64_t left, uint32_t seq, DocId doc) {
    return index->docid_index().Insert(VistDocKey{left, seq, 0}, doc);
  }
  Status DeleteDoc(uint64_t left, uint32_t seq) {
    return index->docid_index().Delete(VistDocKey{left, seq, 0});
  }
  void SetRootRange(uint64_t left, uint64_t right) {
    index->set_root_range(RangeLabel{left, right});
  }
};

/// Everything the writer caches about one open PRIX index: the live handle,
/// the trie mirror, and the page chain of the current catalog blob (retired
/// into the free list on the next publish).
struct OpenIndex {
  std::unique_ptr<PrixIndex> index;
  std::vector<PageId> catalog_pages;
  DynamicTrie trie;
};

/// One co-resident ViST index carried along by every commit.
struct VistEngine {
  Database::IndexEntry entry;  ///< committed entry (root of current blob)
  std::unique_ptr<VistIndex> index;
  std::vector<PageId> catalog_pages;
  DynamicTrie trie;
  bool dirty = false;  ///< mutated since the last publish
  bool dead = false;   ///< misaligned with the documents; left to be stamped
};

/// One co-resident TwigStack stream store.
struct StreamEngine {
  Database::IndexEntry entry;
  std::unique_ptr<StreamStore> store;
  std::vector<PageId> catalog_pages;
  /// Labels whose streams changed in the open transaction (drives the
  /// paired forest's bounded re-bucket).
  std::vector<LabelId> touched;
  bool dirty = false;
  bool dead = false;
};

/// One co-resident XB-forest, paired with the stream store it summarizes.
struct ForestEngine {
  Database::IndexEntry entry;
  std::unique_ptr<XbForest> forest;
  std::vector<PageId> catalog_pages;
  StreamEngine* paired = nullptr;
  bool dirty = false;
  bool dead = false;
};

/// The opaque object behind Database::ingest_state_. Stamped with the
/// catalog generation it was built from; any commit the writer did not make
/// itself (or a failed transaction) makes it stale and it is rebuilt.
/// Forests point into `streams`, so they are declared after (destroyed
/// first).
struct IngestState {
  uint64_t generation = 0;
  std::map<std::string, std::unique_ptr<OpenIndex>> indexes;
  bool derived_loaded = false;
  std::vector<std::unique_ptr<VistEngine>> vists;
  std::vector<std::unique_ptr<StreamEngine>> streams;
  std::vector<std::unique_ptr<ForestEngine>> forests;
};

/// Rebuilds the PRIX trie mirror and Docid map from the persisted trees.
Status BuildPrixMirror(OpenIndex* oi) {
  std::vector<DynTrieEntry> ents;
  PRIX_ASSIGN_OR_RETURN(auto it, oi->index->symbol_index().SeekToFirst());
  while (it.Valid()) {
    ents.push_back(DynTrieEntry{it.key().label, it.key().left,
                                it.value().right, it.value().level});
    PRIX_RETURN_NOT_OK(it.Next());
  }
  const RangeLabel rr = oi->index->root_range();
  PRIX_RETURN_NOT_OK(oi->trie.Init(std::move(ents), rr.left, rr.right));

  PRIX_ASSIGN_OR_RETURN(auto dit, oi->index->docid_index().SeekToFirst());
  while (dit.Valid()) {
    const DocId doc = dit.value();
    if (doc >= oi->index->num_docs()) {
      return Status::Corruption("Docid entry for DocId " +
                                std::to_string(doc) + " beyond the store");
    }
    PRIX_RETURN_NOT_OK(oi->trie.AddDocKey(doc, dit.key().left,
                                          dit.key().seq));
    PRIX_RETURN_NOT_OK(dit.Next());
  }
  return Status::OK();
}

/// Rebuilds a ViST engine's trie mirror and Docid map.
Status BuildVistMirror(VistEngine* ve) {
  std::vector<DynTrieEntry> ents;
  PRIX_ASSIGN_OR_RETURN(auto it, ve->index->dancestor().SeekToFirst());
  while (it.Valid()) {
    const uint64_t ckey =
        (static_cast<uint64_t>(it.key().symbol) << 32) | it.value().prefix;
    ents.push_back(DynTrieEntry{ckey, it.key().left, it.value().right,
                                it.value().level});
    PRIX_RETURN_NOT_OK(it.Next());
  }
  const RangeLabel rr = ve->index->root_range();
  PRIX_RETURN_NOT_OK(ve->trie.Init(std::move(ents), rr.left, rr.right));

  PRIX_ASSIGN_OR_RETURN(auto dit, ve->index->docid_index().SeekToFirst());
  while (dit.Valid()) {
    const DocId doc = dit.value();
    if (doc >= ve->index->num_docs()) {
      return Status::Corruption("ViST Docid entry for DocId " +
                                std::to_string(doc) + " beyond the store");
    }
    PRIX_RETURN_NOT_OK(ve->trie.AddDocKey(doc, dit.key().left,
                                          dit.key().seq));
    PRIX_RETURN_NOT_OK(dit.Next());
  }
  return Status::OK();
}

/// Loads every co-resident derived index the writer can carry along. An
/// entry that fails to load (already stamped, legacy format, unwalkable) is
/// simply not tracked: it stays out of every commit batch, so CommitBatch
/// stamps it stale on the first document mutation — the behaviour older
/// binaries' indexes always get.
void LoadDerived(Database* db, IngestState* state) {
  if (state->derived_loaded) return;
  state->derived_loaded = true;
  std::vector<Database::IndexEntry> forest_entries;
  for (const Database::IndexEntry& entry : db->ListIndexes()) {
    if (entry.stale_as_of_gen != 0) continue;  // already stale: stays so
    if (entry.kind == Database::IndexKind::kVist) {
      auto opened = VistIndex::OpenFromEntry(db->pool(), entry);
      if (!opened.ok()) continue;
      auto ve = std::make_unique<VistEngine>();
      ve->entry = entry;
      ve->index = std::move(*opened);
      if (!ReadBlobPages(db->pool(), entry.root, &ve->catalog_pages).ok()) {
        continue;
      }
      if (!BuildVistMirror(ve.get()).ok()) continue;
      state->vists.push_back(std::move(ve));
    } else if (entry.kind == Database::IndexKind::kTwigStreams) {
      auto opened = StreamStore::OpenFromEntry(db->pool(), entry);
      if (!opened.ok() || (*opened)->legacy()) continue;
      auto se = std::make_unique<StreamEngine>();
      se->entry = entry;
      se->store = std::move(*opened);
      if (!ReadBlobPages(db->pool(), entry.root, &se->catalog_pages).ok()) {
        continue;
      }
      state->streams.push_back(std::move(se));
    } else if (entry.kind == Database::IndexKind::kXbForest) {
      forest_entries.push_back(entry);  // needs the stores loaded first
    }
  }
  for (const Database::IndexEntry& entry : forest_entries) {
    auto fe = std::make_unique<ForestEngine>();
    fe->entry = entry;
    for (auto& se : state->streams) {
      auto opened = XbForest::OpenFromEntry(db->pool(), entry,
                                            se->store.get());
      if (opened.ok()) {
        fe->forest = std::move(*opened);
        fe->paired = se.get();
        break;
      }
    }
    if (fe->forest == nullptr) continue;
    if (!ReadBlobPages(db->pool(), entry.root, &fe->catalog_pages).ok()) {
      continue;
    }
    state->forests.push_back(std::move(fe));
  }
}

/// Returns the cached writer state for `name`, (re)building it when the
/// cache is missing, stale (someone else committed), or was discarded by a
/// failed transaction. Caller holds ingest_mu_.
Result<OpenIndex*> AcquireIngest(Database* db, std::shared_ptr<void>* slot,
                                 const std::string& name) {
  auto state = std::static_pointer_cast<IngestState>(*slot);
  if (state == nullptr || state->generation != db->catalog_generation()) {
    state = std::make_shared<IngestState>();
    state->generation = db->catalog_generation();
    *slot = state;
  }
  LoadDerived(db, state.get());
  auto it = state->indexes.find(name);
  if (it == state->indexes.end()) {
    auto oi = std::make_unique<OpenIndex>();
    PRIX_ASSIGN_OR_RETURN(oi->index, PrixIndex::Open(db, name));
    PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
    PRIX_RETURN_NOT_OK(
        ReadBlobPages(db->pool(), entry.root, &oi->catalog_pages));
    PRIX_RETURN_NOT_OK(BuildPrixMirror(oi.get()));
    it = state->indexes.emplace(name, std::move(oi)).first;
  }
  return it->second.get();
}

/// Stages one document into the open transaction: transform (matching what
/// PrixIndex::Build does per document), thread the LPS through the trie,
/// add the Docid entry, append the doc-store record.
Result<DocId> StageInsert(OpenIndex* oi, const Document& original) {
  if (original.num_nodes() == 0) {
    return Status::InvalidArgument("cannot insert an empty document");
  }
  PrixIndex* index = oi->index.get();
  const DocId d = static_cast<DocId>(index->num_docs());

  PruferSequences seq;
  std::vector<LeafEntry> leaves;
  if (index->extended()) {
    const Document ext = ExtendWithDummyLeaves(original, kDummyLabel);
    seq = BuildPruferSequences(ext);
    index->maxgap_mut().AddDocument(ext);
  } else {
    seq = BuildPruferSequences(original);
    index->maxgap_mut().AddDocument(original);
    leaves = CollectLeaves(original);
    for (NodeId v = 0; v < original.num_nodes(); ++v) {
      if (original.is_leaf(v)) index->AddChildlessLabel(original.label(v));
    }
  }

  PrixTrieOps ops{index};
  const std::vector<uint64_t> ckeys(seq.lps.begin(), seq.lps.end());
  PRIX_ASSIGN_OR_RETURN(const uint64_t end_left,
                        oi->trie.InsertPath(ckeys, ops));
  PRIX_ASSIGN_OR_RETURN(const DynDocKey key,
                        oi->trie.InsertDocEntry(end_left, d, ops));
  (void)key;
  PRIX_RETURN_NOT_OK(index->docs_mut().Append(d, seq, leaves));
  return d;
}

/// Stages a delete: remove the document's Docid entry (queries can no
/// longer surface it through subsequence matching) and tombstone the DocId
/// (belt and braces for the single-node scan paths; also what `prix verify`
/// reports as dead). Trie-Symbol entries are shared between documents and
/// are never removed; MaxGap and the childless-label set stay sound
/// over-approximations.
Status StageDelete(OpenIndex* oi, DocId doc) {
  PrixIndex* index = oi->index.get();
  if (doc >= index->num_docs() || index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  if (!oi->trie.HasDoc(doc)) {
    return Status::Corruption("live document " + std::to_string(doc) +
                              " has no Docid-index entry");
  }
  PrixTrieOps ops{index};
  PRIX_RETURN_NOT_OK(oi->trie.DeleteDocEntry(doc, ops));
  index->Tombstone(doc);
  return Status::OK();
}

/// Stages `doc` into one ViST engine under DocId `d`. A second lockstep
/// call for the same document (the CLI inserts into an RP and an EP index
/// back to back) sees num_docs == d+1 and no-ops; any other misalignment
/// marks the engine dead so it falls out of the commit and gets stamped.
Status StageVistInsert(VistEngine* ve, const Document& doc, DocId d) {
  if (ve->dead) return Status::OK();
  const size_t have = ve->index->num_docs();
  if (have == static_cast<size_t>(d) + 1) return Status::OK();
  if (have != d) {
    ve->dead = true;
    return Status::OK();
  }
  const std::vector<VistItem> seq =
      BuildVistSequence(doc, ve->index->prefixes_mut());
  std::vector<char> buf;
  PutU32(&buf, static_cast<uint32_t>(seq.size()));
  std::vector<uint64_t> ckeys;
  ckeys.reserve(seq.size());
  for (const VistItem& item : seq) {
    PutU32(&buf, item.symbol);
    PutU32(&buf, item.prefix);
    ckeys.push_back((static_cast<uint64_t>(item.symbol) << 32) | item.prefix);
  }
  PRIX_ASSIGN_OR_RETURN(const uint32_t id,
                        ve->index->sequences().Append(buf.data(), buf.size()));
  if (id != d) {
    return Status::Internal("ViST sequence record landed out of order");
  }
  VistTrieOps ops{ve->index.get()};
  PRIX_ASSIGN_OR_RETURN(const uint64_t end_left,
                        ve->trie.InsertPath(ckeys, ops));
  PRIX_ASSIGN_OR_RETURN(const DynDocKey key,
                        ve->trie.InsertDocEntry(end_left, d, ops));
  (void)key;
  ve->dirty = true;
  return Status::OK();
}

/// Stages a ViST delete: removing the Docid entry is a complete delete —
/// candidates come solely from Docid scans, so the dead sequence record and
/// orphaned trie nodes are unreachable, not wrong. Already-deleted docs
/// no-op (the second lockstep call).
Status StageVistDelete(VistEngine* ve, DocId doc) {
  if (ve->dead) return Status::OK();
  if (doc >= ve->index->num_docs()) {
    ve->dead = true;
    return Status::OK();
  }
  if (!ve->trie.HasDoc(doc)) return Status::OK();
  VistTrieOps ops{ve->index.get()};
  PRIX_RETURN_NOT_OK(ve->trie.DeleteDocEntry(doc, ops));
  ve->dirty = true;
  return Status::OK();
}

Status StageStreamInsert(StreamEngine* se, const Document& doc, DocId d,
                         CowContext* cow) {
  if (se->dead) return Status::OK();
  const uint32_t have = se->store->num_docs();
  if (have == d + 1) return Status::OK();  // second lockstep call
  if (have != d) {
    se->dead = true;
    return Status::OK();
  }
  PRIX_RETURN_NOT_OK(se->store->AppendDocument(doc, d, cow, &se->touched));
  se->dirty = true;
  return Status::OK();
}

/// Stages a stream delete. The touched labels (for the paired forest's
/// re-bucket) come from reconstructing the document out of the PRIX store —
/// best-effort: if reconstruction fails, the old summaries stay, which is
/// safe (a too-large max-end only costs extra drill-downs; the leaf cursor
/// hides the dead entries either way).
Status StageStreamDelete(StreamEngine* se, const OpenIndex* oi, DocId doc) {
  if (se->dead) return Status::OK();
  if (doc >= se->store->num_docs()) {
    se->dead = true;
    return Status::OK();
  }
  if (se->store->IsDeleted(doc)) return Status::OK();
  Result<Document> re = oi->index->ReconstructDocument(doc);
  if (re.ok()) {
    for (NodeId v = 0; v < re->num_nodes(); ++v) {
      se->touched.push_back(re->label(v));
    }
  }
  se->store->Tombstone(doc);
  se->dirty = true;
  return Status::OK();
}

Status StageDerivedInsert(IngestState* state, const Document& doc, DocId d,
                          CowContext* cow) {
  for (auto& ve : state->vists) {
    PRIX_RETURN_NOT_OK(StageVistInsert(ve.get(), doc, d));
  }
  for (auto& se : state->streams) {
    PRIX_RETURN_NOT_OK(StageStreamInsert(se.get(), doc, d, cow));
  }
  return Status::OK();
}

/// Must run while `doc` is still live in the PRIX index (reconstruction
/// feeds the forest re-bucket), i.e. before StageDelete.
Status StageDerivedDelete(IngestState* state, const OpenIndex* oi,
                          DocId doc) {
  for (auto& ve : state->vists) {
    PRIX_RETURN_NOT_OK(StageVistDelete(ve.get(), doc));
  }
  for (auto& se : state->streams) {
    PRIX_RETURN_NOT_OK(StageStreamDelete(se.get(), oi, doc));
  }
  return Status::OK();
}

/// One engine's deferred publication bookkeeping: applied only after
/// CommitBatch succeeds, so a failed commit leaves the cached state
/// describing the still-committed generation (it is discarded anyway).
struct PendingPublish {
  std::vector<PageId>* pages_slot;
  Database::IndexEntry* entry_slot;  ///< null for the PRIX index itself
  Database::IndexEntry entry;
  std::vector<PageId> new_pages;
};

/// Serializes one engine catalog into a fresh blob chain and stages its
/// entry + retired pages for the batch commit.
Status StageEnginePublish(Database* db, CowContext* cow,
                          const std::vector<char>& blob,
                          Database::IndexEntry entry,
                          std::vector<PageId>* pages_slot,
                          Database::IndexEntry* entry_slot,
                          std::vector<Database::IndexEntry>* entries,
                          std::vector<PageId>* freed,
                          std::vector<PendingPublish>* pending) {
  std::vector<PageId> new_pages;
  PRIX_ASSIGN_OR_RETURN(const PageId head,
                        WriteBlob(db->pool(), blob, &new_pages));
  for (const PageId p : new_pages) cow->MarkFresh(p);
  entry.root = head;
  // A freshly published engine is current by construction; this also
  // retires any stamp a pre-§5k binary left on an otherwise healthy index.
  entry.stale_as_of_gen = 0;
  entries->push_back(entry);
  freed->insert(freed->end(), pages_slot->begin(), pages_slot->end());
  pending->push_back(
      PendingPublish{pages_slot, entry_slot, entry, std::move(new_pages)});
  return Status::OK();
}

/// Publishes the staged transaction: re-bucket the touched XB-trees,
/// serialize every dirty engine's catalog into a new blob chain, include
/// every clean-but-live derived entry unchanged (presence in the batch is
/// what exempts it from staleness stamping), and commit the whole set plus
/// the superseded pages as one new generation.
Status PublishAll(Database* db, const std::string& name, OpenIndex* oi,
                  IngestState* state, CowContext* cow) {
  for (auto& fe : state->forests) {
    if (fe->dead || fe->paired == nullptr || fe->paired->dead) continue;
    if (fe->paired->touched.empty()) continue;
    std::vector<LabelId> labels = fe->paired->touched;
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    for (const LabelId label : labels) {
      PRIX_RETURN_NOT_OK(
          fe->forest->RebuildTree(label, fe->paired->store.get(), cow));
    }
    fe->dirty = true;
  }

  std::vector<Database::IndexEntry> entries;
  std::vector<PageId> freed;
  std::vector<PendingPublish> pending;

  {
    std::vector<char> blob;
    oi->index->SerializeCatalog(&blob);
    Database::IndexEntry entry;
    entry.name = name;
    entry.kind = oi->index->extended() ? Database::IndexKind::kPrixExtended
                                       : Database::IndexKind::kPrixRegular;
    PRIX_RETURN_NOT_OK(StageEnginePublish(db, cow, blob, entry,
                                          &oi->catalog_pages, nullptr,
                                          &entries, &freed, &pending));
  }
  for (auto& ve : state->vists) {
    if (ve->dead) continue;
    if (!ve->dirty) {
      entries.push_back(ve->entry);
      continue;
    }
    std::vector<char> blob;
    ve->index->SerializeCatalog(&blob);
    PRIX_RETURN_NOT_OK(StageEnginePublish(db, cow, blob, ve->entry,
                                          &ve->catalog_pages, &ve->entry,
                                          &entries, &freed, &pending));
  }
  for (auto& se : state->streams) {
    if (se->dead) continue;
    if (!se->dirty) {
      entries.push_back(se->entry);
      continue;
    }
    std::vector<char> blob;
    se->store->SerializeCatalog(&blob);
    PRIX_RETURN_NOT_OK(StageEnginePublish(db, cow, blob, se->entry,
                                          &se->catalog_pages, &se->entry,
                                          &entries, &freed, &pending));
  }
  for (auto& fe : state->forests) {
    if (fe->dead || fe->paired == nullptr || fe->paired->dead) continue;
    if (!fe->dirty) {
      entries.push_back(fe->entry);
      continue;
    }
    std::vector<char> blob;
    fe->forest->SerializeCatalog(&blob);
    PRIX_RETURN_NOT_OK(StageEnginePublish(db, cow, blob, fe->entry,
                                          &fe->catalog_pages, &fe->entry,
                                          &entries, &freed, &pending));
  }

  freed.insert(freed.end(), cow->freed.begin(), cow->freed.end());
  PRIX_RETURN_NOT_OK(db->CommitBatch(entries, freed));
  for (PendingPublish& pp : pending) {
    *pp.pages_slot = std::move(pp.new_pages);
    if (pp.entry_slot != nullptr) *pp.entry_slot = pp.entry;
  }
  for (auto& ve : state->vists) ve->dirty = false;
  for (auto& se : state->streams) {
    se->dirty = false;
    se->touched.clear();
  }
  for (auto& fe : state->forests) fe->dirty = false;
  return Status::OK();
}

/// Attaches/detaches the COW context on every engine participating in the
/// transaction (stream stores take it per call instead).
void SetCowAll(OpenIndex* oi, IngestState* state, CowContext* cow) {
  oi->index->SetCow(cow);
  for (auto& ve : state->vists) {
    if (!ve->dead) ve->index->SetCow(cow);
  }
}

/// Abort path: evict every page this transaction allocated WITHOUT writing
/// it back (committed pages were never touched in place, so the committed
/// generation is intact by construction) and discard the writer cache — its
/// in-memory trees and mirrors now describe the aborted state. Pages popped
/// from the free list by the aborted transaction leak (they are unreachable
/// and unlisted); a crash has the same effect, and `prix verify` treats
/// leaked pages as benign.
void AbortIngest(Database* db, std::shared_ptr<void>* slot, CowContext* cow) {
  for (const PageId p : cow->fresh) {
    const Status st = db->pool()->DropPage(p);
    (void)st;  // best-effort: an undropped stale frame is only wasted cache
  }
  slot->reset();
}

void BumpIngestCounter(const char* name) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) reg.counter(name).Add(1);
}

}  // namespace

Result<uint32_t> Database::InsertDocument(const std::string& index_name,
                                          const Document& doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (doc.num_nodes() == 0) {
    return Status::InvalidArgument("cannot insert an empty document");
  }
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  auto state = std::static_pointer_cast<IngestState>(ingest_state_).get();
  CowContext cow;
  SetCowAll(oi, state, &cow);
  auto run = [&]() -> Result<uint32_t> {
    PRIX_ASSIGN_OR_RETURN(const DocId d, StageInsert(oi, doc));
    PRIX_RETURN_NOT_OK(StageDerivedInsert(state, doc, d, &cow));
    // Stage the oplog record the publish commit will carry (DESIGN.md §5l):
    // the assigned DocId rides along so a follower replay that disagrees on
    // ids is caught as divergence, not silently re-numbered.
    StageOpRecord(OpKind::kInsert, EncodeInsertOp(index_name, d, doc));
    PRIX_RETURN_NOT_OK(PublishAll(this, index_name, oi, state, &cow));
    return d;
  };
  Result<uint32_t> result = run();
  SetCowAll(oi, state, nullptr);
  if (!result.ok()) {
    ClearStagedOp();
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  state->generation = catalog_generation();
  BumpIngestCounter("prix.ingest.docs_inserted");
  return result;
}

Result<uint32_t> Database::UpdateDocument(const std::string& index_name,
                                          uint32_t doc,
                                          const Document& new_doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (new_doc.num_nodes() == 0) {
    return Status::InvalidArgument("cannot update to an empty document");
  }
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  auto state = std::static_pointer_cast<IngestState>(ingest_state_).get();
  if (doc >= oi->index->num_docs() || oi->index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  CowContext cow;
  SetCowAll(oi, state, &cow);
  auto run = [&]() -> Result<uint32_t> {
    PRIX_RETURN_NOT_OK(StageDerivedDelete(state, oi, doc));
    PRIX_RETURN_NOT_OK(StageDelete(oi, doc));
    PRIX_ASSIGN_OR_RETURN(const DocId d, StageInsert(oi, new_doc));
    PRIX_RETURN_NOT_OK(StageDerivedInsert(state, new_doc, d, &cow));
    StageOpRecord(OpKind::kUpdate,
                  EncodeUpdateOp(index_name, doc, d, new_doc));
    PRIX_RETURN_NOT_OK(PublishAll(this, index_name, oi, state, &cow));
    return d;
  };
  Result<uint32_t> result = run();
  SetCowAll(oi, state, nullptr);
  if (!result.ok()) {
    ClearStagedOp();
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  state->generation = catalog_generation();
  BumpIngestCounter("prix.ingest.docs_updated");
  return result;
}

Status Database::DeleteDocument(const std::string& index_name, uint32_t doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  auto state = std::static_pointer_cast<IngestState>(ingest_state_).get();
  if (doc >= oi->index->num_docs() || oi->index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  CowContext cow;
  SetCowAll(oi, state, &cow);
  auto run = [&]() -> Status {
    PRIX_RETURN_NOT_OK(StageDerivedDelete(state, oi, doc));
    PRIX_RETURN_NOT_OK(StageDelete(oi, doc));
    StageOpRecord(OpKind::kDelete, EncodeDeleteOp(index_name, doc));
    return PublishAll(this, index_name, oi, state, &cow);
  };
  const Status result = run();
  SetCowAll(oi, state, nullptr);
  if (!result.ok()) {
    ClearStagedOp();
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  state->generation = catalog_generation();
  BumpIngestCounter("prix.ingest.docs_deleted");
  return Status::OK();
}

}  // namespace prix
