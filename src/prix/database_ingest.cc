// Online ingest: Database::InsertDocument / UpdateDocument / DeleteDocument
// (DESIGN.md §5i). The methods are declared on Database (db/database.h) but
// implemented here, in the engine library, because the write path runs the
// full PRIX transform — Prüfer sequences, trie labeling, B+-tree
// maintenance — which the storage-layer library must not depend on. A binary
// that calls them without linking the engine library fails at link time.
//
// Write protocol. Writers serialize on Database::ingest_mu_. Each call runs
// as one copy-on-write transaction: a fresh CowContext is attached to the
// index (PrixIndex::SetCow), so every page mutation copies committed pages
// instead of editing them in place, and the set of superseded pages is
// collected. Publication serializes the index catalog into a new blob chain
// and hands (new entry, superseded pages) to Database::CommitBatch, which
// makes the new generation durable in fsync order. On any failure the fresh
// pages are dropped from the pool un-flushed and the in-memory ingest cache
// is discarded; the committed generation is untouched.
//
// Labeling. New sequences are absorbed by the pre-allocated slack the
// dynamic labeler leaves in every range (Sec. 5.2.1): each trie node's scope
// (left, right] is larger than its current children need, so a new child
// usually just claims the next free sub-range. When a scope is exhausted,
// the nearest ancestor whose scope can host its whole subtree at a spread of
// kRelabelSpread positions per node is relabeled as a batch: all old
// Trie-Symbol and Docid keys of the moved nodes are deleted, new ranges
// assigned, and the keys reinserted — inside the same transaction, so
// readers never observe a half-relabeled trie. Exact-labeled indexes (the
// build default) have no slack at all; their first insert triggers one
// root-scope growth + relabel and behaves dynamically from then on.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "db/database.h"
#include "prix/prix_index.h"
#include "prufer/prufer.h"
#include "storage/cow.h"
#include "storage/record_store.h"
#include "xml/document.h"

namespace prix {
namespace {

constexpr uint32_t kNoMirror = 0xffffffffu;

/// Positions reserved per node when a relabel batch re-spreads a subtree,
/// and the growth granularity of the root scope. 16 means a relabeled
/// subtree can absorb ~15 more nodes per existing node before the next
/// relabel touches it.
constexpr uint64_t kRelabelSpread = 16;

/// Ceiling for the root scope; matches the dynamic labeler's budget and
/// leaves headroom below 2^63 for interval arithmetic.
constexpr uint64_t kMaxRootScope = uint64_t{1} << 62;

/// Writer-side image of one virtual-trie node. The trie is never stored as
/// a tree on disk — only as Trie-Symbol keys — so the writer reconstructs
/// it once per cache build and keeps it current across its own inserts.
struct MirrorNode {
  LabelId label = 0;
  uint64_t left = 0;
  uint64_t right = 0;
  uint32_t level = 0;  ///< 0 for the virtual root
  uint32_t parent = kNoMirror;
  /// First unclaimed position in (left, right]: all children's ranges and
  /// the node's own position lie strictly below it.
  uint64_t next_free = 0;
  std::unordered_map<LabelId, uint32_t> children;
};

/// Everything the writer caches about one open index: the live PrixIndex
/// handle, the trie mirror (nodes in preorder, [0] = virtual root, so a
/// node's parent always has a smaller slot), the page chain of the current
/// catalog blob (retired into the free list on the next publish), and the
/// Docid-entry map used by deletes and relabel re-keying.
struct OpenIndex {
  std::unique_ptr<PrixIndex> index;
  std::vector<PageId> catalog_pages;
  std::vector<MirrorNode> mirror;
  std::unordered_map<DocId, DocKey> doc_keys;  ///< live documents only
  uint32_t next_seq = 0;  ///< next Docid-entry sequence number
};

/// The opaque object behind Database::ingest_state_. Stamped with the
/// catalog generation it was built from; any commit the writer did not make
/// itself (or a failed transaction) makes it stale and it is rebuilt.
struct IngestState {
  uint64_t generation = 0;
  std::map<std::string, std::unique_ptr<OpenIndex>> indexes;
};

/// Rebuilds the trie mirror from the Trie-Symbol index: collect every
/// (label, left, right, level) entry, sort by LeftPos — range labels assign
/// LeftPos in preorder, so that IS a preorder walk — and recover each node's
/// parent as the nearest enclosing range on a stack, validating containment
/// and level consistency as it goes.
Status BuildMirror(OpenIndex* oi) {
  struct Ent {
    uint64_t left;
    uint64_t right;
    uint32_t level;
    LabelId label;
  };
  std::vector<Ent> ents;
  PRIX_ASSIGN_OR_RETURN(auto it, oi->index->symbol_index().SeekToFirst());
  while (it.Valid()) {
    ents.push_back(
        Ent{it.key().left, it.value().right, it.value().level, it.key().label});
    PRIX_RETURN_NOT_OK(it.Next());
  }
  std::sort(ents.begin(), ents.end(),
            [](const Ent& a, const Ent& b) { return a.left < b.left; });

  const RangeLabel rr = oi->index->root_range();
  std::vector<MirrorNode>& m = oi->mirror;
  m.clear();
  MirrorNode root;
  root.left = rr.left;
  root.right = rr.right;
  root.next_free = rr.left + 1;
  m.push_back(std::move(root));

  std::vector<uint32_t> stk{0};
  for (const Ent& e : ents) {
    if (e.left <= rr.left || e.left > rr.right || e.right < e.left ||
        e.right > rr.right) {
      return Status::Corruption("trie node range escapes the root scope");
    }
    while (stk.size() > 1 &&
           !(m[stk.back()].left < e.left && e.left <= m[stk.back()].right)) {
      stk.pop_back();
    }
    const uint32_t parent = stk.back();
    if (e.right > m[parent].right) {
      return Status::Corruption("trie node range escapes its parent's scope");
    }
    if (e.level != m[parent].level + 1) {
      return Status::Corruption(
          "trie node level does not match its range nesting depth");
    }
    MirrorNode node;
    node.label = e.label;
    node.left = e.left;
    node.right = e.right;
    node.level = e.level;
    node.parent = parent;
    node.next_free = e.left + 1;
    const uint32_t idx = static_cast<uint32_t>(m.size());
    if (!m[parent].children.emplace(e.label, idx).second) {
      return Status::Corruption("two sibling trie nodes share one label");
    }
    m.push_back(std::move(node));
    if (m[parent].next_free < e.right + 1) m[parent].next_free = e.right + 1;
    stk.push_back(idx);
  }
  return Status::OK();
}

/// Scans the Docid index into doc_keys (every live document's end-node key)
/// and derives the next free sequence number. Tombstoned documents lost
/// their entries when they were deleted, so they never appear here.
Status ScanDocids(OpenIndex* oi) {
  PRIX_ASSIGN_OR_RETURN(auto it, oi->index->docid_index().SeekToFirst());
  while (it.Valid()) {
    const DocId doc = it.value();
    if (doc >= oi->index->num_docs()) {
      return Status::Corruption("Docid entry for DocId " + std::to_string(doc) +
                                " beyond the store");
    }
    if (!oi->doc_keys.emplace(doc, it.key()).second) {
      return Status::Corruption("two Docid-index entries map to DocId " +
                                std::to_string(doc));
    }
    if (it.key().seq >= oi->next_seq) oi->next_seq = it.key().seq + 1;
    PRIX_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

/// Returns the cached writer state for `name`, (re)building it when the
/// cache is missing, stale (someone else committed), or was discarded by a
/// failed transaction. Caller holds ingest_mu_.
Result<OpenIndex*> AcquireIngest(Database* db, std::shared_ptr<void>* slot,
                                 const std::string& name) {
  auto state = std::static_pointer_cast<IngestState>(*slot);
  if (state == nullptr || state->generation != db->catalog_generation()) {
    state = std::make_shared<IngestState>();
    state->generation = db->catalog_generation();
    *slot = state;
  }
  auto it = state->indexes.find(name);
  if (it == state->indexes.end()) {
    auto oi = std::make_unique<OpenIndex>();
    PRIX_ASSIGN_OR_RETURN(oi->index, PrixIndex::Open(db, name));
    PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
    PRIX_RETURN_NOT_OK(
        ReadBlobPages(db->pool(), entry.root, &oi->catalog_pages));
    PRIX_RETURN_NOT_OK(BuildMirror(oi.get()));
    PRIX_RETURN_NOT_OK(ScanDocids(oi.get()));
    it = state->indexes.emplace(name, std::move(oi)).first;
  }
  return it->second.get();
}

/// Relabel batch (the Sec. 5.2.1 fallback): node `at` cannot host `need`
/// more descendants. Walks up to the nearest ancestor A whose scope can
/// hold its whole subtree — counting the pending chain — at kRelabelSpread
/// positions per node (growing the root scope if even the root is too
/// tight), then re-spreads every descendant of A: delete all their old
/// Trie-Symbol and Docid keys, assign fresh ranges preorder with the spread,
/// reinsert. A's own range never changes, so nothing outside its subtree
/// moves.
Status RelabelForInsert(OpenIndex* oi, uint32_t at, uint64_t need) {
  std::vector<MirrorNode>& m = oi->mirror;
  PrixIndex* index = oi->index.get();

  // Subtree sizes (nodes incl. self). Mirror slots are preorder (parent <
  // child), so one reverse sweep folds children into parents; then the
  // pending chain of `need` nodes is credited to every ancestor of `at`.
  std::vector<uint64_t> sz(m.size(), 1);
  for (uint32_t v = static_cast<uint32_t>(m.size()); v-- > 1;) {
    sz[m[v].parent] += sz[v];
  }
  for (uint32_t x = at;; x = m[x].parent) {
    sz[x] += need;
    if (x == 0) break;
  }

  uint32_t A = at;
  while (true) {
    const uint64_t descendants = sz[A] - 1;
    const uint64_t span = m[A].right - m[A].left;
    if (span / kRelabelSpread >= descendants) break;
    if (A == 0) {
      // Even the root scope is too small: grow it. The root is virtual (no
      // Trie-Symbol key), so only root_range_ changes.
      const uint64_t want =
          std::max(descendants * kRelabelSpread, 2 * span);
      if (want < span || m[0].left + want > kMaxRootScope) {
        return Status::Internal("root label scope exhausted");
      }
      m[0].right = m[0].left + want;
      index->set_root_range(RangeLabel{m[0].left, m[0].right});
      break;
    }
    A = m[A].parent;
  }

  const uint64_t descendants = sz[A] - 1;
  const uint64_t span = m[A].right - m[A].left;
  const uint64_t spread = span / descendants;  // >= kRelabelSpread

  // Preorder over A's proper descendants, children visited in old-left
  // order, captured BEFORE any range changes.
  std::vector<uint32_t> desc;
  {
    std::vector<uint32_t> stk;
    auto push_children = [&](uint32_t n) {
      std::vector<std::pair<uint64_t, uint32_t>> kids;
      kids.reserve(m[n].children.size());
      for (const auto& [label, c] : m[n].children) {
        kids.emplace_back(m[c].left, c);
      }
      std::sort(kids.begin(), kids.end());
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stk.push_back(it->second);
      }
    };
    push_children(A);
    while (!stk.empty()) {
      const uint32_t n = stk.back();
      stk.pop_back();
      desc.push_back(n);
      push_children(n);
    }
  }
  if (desc.empty()) return Status::OK();  // pure root growth, nothing moves

  // Phase 1: delete every moved node's old symbol key and every Docid entry
  // keyed under A's scope (exactly the moved nodes' entries; A's own, at
  // A.left, is outside the open interval). Deletes strictly precede
  // reinserts so a new key can never collide with a not-yet-moved old one.
  std::vector<uint64_t> old_lefts(desc.size());
  for (size_t i = 0; i < desc.size(); ++i) {
    old_lefts[i] = m[desc[i]].left;
    PRIX_RETURN_NOT_OK(index->symbol_index().Delete(
        SymbolKey{m[desc[i]].label, 0, old_lefts[i]}));
  }
  struct MovedDoc {
    DocId doc;
    DocKey old_key;
  };
  std::vector<MovedDoc> moved;
  for (const auto& [doc, key] : oi->doc_keys) {
    if (key.left > m[A].left && key.left <= m[A].right) {
      moved.push_back(MovedDoc{doc, key});
    }
  }
  for (const MovedDoc& md : moved) {
    PRIX_RETURN_NOT_OK(index->docid_index().Delete(md.old_key));
  }

  // Phase 2: assign fresh ranges in one preorder pass. Each node claims
  // sz*spread positions from its parent's running cursor; processing order
  // guarantees the parent's cursor exists before any child reads it.
  std::unordered_map<uint64_t, uint64_t> new_left_by_old;
  new_left_by_old.reserve(desc.size());
  std::unordered_map<uint32_t, uint64_t> cursor;
  cursor.reserve(desc.size() + 1);
  cursor[A] = m[A].left + 1;
  for (size_t i = 0; i < desc.size(); ++i) {
    const uint32_t n = desc[i];
    uint64_t& parent_cursor = cursor[m[n].parent];
    const uint64_t base = parent_cursor;
    parent_cursor = base + sz[n] * spread;
    m[n].left = base;
    m[n].right = base + sz[n] * spread - 1;
    cursor[n] = base + 1;
    new_left_by_old.emplace(old_lefts[i], base);
  }
  m[A].next_free = cursor[A];
  for (const uint32_t n : desc) m[n].next_free = cursor[n];

  // Phase 3: reinsert under the new ranges.
  for (const uint32_t n : desc) {
    PRIX_RETURN_NOT_OK(index->symbol_index().Insert(
        SymbolKey{m[n].label, 0, m[n].left},
        TrieNodeValue{m[n].right, m[n].level, 0}));
  }
  for (const MovedDoc& md : moved) {
    const auto it = new_left_by_old.find(md.old_key.left);
    if (it == new_left_by_old.end()) {
      return Status::Internal("Docid entry keyed at no relabeled trie node");
    }
    const DocKey nk{it->second, md.old_key.seq, 0};
    PRIX_RETURN_NOT_OK(index->docid_index().Insert(nk, md.doc));
    oi->doc_keys[md.doc] = nk;
  }

  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.counter("prix.ingest.relabels").Add(1);
    reg.counter("prix.ingest.relabeled_nodes").Add(desc.size());
  }
  return Status::OK();
}

/// Threads `lps` through the trie mirror, materializing the missing suffix
/// as new Trie-Symbol entries, and returns the LeftPos of the end node. A
/// new child's share of its parent's free scope is generous (3/4 of what is
/// left, floored at 4x the pending chain) so sibling insertions stay cheap;
/// an exhausted scope triggers one relabel batch and a retry.
Result<uint64_t> WalkAndInsert(OpenIndex* oi, const std::vector<LabelId>& lps) {
  std::vector<MirrorNode>& m = oi->mirror;
  for (int attempt = 0; attempt < 8; ++attempt) {
    uint32_t cur = 0;
    size_t i = 0;
    while (i < lps.size()) {
      const auto it = m[cur].children.find(lps[i]);
      if (it == m[cur].children.end()) break;
      cur = it->second;
      ++i;
    }
    if (i == lps.size()) return m[cur].left;  // whole path already shared

    uint64_t need = lps.size() - i;
    uint64_t remaining =
        m[cur].next_free > m[cur].right ? 0 : m[cur].right - m[cur].next_free + 1;
    if (remaining < need) {
      PRIX_RETURN_NOT_OK(RelabelForInsert(oi, cur, need));
      continue;  // ranges moved under us; redo the walk
    }
    for (; i < lps.size(); ++i) {
      need = lps.size() - i;
      remaining = m[cur].right - m[cur].next_free + 1;
      if (remaining < need) {
        return Status::Internal("label scope underflow mid-chain");
      }
      const uint64_t share =
          std::min(remaining, std::max(need * 4, remaining - remaining / 4));
      const uint64_t left = m[cur].next_free;
      const uint64_t right = left + share - 1;
      m[cur].next_free = right + 1;
      const uint32_t level = m[cur].level + 1;
      PRIX_RETURN_NOT_OK(oi->index->symbol_index().Insert(
          SymbolKey{lps[i], 0, left}, TrieNodeValue{right, level, 0}));
      MirrorNode node;
      node.label = lps[i];
      node.left = left;
      node.right = right;
      node.level = level;
      node.parent = cur;
      node.next_free = left + 1;
      const uint32_t idx = static_cast<uint32_t>(m.size());
      m.push_back(std::move(node));
      m[cur].children.emplace(lps[i], idx);
      cur = idx;
    }
    return m[cur].left;
  }
  return Status::Internal("relabeling failed to open a large enough scope");
}

/// Stages one document into the open transaction: transform (matching what
/// PrixIndex::Build does per document), thread the LPS through the trie,
/// add the Docid entry, append the doc-store record.
Result<DocId> StageInsert(OpenIndex* oi, const Document& original) {
  if (original.num_nodes() == 0) {
    return Status::InvalidArgument("cannot insert an empty document");
  }
  PrixIndex* index = oi->index.get();
  const DocId d = static_cast<DocId>(index->num_docs());

  PruferSequences seq;
  std::vector<LeafEntry> leaves;
  if (index->extended()) {
    const Document ext = ExtendWithDummyLeaves(original, kDummyLabel);
    seq = BuildPruferSequences(ext);
    index->maxgap_mut().AddDocument(ext);
  } else {
    seq = BuildPruferSequences(original);
    index->maxgap_mut().AddDocument(original);
    leaves = CollectLeaves(original);
    for (NodeId v = 0; v < original.num_nodes(); ++v) {
      if (original.is_leaf(v)) index->AddChildlessLabel(original.label(v));
    }
  }

  PRIX_ASSIGN_OR_RETURN(const uint64_t end_left, WalkAndInsert(oi, seq.lps));
  const DocKey key{end_left, oi->next_seq++, 0};
  PRIX_RETURN_NOT_OK(index->docid_index().Insert(key, d));
  PRIX_RETURN_NOT_OK(index->docs_mut().Append(d, seq, leaves));
  oi->doc_keys.emplace(d, key);
  return d;
}

/// Stages a delete: remove the document's Docid entry (queries can no
/// longer surface it through subsequence matching) and tombstone the DocId
/// (belt and braces for the single-node scan paths; also what `prix verify`
/// reports as dead). Trie-Symbol entries are shared between documents and
/// are never removed; MaxGap and the childless-label set stay sound
/// over-approximations.
Status StageDelete(OpenIndex* oi, DocId doc) {
  PrixIndex* index = oi->index.get();
  if (doc >= index->num_docs() || index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  const auto it = oi->doc_keys.find(doc);
  if (it == oi->doc_keys.end()) {
    return Status::Corruption("live document " + std::to_string(doc) +
                              " has no Docid-index entry");
  }
  PRIX_RETURN_NOT_OK(index->docid_index().Delete(it->second));
  index->Tombstone(doc);
  oi->doc_keys.erase(it);
  return Status::OK();
}

/// Publishes the staged transaction: serialize the index catalog into a new
/// blob chain, then commit (new catalog entry, superseded pages) as one new
/// generation. The old catalog blob's pages retire with everything the COW
/// protocol freed.
Status Publish(Database* db, const std::string& name, OpenIndex* oi,
               CowContext* cow) {
  std::vector<char> blob;
  oi->index->SerializeCatalog(&blob);
  std::vector<PageId> new_pages;
  PRIX_ASSIGN_OR_RETURN(const PageId head,
                        WriteBlob(db->pool(), blob, &new_pages));
  for (const PageId p : new_pages) cow->MarkFresh(p);

  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = oi->index->extended() ? Database::IndexKind::kPrixExtended
                                     : Database::IndexKind::kPrixRegular;
  entry.root = head;

  std::vector<PageId> freed = cow->freed;
  freed.insert(freed.end(), oi->catalog_pages.begin(),
               oi->catalog_pages.end());
  PRIX_RETURN_NOT_OK(db->CommitBatch({entry}, freed));
  oi->catalog_pages = std::move(new_pages);
  return Status::OK();
}

/// Abort path: evict every page this transaction allocated WITHOUT writing
/// it back (committed pages were never touched in place, so the committed
/// generation is intact by construction) and discard the writer cache — its
/// in-memory trees and mirror now describe the aborted state. Pages popped
/// from the free list by the aborted transaction leak (they are unreachable
/// and unlisted); a crash has the same effect, and `prix verify` treats
/// leaked pages as benign.
void AbortIngest(Database* db, std::shared_ptr<void>* slot, CowContext* cow) {
  for (const PageId p : cow->fresh) {
    const Status st = db->pool()->DropPage(p);
    (void)st;  // best-effort: an undropped stale frame is only wasted cache
  }
  slot->reset();
}

void BumpIngestCounter(const char* name) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) reg.counter(name).Add(1);
}

}  // namespace

Result<uint32_t> Database::InsertDocument(const std::string& index_name,
                                          const Document& doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (doc.num_nodes() == 0) {
    return Status::InvalidArgument("cannot insert an empty document");
  }
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  CowContext cow;
  oi->index->SetCow(&cow);
  auto run = [&]() -> Result<uint32_t> {
    PRIX_ASSIGN_OR_RETURN(const DocId d, StageInsert(oi, doc));
    PRIX_RETURN_NOT_OK(Publish(this, index_name, oi, &cow));
    return d;
  };
  Result<uint32_t> result = run();
  oi->index->SetCow(nullptr);
  if (!result.ok()) {
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  std::static_pointer_cast<IngestState>(ingest_state_)->generation =
      catalog_generation();
  BumpIngestCounter("prix.ingest.docs_inserted");
  return result;
}

Result<uint32_t> Database::UpdateDocument(const std::string& index_name,
                                          uint32_t doc,
                                          const Document& new_doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (new_doc.num_nodes() == 0) {
    return Status::InvalidArgument("cannot update to an empty document");
  }
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  if (doc >= oi->index->num_docs() || oi->index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  CowContext cow;
  oi->index->SetCow(&cow);
  auto run = [&]() -> Result<uint32_t> {
    PRIX_RETURN_NOT_OK(StageDelete(oi, doc));
    PRIX_ASSIGN_OR_RETURN(const DocId d, StageInsert(oi, new_doc));
    PRIX_RETURN_NOT_OK(Publish(this, index_name, oi, &cow));
    return d;
  };
  Result<uint32_t> result = run();
  oi->index->SetCow(nullptr);
  if (!result.ok()) {
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  std::static_pointer_cast<IngestState>(ingest_state_)->generation =
      catalog_generation();
  BumpIngestCounter("prix.ingest.docs_updated");
  return result;
}

Status Database::DeleteDocument(const std::string& index_name, uint32_t doc) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  PRIX_ASSIGN_OR_RETURN(OpenIndex * oi,
                        AcquireIngest(this, &ingest_state_, index_name));
  if (doc >= oi->index->num_docs() || oi->index->IsDeleted(doc)) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not live");
  }
  CowContext cow;
  oi->index->SetCow(&cow);
  auto run = [&]() -> Status {
    PRIX_RETURN_NOT_OK(StageDelete(oi, doc));
    return Publish(this, index_name, oi, &cow);
  };
  const Status result = run();
  oi->index->SetCow(nullptr);
  if (!result.ok()) {
    AbortIngest(this, &ingest_state_, &cow);
    return result;
  }
  std::static_pointer_cast<IngestState>(ingest_state_)->generation =
      catalog_generation();
  BumpIngestCounter("prix.ingest.docs_deleted");
  return Status::OK();
}

}  // namespace prix
