#include "datagen/treebank_gen.h"

#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "datagen/name_pools.h"

namespace prix::datagen {

namespace {

/// Recursive skinny parse-tree builder. Background sentences use only the
/// tags {S, NP, VP, PP, ADJP, DT, JJ, NN, VB, IN, CD}; the planted tags
/// SYM, RBR_OR_JJR and NNS_OR_NN appear exclusively at planted sites, which
/// pins the Table 3 match counts exactly.
class TreebankBuilder {
 public:
  TreebankBuilder(TagDictionary* dict, Random* rng, uint32_t max_depth)
      : dict_(dict), rng_(rng), max_depth_(max_depth) {}

  Document Sentence(DocId id) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("S"));
    uint32_t target = 5 + static_cast<uint32_t>(rng_->Uniform(max_depth_ - 5));
    ExpandS(doc, root, 1, target);
    return doc;
  }

  /// Attaches root S -> NP -> SYM with exactly one S ancestor of the NP.
  void PlantQ7(Document& doc) {
    NodeId np = doc.AddChild(doc.root(), dict_->Intern("NP"));
    NodeId sym = doc.AddChild(np, dict_->Intern("SYM"));
    doc.AddChild(sym, dict_->Intern(EncryptedValue(*rng_)),
                 NodeKind::kValue);
  }

  /// Attaches NP(RBR_OR_JJR, PP(IN, NP(NN))): one Q8 embedding.
  void PlantQ8(Document& doc) {
    NodeId np = doc.AddChild(doc.root(), dict_->Intern("NP"));
    Preterminal(doc, np, "RBR_OR_JJR");
    NodeId pp = doc.AddChild(np, dict_->Intern("PP"));
    Preterminal(doc, pp, "IN");
    NodeId inner = doc.AddChild(pp, dict_->Intern("NP"));
    Preterminal(doc, inner, "NN");
  }

  /// Q8 decoy: NP is an ancestor but not the parent of both RBR_OR_JJR and
  /// PP (NP(ADJP(RBR_OR_JJR), VP(PP(IN)))).
  void PlantQ8Decoy(Document& doc) {
    NodeId np = doc.AddChild(doc.root(), dict_->Intern("NP"));
    NodeId adjp = doc.AddChild(np, dict_->Intern("ADJP"));
    Preterminal(doc, adjp, "RBR_OR_JJR");
    NodeId vp = doc.AddChild(np, dict_->Intern("VP"));
    NodeId pp = doc.AddChild(vp, dict_->Intern("PP"));
    Preterminal(doc, pp, "IN");
  }

  /// Attaches NP -> PP -> NP(NNS_OR_NN, NN): one Q9 embedding.
  void PlantQ9(Document& doc) {
    NodeId outer = doc.AddChild(doc.root(), dict_->Intern("NP"));
    NodeId pp = doc.AddChild(outer, dict_->Intern("PP"));
    NodeId inner = doc.AddChild(pp, dict_->Intern("NP"));
    Preterminal(doc, inner, "NNS_OR_NN");
    Preterminal(doc, inner, "NN");
  }

 private:
  void Preterminal(Document& doc, NodeId parent, const std::string& tag) {
    NodeId t = doc.AddChild(parent, dict_->Intern(tag));
    doc.AddChild(t, dict_->Intern(EncryptedValue(*rng_)), NodeKind::kValue);
  }

  void ExpandS(Document& doc, NodeId node, uint32_t depth, uint32_t target) {
    if (depth + 1 >= target) {
      Preterminal(doc, node, "NN");
      return;
    }
    // Skinny recursion: usually one constituent, sometimes two.
    NodeId np = doc.AddChild(node, dict_->Intern("NP"));
    ExpandNP(doc, np, depth + 1, target);
    if (rng_->Bernoulli(0.8)) {
      NodeId vp = doc.AddChild(node, dict_->Intern("VP"));
      ExpandVP(doc, vp, depth + 1, target);
    }
  }

  void ExpandNP(Document& doc, NodeId node, uint32_t depth, uint32_t target) {
    if (depth + 1 >= target || rng_->Bernoulli(0.35)) {
      if (rng_->Bernoulli(0.4)) Preterminal(doc, node, "DT");
      if (rng_->Bernoulli(0.3)) Preterminal(doc, node, "JJ");
      Preterminal(doc, node, "NN");
      return;
    }
    if (rng_->Bernoulli(0.5)) {
      NodeId inner = doc.AddChild(node, dict_->Intern("NP"));
      ExpandNP(doc, inner, depth + 1, target);
      NodeId pp = doc.AddChild(node, dict_->Intern("PP"));
      ExpandPP(doc, pp, depth + 1, target);
    } else {
      NodeId pp = doc.AddChild(node, dict_->Intern("PP"));
      ExpandPP(doc, pp, depth + 1, target);
    }
  }

  void ExpandVP(Document& doc, NodeId node, uint32_t depth, uint32_t target) {
    Preterminal(doc, node, "VB");
    if (depth + 1 >= target) return;
    uint64_t kind = rng_->Uniform(100);
    if (kind < 45) {
      NodeId s = doc.AddChild(node, dict_->Intern("S"));
      ExpandS(doc, s, depth + 1, target);
    } else if (kind < 80) {
      NodeId np = doc.AddChild(node, dict_->Intern("NP"));
      ExpandNP(doc, np, depth + 1, target);
    } else {
      NodeId pp = doc.AddChild(node, dict_->Intern("PP"));
      ExpandPP(doc, pp, depth + 1, target);
    }
  }

  void ExpandPP(Document& doc, NodeId node, uint32_t depth, uint32_t target) {
    Preterminal(doc, node, "IN");
    if (depth + 1 >= target) {
      Preterminal(doc, node, "CD");
      return;
    }
    NodeId np = doc.AddChild(node, dict_->Intern("NP"));
    ExpandNP(doc, np, depth + 1, target);
  }

  TagDictionary* dict_;
  Random* rng_;
  uint32_t max_depth_;
};

std::vector<DocId> PickDistinct(Random& rng, size_t count, size_t n,
                                std::set<DocId>* used) {
  std::vector<DocId> out;
  while (out.size() < count) {
    DocId id = static_cast<DocId>(rng.Uniform(n));
    if (used->insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

DocumentCollection GenerateTreebank(const TreebankConfig& config) {
  DocumentCollection coll;
  Random rng(config.seed);
  TreebankBuilder builder(&coll.dictionary, &rng, config.max_depth);

  const size_t n = config.num_sentences;
  PRIX_CHECK(n >= config.q7_matches + config.q8_matches + config.q9_matches +
                      config.q8_decoys + 10);
  std::set<DocId> used;
  auto pick_set = [&](size_t count) {
    std::vector<DocId> v = PickDistinct(rng, count, n, &used);
    return std::set<DocId>(v.begin(), v.end());
  };
  std::set<DocId> q7 = pick_set(config.q7_matches);
  std::set<DocId> q8 = pick_set(config.q8_matches);
  std::set<DocId> q9 = pick_set(config.q9_matches);
  std::set<DocId> q8_decoys = pick_set(config.q8_decoys);

  coll.documents.reserve(n);
  for (DocId id = 0; id < n; ++id) {
    Document doc = builder.Sentence(id);
    if (q7.count(id) > 0) builder.PlantQ7(doc);
    if (q8.count(id) > 0) builder.PlantQ8(doc);
    if (q9.count(id) > 0) builder.PlantQ9(doc);
    if (q8_decoys.count(id) > 0) builder.PlantQ8Decoy(doc);
    coll.documents.push_back(std::move(doc));
  }
  return coll;
}

}  // namespace prix::datagen
