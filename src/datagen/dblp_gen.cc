#include "datagen/dblp_gen.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "datagen/name_pools.h"

namespace prix::datagen {

namespace {

/// Builder bound to one collection dictionary.
class DblpBuilder {
 public:
  DblpBuilder(TagDictionary* dict, Random* rng, const DblpConfig& config)
      : dict_(dict), rng_(rng), config_(config),
        author_zipf_(config.author_pool, config.author_zipf) {}

  void AddValueChild(Document& doc, NodeId parent, const std::string& tag,
                     const std::string& value) {
    NodeId e = doc.AddChild(parent, dict_->Intern(tag));
    doc.AddChild(e, dict_->Intern(value), NodeKind::kValue);
  }

  void AddKeyAttribute(Document& doc, NodeId root, const char* kind,
                       DocId id) {
    NodeId attr = doc.AddChild(root, dict_->Intern("@key"));
    doc.AddChild(attr,
                 dict_->Intern(std::string(kind) + "/" + std::to_string(id)),
                 NodeKind::kValue);
  }

  std::string RandomAuthor() { return AuthorName(author_zipf_.Sample(*rng_)); }

  Document Article(DocId id) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("article"));
    size_t num_authors = 1 + rng_->Uniform(3);
    for (size_t i = 0; i < num_authors; ++i) {
      AddValueChild(doc, root, "author", RandomAuthor());
    }
    // Pooled values (journal, year) precede the unique title and key so
    // records share trie-path prefixes — the structural similarity the
    // paper's DBLP dataset exhibits.
    AddValueChild(doc, root, "journal", Venue(rng_->Uniform(200)));
    AddValueChild(doc, root, "year", Year(*rng_));
    AddValueChild(doc, root, "title", Title(*rng_, 4 + rng_->Uniform(4)));
    if (rng_->Bernoulli(0.7)) {
      AddValueChild(doc, root, "pages",
                    std::to_string(rng_->Uniform(400)) + "-" +
                        std::to_string(400 + rng_->Uniform(40)));
    }
    if (rng_->Bernoulli(0.4)) {
      AddValueChild(doc, root, "volume", std::to_string(1 + rng_->Uniform(40)));
    }
    AddKeyAttribute(doc, root, "journals", id);
    return doc;
  }

  /// `planted_q1`: author "Jim Gray" + year "1990". `gray_decoy`: author
  /// "Jim Gray" with a different year.
  Document Inproceedings(DocId id, bool planted_q1, bool gray_decoy) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("inproceedings"));
    if (planted_q1 || gray_decoy) {
      AddValueChild(doc, root, "author", "Jim Gray");
      if (rng_->Bernoulli(0.5)) {
        AddValueChild(doc, root, "author", RandomAuthor());
      }
    } else {
      size_t num_authors = 1 + rng_->Uniform(3);
      for (size_t i = 0; i < num_authors; ++i) {
        AddValueChild(doc, root, "author", RandomAuthor());
      }
    }
    AddValueChild(doc, root, "booktitle", Venue(rng_->Uniform(120)));
    std::string year = Year(*rng_);
    if (planted_q1) {
      year = "1990";
    } else if (gray_decoy && year == "1990") {
      year = "1991";
    }
    AddValueChild(doc, root, "year", year);
    AddValueChild(doc, root, "title", Title(*rng_, 4 + rng_->Uniform(4)));
    if (rng_->Bernoulli(0.5)) {
      AddValueChild(doc, root, "pages",
                    std::to_string(rng_->Uniform(400)) + "-" +
                        std::to_string(400 + rng_->Uniform(40)));
    }
    AddKeyAttribute(doc, root, "conf", id);
    return doc;
  }

  /// `planted_q2`: editor child before the url (matches //www[./editor]/url).
  Document Www(DocId id, bool planted_q2) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("www"));
    if (planted_q2) {
      AddValueChild(doc, root, "editor", RandomAuthor());
    }
    AddValueChild(doc, root, "url",
                  "db/web/" + std::to_string(id) + ".html");
    AddValueChild(doc, root, "title", Title(*rng_, 2 + rng_->Uniform(3)));
    AddKeyAttribute(doc, root, "www", id);
    return doc;
  }

  Document Q3Article(DocId id) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("article"));
    AddValueChild(doc, root, "author", RandomAuthor());
    AddValueChild(doc, root, "journal", Venue(rng_->Uniform(200)));
    AddValueChild(doc, root, "year", Year(*rng_));
    AddValueChild(doc, root, "title", "Semantic Analysis Patterns");
    AddKeyAttribute(doc, root, "journals", id);
    return doc;
  }

 private:
  TagDictionary* dict_;
  Random* rng_;
  DblpConfig config_;
  ZipfSampler author_zipf_;
};

/// Picks `count` distinct ids in [0, n) not already in `used`.
std::vector<DocId> PickDistinct(Random& rng, size_t count, size_t n,
                                std::set<DocId>* used) {
  std::vector<DocId> out;
  while (out.size() < count) {
    DocId id = static_cast<DocId>(rng.Uniform(n));
    if (used->insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

DocumentCollection GenerateDblp(const DblpConfig& config) {
  DocumentCollection coll;
  Random rng(config.seed);
  DblpBuilder builder(&coll.dictionary, &rng, config);

  const size_t n = config.num_records;
  PRIX_CHECK(n >= config.q1_matches + config.q2_matches + config.q3_matches +
                      config.jim_gray_decoys + 10);
  std::set<DocId> used;
  auto pick_set = [&](size_t count) {
    std::vector<DocId> v = PickDistinct(rng, count, n, &used);
    return std::set<DocId>(v.begin(), v.end());
  };
  std::set<DocId> q1 = pick_set(config.q1_matches);
  std::set<DocId> q2 = pick_set(config.q2_matches);
  std::set<DocId> q3 = pick_set(config.q3_matches);
  std::set<DocId> gray = pick_set(config.jim_gray_decoys);

  coll.documents.reserve(n);
  for (DocId id = 0; id < n; ++id) {
    if (q1.count(id) > 0) {
      coll.documents.push_back(builder.Inproceedings(id, true, false));
    } else if (q2.count(id) > 0) {
      coll.documents.push_back(builder.Www(id, true));
    } else if (q3.count(id) > 0) {
      coll.documents.push_back(builder.Q3Article(id));
    } else if (gray.count(id) > 0) {
      coll.documents.push_back(builder.Inproceedings(id, false, true));
    } else {
      uint64_t kind = rng.Uniform(100);
      if (kind < 55) {
        coll.documents.push_back(builder.Article(id));
      } else if (kind < 90) {
        coll.documents.push_back(builder.Inproceedings(id, false, false));
      } else {
        coll.documents.push_back(builder.Www(id, false));
      }
    }
  }
  return coll;
}

}  // namespace prix::datagen
