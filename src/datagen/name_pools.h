#ifndef PRIX_DATAGEN_NAME_POOLS_H_
#define PRIX_DATAGEN_NAME_POOLS_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace prix::datagen {

/// Deterministic synthetic value pools for the generated datasets. Index i
/// always yields the same string, so planted query answers are stable.

/// "F. Lastname<i>"-style author name.
std::string AuthorName(size_t i);

/// Paper/book title of `words` pseudo-words.
std::string Title(Random& rng, size_t words);

/// Conference/journal venue name.
std::string Venue(size_t i);

/// Protein keyword.
std::string Keyword(size_t i);

/// Organism name.
std::string Organism(size_t i);

/// Opaque token standing in for TREEBANK's encrypted values.
std::string EncryptedValue(Random& rng);

/// Year as a string in [1970, 2003].
std::string Year(Random& rng);

}  // namespace prix::datagen

#endif  // PRIX_DATAGEN_NAME_POOLS_H_
