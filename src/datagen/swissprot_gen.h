#ifndef PRIX_DATAGEN_SWISSPROT_GEN_H_
#define PRIX_DATAGEN_SWISSPROT_GEN_H_

#include <cstddef>
#include <cstdint>

#include "xml/document.h"

namespace prix::datagen {

/// Synthetic analog of the SWISSPROT dataset: bushy, shallow protein
/// entries. Planted answers reproduce the Table 3 counts for Q4-Q6.
struct SwissprotConfig {
  size_t num_entries = 9000;
  uint64_t seed = 1337;
  /// Q4 = //Entry[./Keyword="Rhizomelic"].
  size_t q4_matches = 3;
  /// Q5 = //Entry/Ref[./Author="Mueller P"][./Author="Keller M"].
  size_t q5_matches = 5;
  /// Q6 = //Entry[./Org="Piroplasmida"][.//Author]//from.
  size_t q6_matches = 158;
  /// Piroplasmida entries lacking Author and/or from (the partial-match
  /// decoys that force TwigStackXB to drill down, Sec. 6.4.2).
  size_t piro_decoys = 450;
  /// Refs with only one of the two Q5 authors.
  size_t q5_decoys = 60;
};

DocumentCollection GenerateSwissprot(const SwissprotConfig& config = {});

}  // namespace prix::datagen

#endif  // PRIX_DATAGEN_SWISSPROT_GEN_H_
