#include "datagen/swissprot_gen.h"

#include <set>

#include "common/macros.h"
#include "common/random.h"
#include "datagen/name_pools.h"

namespace prix::datagen {

namespace {

class SwissprotBuilder {
 public:
  SwissprotBuilder(TagDictionary* dict, Random* rng)
      : dict_(dict), rng_(rng) {}

  void AddValueChild(Document& doc, NodeId parent, const std::string& tag,
                     const std::string& value) {
    NodeId e = doc.AddChild(parent, dict_->Intern(tag));
    doc.AddChild(e, dict_->Intern(value), NodeKind::kValue);
  }

  NodeId AddRef(Document& doc, NodeId root,
                const std::vector<std::string>& authors) {
    NodeId ref = doc.AddChild(root, dict_->Intern("Ref"));
    for (const std::string& author : authors) {
      AddValueChild(doc, ref, "Author", author);
    }
    AddValueChild(doc, ref, "Title", Title(*rng_, 3 + rng_->Uniform(4)));
    return ref;
  }

  void AddFeatures(Document& doc, NodeId root, size_t num_fts) {
    NodeId features = doc.AddChild(root, dict_->Intern("Features"));
    for (size_t i = 0; i < num_fts; ++i) {
      NodeId ft = doc.AddChild(features, dict_->Intern("FT"));
      AddValueChild(doc, ft, "from", std::to_string(1 + rng_->Uniform(900)));
      AddValueChild(doc, ft, "to", std::to_string(901 + rng_->Uniform(900)));
      AddValueChild(doc, ft, "descr", "DOMAIN" + std::to_string(rng_->Uniform(50)));
    }
  }

  /// Fully-shaped base entry (bushy and shallow). `org` overrides the
  /// organism; keywords drawn from the pool; `with_refs`/`with_features`
  /// control the Q6-relevant substructure.
  Document Entry(DocId id, const std::string& org, bool with_refs,
                 bool with_features, size_t keyword_count,
                 const std::vector<std::vector<std::string>>& planted_refs) {
    // Pooled, shared values lead the record (they drive trie-path sharing,
    // the paper's motivation #3); unique identifiers trail.
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("Entry"));
    AddValueChild(doc, root, "Org", org);
    for (size_t i = 0; i < keyword_count; ++i) {
      AddValueChild(doc, root, "Keyword", Keyword(rng_->Uniform(300)));
    }
    for (const auto& authors : planted_refs) {
      AddRef(doc, root, authors);
    }
    if (with_refs) {
      size_t num_refs = 1 + rng_->Uniform(3);
      for (size_t i = 0; i < num_refs; ++i) {
        std::vector<std::string> authors;
        size_t num_authors = 1 + rng_->Uniform(3);
        for (size_t j = 0; j < num_authors; ++j) {
          authors.push_back(AuthorName(rng_->Uniform(5000)));
        }
        AddRef(doc, root, authors);
      }
    }
    if (with_features) AddFeatures(doc, root, 1 + rng_->Uniform(3));
    AddValueChild(doc, root, "Name", "PROT" + std::to_string(id));
    NodeId attr = doc.AddChild(root, dict_->Intern("@id"));
    doc.AddChild(attr, dict_->Intern("P" + std::to_string(10000 + id)),
                 NodeKind::kValue);
    return doc;
  }

  /// Q6 planted entry: Org="Piroplasmida", exactly ONE Author and ONE from
  /// so the entry contributes exactly one (Entry, Org, Author, from) tuple.
  Document PiroMatch(DocId id) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("Entry"));
    AddValueChild(doc, root, "Org", "Piroplasmida");
    AddValueChild(doc, root, "Keyword", Keyword(rng_->Uniform(300)));
    NodeId ref = doc.AddChild(root, dict_->Intern("Ref"));
    AddValueChild(doc, ref, "Author", AuthorName(rng_->Uniform(5000)));
    NodeId features = doc.AddChild(root, dict_->Intern("Features"));
    NodeId ft = doc.AddChild(features, dict_->Intern("FT"));
    AddValueChild(doc, ft, "from", std::to_string(1 + rng_->Uniform(900)));
    AddValueChild(doc, root, "Name", "PROT" + std::to_string(id));
    return doc;
  }

  /// Q6 decoy: Piroplasmida entry missing the Author and/or from tags.
  Document PiroDecoy(DocId id) {
    Document doc(id);
    NodeId root = doc.AddRoot(dict_->Intern("Entry"));
    AddValueChild(doc, root, "Org", "Piroplasmida");
    for (size_t i = 0; i < 1 + rng_->Uniform(3); ++i) {
      AddValueChild(doc, root, "Keyword", Keyword(rng_->Uniform(300)));
    }
    if (rng_->Bernoulli(0.5)) {
      // Author without from.
      NodeId ref = doc.AddChild(root, dict_->Intern("Ref"));
      AddValueChild(doc, ref, "Author", AuthorName(rng_->Uniform(5000)));
    } else if (rng_->Bernoulli(0.5)) {
      // from without Author.
      AddFeatures(doc, root, 1);
    }
    AddValueChild(doc, root, "Name", "PROT" + std::to_string(id));
    return doc;
  }

  Random& rng() { return *rng_; }

 private:
  TagDictionary* dict_;
  Random* rng_;
};

std::vector<DocId> PickDistinct(Random& rng, size_t count, size_t n,
                                std::set<DocId>* used) {
  std::vector<DocId> out;
  while (out.size() < count) {
    DocId id = static_cast<DocId>(rng.Uniform(n));
    if (used->insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

DocumentCollection GenerateSwissprot(const SwissprotConfig& config) {
  DocumentCollection coll;
  Random rng(config.seed);
  SwissprotBuilder builder(&coll.dictionary, &rng);

  const size_t n = config.num_entries;
  PRIX_CHECK(n >= config.q4_matches + config.q5_matches + config.q6_matches +
                      config.piro_decoys + config.q5_decoys + 10);
  std::set<DocId> used;
  auto pick_set = [&](size_t count) {
    std::vector<DocId> v = PickDistinct(rng, count, n, &used);
    return std::set<DocId>(v.begin(), v.end());
  };
  std::set<DocId> q4 = pick_set(config.q4_matches);
  std::set<DocId> q5 = pick_set(config.q5_matches);
  std::set<DocId> q6 = pick_set(config.q6_matches);
  std::set<DocId> piro_decoys = pick_set(config.piro_decoys);
  std::set<DocId> q5_decoys = pick_set(config.q5_decoys);

  coll.documents.reserve(n);
  for (DocId id = 0; id < n; ++id) {
    if (q6.count(id) > 0) {
      coll.documents.push_back(builder.PiroMatch(id));
    } else if (piro_decoys.count(id) > 0) {
      coll.documents.push_back(builder.PiroDecoy(id));
    } else if (q4.count(id) > 0) {
      Document doc = builder.Entry(id, Organism(rng.Uniform(200)),
                                   /*with_refs=*/true, /*with_features=*/true,
                                   0, {});
      // Insert the planted keyword via a dedicated child. Document order of
      // the extra keyword does not matter for the single-branch Q4.
      NodeId kw = doc.AddChild(doc.root(),
                               coll.dictionary.Intern("Keyword"));
      doc.AddChild(kw, coll.dictionary.Intern("Rhizomelic"),
                   NodeKind::kValue);
      coll.documents.push_back(std::move(doc));
    } else if (q5.count(id) > 0) {
      coll.documents.push_back(builder.Entry(
          id, Organism(rng.Uniform(200)), /*with_refs=*/false,
          /*with_features=*/true, 1 + rng.Uniform(3),
          {{"Mueller P", "Keller M"}}));
    } else if (q5_decoys.count(id) > 0) {
      bool mueller = rng.Bernoulli(0.5);
      coll.documents.push_back(builder.Entry(
          id, Organism(rng.Uniform(200)), /*with_refs=*/false,
          /*with_features=*/true, 1 + rng.Uniform(3),
          {{mueller ? "Mueller P" : "Keller M",
            AuthorName(rng.Uniform(5000))}}));
    } else {
      coll.documents.push_back(builder.Entry(
          id, Organism(rng.Uniform(200)), /*with_refs=*/true,
          /*with_features=*/true, rng.Uniform(5), {}));
    }
  }
  return coll;
}

}  // namespace prix::datagen
