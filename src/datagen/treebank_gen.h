#ifndef PRIX_DATAGEN_TREEBANK_GEN_H_
#define PRIX_DATAGEN_TREEBANK_GEN_H_

#include <cstddef>
#include <cstdint>

#include "xml/document.h"

namespace prix::datagen {

/// Synthetic analog of the TREEBANK dataset: skinny parse trees with deep
/// recursion of grammar tags and encrypted leaf values. Planted answers
/// reproduce the Table 3 counts for Q7-Q9.
struct TreebankConfig {
  size_t num_sentences = 12000;
  uint64_t seed = 2718;
  uint32_t max_depth = 36;
  /// Q7 = //S//NP/SYM.
  size_t q7_matches = 9;
  /// Q8 = //NP[./RBR_OR_JJR]/PP.
  size_t q8_matches = 1;
  /// Q9 = //NP/PP/NP[./NNS_OR_NN][./NN].
  size_t q9_matches = 6;
  /// Scattered decoys where NP is an ancestor but not the parent of both
  /// RBR_OR_JJR and PP (TwigStack's parent-child sub-optimality,
  /// Sec. 6.4.2).
  size_t q8_decoys = 400;
};

DocumentCollection GenerateTreebank(const TreebankConfig& config = {});

}  // namespace prix::datagen

#endif  // PRIX_DATAGEN_TREEBANK_GEN_H_
