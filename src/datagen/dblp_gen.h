#ifndef PRIX_DATAGEN_DBLP_GEN_H_
#define PRIX_DATAGEN_DBLP_GEN_H_

#include <cstddef>
#include <cstdint>

#include "xml/document.h"

namespace prix::datagen {

/// Synthetic analog of the UW repository DBLP dataset (see DESIGN.md
/// substitution table): many small, shallow bibliography records with high
/// structural similarity. Documents carry planted answers for the paper's
/// queries Q1-Q3 with exactly the Table 3 match counts.
struct DblpConfig {
  size_t num_records = 40000;
  uint64_t seed = 42;
  size_t author_pool = 8000;
  double author_zipf = 0.9;
  /// Planted matches: Q1 = //inproceedings[./author="Jim Gray"]
  /// [./year="1990"], Q2 = //www[./editor]/url, Q3 = //title[text()=
  /// "Semantic Analysis Patterns"].
  size_t q1_matches = 6;
  size_t q2_matches = 21;
  size_t q3_matches = 1;
  /// Additional "Jim Gray" records with non-1990 years (author selectivity).
  size_t jim_gray_decoys = 60;
};

DocumentCollection GenerateDblp(const DblpConfig& config = {});

}  // namespace prix::datagen

#endif  // PRIX_DATAGEN_DBLP_GEN_H_
