#include "datagen/name_pools.h"

namespace prix::datagen {

namespace {

const char* const kFirstInitials = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

const char* const kSurnames[] = {
    "Smith",  "Chen",   "Garcia", "Kumar",  "Tanaka", "Muller",
    "Rossi",  "Novak",  "Silva",  "Kim",    "Ivanov", "Dubois",
    "Larsen", "Kowalski", "Okafor", "Haddad", "Nguyen", "OBrien",
    "Schmidt", "Moreau",
};

const char* const kTitleWords[] = {
    "efficient", "scalable",  "adaptive", "distributed", "incremental",
    "semantic",  "temporal",  "spatial",  "relational",  "parallel",
    "indexing",  "querying",  "mining",   "processing",  "optimization",
    "databases", "streams",   "patterns", "structures",  "algorithms",
};

const char* const kVenueWords[] = {
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "PODS", "WWW", "KDD",
};

const char* const kKeywordWords[] = {
    "Hydrolase",  "Transferase", "Kinase",     "Receptor",  "Membrane",
    "Transport",  "Signal",      "Zinc",       "Repeat",    "Glycoprotein",
    "Oxidoreductase", "Ligase",  "Isomerase",  "Chaperone", "Ribosomal",
};

const char* const kOrganisms[] = {
    "Escherichia",  "Saccharomyces", "Drosophila", "Arabidopsis",
    "Homo",         "Mus",           "Rattus",     "Bacillus",
    "Plasmodium",   "Caenorhabditis", "Danio",     "Xenopus",
};

}  // namespace

std::string AuthorName(size_t i) {
  std::string out(1, kFirstInitials[i % 26]);
  out += ". ";
  out += kSurnames[(i / 26) % (sizeof(kSurnames) / sizeof(kSurnames[0]))];
  out += std::to_string(i / (26 * (sizeof(kSurnames) / sizeof(kSurnames[0]))));
  return out;
}

std::string Title(Random& rng, size_t words) {
  std::string out;
  constexpr size_t kPool = sizeof(kTitleWords) / sizeof(kTitleWords[0]);
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kTitleWords[rng.Uniform(kPool)];
  }
  out += ' ';
  out += std::to_string(rng.Uniform(100000));
  return out;
}

std::string Venue(size_t i) {
  constexpr size_t kPool = sizeof(kVenueWords) / sizeof(kVenueWords[0]);
  return std::string(kVenueWords[i % kPool]) + " " +
         std::to_string(1970 + (i / kPool) % 34);
}

std::string Keyword(size_t i) {
  constexpr size_t kPool = sizeof(kKeywordWords) / sizeof(kKeywordWords[0]);
  return std::string(kKeywordWords[i % kPool]) + std::to_string(i / kPool);
}

std::string Organism(size_t i) {
  constexpr size_t kPool = sizeof(kOrganisms) / sizeof(kOrganisms[0]);
  return std::string(kOrganisms[i % kPool]) + " sp" +
         std::to_string(i / kPool);
}

std::string EncryptedValue(Random& rng) {
  static const char* kHex = "0123456789abcdef";
  std::string out = "enc:";
  for (int i = 0; i < 12; ++i) out += kHex[rng.Uniform(16)];
  return out;
}

std::string Year(Random& rng) {
  return std::to_string(1970 + rng.Uniform(34));
}

}  // namespace prix::datagen
