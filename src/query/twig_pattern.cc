#include "query/twig_pattern.h"

namespace prix {

uint32_t TwigPattern::AddRoot(LabelId label, Axis axis, bool is_star) {
  PRIX_CHECK(nodes_.empty());
  Node n;
  n.label = label;
  n.is_star = is_star;
  n.axis = axis;
  nodes_.push_back(std::move(n));
  return 0;
}

uint32_t TwigPattern::AddChild(uint32_t parent, LabelId label, Axis axis,
                               bool is_star, bool is_value) {
  PRIX_CHECK(parent < nodes_.size());
  PRIX_CHECK(!(is_star && is_value));
  Node n;
  n.label = label;
  n.is_star = is_star;
  n.is_value = is_value;
  n.axis = axis;
  n.parent = parent;
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

bool TwigPattern::HasWildcard() const {
  if (!nodes_.empty() && nodes_[0].axis == Axis::kChild) return true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_star) return true;
    if (i > 0 && nodes_[i].axis == Axis::kDescendant) return true;
  }
  return false;
}

bool TwigPattern::HasValue() const {
  for (const Node& n : nodes_) {
    if (n.is_value) return true;
  }
  return false;
}

size_t TwigPattern::CountLeaves() const {
  size_t count = 0;
  for (const Node& n : nodes_) count += n.children.empty();
  return count;
}

EffectiveTwig EffectiveTwig::Build(const TwigPattern& pattern) {
  EffectiveTwig out;
  PRIX_CHECK(!pattern.empty());

  // Walk the pattern; '*' nodes with children are folded into their
  // children's edges, '*' leaves become label-wildcard effective nodes.
  struct Frame {
    uint32_t pattern_node;
    uint32_t eff_parent;  // kNoParent for (potential) root
    EdgeSpec pending;     // accumulated edge from eff_parent
  };

  auto axis_spec = [](Axis axis) {
    return axis == Axis::kChild ? EdgeSpec{1, true} : EdgeSpec{1, false};
  };
  auto combine = [](EdgeSpec a, EdgeSpec b) {
    return EdgeSpec{a.min_edges + b.min_edges, a.exact && b.exact};
  };

  const TwigPattern::Node& proot = pattern.node(pattern.root());
  // Anchor below the document root: '/a' pins the root, '//a' floats.
  EdgeSpec anchor =
      proot.axis == Axis::kChild ? EdgeSpec{0, true} : EdgeSpec{0, false};

  std::vector<Frame> stack;
  if (proot.is_star && !proot.children.empty()) {
    // Fold a non-leaf star root into the anchor of its (sole) child.
    PRIX_CHECK(proot.children.size() == 1 &&
               "a branching '*' root cannot be folded; unsupported");
    uint32_t child = proot.children[0];
    EdgeSpec hop = axis_spec(pattern.node(child).axis);
    out.root_anchor_ =
        EdgeSpec{anchor.min_edges + hop.min_edges, anchor.exact && hop.exact};
    stack.push_back(Frame{child, TwigPattern::kNoParent, EdgeSpec{0, true}});
  } else {
    out.root_anchor_ = anchor;
    stack.push_back(
        Frame{pattern.root(), TwigPattern::kNoParent, EdgeSpec{0, true}});
  }

  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TwigPattern::Node& pn = pattern.node(f.pattern_node);

    if (pn.is_star && !pn.children.empty()) {
      if (f.eff_parent == TwigPattern::kNoParent) {
        // Chain of stars above the first named node: extend the anchor.
        PRIX_CHECK(pn.children.size() == 1 &&
                   "a branching '*' root cannot be folded; unsupported");
        uint32_t child = pn.children[0];
        EdgeSpec hop = axis_spec(pattern.node(child).axis);
        out.root_anchor_ = EdgeSpec{out.root_anchor_.min_edges + hop.min_edges,
                                    out.root_anchor_.exact && hop.exact};
        stack.push_back(
            Frame{child, TwigPattern::kNoParent, EdgeSpec{0, true}});
        continue;
      }
      // Fold: children connect to f.eff_parent through one more hop.
      for (auto it = pn.children.rbegin(); it != pn.children.rend(); ++it) {
        EdgeSpec hop = axis_spec(pattern.node(*it).axis);
        stack.push_back(Frame{*it, f.eff_parent, combine(f.pending, hop)});
      }
      continue;
    }

    Node en;
    en.label = pn.label;
    en.is_value = pn.is_value;
    en.parent = f.eff_parent;
    en.edge = f.pending;
    uint32_t id = static_cast<uint32_t>(out.nodes_.size());
    out.nodes_.push_back(std::move(en));
    out.star_flags_.push_back(pn.is_star);
    if (f.eff_parent != TwigPattern::kNoParent) {
      out.nodes_[f.eff_parent].children.push_back(id);
    }
    for (auto it = pn.children.rbegin(); it != pn.children.rend(); ++it) {
      stack.push_back(Frame{*it, id, axis_spec(pattern.node(*it).axis)});
    }
  }

  // LIFO processing visits siblings in order but records children via
  // push-order; reverse-push above already preserves syntactic order.
  return out;
}

bool EffectiveTwig::NeedsGeneralizedMatching() const {
  if (root_anchor_.exact || root_anchor_.min_edges > 0) return true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (star_flags_[i]) return true;
    if (i > 0 && nodes_[i].edge != EdgeSpec{1, true}) return true;
  }
  return false;
}

bool EffectiveTwig::HasValue() const {
  for (const Node& n : nodes_) {
    if (n.is_value) return true;
  }
  return false;
}

void EffectiveTwig::PermuteChildren(uint32_t id,
                                    const std::vector<uint32_t>& new_order) {
  PRIX_CHECK(id < nodes_.size());
  std::vector<uint32_t>& kids = nodes_[id].children;
  PRIX_CHECK(new_order.size() == kids.size());
  kids = new_order;
}

EffectiveTwig EffectiveTwig::ExtractPath(
    const std::vector<uint32_t>& path) const {
  PRIX_CHECK(!path.empty());
  PRIX_CHECK(path[0] == root());
  EffectiveTwig out;
  out.root_anchor_ = root_anchor_;
  for (size_t i = 0; i < path.size(); ++i) {
    const Node& src = nodes_[path[i]];
    if (i > 0) PRIX_CHECK(src.parent == path[i - 1]);
    Node n;
    n.label = src.label;
    n.is_value = src.is_value;
    n.edge = src.edge;
    n.parent = i == 0 ? TwigPattern::kNoParent
                      : static_cast<uint32_t>(i - 1);
    if (i > 0) out.nodes_[i - 1].children.push_back(static_cast<uint32_t>(i));
    out.nodes_.push_back(std::move(n));
    out.star_flags_.push_back(star_flags_[path[i]]);
  }
  return out;
}

std::vector<uint32_t> EffectiveTwig::ComputePostorder() const {
  std::vector<uint32_t> number(nodes_.size(), 0);
  if (nodes_.empty()) return number;
  uint32_t counter = 0;
  std::vector<std::pair<uint32_t, size_t>> stack = {{root(), 0}};
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    if (idx < nodes_[v].children.size()) {
      stack.emplace_back(nodes_[v].children[idx++], 0);
    } else {
      number[v] = ++counter;
      stack.pop_back();
    }
  }
  return number;
}

std::vector<uint32_t> EffectiveTwig::PostorderInverse() const {
  std::vector<uint32_t> number = ComputePostorder();
  std::vector<uint32_t> inverse(nodes_.size() + 1, TwigPattern::kNoParent);
  for (uint32_t v = 0; v < nodes_.size(); ++v) inverse[number[v]] = v;
  return inverse;
}

namespace {

void AppendNode(const TwigPattern& twig, const TagDictionary& dict,
                uint32_t id, std::string& out) {
  const TwigPattern::Node& n = twig.node(id);
  out += n.axis == Axis::kChild ? "/" : "//";
  if (n.is_star) {
    out += '*';
  } else if (n.is_value) {
    out += "=\"" + dict.Name(n.label) + "\"";
  } else {
    out += dict.Name(n.label);
  }
  for (uint32_t c : n.children) {
    out += '[';
    AppendNode(twig, dict, c, out);
    out += ']';
  }
}

}  // namespace

std::string TwigToString(const TwigPattern& twig, const TagDictionary& dict) {
  std::string out;
  if (twig.empty()) return out;
  AppendNode(twig, dict, twig.root(), out);
  return out;
}

}  // namespace prix
