#include "query/twig_prufer.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/macros.h"

namespace prix {

namespace {

/// Scratch tree over which the query sequence is computed: the effective
/// twig, optionally extended with one dummy child per leaf (EP form).
struct SeqTree {
  struct Node {
    uint32_t eff_node;  // kNoEffNode for dummies
    uint32_t parent;    // index into SeqTree::nodes
    std::vector<uint32_t> children;
  };
  std::vector<Node> nodes;

  static SeqTree FromTwig(const EffectiveTwig& twig, bool extended,
                          const std::vector<bool>* rp_extend_leaves) {
    SeqTree t;
    t.nodes.resize(twig.num_nodes());
    for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
      t.nodes[e].eff_node = e;
      t.nodes[e].parent = twig.node(e).parent;
      t.nodes[e].children = twig.node(e).children;
    }
    for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
      if (!t.nodes[e].children.empty()) continue;
      bool extend = extended || (rp_extend_leaves != nullptr &&
                                 (*rp_extend_leaves)[e]);
      if (extend) {
        uint32_t dummy = static_cast<uint32_t>(t.nodes.size());
        t.nodes.push_back(Node{QuerySequence::kNoEffNode, e, {}});
        t.nodes[e].children.push_back(dummy);
      }
    }
    return t;
  }

  std::vector<uint32_t> Postorder() const {
    std::vector<uint32_t> number(nodes.size(), 0);
    uint32_t counter = 0;
    std::vector<std::pair<uint32_t, size_t>> stack = {{0, 0}};
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      if (idx < nodes[v].children.size()) {
        stack.emplace_back(nodes[v].children[idx++], 0);
      } else {
        number[v] = ++counter;
        stack.pop_back();
      }
    }
    return number;
  }
};

/// True if `anc` is a proper ancestor of `node` in the sequence tree
/// (parent array indexed by postorder number; parents have larger numbers).
bool IsProperAncestor(const std::vector<uint32_t>& parent_of, uint32_t anc,
                      uint32_t node, uint32_t root) {
  uint32_t v = node;
  while (v != root) {
    v = parent_of[v];
    if (v == anc) return true;
  }
  return false;
}

}  // namespace

Result<QuerySequence> BuildQuerySequence(
    const EffectiveTwig& twig, bool extended,
    const std::vector<bool>* rp_extend_leaves) {
  if (extended) {
    for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
      if (twig.is_star(e)) {
        return Status::InvalidArgument(
            "extended sequences cannot express a trailing '*'");
      }
    }
  }
  if (rp_extend_leaves != nullptr) {
    PRIX_CHECK(!extended);
    PRIX_CHECK(rp_extend_leaves->size() == twig.num_nodes());
  }
  SeqTree tree = SeqTree::FromTwig(twig, extended, rp_extend_leaves);
  std::vector<uint32_t> number = tree.Postorder();
  const uint32_t m = static_cast<uint32_t>(tree.nodes.size());

  QuerySequence seq;
  seq.extended = extended;
  seq.num_nodes = m;
  seq.eff_node_at.assign(m + 1, QuerySequence::kNoEffNode);
  seq.position_of_eff.assign(twig.num_nodes(), 0);
  for (uint32_t v = 0; v < m; ++v) {
    seq.eff_node_at[number[v]] = tree.nodes[v].eff_node;
    if (tree.nodes[v].eff_node != QuerySequence::kNoEffNode) {
      seq.position_of_eff[tree.nodes[v].eff_node] = number[v];
    }
  }

  // parent_of[k] = postorder number of the parent of the node numbered k.
  std::vector<uint32_t> parent_of(m + 1, 0);
  std::vector<uint32_t> node_of(m + 1, 0);
  for (uint32_t v = 0; v < m; ++v) node_of[number[v]] = v;
  seq.lps.resize(m - 1);
  seq.nps.resize(m - 1);
  for (uint32_t k = 1; k < m; ++k) {
    uint32_t v = node_of[k];
    uint32_t p = tree.nodes[v].parent;
    uint32_t pk = number[p];
    parent_of[k] = pk;
    uint32_t eff_parent = tree.nodes[p].eff_node;
    PRIX_CHECK(eff_parent != QuerySequence::kNoEffNode);
    seq.lps[k - 1] = twig.node(eff_parent).label;
    seq.nps[k - 1] = pk;
  }

  // RP leaves: effective leaves WITHOUT a dummy (their labels are absent
  // from the sequence), matched in the final refinement phase.
  if (!extended) {
    for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
      if (!twig.node(e).children.empty()) continue;
      if (rp_extend_leaves != nullptr && (*rp_extend_leaves)[e]) continue;
      seq.rp_leaves.push_back(QuerySequence::QueryLeaf{
          seq.position_of_eff[e], twig.node(e).label,
          twig.node(e).is_value, twig.is_star(e),
          twig.node(e).edge == EdgeSpec{1, true}, e});
    }
  }

  // Prune rules between adjacent sequence positions (Theorem 4). The
  // child-edge case additionally requires the query edge to be an exact
  // child edge; the same-parent and ancestor cases hold for any edge type
  // (the matched data positions are always deletions of children of the
  // matched image, see DESIGN.md Sec. 5).
  seq.prune.assign(seq.lps.size(), GapPruneRule{});
  for (uint32_t k = 1; k + 1 <= seq.lps.size(); ++k) {
    // relates lps[k-1] (deleted node k) and lps[k] (deleted node k+1)
    uint32_t p1 = parent_of[k];
    uint32_t p2 = parent_of[k + 1];
    GapPruneRule rule;
    uint32_t p1_eff = tree.nodes[node_of[p1]].eff_node;
    LabelId p1_label = twig.node(p1_eff).label;
    if (p1 == p2) {
      rule = GapPruneRule{GapPruneRule::kSameParent, p1_label};
    } else if (p2 == parent_of[p1] && k + 1 == p1) {
      // Deletion k+1 is p1 itself; the bound needs an exact child edge
      // between p1's effective node and its effective parent.
      bool exact_child = twig.node(p1_eff).edge == EdgeSpec{1, true};
      if (exact_child) {
        rule = GapPruneRule{GapPruneRule::kChildEdge, p1_label};
      }
    } else if (IsProperAncestor(parent_of, p1, p2, m)) {
      rule = GapPruneRule{GapPruneRule::kAncestor, p1_label};
    }
    seq.prune[k] = rule;
  }
  return seq;
}

namespace {

/// Canonical serialization of an arranged twig, for deduplication.
void Serialize(const EffectiveTwig& twig, uint32_t node, std::string& out) {
  const EffectiveTwig::Node& n = twig.node(node);
  out += '(';
  out += std::to_string(n.label);
  out += n.is_value ? 'v' : 'e';
  out += std::to_string(n.edge.min_edges);
  out += n.edge.exact ? '!' : '~';
  for (uint32_t c : n.children) Serialize(twig, c, out);
  out += ')';
}

}  // namespace

Result<std::vector<EffectiveTwig>> EnumerateArrangements(
    const EffectiveTwig& twig, size_t limit) {
  // Count raw permutations: product of factorials of child counts.
  size_t total = 1;
  for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
    size_t k = twig.node(e).children.size();
    for (size_t i = 2; i <= k; ++i) {
      total *= i;
      if (total > limit) {
        return Status::ResourceExhausted(
            "too many branch arrangements for unordered matching (" +
            std::to_string(limit) + " allowed)");
      }
    }
  }

  // Nodes with >= 2 children, each with the list of its permutations.
  std::vector<uint32_t> branch_nodes;
  std::vector<std::vector<std::vector<uint32_t>>> perms;
  for (uint32_t e = 0; e < twig.num_nodes(); ++e) {
    const auto& kids = twig.node(e).children;
    if (kids.size() >= 2) {
      branch_nodes.push_back(e);
      std::vector<uint32_t> p = kids;
      std::sort(p.begin(), p.end());
      std::vector<std::vector<uint32_t>> all;
      do {
        all.push_back(p);
      } while (std::next_permutation(p.begin(), p.end()));
      perms.push_back(std::move(all));
    }
  }

  std::vector<EffectiveTwig> out;
  std::set<std::string> seen;
  std::vector<size_t> choice(branch_nodes.size(), 0);
  while (true) {
    EffectiveTwig arranged = twig;
    for (size_t i = 0; i < branch_nodes.size(); ++i) {
      arranged.PermuteChildren(branch_nodes[i], perms[i][choice[i]]);
    }
    std::string key;
    Serialize(arranged, arranged.root(), key);
    if (seen.insert(key).second) out.push_back(std::move(arranged));
    // Odometer increment.
    size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < perms[i].size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
  }
  if (branch_nodes.empty()) {
    PRIX_DCHECK(out.size() == 1);
  }
  return out;
}

}  // namespace prix
