#ifndef PRIX_QUERY_XPATH_PARSER_H_
#define PRIX_QUERY_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/twig_pattern.h"

namespace prix {

/// Parses the XPath subset used by the paper's queries (Table 3) into a
/// TwigPattern:
///
///   path       := ('/' | '//') step ( ('/' | '//') step )*
///   step       := (NAME | '*' | '@'NAME) predicate*
///   predicate  := '[' predExpr ']'
///   predExpr   := '.' ( ('/'|'//') step )* ( '=' STRING )?
///               | 'text()' '=' STRING
///   STRING     := '"' chars '"' | "'" chars "'"
///
/// Whitespace between tokens is insignificant (XPath 1.0 ExprWhitespace);
/// only quoted string literals preserve it. Parse errors carry the byte
/// offset of the offending character.
///
/// Examples: //inproceedings[./author="Jim Gray"][./year="1990"],
/// //inproceedings[ ./author = 'Jim Gray' ], //S//NP/SYM,
/// //NP[./RBR_OR_JJR]/PP, //title[text()="Semantic..."].
///
/// Labels are interned into `dict`; a value string never seen in the data
/// interns a fresh id and simply matches nothing.
Result<TwigPattern> ParseXPath(std::string_view xpath, TagDictionary* dict);

}  // namespace prix

#endif  // PRIX_QUERY_XPATH_PARSER_H_
