#ifndef PRIX_QUERY_TWIG_PRUFER_H_
#define PRIX_QUERY_TWIG_PRUFER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "query/twig_pattern.h"

namespace prix {

/// MaxGap-based pruning rule between adjacent positions k and k+1 of a query
/// sequence (Theorem 4 plus the same-parent corollary). `label` is the label
/// whose MaxGap bounds the data-position gap:
///  - kSameParent: prune if gap >  MaxGap(label)
///  - kChildEdge : prune if gap >  MaxGap(label) + 1
///  - kAncestor  : prune if gap >= MaxGap(label)
struct GapPruneRule {
  enum Kind : uint8_t { kNone, kSameParent, kChildEdge, kAncestor };
  Kind kind = kNone;
  LabelId label = kInvalidLabel;
};

/// The Prüfer transform of a query twig, in regular (RP) or extended (EP)
/// form, together with the bookkeeping the matcher and refinement phases
/// need to recover embeddings over effective-twig nodes.
struct QuerySequence {
  std::vector<LabelId> lps;   ///< length num_nodes - 1
  std::vector<uint32_t> nps;  ///< parallel postorder numbers
  uint32_t num_nodes = 0;     ///< node count of the (extended) sequence tree
  bool extended = false;

  /// eff_node_at[k] = effective-twig node deleted k-th (postorder number k),
  /// for k in [1, num_nodes]; kNoEffNode for EP dummy positions.
  std::vector<uint32_t> eff_node_at;
  static constexpr uint32_t kNoEffNode = 0xffffffffu;

  /// position_of_eff[e] = postorder number of effective node e in the
  /// sequence tree.
  std::vector<uint32_t> position_of_eff;

  /// prune[k] (k >= 1) relates sequence positions k-1 and k (0-based into
  /// lps); prune[0] is always kNone.
  std::vector<GapPruneRule> prune;

  /// RP only: query leaves, checked in the refinement-by-leaf-nodes phase.
  struct QueryLeaf {
    uint32_t position;  ///< the leaf's postorder number (= lps position + 1)
    LabelId label;
    bool is_value;
    bool is_star;          ///< trailing '*': label unchecked
    bool exact_child_edge;  ///< leaf attaches to its parent by a plain '/'
    uint32_t eff_node;
  };
  std::vector<QueryLeaf> rp_leaves;
};

/// Builds the RP (extended=false) or EP (extended=true) query sequence for
/// `twig` (Sec. 3.3, 5.6). Fails for EP when the twig has a trailing '*'
/// (its label would need to appear in the sequence but is unconstrained);
/// the query processor falls back to the RP index in that case.
///
/// `rp_extend_leaves` (RP only, optional, indexed by effective node id):
/// query leaves flagged true get a dummy child so their LABEL enters the
/// query sequence — the Sec. 4.4 "special treatment of leaf nodes" that
/// eliminates the leaf-matching refinement for them. Sound only for element
/// leaves whose label never occurs childless in the collection (the query
/// processor consults the index's childless-label set).
Result<QuerySequence> BuildQuerySequence(
    const EffectiveTwig& twig, bool extended,
    const std::vector<bool>* rp_extend_leaves = nullptr);

/// Enumerates the distinct branch arrangements of `twig` for unordered twig
/// matching (Sec. 5.7): every permutation of every node's child list, with
/// structurally identical arrangements deduplicated. Node ids are stable
/// across arrangements, so embeddings reported against different
/// arrangements can be unioned directly. Fails with ResourceExhausted if
/// more than `limit` raw permutations would be generated.
Result<std::vector<EffectiveTwig>> EnumerateArrangements(
    const EffectiveTwig& twig, size_t limit);

}  // namespace prix

#endif  // PRIX_QUERY_TWIG_PRUFER_H_
