#include "query/xpath_parser.h"

#include <cctype>

#include "common/macros.h"

namespace prix {

namespace {

class Parser {
 public:
  Parser(std::string_view text, TagDictionary* dict)
      : text_(text), dict_(dict) {}

  Result<TwigPattern> Run() {
    SkipSpace();
    PRIX_ASSIGN_OR_RETURN(Axis axis, ParseAxis());
    PRIX_RETURN_NOT_OK(ParseStep(TwigPattern::kNoParent, axis));
    while (SkipSpace(), !AtEnd()) {
      PRIX_ASSIGN_OR_RETURN(Axis next, ParseAxis());
      PRIX_RETURN_NOT_OK(ParseStep(current_, next));
    }
    return std::move(twig_);
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  /// Whitespace is insignificant outside quoted strings (XPath 1.0
  /// ExprWhitespace), so every token consumer may be preceded by it.
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status Error(std::string msg) { return Error(std::move(msg), pos_); }

  /// `at` is the offset of the offending character, which is not always
  /// pos_ (e.g. an unterminated string is reported at its opening quote,
  /// not at end-of-input).
  Status Error(std::string msg, size_t at) {
    return Status::ParseError(msg + " at offset " + std::to_string(at) +
                              " in XPath '" + std::string(text_) + "'");
  }

  Result<Axis> ParseAxis() {
    if (Consume("//")) return Axis::kDescendant;
    if (Consume("/")) return Axis::kChild;
    return Error("expected '/' or '//'");
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '@') ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name test");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Accepts either quote style ("..." or '...'); the literal runs to the
  /// matching quote, so the other quote character and whitespace may appear
  /// inside it unescaped.
  Result<std::string> ParseString() {
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a quoted string");
    }
    const char quote = Peek();
    const size_t quote_pos = pos_;
    ++pos_;
    size_t end = text_.find(quote, pos_);
    if (end == std::string_view::npos) {
      return Error("unterminated string", quote_pos);
    }
    std::string value(text_.substr(pos_, end - pos_));
    pos_ = end + 1;
    return value;
  }

  /// Parses one step and its predicates; sets current_ to the step's node.
  Status ParseStep(uint32_t parent, Axis axis) {
    SkipSpace();
    uint32_t node;
    if (Consume("*")) {
      node = parent == TwigPattern::kNoParent
                 ? twig_.AddRoot(kInvalidLabel, axis, /*is_star=*/true)
                 : twig_.AddChild(parent, kInvalidLabel, axis,
                                  /*is_star=*/true);
    } else {
      PRIX_ASSIGN_OR_RETURN(std::string name, ParseName());
      LabelId label = dict_->Intern(name);
      node = parent == TwigPattern::kNoParent
                 ? twig_.AddRoot(label, axis)
                 : twig_.AddChild(parent, label, axis);
    }
    while (SkipSpace(), !AtEnd() && Peek() == '[') {
      ++pos_;
      PRIX_RETURN_NOT_OK(ParsePredicate(node));
      SkipSpace();
      if (!Consume("]")) return Error("expected ']'");
    }
    current_ = node;
    return Status::OK();
  }

  Status ParsePredicate(uint32_t context) {
    SkipSpace();
    if (Consume("text()")) {
      SkipSpace();
      if (!Consume("=")) return Error("expected '=' after text()");
      PRIX_ASSIGN_OR_RETURN(std::string value, ParseString());
      twig_.AddChild(context, dict_->Intern(value), Axis::kChild,
                     /*is_star=*/false, /*is_value=*/true);
      return Status::OK();
    }
    if (!Consume(".")) return Error("expected '.' or 'text()' in predicate");
    uint32_t saved = current_;
    uint32_t tip = context;
    while (SkipSpace(), !AtEnd() && Peek() == '/') {
      PRIX_ASSIGN_OR_RETURN(Axis axis, ParseAxis());
      PRIX_RETURN_NOT_OK(ParseStep(tip, axis));
      tip = current_;
    }
    if (Consume("=")) {
      PRIX_ASSIGN_OR_RETURN(std::string value, ParseString());
      twig_.AddChild(tip, dict_->Intern(value), Axis::kChild,
                     /*is_star=*/false, /*is_value=*/true);
    }
    current_ = saved;
    return Status::OK();
  }

  std::string_view text_;
  TagDictionary* dict_;
  TwigPattern twig_;
  size_t pos_ = 0;
  uint32_t current_ = TwigPattern::kNoParent;
};

}  // namespace

Result<TwigPattern> ParseXPath(std::string_view xpath, TagDictionary* dict) {
  Parser parser(xpath, dict);
  return parser.Run();
}

}  // namespace prix
