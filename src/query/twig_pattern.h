#ifndef PRIX_QUERY_TWIG_PATTERN_H_
#define PRIX_QUERY_TWIG_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "xml/tag_dictionary.h"

namespace prix {

/// XPath axis connecting a twig node to its parent.
enum class Axis : uint8_t {
  kChild,       ///< '/'
  kDescendant,  ///< '//'
};

/// A twig (tree) pattern: the query model of the paper (Sec. 4). Nodes carry
/// either an element label test, a '*' wildcard, or a value (equality
/// predicate on character data). Children are in syntactic order, which is
/// the order used for ordered twig matching.
class TwigPattern {
 public:
  struct Node {
    LabelId label = kInvalidLabel;  ///< kInvalidLabel iff is_star
    bool is_star = false;           ///< '*' name test
    bool is_value = false;          ///< value equality (text()="..." etc.)
    Axis axis = Axis::kChild;       ///< axis from parent (root: anchor axis)
    uint32_t parent = kNoParent;
    std::vector<uint32_t> children;
  };
  static constexpr uint32_t kNoParent = 0xffffffffu;

  TwigPattern() = default;

  /// Adds the root. `axis` is the anchor: kChild = must match the document
  /// root; kDescendant = may match anywhere (leading '//').
  uint32_t AddRoot(LabelId label, Axis axis, bool is_star = false);

  /// Adds a child of `parent` in syntactic order.
  uint32_t AddChild(uint32_t parent, LabelId label, Axis axis,
                    bool is_star = false, bool is_value = false);

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  uint32_t root() const { return 0; }
  const Node& node(uint32_t id) const {
    PRIX_DCHECK(id < nodes_.size());
    return nodes_[id];
  }

  /// True if any node is '*' or any non-root edge is kDescendant, or the
  /// query has a kChild anchor (all of which need the generalized
  /// connectedness / verification path of Sec. 4.5).
  bool HasWildcard() const;

  /// True if any node is a value test (drives the RPIndex/EPIndex choice of
  /// Sec. 5.6).
  bool HasValue() const;

  /// Number of leaf-branches (leaves of the pattern).
  size_t CountLeaves() const;

 private:
  std::vector<Node> nodes_;
};

/// Constraint on the path a query edge may map to in the data:
/// child '/'          -> {1, exact}
/// descendant '//'    -> {1, unbounded}
/// through k stars    -> {k+1, exact};  '//' anywhere in the chain makes it
/// unbounded with min_edges = (#named/star hops).
struct EdgeSpec {
  uint32_t min_edges = 1;
  bool exact = true;

  bool operator==(const EdgeSpec&) const = default;
};

/// The twig with '*' nodes folded into the edges of their nearest named (or
/// value) descendants — the form the Prüfer machinery operates on
/// ("transformed to its Prüfer sequences by ignoring the wildcards",
/// Sec. 4.5). Node 0 is the root; children preserve syntactic order.
class EffectiveTwig {
 public:
  struct Node {
    LabelId label = kInvalidLabel;
    bool is_value = false;
    EdgeSpec edge;  ///< constraint on the path to the effective parent
    uint32_t parent = TwigPattern::kNoParent;
    std::vector<uint32_t> children;
  };

  /// Builds the effective twig from `pattern`. Fails if a '*' node is a leaf
  /// of the pattern in a position that cannot be folded (a trailing '*' is
  /// kept as an anonymous node matched by label-wildcard; see notes).
  static EffectiveTwig Build(const TwigPattern& pattern);

  size_t num_nodes() const { return nodes_.size(); }
  uint32_t root() const { return 0; }
  const Node& node(uint32_t id) const {
    PRIX_DCHECK(id < nodes_.size());
    return nodes_[id];
  }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Anchor of the root relative to the document root: min_edges below it,
  /// exact or unbounded. ("//a" -> {0, unbounded}; "/a" -> {0, exact}.)
  EdgeSpec root_anchor() const { return root_anchor_; }

  /// True if the root anchors exactly ("/a"), any node is a trailing star,
  /// or any edge is not a plain child edge.
  bool NeedsGeneralizedMatching() const;

  bool HasValue() const;

  /// True if node `id` is a trailing '*' (label wildcard kept as a node).
  bool is_star(uint32_t id) const { return star_flags_[id]; }

  /// Reorders node `id`'s children to `new_order` (a permutation of the
  /// current list). Used to enumerate arrangements for unordered matching.
  void PermuteChildren(uint32_t id, const std::vector<uint32_t>& new_order);

  /// Returns the chain twig consisting of `path` (node ids from the root
  /// downward, each the parent of the next), preserving labels and edge
  /// specs. Every document matching this twig is matched by any twig that
  /// contains the path, which makes it a sound filter (see DESIGN.md on
  /// branch coincidence under wildcards).
  EffectiveTwig ExtractPath(const std::vector<uint32_t>& path) const;

  /// 1-based postorder numbers over the effective twig.
  std::vector<uint32_t> ComputePostorder() const;

  /// Per postorder number k in [1, num_nodes]: the effective node id.
  std::vector<uint32_t> PostorderInverse() const;

 private:
  std::vector<Node> nodes_;
  std::vector<bool> star_flags_;
  EdgeSpec root_anchor_{0, false};
};

/// Human-readable rendering for diagnostics ("a[b][.//c="v"]").
std::string TwigToString(const TwigPattern& twig, const TagDictionary& dict);

}  // namespace prix

#endif  // PRIX_QUERY_TWIG_PATTERN_H_
