#ifndef PRIX_REPL_SENDER_H_
#define PRIX_REPL_SENDER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "db/database.h"
#include "serve/wire.h"

namespace prix {

/// Test-only link-fault schedule applied to the sender's outgoing frames
/// (counted globally across all follower connections, 1-based). Each
/// trigger fires exactly once; after it the link behaves normally again,
/// so a reconnecting follower always reconverges.
struct LinkFaultSchedule {
  uint64_t drop_after_frames = 0;  ///< close the link INSTEAD of frame #N
  uint64_t garble_frame = 0;       ///< flip one byte inside frame #N
  uint64_t short_frame = 0;        ///< send only half of frame #N, then close
};

struct ReplSenderOptions {
  /// TCP port on 127.0.0.1; 0 asks the kernel (read back via port()).
  uint16_t port = 0;
  uint32_t hello_timeout_ms = 10'000;
  uint32_t ack_timeout_ms = 10'000;
  /// Snapshot ship chunk size; must leave frame headroom under
  /// kMaxFrameBody. 256 KiB = 32 pages per frame.
  size_t snapshot_chunk_bytes = 256u << 10;
  /// Follower connections beyond this are refused with a typed error.
  size_t max_followers = 4;
  /// How often a caught-up follower connection re-checks the oplog tail.
  uint32_t poll_interval_ms = 20;
  LinkFaultSchedule faults;
};

/// The leader half of streaming replication (DESIGN.md §5l): accepts
/// follower connections on its own port, validates each follower's hello
/// cursor against the oplog manifest chain, and streams committed records
/// in lockstep (one record, one ack). A cursor outside the oplog's range
/// (follower too far behind a rebased log, or ahead of us) or a manifest
/// mismatch (true divergence) gets a typed kError frame followed by a full
/// file snapshot on the same connection; streaming resumes from the
/// snapshot generation. The oplog itself is the bounded catch-up tail — it
/// lives on disk, so a lagging follower costs no leader memory, and one
/// that falls off the tail's base falls back to snapshot ship.
class ReplSender {
 public:
  struct Stats {
    uint64_t followers = 0;       ///< currently connected
    uint64_t records_sent = 0;    ///< acked records
    uint64_t snapshots_sent = 0;  ///< full snapshot ships completed
    uint64_t divergences = 0;     ///< manifest mismatches detected
    uint64_t frames_sent = 0;
    /// Smallest acked generation across live followers (UINT64_MAX when
    /// none are connected).
    uint64_t min_acked_gen = 0;
    /// Why the most recently finished follower connection ended (empty
    /// until one has). Diagnostic only — benign disconnects land here too.
    std::string last_conn_error;
  };

  /// Binds, listens, and starts accepting followers. `db` must outlive the
  /// sender.
  static Result<std::unique_ptr<ReplSender>> Start(
      Database* db, const ReplSenderOptions& options);

  ~ReplSender();
  ReplSender(const ReplSender&) = delete;
  ReplSender& operator=(const ReplSender&) = delete;

  uint16_t port() const { return port_; }

  /// Stops accepting, disconnects followers, joins all threads. Idempotent.
  void Stop();

  Stats stats() const;

 private:
  struct FollowerConn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    std::atomic<uint64_t> acked_gen{0};
    std::atomic<bool> active{false};  ///< past hello, streaming
  };

  ReplSender(Database* db, const ReplSenderOptions& options);

  void AcceptLoop();
  void FollowerLoop(FollowerConn* conn);
  /// Sends one frame through the fault schedule; a scheduled drop/short
  /// returns Unavailable so the caller tears the connection down.
  Status SendFrame(int fd, std::vector<char> frame);
  void SendTypedError(int fd, StatusCode code, const std::string& message);
  /// Ships a full file snapshot and, on ack, rewinds the stream position to
  /// the snapshot generation. Ships serialize on snapshot_mu_ (one
  /// low-water bound).
  Status ShipSnapshot(int fd, FrameDecoder* dec, uint64_t* pos,
                      uint32_t* pos_manifest);
  void ReapFinished();

  Database* db_;
  ReplSenderOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<FollowerConn>> conns_;
  std::string last_conn_error_;  ///< guarded by conns_mu_
  std::mutex snapshot_mu_;

  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> snapshots_sent_{0};
  std::atomic<uint64_t> divergences_{0};
};

}  // namespace prix

#endif  // PRIX_REPL_SENDER_H_
