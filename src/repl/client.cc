#include "repl/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <stdio.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>

#include "common/macros.h"
#include "storage/oplog.h"

namespace prix {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

/// write(2) loop for regular files. WriteAll from serve/wire.h is send(2)
/// underneath and therefore socket-only; snapshot chunks land in a file.
Status WriteFileAll(int fd, const std::vector<char>& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write snapshot tmp");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Fsyncs the directory holding `path` so a rename/unlink inside it is
/// durable before we report success.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return Errno("open parent dir");
  Status st = Status::OK();
  if (::fsync(dfd) != 0) st = Errno("fsync parent dir");
  ::close(dfd);
  return st;
}

}  // namespace

Status InstallSnapshotFile(const std::string& tmp_path,
                           const std::string& db_path) {
  if (::rename(tmp_path.c_str(), db_path.c_str()) != 0) {
    return Errno("rename snapshot");
  }
  // The sidecar's records chain through the PRE-snapshot history; any that
  // coincidentally align with the new file would be trusted on reopen, so
  // it must go. The reopen rebases a fresh oplog at the snapshot's
  // committed generation.
  std::string sidecar = OpLog::PathFor(db_path);
  if (::unlink(sidecar.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink oplog sidecar");
  }
  return SyncParentDir(db_path);
}

ReplClient::ReplClient(Database* db, const ReplClientOptions& options,
                       SnapshotSwapFn swap, ApplyHooks hooks)
    : options_(options),
      swap_(std::move(swap)),
      hooks_(std::move(hooks)),
      db_(db) {}

Result<std::unique_ptr<ReplClient>> ReplClient::Start(
    Database* db, const ReplClientOptions& options, SnapshotSwapFn swap,
    ApplyHooks hooks) {
  if (db == nullptr) return Status::InvalidArgument("null follower database");
  if (options.db_path.empty()) {
    return Status::InvalidArgument("ReplClientOptions.db_path is required");
  }
  if (!swap && options.allow_snapshot) {
    return Status::InvalidArgument(
        "a snapshot swap callback is required when snapshots are allowed");
  }
  auto client = std::unique_ptr<ReplClient>(
      new ReplClient(db, options, std::move(swap), std::move(hooks)));
  std::pair<uint64_t, uint32_t> cursor = db->repl_cursor();
  client->cursor_gen_ = cursor.first;
  client->cursor_manifest_ = cursor.second;
  client->applied_gen_.store(cursor.first, std::memory_order_relaxed);
  client->rng_state_ =
      options.seed != 0 ? options.seed : std::random_device{}();
  if (client->rng_state_ == 0) client->rng_state_ = 0x9e3779b97f4a7c15ull;
  client->thread_ = std::thread([c = client.get()] { c->Run(); });
  return client;
}

ReplClient::~ReplClient() { Stop(); }

void ReplClient::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

ReplClient::Stats ReplClient::stats() const {
  Stats s;
  s.applied_gen = applied_gen_.load(std::memory_order_relaxed);
  s.leader_gen = leader_gen_.load(std::memory_order_relaxed);
  s.records_applied = records_applied_.load(std::memory_order_relaxed);
  s.snapshots_installed = snapshots_installed_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.divergences = divergences_.load(std::memory_order_relaxed);
  return s;
}

Status ReplClient::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

Database* ReplClient::db() const {
  std::lock_guard<std::mutex> lock(mu_);
  return db_;
}

void ReplClient::SetLastError(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = st;
}

uint32_t ReplClient::NextBackoffMs() {
  // splitmix64 — cheap, seedable, good enough for jitter.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;

  uint32_t shift = backoff_attempt_ < 16 ? backoff_attempt_ : 16;
  if (backoff_attempt_ < 64) ++backoff_attempt_;
  uint64_t window = static_cast<uint64_t>(options_.backoff_base_ms) << shift;
  if (window > options_.backoff_cap_ms) window = options_.backoff_cap_ms;
  // Full jitter: uniform in [0, window]. A herd of followers losing the
  // same leader reconnects spread out, not in lockstep.
  return static_cast<uint32_t>(z % (window + 1));
}

void ReplClient::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status st = RunOnce();
    if (stop_.load(std::memory_order_acquire)) break;
    SetLastError(st);
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    uint32_t sleep_ms = NextBackoffMs();
    // Stop-aware backoff sleep.
    while (sleep_ms > 0 && !stop_.load(std::memory_order_acquire)) {
      uint32_t step = sleep_ms < 20 ? sleep_ms : 20;
      std::this_thread::sleep_for(std::chrono::milliseconds(step));
      sleep_ms -= step;
    }
  }
}

Result<int> ReplClient::Dial() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad leader address '" + options_.host +
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return Status::Unavailable(std::string(st.message()));
  }
  return fd;
}

Status ReplClient::RunOnce() {
  PRIX_ASSIGN_OR_RETURN(int fd, Dial());
  auto fail = [&](Status st) {
    ::close(fd);
    return st;
  };

  ReplHello hello;
  hello.cursor_gen = cursor_gen_;
  hello.cursor_manifest = cursor_manifest_;
  hello.want_snapshot =
      (want_snapshot_ && options_.allow_snapshot) ? 1 : 0;
  Status st = WriteAll(fd, EncodeReplHello(hello));
  if (!st.ok()) return fail(st);

  FrameDecoder dec;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<std::optional<Frame>> got =
        ReadFrame(fd, &dec, options_.io_timeout_ms, &stop_);
    if (!got.ok()) {
      if (got.status().IsDeadlineExceeded() && dec.buffered() == 0) {
        // Benign idle: we are caught up and the leader has nothing to send.
        // A dead leader shows up as EOF/reset, not silence, so keep waiting.
        continue;
      }
      return fail(got.status());
    }
    if (!*got) return fail(Status::Unavailable("leader closed connection"));
    Frame frame = std::move(**got);
    switch (frame.type) {
      case FrameType::kError: {
        Result<ErrorResponse> err = DecodeError(frame);
        if (!err.ok()) return fail(err.status());
        StatusCode code = static_cast<StatusCode>(err->status_code);
        if (code == StatusCode::kFailedPrecondition) {
          divergences_.fetch_add(1, std::memory_order_relaxed);
        }
        if ((code == StatusCode::kFailedPrecondition ||
             code == StatusCode::kOutOfRange) &&
            options_.allow_snapshot) {
          // The leader rejected our cursor and a snapshot follows on this
          // same connection; keep reading.
          continue;
        }
        return fail(Status::FailedPrecondition("leader error: " +
                                               err->message));
      }
      case FrameType::kReplRecord: {
        Result<ReplRecordFrame> rec = DecodeReplRecord(frame);
        if (!rec.ok()) return fail(rec.status());
        Status apply_st = HandleRecord(fd, *rec);
        if (!apply_st.ok()) return fail(apply_st);
        continue;
      }
      case FrameType::kReplSnapshot: {
        if (!options_.allow_snapshot) {
          return fail(
              Status::FailedPrecondition("leader shipped a snapshot but "
                                         "snapshots are disabled"));
        }
        Result<ReplSnapshotFrame> snap = DecodeReplSnapshot(frame);
        if (!snap.ok()) return fail(snap.status());
        Status snap_st = HandleSnapshot(fd, &dec, *snap);
        if (!snap_st.ok()) return fail(snap_st);
        continue;
      }
      default:
        return fail(Status::InvalidArgument(
            "unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)) +
            " on a replication connection"));
    }
  }
  return fail(Status::Unavailable("replication client stopping"));
}

Status ReplClient::HandleRecord(int fd, const ReplRecordFrame& rec) {
  leader_gen_.store(rec.leader_gen, std::memory_order_relaxed);
  auto diverged = [&](const std::string& why) {
    divergences_.fetch_add(1, std::memory_order_relaxed);
    want_snapshot_ = true;
    return Status::FailedPrecondition(why + "; snapshot resync required");
  };
  if (rec.gen != cursor_gen_ + 1) {
    return diverged("record gen " + std::to_string(rec.gen) +
                    " does not follow cursor gen " +
                    std::to_string(cursor_gen_));
  }
  // Verify the manifest chain BEFORE applying: a garbled or forged record
  // must never touch the replica's state.
  uint32_t expected = OpLog::ChainManifest(
      cursor_manifest_, rec.gen, static_cast<OpKind>(rec.op_kind),
      rec.payload.data(), rec.payload.size());
  if (expected != rec.manifest) {
    return diverged("manifest chain mismatch at gen " +
                    std::to_string(rec.gen) + " (corrupt or foreign record)");
  }

  Database* db;
  {
    std::lock_guard<std::mutex> lock(mu_);
    db = db_;
  }
  // Stage the cursor first: the commit this apply performs persists cursor
  // and state atomically, which is what makes catch-up crash-consistent.
  db->StageReplCursor(rec.gen, rec.manifest);
  Status st = ApplyOpRecord(db, rec.op_kind, rec.payload, hooks_);
  if (st.IsFailedPrecondition()) {
    return diverged("apply diverged: " + std::string(st.message()));
  }
  if (!st.ok()) {
    // Local fault (I/O, crash injection): the commit did not happen, so the
    // cursor is unchanged. Reconnect and retry the same record.
    return st;
  }
  cursor_gen_ = rec.gen;
  cursor_manifest_ = rec.manifest;
  applied_gen_.store(rec.gen, std::memory_order_release);
  records_applied_.fetch_add(1, std::memory_order_relaxed);
  backoff_attempt_ = 0;

  ReplAck ack;
  ack.applied_gen = rec.gen;
  ack.manifest = rec.manifest;
  return WriteAll(fd, EncodeReplAck(ack));
}

Status ReplClient::HandleSnapshot(int fd, FrameDecoder* dec,
                                  const ReplSnapshotFrame& first) {
  const std::string tmp_path = options_.db_path + ".snap-tmp";
  int tmp_fd = ::open(tmp_path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return Errno("open snapshot tmp");

  Status st = [&]() -> Status {
    ReplSnapshotFrame chunk = first;
    uint32_t expected_seq = 0;
    while (true) {
      if (chunk.snapshot_gen != first.snapshot_gen ||
          chunk.manifest != first.manifest) {
        return Status::InvalidArgument(
            "snapshot chunk switched generations mid-stream");
      }
      if (chunk.seq != expected_seq) {
        return Status::InvalidArgument(
            "snapshot chunk seq " + std::to_string(chunk.seq) +
            " arrived out of order (expected " +
            std::to_string(expected_seq) + ")");
      }
      ++expected_seq;
      if (!chunk.chunk.empty()) {
        PRIX_RETURN_NOT_OK(WriteFileAll(tmp_fd, chunk.chunk));
      }
      if (chunk.last != 0) break;
      if (stop_.load(std::memory_order_acquire)) {
        return Status::Unavailable("replication client stopping");
      }
      PRIX_ASSIGN_OR_RETURN(
          std::optional<Frame> got,
          ReadFrame(fd, dec, options_.io_timeout_ms, &stop_));
      if (!got) {
        return Status::Unavailable("leader closed mid-snapshot");
      }
      if (got->type != FrameType::kReplSnapshot) {
        return Status::InvalidArgument("non-snapshot frame mid-snapshot");
      }
      PRIX_ASSIGN_OR_RETURN(chunk, DecodeReplSnapshot(*got));
    }
    if (::fsync(tmp_fd) != 0) return Errno("fsync snapshot tmp");
    return Status::OK();
  }();
  ::close(tmp_fd);
  if (!st.ok()) {
    (void)::unlink(tmp_path.c_str());
    return st;
  }

  // Hand the file to the embedder: it installs (InstallSnapshotFile),
  // reopens, persists the cursor, and gives us the new database.
  Result<Database*> new_db =
      swap_(tmp_path, first.snapshot_gen, first.manifest);
  if (!new_db.ok()) {
    (void)::unlink(tmp_path.c_str());
    return new_db.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    db_ = *new_db;
  }
  cursor_gen_ = first.snapshot_gen;
  cursor_manifest_ = first.manifest;
  want_snapshot_ = false;
  applied_gen_.store(first.snapshot_gen, std::memory_order_release);
  leader_gen_.store(
      std::max(leader_gen_.load(std::memory_order_relaxed),
               first.snapshot_gen),
      std::memory_order_relaxed);
  snapshots_installed_.fetch_add(1, std::memory_order_relaxed);
  backoff_attempt_ = 0;

  ReplAck ack;
  ack.applied_gen = first.snapshot_gen;
  ack.manifest = first.manifest;
  return WriteAll(fd, EncodeReplAck(ack));
}

}  // namespace prix
