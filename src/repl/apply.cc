#include "repl/apply.h"

#include "db/op_codec.h"
#include "storage/oplog.h"
#include "storage/record_store.h"

namespace prix {

Status ApplyOpRecord(Database* db, uint8_t op_kind,
                     const std::vector<char>& payload,
                     const ApplyHooks& hooks) {
  if (op_kind > static_cast<uint8_t>(OpKind::kDrop)) {
    return Status::FailedPrecondition(
        "oplog record carries unknown op kind " + std::to_string(op_kind) +
        "; histories have diverged");
  }
  switch (static_cast<OpKind>(op_kind)) {
    case OpKind::kNoop:
      // An empty commit keeps the follower's cursor (staged by the caller)
      // moving in lockstep with the leader's manifest chain.
      return db->CommitBatch({}, {});
    case OpKind::kInsert: {
      PRIX_ASSIGN_OR_RETURN(InsertOp op, DecodeInsertOp(payload));
      PRIX_ASSIGN_OR_RETURN(uint32_t d, db->InsertDocument(op.index, op.doc));
      if (d != op.doc_id) {
        return Status::FailedPrecondition(
            "replayed insert into '" + op.index + "' assigned DocId " +
            std::to_string(d) + " but the leader recorded " +
            std::to_string(op.doc_id) + "; histories have diverged");
      }
      return Status::OK();
    }
    case OpKind::kUpdate: {
      PRIX_ASSIGN_OR_RETURN(UpdateOp op, DecodeUpdateOp(payload));
      PRIX_ASSIGN_OR_RETURN(uint32_t d,
                            db->UpdateDocument(op.index, op.old_doc_id,
                                               op.doc));
      if (d != op.new_doc_id) {
        return Status::FailedPrecondition(
            "replayed update in '" + op.index + "' assigned DocId " +
            std::to_string(d) + " but the leader recorded " +
            std::to_string(op.new_doc_id) + "; histories have diverged");
      }
      return Status::OK();
    }
    case OpKind::kDelete: {
      PRIX_ASSIGN_OR_RETURN(DeleteOp op, DecodeDeleteOp(payload));
      Status st = db->DeleteDocument(op.index, op.doc_id);
      if (st.IsNotFound()) {
        return Status::FailedPrecondition(
            "replayed delete of DocId " + std::to_string(op.doc_id) +
            " found no live document; histories have diverged");
      }
      return st;
    }
    case OpKind::kPutBlob: {
      PRIX_ASSIGN_OR_RETURN(PutBlobOp op, DecodePutBlobOp(payload));
      PRIX_ASSIGN_OR_RETURN(PageId head, WriteBlob(db->pool(), op.blob));
      Database::IndexEntry entry;
      entry.name = op.name;
      entry.kind = Database::IndexKind::kBlob;
      entry.root = head;
      entry.options = op.options;
      PRIX_RETURN_NOT_OK(db->PutIndex(entry));
      if (hooks.on_blob) hooks.on_blob(op.name, op.blob);
      return Status::OK();
    }
    case OpKind::kBarrier: {
      auto name = DecodeNameOp(payload);
      return Status::FailedPrecondition(
          "barrier record (engine index publish '" +
          (name.ok() ? *name : std::string("?")) +
          "') is not replayable; snapshot resync required");
    }
    case OpKind::kDrop: {
      PRIX_ASSIGN_OR_RETURN(std::string name, DecodeNameOp(payload));
      Status st = db->DropIndex(name);
      if (st.IsNotFound()) {
        return Status::FailedPrecondition(
            "replayed drop of '" + name +
            "' found no such index; histories have diverged");
      }
      return st;
    }
  }
  return Status::Internal("unreachable op kind");
}

}  // namespace prix
