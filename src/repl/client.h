#ifndef PRIX_REPL_CLIENT_H_
#define PRIX_REPL_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "db/database.h"
#include "repl/apply.h"
#include "serve/wire.h"

namespace prix {

struct ReplClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// The follower's database file; snapshots install next to it (atomic
  /// rename of `db_path + ".snap-tmp"`).
  std::string db_path;
  uint32_t io_timeout_ms = 10'000;
  /// Jittered exponential backoff between reconnect attempts: each attempt
  /// sleeps uniform(0, min(cap, base * 2^attempt)) — full jitter, so a herd
  /// of followers does not reconnect in lockstep.
  uint32_t backoff_base_ms = 50;
  uint32_t backoff_cap_ms = 2'000;
  /// Seed for the backoff jitter; 0 draws one from std::random_device.
  uint64_t seed = 0;
  /// When false the client refuses snapshot resync (tests use this to pin
  /// the record-streaming path); divergence then keeps reconnecting.
  bool allow_snapshot = true;
};

/// Called when a full snapshot has been received into `tmp_path`: the
/// embedder must stop readers of the old database, install the file
/// (InstallSnapshotFile), reopen, persist the cursor
/// (StageReplCursor(snapshot_gen, snapshot_manifest) + an empty
/// CommitBatch), and return the new Database*. The returned pointer must
/// stay valid until the next swap or Stop(). Returning an error makes the
/// client retry the snapshot on its next connection.
using SnapshotSwapFn = std::function<Result<Database*>(
    const std::string& tmp_path, uint64_t snapshot_gen,
    uint32_t snapshot_manifest)>;

/// Atomically installs a received snapshot file over the follower's
/// database: rename(tmp_path, db_path) plus removal of the now-stale
/// `.oplog` sidecar (its records belong to the pre-snapshot history; a
/// reopen would otherwise trust any that coincidentally align). The caller
/// reopens the database afterwards — the oplog rebases at the snapshot's
/// committed generation.
Status InstallSnapshotFile(const std::string& tmp_path,
                           const std::string& db_path);

/// The follower half of streaming replication (DESIGN.md §5l): connects to
/// the leader, announces its durable cursor, and replays shipped records
/// through ApplyOpRecord — staging the cursor before each apply so cursor
/// and state commit atomically. Every record's manifest is verified against
/// the local chain (OpLog::ChainManifest) BEFORE it is applied: a garbled
/// or forged record is divergence, answered by a snapshot resync, never a
/// corrupted replica. Link faults (EOF, resets, timeouts) reconnect with
/// jittered exponential backoff; the durable cursor makes catch-up
/// crash-consistent — a follower killed at any point resumes from its last
/// committed generation.
class ReplClient {
 public:
  struct Stats {
    uint64_t applied_gen = 0;     ///< follower cursor (leader generations)
    uint64_t leader_gen = 0;      ///< leader's generation, last observed
    uint64_t records_applied = 0;
    uint64_t snapshots_installed = 0;
    uint64_t reconnects = 0;
    uint64_t divergences = 0;     ///< manifest/apply mismatches detected
  };

  /// Starts the replication thread. `db` is the follower's open database
  /// (its persisted repl cursor seeds the hello); `swap` handles snapshot
  /// installs. `db` must stay valid until `swap` replaces it or Stop().
  static Result<std::unique_ptr<ReplClient>> Start(
      Database* db, const ReplClientOptions& options, SnapshotSwapFn swap,
      ApplyHooks hooks = {});

  ~ReplClient();
  ReplClient(const ReplClient&) = delete;
  ReplClient& operator=(const ReplClient&) = delete;

  /// Stops the replication thread (current record finishes applying).
  void Stop();

  Stats stats() const;

  /// The most recent connection/apply failure, for `prix repl-status`.
  Status last_error() const;

  /// The current database (changes across snapshot swaps; serialized with
  /// the swap itself).
  Database* db() const;

 private:
  ReplClient(Database* db, const ReplClientOptions& options,
             SnapshotSwapFn swap, ApplyHooks hooks);

  void Run();
  /// One connection's lifetime: dial, hello, stream until error/stop.
  Status RunOnce();
  Result<int> Dial();
  Status HandleRecord(int fd, const ReplRecordFrame& rec);
  /// Receives the remaining chunks of a snapshot whose first frame is
  /// `first`, writes them to `db_path + ".snap-tmp"`, and runs the swap.
  Status HandleSnapshot(int fd, FrameDecoder* dec,
                        const ReplSnapshotFrame& first);
  void SetLastError(const Status& st);
  uint32_t NextBackoffMs();

  ReplClientOptions options_;
  SnapshotSwapFn swap_;
  ApplyHooks hooks_;

  mutable std::mutex mu_;
  Database* db_;           // guarded by mu_ (swaps happen on the run thread)
  Status last_error_;      // guarded by mu_
  uint64_t cursor_gen_ = 0;
  uint32_t cursor_manifest_ = 0;
  bool want_snapshot_ = false;

  std::atomic<bool> stop_{false};
  std::thread thread_;
  uint32_t backoff_attempt_ = 0;
  uint64_t rng_state_ = 0;  // splitmix64; run-thread only

  std::atomic<uint64_t> applied_gen_{0};
  std::atomic<uint64_t> leader_gen_{0};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> snapshots_installed_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> divergences_{0};
};

}  // namespace prix

#endif  // PRIX_REPL_CLIENT_H_
