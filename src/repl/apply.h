#ifndef PRIX_REPL_APPLY_H_
#define PRIX_REPL_APPLY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"

namespace prix {

/// Side effects the embedding process wants to observe during replay.
struct ApplyHooks {
  /// Fired after a kPutBlob record publishes (e.g. the CLI reloads its tag
  /// dictionary when the "tags" blob lands).
  std::function<void(const std::string& name, const std::vector<char>& blob)>
      on_blob;
};

/// Replays one shipped oplog record into the follower's database through
/// the SAME tri-engine ingest paths the leader ran, committing one local
/// generation. The caller stages the replication cursor first
/// (Database::StageReplCursor), so the commit this apply performs persists
/// cursor and state atomically.
///
/// Typed failures: FailedPrecondition means the histories have diverged (a
/// barrier record, an unknown op kind, or a replayed DocId that disagrees
/// with what the leader recorded) and the follower must resync from a full
/// snapshot; anything else is a local fault (I/O, crash injection) and the
/// record can simply be retried after recovery.
Status ApplyOpRecord(Database* db, uint8_t op_kind,
                     const std::vector<char>& payload,
                     const ApplyHooks& hooks);

}  // namespace prix

#endif  // PRIX_REPL_APPLY_H_
