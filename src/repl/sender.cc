#include "repl/sender.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/macros.h"
#include "storage/page.h"

namespace prix {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

ReplSender::ReplSender(Database* db, const ReplSenderOptions& options)
    : db_(db), options_(options) {}

Result<std::unique_ptr<ReplSender>> ReplSender::Start(
    Database* db, const ReplSenderOptions& options) {
  auto sender = std::unique_ptr<ReplSender>(new ReplSender(db, options));
  // Every snapshot chunk must fit one wire frame (payload fixed fields + the
  // chunk itself under kMaxFrameBody), whatever the caller asked for.
  constexpr size_t kMaxChunk = kMaxFrameBody - 64;
  if (sender->options_.snapshot_chunk_bytes == 0 ||
      sender->options_.snapshot_chunk_bytes > kMaxChunk) {
    sender->options_.snapshot_chunk_bytes = kMaxChunk;
  }
  if (sender->options_.poll_interval_ms == 0) {
    sender->options_.poll_interval_ms = 1;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) < 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  sender->listen_fd_ = fd;
  sender->port_ = ntohs(addr.sin_port);
  sender->accept_thread_ =
      std::thread([s = sender.get()] { s->AcceptLoop(); });
  return sender;
}

ReplSender::~ReplSender() { Stop(); }

void ReplSender::Stop() {
  bool was_stopped = stop_.exchange(true);
  if (!was_stopped && listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone, so conns_ can no longer grow; join without
  // holding conns_mu_ (follower threads take it to record their exit).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

ReplSender::Stats ReplSender::stats() const {
  Stats s;
  s.records_sent = records_sent_.load(std::memory_order_relaxed);
  s.snapshots_sent = snapshots_sent_.load(std::memory_order_relaxed);
  s.divergences = divergences_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.min_acked_gen = ~0ull;
  std::lock_guard<std::mutex> lock(conns_mu_);
  s.last_conn_error = last_conn_error_;
  for (const auto& conn : conns_) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    if (!conn->active.load(std::memory_order_acquire)) continue;
    ++s.followers;
    uint64_t acked = conn->acked_gen.load(std::memory_order_acquire);
    if (acked < s.min_acked_gen) s.min_acked_gen = acked;
  }
  return s;
}

void ReplSender::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplSender::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EBADF || errno == EINVAL) break;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    ReapFinished();
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live = conns_.size();
    }
    if (options_.max_followers != 0 && live >= options_.max_followers) {
      SendTypedError(fd, StatusCode::kResourceExhausted,
                     "follower limit of " +
                         std::to_string(options_.max_followers) +
                         " reached; retry later");
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<FollowerConn>();
    conn->fd = fd;
    FollowerConn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { FollowerLoop(raw); });
    }
  }
}

Status ReplSender::SendFrame(int fd, std::vector<char> frame) {
  uint64_t idx = frames_sent_.fetch_add(1, std::memory_order_relaxed) + 1;
  const LinkFaultSchedule& faults = options_.faults;
  if (faults.drop_after_frames != 0 && idx == faults.drop_after_frames) {
    return Status::Unavailable("link fault: dropped frame #" +
                               std::to_string(idx));
  }
  if (faults.garble_frame != 0 && idx == faults.garble_frame &&
      !frame.empty()) {
    // Flip one payload bit mid-frame: the framing survives, so corruption
    // must be caught by the follower's manifest-chain check, not by luck.
    frame[frame.size() / 2] ^= 0x40;
  }
  if (faults.short_frame != 0 && idx == faults.short_frame) {
    std::vector<char> half(frame.begin(), frame.begin() + frame.size() / 2);
    (void)WriteAll(fd, half);
    return Status::Unavailable("link fault: short transfer on frame #" +
                               std::to_string(idx));
  }
  return WriteAll(fd, frame);
}

void ReplSender::SendTypedError(int fd, StatusCode code,
                                const std::string& message) {
  ErrorResponse err;
  err.request_id = 0;
  err.status_code = static_cast<uint32_t>(code);
  err.message = message;
  (void)SendFrame(fd, EncodeError(err));
}

Status ReplSender::ShipSnapshot(int fd, FrameDecoder* dec, uint64_t* pos,
                                uint32_t* pos_manifest) {
  // One low-water bound on the database: concurrent ships serialize here so
  // EndFileSnapshot never lifts a bound another ship still depends on.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  PRIX_ASSIGN_OR_RETURN(Database::FileSnapshot snap, db_->BeginFileSnapshot());
  Status send_st = [&]() -> Status {
    uint32_t seq = 0;
    std::vector<char> chunk;
    chunk.reserve(options_.snapshot_chunk_bytes);
    auto flush = [&](bool last) -> Status {
      ReplSnapshotFrame f;
      f.snapshot_gen = snap.gen;
      f.manifest = snap.manifest;
      f.seq = seq++;
      f.last = last ? 1 : 0;
      f.chunk = std::move(chunk);
      chunk.clear();
      chunk.reserve(options_.snapshot_chunk_bytes);
      return SendFrame(fd, EncodeReplSnapshot(f));
    };
    auto append = [&](const char* data, size_t n) -> Status {
      while (n > 0) {
        size_t room = options_.snapshot_chunk_bytes - chunk.size();
        size_t take = n < room ? n : room;
        chunk.insert(chunk.end(), data, data + take);
        data += take;
        n -= take;
        if (chunk.size() == options_.snapshot_chunk_bytes) {
          PRIX_RETURN_NOT_OK(flush(false));
        }
      }
      return Status::OK();
    };
    // The snapshot's byte stream is the database file at snap.gen: the two
    // header pages captured under the commit lock, then every data page.
    // Pages >= 2 are safe to read lock-free — COW never overwrites a
    // committed page and the low-water bound blocks reuse of freed ones.
    PRIX_RETURN_NOT_OK(
        append(snap.header_pages.data(), snap.header_pages.size()));
    std::vector<char> page(kPageSize);
    for (uint32_t p = 2; p < snap.num_pages; ++p) {
      if (stop_.load(std::memory_order_acquire)) {
        return Status::Unavailable("sender shutting down");
      }
      PRIX_RETURN_NOT_OK(db_->disk()->ReadPage(p, page.data()));
      PRIX_RETURN_NOT_OK(append(page.data(), kPageSize));
    }
    return flush(true);  // always sends a final frame, even an empty one
  }();
  db_->EndFileSnapshot();
  PRIX_RETURN_NOT_OK(send_st);

  PRIX_ASSIGN_OR_RETURN(
      std::optional<Frame> got,
      ReadFrame(fd, dec, options_.ack_timeout_ms, &stop_));
  if (!got) {
    return Status::Unavailable("follower closed during snapshot install");
  }
  if (got->type != FrameType::kReplAck) {
    return Status::InvalidArgument("expected kReplAck after snapshot, got " +
                                   std::to_string(static_cast<int>(got->type)));
  }
  PRIX_ASSIGN_OR_RETURN(ReplAck ack, DecodeReplAck(*got));
  if (ack.applied_gen != snap.gen || ack.manifest != snap.manifest) {
    divergences_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "follower acked snapshot at gen " + std::to_string(ack.applied_gen) +
        " but the shipped snapshot was gen " + std::to_string(snap.gen));
  }
  *pos = snap.gen;
  *pos_manifest = snap.manifest;
  snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ReplSender::FollowerLoop(FollowerConn* conn) {
  FrameDecoder dec;
  uint64_t pos = 0;
  uint32_t pos_manifest = 0;
  const int fd = conn->fd;

  auto run = [&]() -> Status {
    PRIX_ASSIGN_OR_RETURN(
        std::optional<Frame> got,
        ReadFrame(fd, &dec, options_.hello_timeout_ms, &stop_));
    if (!got) return Status::Unavailable("follower closed before hello");
    if (got->type != FrameType::kReplHello) {
      SendTypedError(fd, StatusCode::kInvalidArgument,
                     "expected kReplHello as the first frame");
      return Status::InvalidArgument("first frame was not kReplHello");
    }
    PRIX_ASSIGN_OR_RETURN(ReplHello hello, DecodeReplHello(*got));
    pos = hello.cursor_gen;
    pos_manifest = hello.cursor_manifest;
    conn->acked_gen.store(pos, std::memory_order_release);
    conn->active.store(true, std::memory_order_release);

    bool need_snapshot = hello.want_snapshot != 0;
    if (!need_snapshot) {
      Result<uint32_t> manifest = db_->oplog()->ManifestAt(hello.cursor_gen);
      if (!manifest.ok()) {
        // Cursor outside the oplog's tail: the follower lags a rebased log
        // (or claims a future generation). Typed error, then fall back to a
        // full snapshot on the same connection.
        SendTypedError(fd, StatusCode::kOutOfRange,
                       "cursor gen " + std::to_string(hello.cursor_gen) +
                           " is outside the oplog tail [" +
                           std::to_string(db_->oplog()->base_gen()) + ", " +
                           std::to_string(db_->oplog()->last_gen()) +
                           "]; shipping snapshot");
        need_snapshot = true;
      } else if (*manifest != hello.cursor_manifest) {
        divergences_.fetch_add(1, std::memory_order_relaxed);
        SendTypedError(fd, StatusCode::kFailedPrecondition,
                       "manifest mismatch at gen " +
                           std::to_string(hello.cursor_gen) +
                           ": histories have diverged; shipping snapshot");
        need_snapshot = true;
      }
    }
    if (need_snapshot) {
      PRIX_RETURN_NOT_OK(ShipSnapshot(fd, &dec, &pos, &pos_manifest));
      conn->acked_gen.store(pos, std::memory_order_release);
    }

    while (!stop_.load(std::memory_order_acquire)) {
      OpLog* log = db_->oplog();
      if (pos >= log->last_gen()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.poll_interval_ms));
        continue;
      }
      Result<OpRecord> rec = log->RecordAt(pos + 1);
      if (!rec.ok()) {
        if (rec.status().code() == StatusCode::kOutOfRange) {
          // The oplog rebased past this follower while it streamed (bounded
          // tail): fall back to a snapshot instead of stalling forever.
          PRIX_RETURN_NOT_OK(ShipSnapshot(fd, &dec, &pos, &pos_manifest));
          conn->acked_gen.store(pos, std::memory_order_release);
          continue;
        }
        return rec.status();
      }
      ReplRecordFrame frame;
      frame.gen = rec->gen;
      frame.manifest = rec->manifest;
      frame.op_kind = static_cast<uint8_t>(rec->kind);
      frame.leader_gen = db_->catalog_generation();
      frame.payload = std::move(rec->payload);
      PRIX_RETURN_NOT_OK(SendFrame(fd, EncodeReplRecord(frame)));

      PRIX_ASSIGN_OR_RETURN(
          std::optional<Frame> ack_frame,
          ReadFrame(fd, &dec, options_.ack_timeout_ms, &stop_));
      if (!ack_frame) {
        return Status::Unavailable("follower closed awaiting ack");
      }
      if (ack_frame->type != FrameType::kReplAck) {
        return Status::InvalidArgument(
            "expected kReplAck, got frame type " +
            std::to_string(static_cast<int>(ack_frame->type)));
      }
      PRIX_ASSIGN_OR_RETURN(ReplAck ack, DecodeReplAck(*ack_frame));
      if (ack.applied_gen != frame.gen || ack.manifest != frame.manifest) {
        // The follower applied something other than what we sent: diverged.
        divergences_.fetch_add(1, std::memory_order_relaxed);
        SendTypedError(fd, StatusCode::kFailedPrecondition,
                       "ack for gen " + std::to_string(ack.applied_gen) +
                           " does not match shipped gen " +
                           std::to_string(frame.gen) + "; shipping snapshot");
        PRIX_RETURN_NOT_OK(ShipSnapshot(fd, &dec, &pos, &pos_manifest));
      } else {
        pos = frame.gen;
        pos_manifest = frame.manifest;
        records_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      conn->acked_gen.store(pos, std::memory_order_release);
    }
    return Status::Unavailable("sender shutting down");
  };

  Status st = run();
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    last_conn_error_ = st.ToString();
  }
  conn->active.store(false, std::memory_order_release);
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace prix
