#ifndef PRIX_SERVE_REPLAY_H_
#define PRIX_SERVE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/queryfile.h"
#include "common/result.h"

namespace prix {

/// Workload shape for RunReplay (`prix bench-serve`). Closed loop by
/// default: each connection keeps exactly one request in flight and sends
/// the next when the response lands. Setting `open_loop_qps` switches to an
/// open loop: requests are launched on a fixed schedule regardless of
/// response latency — the shape that actually exposes overload behavior,
/// because a slow server cannot slow the arrival rate down.
struct ReplayOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 1;  ///< concurrent client connections
  size_t passes = 1;       ///< passes over the query list
  uint32_t timeout_ms = 0; ///< per-request deadline sent on the wire
  size_t batch_size = 1;   ///< queries per request frame
  double open_loop_qps = 0;  ///< 0 = closed loop
  /// SHED retry policy: exponential backoff with full jitter, seeded so a
  /// bench run is reproducible.
  size_t max_retries = 8;
  uint64_t backoff_base_ms = 2;
  uint64_t backoff_cap_ms = 250;
  uint64_t seed = 42;
};

/// Everything a bench run measures. Latencies are per completed (kResult)
/// request, end to end including any SHED-retry backoff.
struct ReplayReport {
  uint64_t requests = 0;       ///< kQuery frames sent (including retries)
  uint64_t ok = 0;             ///< kResult responses
  uint64_t cached = 0;         ///< kResult responses served from the cache
  uint64_t shed = 0;           ///< kShed responses observed
  uint64_t retries = 0;        ///< resends after a SHED
  uint64_t gave_up = 0;        ///< requests dropped after max_retries SHEDs
  uint64_t errors = 0;         ///< kError responses
  uint64_t deadline_errors = 0;  ///< kError carrying DeadlineExceeded
  uint64_t docs = 0;           ///< matching documents summed over answers
  std::vector<uint64_t> latencies_us;
  std::vector<uint64_t> generations;  ///< distinct generations, sorted
  /// Per connection, response generations never decreased — the snapshot
  /// monotonicity a client observes across its own requests.
  bool generations_monotonic = true;
};

/// Value at quantile `q` (0.5/0.95/0.99); sorts `latencies` in place.
uint64_t LatencyPercentileUs(std::vector<uint64_t>* latencies, double q);

/// Replays `queries` against a running `prix serve` instance. Queries are
/// dealt round-robin across connections, grouped into batches of
/// `batch_size`. Returns non-OK only for infrastructure failures (cannot
/// connect, protocol violation by the server); per-request errors and sheds
/// are counted in the report.
Status RunReplay(const ReplayOptions& options,
                 const std::vector<QueryFileEntry>& queries,
                 ReplayReport* report);

}  // namespace prix

#endif  // PRIX_SERVE_REPLAY_H_
