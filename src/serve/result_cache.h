#ifndef PRIX_SERVE_RESULT_CACHE_H_
#define PRIX_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prix {

// Generation-keyed query result cache (DESIGN.md §5j). The key is
// (index, catalog generation, xpath), so an ingest commit invalidates every
// cached answer FOR FREE: the new generation simply never hits the old
// keys. Stale entries are not hunted down — they age out through the LRU
// like anything else, which is correct because a hit on an old generation
// key can only come from a request pinned to that generation, and such a
// hit is still the right answer for that snapshot.
//
// Memory is bounded by `max_bytes` of charged entry weight (key bytes +
// doc payload + fixed per-entry overhead); inserting past the bound evicts
// least-recently-used entries first. All operations take one mutex — the
// critical sections are memcpy-sized, and the cache sits in front of query
// execution that is milliseconds long.
class ResultCache {
 public:
  /// max_bytes == 0 disables the cache (Lookup misses, Insert drops).
  explicit ResultCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, fills `docs` and refreshes the entry's LRU position.
  bool Lookup(const std::string& index, uint64_t generation,
              const std::string& xpath, std::vector<uint32_t>* docs);

  /// Inserts/overwrites, then evicts LRU entries until within budget. An
  /// entry that alone exceeds the whole budget is not cached.
  void Insert(const std::string& index, uint64_t generation,
              const std::string& xpath, const std::vector<uint32_t>& docs);

  size_t bytes() const;
  size_t entries() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::vector<uint32_t> docs;
    size_t weight = 0;
  };

  static std::string MakeKey(const std::string& index, uint64_t generation,
                             const std::string& xpath);
  static size_t Weight(const std::string& key,
                       const std::vector<uint32_t>& docs);
  void EvictLocked();

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace prix

#endif  // PRIX_SERVE_RESULT_CACHE_H_
