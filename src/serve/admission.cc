#include "serve/admission.h"

#include <algorithm>
#include <chrono>

namespace prix {

AdmissionController::AdmissionController(const Options& options)
    : options_(options),
      // Cold-start guard: before any request has completed the EWMA is pure
      // guesswork, so an unset (zero) seed falls back to a conservative
      // figure — shedding a meetable deadline costs one retry; admitting an
      // unmeetable one wastes a slot on a corpse.
      ewma_service_us_(options.initial_service_us > 0
                           ? options.initial_service_us
                           : kConservativeServiceUs) {}

uint64_t AdmissionController::PredictedWaitUsLocked() const {
  // Every max_executing releases admit one queue position, so a request
  // arriving behind `queued` waiters with all slots busy waits roughly
  // (queued / slots + 1) service times. Coarse on purpose: it only has to
  // be right within a factor of two for deadline-unmeetable shedding to
  // beat queueing the corpse.
  size_t slots = std::max<size_t>(1, options_.max_executing);
  uint64_t queue_rounds = (queue_.size() + slots) / slots;
  return ewma_service_us_ * queue_rounds;
}

uint32_t AdmissionController::RetryAfterMsLocked() const {
  uint64_t us = PredictedWaitUsLocked();
  return static_cast<uint32_t>(std::max<uint64_t>(1, us / 1000));
}

Status AdmissionController::Admit(uint64_t client_id, const Deadline* deadline,
                                  uint32_t* retry_after_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto shed = [&](const std::string& why) {
    ++shed_total_;
    if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
    return Status::ResourceExhausted(why);
  };
  if (draining_) {
    ++shed_total_;
    if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
    return Status::Unavailable("server is draining");
  }
  auto cit = client_inflight_.find(client_id);
  size_t inflight_now = cit == client_inflight_.end() ? 0 : cit->second;
  if (inflight_now >= options_.per_client_inflight) {
    return shed("client has " + std::to_string(inflight_now) +
                " requests in flight (limit " +
                std::to_string(options_.per_client_inflight) + ")");
  }
  if (queue_.size() >= options_.max_queued) {
    return shed("admission queue full (" +
                std::to_string(options_.max_queued) + " waiting)");
  }
  if (deadline != nullptr && deadline->has_expiry() && executing_ >= options_.max_executing) {
    uint64_t predicted = PredictedWaitUsLocked();
    if (deadline->remaining_us() < predicted) {
      return shed("deadline unmeetable: predicted queue wait " +
                  std::to_string(predicted / 1000) + " ms exceeds remaining " +
                  std::to_string(deadline->remaining_us() / 1000) + " ms");
    }
  }
  ++client_inflight_[client_id];
  auto drop_client = [this, client_id]() {
    auto it = client_inflight_.find(client_id);
    if (it == client_inflight_.end()) return;
    if (it->second > 0) --it->second;
    if (it->second == 0) client_inflight_.erase(it);
  };
  auto waiter = std::make_shared<Waiter>();
  waiter->client_id = client_id;
  queue_.push_back(waiter);
  GrantLocked();
  while (!waiter->granted) {
    if (draining_) {
      waiter->abandoned = true;
      drop_client();
      ++shed_total_;
      GrantLocked();
      if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMsLocked();
      return Status::Unavailable("server is draining");
    }
    Status dead = deadline != nullptr ? deadline->Check() : Status::OK();
    if (!dead.ok()) {
      waiter->abandoned = true;
      drop_client();
      GrantLocked();
      return dead.Annotate("while queued for admission");
    }
    // Wake at least every 50 ms to re-check the deadline; a deadline closer
    // than that bounds the sleep itself.
    uint64_t sleep_us = 50'000;
    if (deadline != nullptr && deadline->has_expiry()) {
      sleep_us = std::min(sleep_us, deadline->remaining_us() + 1);
    }
    cv_.wait_for(lock, std::chrono::microseconds(sleep_us));
  }
  ++admitted_total_;
  return Status::OK();
}

void AdmissionController::GrantLocked() {
  bool granted_any = false;
  while (executing_ < options_.max_executing && !queue_.empty()) {
    std::shared_ptr<Waiter> w = queue_.front();
    queue_.pop_front();
    if (w->abandoned) continue;
    w->granted = true;
    ++executing_;
    granted_any = true;
  }
  // Also reap abandoned waiters stuck behind a full executing set so the
  // bounded queue is bounded by LIVE waiters.
  while (!queue_.empty() && queue_.front()->abandoned) queue_.pop_front();
  if (granted_any) cv_.notify_all();
}

void AdmissionController::Release(uint64_t client_id, uint64_t service_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (executing_ > 0) --executing_;
  auto it = client_inflight_.find(client_id);
  if (it != client_inflight_.end()) {
    if (it->second > 0) --it->second;
    if (it->second == 0) client_inflight_.erase(it);
  }
  if (!has_sample_) {
    // First completed request: adopt its service time outright instead of
    // blending into the synthetic seed — a seed orders of magnitude off
    // would otherwise take ~log(err)/log(4/3) releases to converge, shedding
    // meetable requests (seed too high) or queueing corpses (too low) the
    // whole way down.
    ewma_service_us_ = std::max<uint64_t>(1, service_us);
    has_sample_ = true;
  } else {
    // EWMA with alpha = 1/4: new = old + (sample - old) / 4, in integers.
    ewma_service_us_ =
        ewma_service_us_ + (static_cast<int64_t>(service_us) -
                            static_cast<int64_t>(ewma_service_us_)) /
                               4;
    if (ewma_service_us_ == 0) ewma_service_us_ = 1;
  }
  GrantLocked();
  cv_.notify_all();
}

void AdmissionController::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
}

size_t AdmissionController::executing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executing_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t AdmissionController::ewma_service_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_service_us_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

}  // namespace prix
