#ifndef PRIX_SERVE_WIRE_H_
#define PRIX_SERVE_WIRE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace prix {

// The serving layer's wire protocol (DESIGN.md §5j): length-prefixed binary
// frames over a byte stream.
//
//   frame   .=. u32 body_len (LE) | body
//   body    .=. u8 type | payload        (body_len = 1 + payload bytes)
//
// Every multi-byte integer is little-endian. Frame types and payloads:
//
//   kQuery  (client->server)  u64 request_id | u32 timeout_ms |
//                             u32 count | count x (u32 len | xpath bytes)
//   kResult (server->client)  u64 request_id | u64 generation | u8 cached |
//                             u32 count | count x (u32 n | n x u32 doc)
//   kError  (server->client)  u64 request_id | u32 status_code |
//                             u32 len | message bytes
//   kShed   (server->client)  u64 request_id | u32 retry_after_ms |
//                             u32 len | message bytes
//   kPing   (client->server)  arbitrary payload, echoed back
//   kPong   (server->client)  the kPing payload
//
// Replication frames (DESIGN.md §5l) ride the same framing with the same
// hostile-peer discipline:
//
//   kReplHello    (follower->leader)  u64 cursor_gen | u32 cursor_manifest |
//                                     u8 want_snapshot
//   kReplRecord   (leader->follower)  u64 gen | u32 manifest | u8 op_kind |
//                                     u64 leader_gen | u32 len | payload
//   kReplSnapshot (leader->follower)  u64 snapshot_gen | u32 manifest |
//                                     u32 seq | u8 last | u32 len | chunk
//   kReplAck      (follower->leader)  u64 applied_gen | u32 manifest
//
// The decoder assumes the peer is hostile: a declared body length is
// validated against kMaxFrameBody BEFORE any allocation, field counts are
// validated against the bytes actually present before any reserve, and
// every malformed shape yields a typed InvalidArgument naming the field —
// never a crash, an unbounded allocation, or a silent truncation.

enum class FrameType : uint8_t {
  kQuery = 1,
  kResult = 2,
  kError = 3,
  kShed = 4,
  kPing = 5,
  kPong = 6,
  kReplHello = 7,
  kReplRecord = 8,
  kReplSnapshot = 9,
  kReplAck = 10,
};

/// Largest accepted frame body (type byte + payload). A batch of Table-3
/// XPath queries is a few KB; 1 MiB leaves room for large result frames
/// while capping what a hostile length prefix can make the server buffer.
constexpr size_t kMaxFrameBody = 1u << 20;

/// Cap on the message field of kError/kShed frames. Status messages can
/// embed client-controlled text (a DeadlineExceeded names its xpath, which
/// alone can approach kMaxFrameBody), so EncodeError/EncodeShed truncate
/// rather than let a reply outgrow the frame it must fit in.
constexpr size_t kMaxWireMessageBytes = 64u << 10;

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<char> payload;
};

/// Incremental frame decoder for one connection. Feed() appends received
/// bytes; Next() yields one decoded frame, std::nullopt when more bytes are
/// needed, or a typed error for a malformed stream (oversized or zero
/// length prefix, unknown type byte). After an error the stream is
/// poisoned: the caller must drop the connection (framing can't resync).
///
/// Memory bound: the header is validated as soon as 5 bytes arrive, so the
/// buffer never holds more than one accepted frame plus whatever the last
/// Feed() appended — a peer drip-feeding a huge length prefix is rejected
/// before the decoder commits any memory to it.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_body = kMaxFrameBody)
      : max_body_(max_body) {}

  void Feed(const char* data, size_t n) { buf_.insert(buf_.end(), data, data + n); }

  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet decoded — nonzero at connection EOF means
  /// the peer disconnected mid-frame.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_body_;
  std::vector<char> buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_, compacted between frames
};

/// Appends one encoded frame to `out`. PRIX_CHECKs that the body fits
/// kMaxFrameBody — a last-resort invariant, not input validation: every
/// producer bounds its payload first (kQuery/kPong payloads are decoded
/// from capped frames, kError/kShed messages are truncated, and the server
/// sizes kResult with ResultPayloadBytes() before encoding).
void AppendFrame(std::vector<char>* out, FrameType type,
                 const std::vector<char>& payload);

// ---- typed payloads ----

struct QueryRequest {
  uint64_t request_id = 0;
  uint32_t timeout_ms = 0;  ///< 0 = use the server default (possibly none)
  std::vector<std::string> xpaths;
};

struct QueryResponse {
  uint64_t request_id = 0;
  uint64_t generation = 0;  ///< catalog generation the answers reflect
  bool cached = false;      ///< answered from the result cache
  std::vector<std::vector<uint32_t>> docs;  ///< per query, sorted DocIds
};

struct ErrorResponse {
  uint64_t request_id = 0;
  uint32_t status_code = 0;  ///< StatusCode of the failure
  std::string message;
};

struct ShedResponse {
  uint64_t request_id = 0;
  uint32_t retry_after_ms = 0;  ///< client backoff hint
  std::string message;
};

/// Follower's opening frame: the leader position it has applied through.
/// `want_snapshot` forces a full-file resync regardless of the cursor (the
/// recovery move after detected divergence or a barrier record).
struct ReplHello {
  uint64_t cursor_gen = 0;
  uint32_t cursor_manifest = 0;
  uint8_t want_snapshot = 0;
};

/// One shipped oplog record. `op_kind` stays a raw byte at the wire layer
/// (the repl apply layer validates it — an unknown kind is divergence, not
/// a framing error). `leader_gen` is the leader's committed generation at
/// send time, so the follower can report its lag in generations.
struct ReplRecordFrame {
  uint64_t gen = 0;
  uint32_t manifest = 0;
  uint8_t op_kind = 0;
  uint64_t leader_gen = 0;
  std::vector<char> payload;
};

/// One chunk of a full-file snapshot ship. Chunks arrive in `seq` order;
/// `last` marks the final one. The gen/manifest fields repeat on every
/// chunk so a follower can sanity-check mid-stream.
struct ReplSnapshotFrame {
  uint64_t snapshot_gen = 0;
  uint32_t manifest = 0;
  uint32_t seq = 0;
  uint8_t last = 0;
  std::vector<char> chunk;
};

/// Follower's acknowledgment of an applied record (or installed snapshot):
/// its new cursor. The leader verifies the manifest echoes what it sent —
/// a mismatch is divergence detected at the leader.
struct ReplAck {
  uint64_t applied_gen = 0;
  uint32_t manifest = 0;
};

std::vector<char> EncodeQuery(const QueryRequest& req);
std::vector<char> EncodeResult(const QueryResponse& resp);
std::vector<char> EncodeError(const ErrorResponse& resp);
std::vector<char> EncodeShed(const ShedResponse& resp);
std::vector<char> EncodeReplHello(const ReplHello& hello);
std::vector<char> EncodeReplRecord(const ReplRecordFrame& rec);
std::vector<char> EncodeReplSnapshot(const ReplSnapshotFrame& snap);
std::vector<char> EncodeReplAck(const ReplAck& ack);

/// Exact payload size EncodeResult would produce. Result size is driven by
/// query selectivity and batch size — which a hostile batch controls — so
/// the server checks `ResultPayloadBytes(resp) + 1 <= kMaxFrameBody` and
/// answers with a typed ResourceExhausted error instead of letting
/// AppendFrame's invariant abort the process.
size_t ResultPayloadBytes(const QueryResponse& resp);

/// Decoders validate the claimed frame type and every length field against
/// the payload bytes actually present (typed InvalidArgument otherwise).
Result<QueryRequest> DecodeQuery(const Frame& frame);
Result<QueryResponse> DecodeResult(const Frame& frame);
Result<ErrorResponse> DecodeError(const Frame& frame);
Result<ShedResponse> DecodeShed(const Frame& frame);
Result<ReplHello> DecodeReplHello(const Frame& frame);
Result<ReplRecordFrame> DecodeReplRecord(const Frame& frame);
Result<ReplSnapshotFrame> DecodeReplSnapshot(const Frame& frame);
Result<ReplAck> DecodeReplAck(const Frame& frame);

/// Best-effort request id of a frame whose full decode failed (the first
/// payload field of every typed frame), so error replies can still name
/// the request. 0 when even that much is missing.
uint64_t PeekRequestId(const Frame& frame);

// ---- blocking socket helpers (shared by server and replay client) ----

/// Writes all of `data` to `fd`, retrying short writes and EINTR. EPIPE and
/// ECONNRESET come back as Unavailable (peer gone).
Status WriteAll(int fd, const std::vector<char>& data);

/// Reads frames from `fd` through `dec`. Returns the next frame, or
/// std::nullopt on clean EOF (peer closed between frames), or a typed
/// error: InvalidArgument for malformed/truncated streams (EOF mid-frame),
/// DeadlineExceeded when a full frame has not arrived within
/// `idle_timeout_ms` of entering the call (the slowloris guard; 0
/// disables) — the clock is NOT reset by partial progress, so a peer
/// dripping one byte at a time cannot hold the call (and its connection
/// thread) open past the timeout — and Unavailable for socket errors.
/// `stop`, when non-null, makes the poll loop return
/// Unavailable("shutting down") promptly after it turns true.
///
/// `conn_idle_timeout_ms`, when nonzero, splits the clock in two: silence
/// BEFORE the first byte of a frame arrives is allowed to last that long
/// (the connection-idle bound — typically much longer than the per-frame
/// bound), and `idle_timeout_ms` is re-armed from the moment the first
/// frame byte lands, bounding only the frame's delivery. A caller can tell
/// the two timeouts apart without parsing messages: a connection-idle reap
/// returns DeadlineExceeded with dec->buffered() == 0 (no frame bytes ever
/// arrived), a slowloris kill with bytes buffered. With 0 the behavior is
/// exactly the legacy single clock armed at entry.
Result<std::optional<Frame>> ReadFrame(int fd, FrameDecoder* dec,
                                       uint32_t idle_timeout_ms,
                                       const std::atomic<bool>* stop = nullptr,
                                       uint32_t conn_idle_timeout_ms = 0);

}  // namespace prix

#endif  // PRIX_SERVE_WIRE_H_
