#include "serve/replay.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "common/deadline.h"
#include "common/macros.h"
#include "serve/wire.h"

namespace prix {

namespace {

Result<int> ConnectTo(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError("socket: " + std::string(std::strerror(errno)));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Per-connection slice of the report, merged under a mutex at the end so
/// worker threads never contend mid-run.
struct ConnStats {
  uint64_t requests = 0, ok = 0, cached = 0, shed = 0, retries = 0;
  uint64_t gave_up = 0, errors = 0, deadline_errors = 0, docs = 0;
  std::vector<uint64_t> latencies_us;
  std::set<uint64_t> generations;
  bool generations_monotonic = true;
  Status fatal;  ///< infrastructure failure (stops this connection)
};

void RunConnection(const ReplayOptions& options,
                   const std::vector<QueryFileEntry>& queries,
                   size_t conn_index, ConnStats* stats) {
  auto fd_or = ConnectTo(options.host, options.port);
  if (!fd_or.ok()) {
    stats->fatal = fd_or.status();
    return;
  }
  int fd = *fd_or;
  FrameDecoder dec;
  // Deterministic per-connection RNG for backoff jitter.
  std::mt19937_64 rng(options.seed * 7919 + conn_index);

  // This connection's share of the workload: queries dealt round-robin,
  // grouped into batches.
  std::vector<std::vector<std::string>> batches;
  {
    std::vector<std::string> cur;
    for (size_t pass = 0; pass < options.passes; ++pass) {
      for (size_t i = conn_index; i < queries.size();
           i += options.connections) {
        cur.push_back(queries[i].text);
        if (cur.size() >= options.batch_size) {
          batches.push_back(std::move(cur));
          cur.clear();
        }
      }
    }
    if (!cur.empty()) batches.push_back(std::move(cur));
  }

  // Open-loop schedule: request k is due at start + k / per-connection-qps.
  uint64_t start_us = Deadline::NowMicros();
  double conn_qps = options.open_loop_qps / options.connections;
  uint64_t prev_generation = 0;

  for (size_t k = 0; k < batches.size(); ++k) {
    if (conn_qps > 0) {
      uint64_t due_us =
          start_us + static_cast<uint64_t>(k * 1'000'000.0 / conn_qps);
      uint64_t now = Deadline::NowMicros();
      if (now < due_us) {
        std::this_thread::sleep_for(std::chrono::microseconds(due_us - now));
      }
    }
    QueryRequest req;
    req.request_id = conn_index * 1'000'000 + k + 1;
    req.timeout_ms = options.timeout_ms;
    req.xpaths = batches[k];

    uint64_t attempt_start = Deadline::NowMicros();
    bool answered = false;
    for (size_t attempt = 0; attempt <= options.max_retries; ++attempt) {
      ++stats->requests;
      if (attempt > 0) ++stats->retries;
      if (!WriteAll(fd, EncodeQuery(req)).ok()) {
        stats->fatal = Status::Unavailable("server closed the connection");
        ::close(fd);
        return;
      }
      auto got = ReadFrame(fd, &dec, /*idle_timeout_ms=*/60'000);
      if (!got.ok() || !got->has_value()) {
        stats->fatal = got.ok()
                           ? Status::Unavailable("server closed mid-request")
                           : got.status();
        ::close(fd);
        return;
      }
      const Frame& frame = **got;
      if (frame.type == FrameType::kShed) {
        auto shed = DecodeShed(frame);
        if (!shed.ok()) {
          stats->fatal = shed.status();
          ::close(fd);
          return;
        }
        ++stats->shed;
        if (attempt == options.max_retries) break;  // counted below
        // Exponential backoff with full jitter, floored at the server's
        // retry-after hint: sleep U(0, min(cap, base * 2^attempt)) but
        // never less than half the hint (so a loaded server's own estimate
        // is respected without synchronizing the retrying clients).
        uint64_t ceil_ms = std::min(options.backoff_cap_ms,
                                    options.backoff_base_ms << attempt);
        ceil_ms = std::max<uint64_t>(ceil_ms, shed->retry_after_ms);
        std::uniform_int_distribution<uint64_t> dist(shed->retry_after_ms / 2,
                                                     std::max<uint64_t>(
                                                         1, ceil_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(dist(rng)));
        continue;
      }
      if (frame.type == FrameType::kError) {
        auto err = DecodeError(frame);
        if (!err.ok()) {
          stats->fatal = err.status();
          ::close(fd);
          return;
        }
        ++stats->errors;
        if (err->status_code ==
            static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
          ++stats->deadline_errors;
        }
        answered = true;
        break;
      }
      auto resp = DecodeResult(frame);
      if (!resp.ok()) {
        stats->fatal = resp.status();
        ::close(fd);
        return;
      }
      ++stats->ok;
      if (resp->cached) ++stats->cached;
      stats->latencies_us.push_back(Deadline::NowMicros() - attempt_start);
      for (const std::vector<uint32_t>& docs : resp->docs) {
        stats->docs += docs.size();
      }
      stats->generations.insert(resp->generation);
      if (resp->generation < prev_generation) {
        stats->generations_monotonic = false;
      }
      prev_generation = resp->generation;
      answered = true;
      break;
    }
    if (!answered) ++stats->gave_up;
  }
  ::close(fd);
}

}  // namespace

uint64_t LatencyPercentileUs(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  size_t idx = static_cast<size_t>(q * (latencies->size() - 1) + 0.5);
  if (idx >= latencies->size()) idx = latencies->size() - 1;
  return (*latencies)[idx];
}

Status RunReplay(const ReplayOptions& options,
                 const std::vector<QueryFileEntry>& queries,
                 ReplayReport* report) {
  if (queries.empty()) {
    return Status::InvalidArgument("replay needs at least one query");
  }
  if (options.connections == 0 || options.batch_size == 0) {
    return Status::InvalidArgument(
        "connections and batch_size must be nonzero");
  }
  std::vector<ConnStats> stats(options.connections);
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back(
        [&options, &queries, c, &stats] {
          RunConnection(options, queries, c, &stats[c]);
        });
  }
  for (std::thread& t : threads) t.join();

  std::set<uint64_t> generations;
  Status fatal;
  for (const ConnStats& s : stats) {
    report->requests += s.requests;
    report->ok += s.ok;
    report->cached += s.cached;
    report->shed += s.shed;
    report->retries += s.retries;
    report->gave_up += s.gave_up;
    report->errors += s.errors;
    report->deadline_errors += s.deadline_errors;
    report->docs += s.docs;
    report->latencies_us.insert(report->latencies_us.end(),
                                s.latencies_us.begin(), s.latencies_us.end());
    generations.insert(s.generations.begin(), s.generations.end());
    report->generations_monotonic &= s.generations_monotonic;
    if (!s.fatal.ok() && fatal.ok()) fatal = s.fatal;
  }
  report->generations.assign(generations.begin(), generations.end());
  return fatal;
}

}  // namespace prix
