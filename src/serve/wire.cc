#include "serve/wire.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/deadline.h"
#include "common/macros.h"
#include "storage/record_store.h"

namespace prix {

namespace {

constexpr size_t kFrameHeaderBytes = 4;  // the u32 body length

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kQuery) &&
         t <= static_cast<uint8_t>(FrameType::kReplAck);
}

/// Bounds-checked payload cursor: every Get* verifies the bytes are present
/// before touching them, so a lying length field inside an
/// otherwise-well-framed payload yields a typed error, not a wild read.
class Cursor {
 public:
  Cursor(const char* p, size_t n) : p_(p), end_(p + n) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  Result<uint32_t> U32(const char* field) {
    PRIX_RETURN_NOT_OK(Need(4, field));
    uint32_t v = GetU32(p_);
    p_ += 4;
    return v;
  }

  Result<uint64_t> U64(const char* field) {
    PRIX_RETURN_NOT_OK(Need(8, field));
    uint64_t v = GetU64(p_);
    p_ += 8;
    return v;
  }

  Result<uint8_t> U8(const char* field) {
    PRIX_RETURN_NOT_OK(Need(1, field));
    return static_cast<uint8_t>(*p_++);
  }

  Result<std::string> Bytes(uint32_t len, const char* field) {
    PRIX_RETURN_NOT_OK(Need(len, field));
    std::string s(p_, len);
    p_ += len;
    return s;
  }

  Result<std::vector<char>> Blob(uint32_t len, const char* field) {
    PRIX_RETURN_NOT_OK(Need(len, field));
    std::vector<char> v(p_, p_ + len);
    p_ += len;
    return v;
  }

  Status ExpectEnd(const char* what) {
    if (p_ != end_) {
      return Status::InvalidArgument(
          std::string(what) + " frame carries " + std::to_string(remaining()) +
          " trailing byte(s) past its declared fields");
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n, const char* field) {
    if (remaining() < n) {
      return Status::InvalidArgument(
          std::string("frame payload truncated reading ") + field + " (need " +
          std::to_string(n) + " bytes, have " + std::to_string(remaining()) +
          ")");
    }
    return Status::OK();
  }

  const char* p_;
  const char* end_;
};

Status CheckType(const Frame& frame, FrameType want, const char* what) {
  if (frame.type != want) {
    return Status::InvalidArgument(
        std::string("expected a ") + what + " frame, got type " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return Status::OK();
}

void PutLenBytes(std::vector<char>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Error/shed messages can embed client-controlled text (e.g. the xpath a
/// DeadlineExceeded names), so they are truncated to kMaxWireMessageBytes
/// before framing — the reply must fit the frame it rides in.
void PutBoundedMessage(std::vector<char>* out, const std::string& s) {
  if (s.size() <= kMaxWireMessageBytes) {
    PutLenBytes(out, s);
    return;
  }
  PutLenBytes(out, s.substr(0, kMaxWireMessageBytes) + " ...[truncated]");
}

}  // namespace

Result<std::optional<Frame>> FrameDecoder::Next() {
  // Compact the consumed prefix so a long-lived connection's buffer does
  // not creep; done between frames only, when pos_ is a frame boundary.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::optional<Frame>();
  uint32_t body_len = GetU32(buf_.data() + pos_);
  // Header validation happens before the body is awaited (let alone
  // buffered): a hostile 4 GiB length prefix dies here, with 4 bytes held.
  if (body_len == 0) {
    return Status::InvalidArgument(
        "frame declares an empty body (no type byte)");
  }
  if (body_len > max_body_) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_body_) + "-byte limit");
  }
  if (avail < kFrameHeaderBytes + 1) return std::optional<Frame>();
  // The type byte is validated as soon as it arrives, not when the body
  // completes — garbage dies before the peer can make us wait for it.
  uint8_t type = static_cast<uint8_t>(buf_[pos_ + kFrameHeaderBytes]);
  if (!ValidFrameType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(unsigned(type)));
  }
  if (avail < kFrameHeaderBytes + body_len) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buf_.begin() + pos_ + kFrameHeaderBytes + 1,
                       buf_.begin() + pos_ + kFrameHeaderBytes + body_len);
  pos_ += kFrameHeaderBytes + body_len;
  return std::optional<Frame>(std::move(frame));
}

void AppendFrame(std::vector<char>* out, FrameType type,
                 const std::vector<char>& payload) {
  PRIX_CHECK(payload.size() + 1 <= kMaxFrameBody);
  PutU32(out, static_cast<uint32_t>(payload.size() + 1));
  out->push_back(static_cast<char>(type));
  out->insert(out->end(), payload.begin(), payload.end());
}

std::vector<char> EncodeQuery(const QueryRequest& req) {
  std::vector<char> payload;
  PutU64(&payload, req.request_id);
  PutU32(&payload, req.timeout_ms);
  PutU32(&payload, static_cast<uint32_t>(req.xpaths.size()));
  for (const std::string& x : req.xpaths) PutLenBytes(&payload, x);
  std::vector<char> out;
  AppendFrame(&out, FrameType::kQuery, payload);
  return out;
}

size_t ResultPayloadBytes(const QueryResponse& resp) {
  size_t bytes = 8 + 8 + 1 + 4;  // request_id, generation, cached, count
  for (const std::vector<uint32_t>& docs : resp.docs) {
    bytes += 4 + 4 * docs.size();
  }
  return bytes;
}

std::vector<char> EncodeResult(const QueryResponse& resp) {
  std::vector<char> payload;
  PutU64(&payload, resp.request_id);
  PutU64(&payload, resp.generation);
  payload.push_back(resp.cached ? 1 : 0);
  PutU32(&payload, static_cast<uint32_t>(resp.docs.size()));
  for (const std::vector<uint32_t>& docs : resp.docs) {
    PutU32(&payload, static_cast<uint32_t>(docs.size()));
    for (uint32_t d : docs) PutU32(&payload, d);
  }
  std::vector<char> out;
  AppendFrame(&out, FrameType::kResult, payload);
  return out;
}

std::vector<char> EncodeError(const ErrorResponse& resp) {
  std::vector<char> payload;
  PutU64(&payload, resp.request_id);
  PutU32(&payload, resp.status_code);
  PutBoundedMessage(&payload, resp.message);
  std::vector<char> out;
  AppendFrame(&out, FrameType::kError, payload);
  return out;
}

std::vector<char> EncodeShed(const ShedResponse& resp) {
  std::vector<char> payload;
  PutU64(&payload, resp.request_id);
  PutU32(&payload, resp.retry_after_ms);
  PutBoundedMessage(&payload, resp.message);
  std::vector<char> out;
  AppendFrame(&out, FrameType::kShed, payload);
  return out;
}

Result<QueryRequest> DecodeQuery(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kQuery, "query"));
  Cursor c(frame.payload.data(), frame.payload.size());
  QueryRequest req;
  PRIX_ASSIGN_OR_RETURN(req.request_id, c.U64("request_id"));
  PRIX_ASSIGN_OR_RETURN(req.timeout_ms, c.U32("timeout_ms"));
  PRIX_ASSIGN_OR_RETURN(uint32_t count, c.U32("query count"));
  // An xpath entry needs at least 4 bytes, so a count the remaining bytes
  // cannot hold is rejected before it sizes any allocation.
  if (count > c.remaining() / 4) {
    return Status::InvalidArgument("query count " + std::to_string(count) +
                                   " exceeds the frame's remaining " +
                                   std::to_string(c.remaining()) + " bytes");
  }
  req.xpaths.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIX_ASSIGN_OR_RETURN(uint32_t len, c.U32("xpath length"));
    PRIX_ASSIGN_OR_RETURN(std::string x, c.Bytes(len, "xpath text"));
    req.xpaths.push_back(std::move(x));
  }
  PRIX_RETURN_NOT_OK(c.ExpectEnd("query"));
  return req;
}

Result<QueryResponse> DecodeResult(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kResult, "result"));
  Cursor c(frame.payload.data(), frame.payload.size());
  QueryResponse resp;
  PRIX_ASSIGN_OR_RETURN(resp.request_id, c.U64("request_id"));
  PRIX_ASSIGN_OR_RETURN(resp.generation, c.U64("generation"));
  PRIX_ASSIGN_OR_RETURN(uint8_t cached, c.U8("cached flag"));
  resp.cached = cached != 0;
  PRIX_ASSIGN_OR_RETURN(uint32_t count, c.U32("result count"));
  if (count > c.remaining() / 4) {
    return Status::InvalidArgument("result count " + std::to_string(count) +
                                   " exceeds the frame's remaining " +
                                   std::to_string(c.remaining()) + " bytes");
  }
  resp.docs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIX_ASSIGN_OR_RETURN(uint32_t n, c.U32("doc count"));
    if (n > c.remaining() / 4) {
      return Status::InvalidArgument("doc count " + std::to_string(n) +
                                     " exceeds the frame's remaining " +
                                     std::to_string(c.remaining()) + " bytes");
    }
    std::vector<uint32_t> docs;
    docs.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      PRIX_ASSIGN_OR_RETURN(uint32_t d, c.U32("doc id"));
      docs.push_back(d);
    }
    resp.docs.push_back(std::move(docs));
  }
  PRIX_RETURN_NOT_OK(c.ExpectEnd("result"));
  return resp;
}

Result<ErrorResponse> DecodeError(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kError, "error"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ErrorResponse resp;
  PRIX_ASSIGN_OR_RETURN(resp.request_id, c.U64("request_id"));
  PRIX_ASSIGN_OR_RETURN(resp.status_code, c.U32("status code"));
  PRIX_ASSIGN_OR_RETURN(uint32_t len, c.U32("message length"));
  PRIX_ASSIGN_OR_RETURN(resp.message, c.Bytes(len, "message"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("error"));
  return resp;
}

Result<ShedResponse> DecodeShed(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kShed, "shed"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ShedResponse resp;
  PRIX_ASSIGN_OR_RETURN(resp.request_id, c.U64("request_id"));
  PRIX_ASSIGN_OR_RETURN(resp.retry_after_ms, c.U32("retry_after_ms"));
  PRIX_ASSIGN_OR_RETURN(uint32_t len, c.U32("message length"));
  PRIX_ASSIGN_OR_RETURN(resp.message, c.Bytes(len, "message"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("shed"));
  return resp;
}

std::vector<char> EncodeReplHello(const ReplHello& hello) {
  std::vector<char> payload;
  PutU64(&payload, hello.cursor_gen);
  PutU32(&payload, hello.cursor_manifest);
  payload.push_back(static_cast<char>(hello.want_snapshot));
  std::vector<char> out;
  AppendFrame(&out, FrameType::kReplHello, payload);
  return out;
}

std::vector<char> EncodeReplRecord(const ReplRecordFrame& rec) {
  std::vector<char> payload;
  PutU64(&payload, rec.gen);
  PutU32(&payload, rec.manifest);
  payload.push_back(static_cast<char>(rec.op_kind));
  PutU64(&payload, rec.leader_gen);
  PutU32(&payload, static_cast<uint32_t>(rec.payload.size()));
  payload.insert(payload.end(), rec.payload.begin(), rec.payload.end());
  std::vector<char> out;
  AppendFrame(&out, FrameType::kReplRecord, payload);
  return out;
}

std::vector<char> EncodeReplSnapshot(const ReplSnapshotFrame& snap) {
  std::vector<char> payload;
  PutU64(&payload, snap.snapshot_gen);
  PutU32(&payload, snap.manifest);
  PutU32(&payload, snap.seq);
  payload.push_back(static_cast<char>(snap.last));
  PutU32(&payload, static_cast<uint32_t>(snap.chunk.size()));
  payload.insert(payload.end(), snap.chunk.begin(), snap.chunk.end());
  std::vector<char> out;
  AppendFrame(&out, FrameType::kReplSnapshot, payload);
  return out;
}

std::vector<char> EncodeReplAck(const ReplAck& ack) {
  std::vector<char> payload;
  PutU64(&payload, ack.applied_gen);
  PutU32(&payload, ack.manifest);
  std::vector<char> out;
  AppendFrame(&out, FrameType::kReplAck, payload);
  return out;
}

Result<ReplHello> DecodeReplHello(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kReplHello, "repl-hello"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ReplHello hello;
  PRIX_ASSIGN_OR_RETURN(hello.cursor_gen, c.U64("cursor_gen"));
  PRIX_ASSIGN_OR_RETURN(hello.cursor_manifest, c.U32("cursor_manifest"));
  PRIX_ASSIGN_OR_RETURN(hello.want_snapshot, c.U8("want_snapshot flag"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("repl-hello"));
  return hello;
}

Result<ReplRecordFrame> DecodeReplRecord(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kReplRecord, "repl-record"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ReplRecordFrame rec;
  PRIX_ASSIGN_OR_RETURN(rec.gen, c.U64("record gen"));
  PRIX_ASSIGN_OR_RETURN(rec.manifest, c.U32("record manifest"));
  PRIX_ASSIGN_OR_RETURN(rec.op_kind, c.U8("op kind"));
  PRIX_ASSIGN_OR_RETURN(rec.leader_gen, c.U64("leader_gen"));
  PRIX_ASSIGN_OR_RETURN(uint32_t len, c.U32("payload length"));
  PRIX_ASSIGN_OR_RETURN(rec.payload, c.Blob(len, "record payload"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("repl-record"));
  return rec;
}

Result<ReplSnapshotFrame> DecodeReplSnapshot(const Frame& frame) {
  PRIX_RETURN_NOT_OK(
      CheckType(frame, FrameType::kReplSnapshot, "repl-snapshot"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ReplSnapshotFrame snap;
  PRIX_ASSIGN_OR_RETURN(snap.snapshot_gen, c.U64("snapshot gen"));
  PRIX_ASSIGN_OR_RETURN(snap.manifest, c.U32("snapshot manifest"));
  PRIX_ASSIGN_OR_RETURN(snap.seq, c.U32("chunk seq"));
  PRIX_ASSIGN_OR_RETURN(snap.last, c.U8("last flag"));
  PRIX_ASSIGN_OR_RETURN(uint32_t len, c.U32("chunk length"));
  PRIX_ASSIGN_OR_RETURN(snap.chunk, c.Blob(len, "chunk bytes"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("repl-snapshot"));
  return snap;
}

Result<ReplAck> DecodeReplAck(const Frame& frame) {
  PRIX_RETURN_NOT_OK(CheckType(frame, FrameType::kReplAck, "repl-ack"));
  Cursor c(frame.payload.data(), frame.payload.size());
  ReplAck ack;
  PRIX_ASSIGN_OR_RETURN(ack.applied_gen, c.U64("applied_gen"));
  PRIX_ASSIGN_OR_RETURN(ack.manifest, c.U32("ack manifest"));
  PRIX_RETURN_NOT_OK(c.ExpectEnd("repl-ack"));
  return ack;
}

uint64_t PeekRequestId(const Frame& frame) {
  if (frame.payload.size() < 8) return 0;
  return GetU64(frame.payload.data());
}

Status WriteAll(int fd, const std::vector<char>& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::IoError("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::optional<Frame>> ReadFrame(int fd, FrameDecoder* dec,
                                       uint32_t idle_timeout_ms,
                                       const std::atomic<bool>* stop,
                                       uint32_t conn_idle_timeout_ms) {
  // Drain anything already buffered (pipelined frames) before touching the
  // socket again.
  PRIX_ASSIGN_OR_RETURN(std::optional<Frame> ready, dec->Next());
  if (ready.has_value()) return ready;
  // Two clocks (see wire.h). `frame_started` tracks whether any byte of the
  // awaited frame has arrived: until then the (longer) connection-idle
  // clock governs, if enabled; from the first byte the per-frame slowloris
  // clock governs, re-armed at that moment.
  bool frame_started = dec->buffered() > 0;
  uint64_t idle_deadline =
      idle_timeout_ms == 0
          ? 0
          : Deadline::NowMicros() + uint64_t{idle_timeout_ms} * 1000;
  uint64_t conn_deadline =
      conn_idle_timeout_ms == 0
          ? 0
          : Deadline::NowMicros() + uint64_t{conn_idle_timeout_ms} * 1000;
  auto idle_status = [&]() -> Status {
    if (!frame_started && conn_deadline != 0) {
      return Status::DeadlineExceeded(
          "connection idle: no frame started within " +
          std::to_string(conn_idle_timeout_ms) + " ms");
    }
    return Status::DeadlineExceeded(
        dec->buffered() > 0
            ? "idle timeout mid-frame (" + std::to_string(dec->buffered()) +
                  " bytes buffered)"
            : "idle timeout awaiting a frame");
  };
  auto idle_expired = [&](uint64_t now) {
    if (!frame_started && conn_deadline != 0) return now >= conn_deadline;
    return idle_deadline != 0 && now >= idle_deadline;
  };
  char chunk[16 * 1024];
  while (true) {
    // Poll in short slices so a drain request is observed promptly even on
    // an idle connection.
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll: " + std::string(std::strerror(errno)));
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Unavailable("shutting down");
    }
    if (rc == 0) {
      // The slowloris / connection-idle guard: a peer holding a frame open
      // (or just a silent connection) may not pin this thread forever.
      if (idle_expired(Deadline::NowMicros())) return idle_status();
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset");
      }
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (dec->buffered() > 0) {
        return Status::InvalidArgument(
            "peer disconnected mid-frame (" +
            std::to_string(dec->buffered()) + " bytes of a frame buffered)");
      }
      return std::optional<Frame>();  // clean EOF between frames
    }
    dec->Feed(chunk, static_cast<size_t>(n));
    if (!frame_started) {
      // First byte of the frame: the per-frame clock takes over, armed now.
      frame_started = true;
      if (idle_timeout_ms != 0 && conn_idle_timeout_ms != 0) {
        idle_deadline =
            Deadline::NowMicros() + uint64_t{idle_timeout_ms} * 1000;
      }
    }
    PRIX_ASSIGN_OR_RETURN(std::optional<Frame> frame, dec->Next());
    if (frame.has_value()) return frame;
    // Deliberately NOT resetting idle_deadline on later bytes: the timeout
    // bounds the time to deliver one whole frame, so a peer dripping a byte
    // at a time cannot keep this call (and its connection thread) alive
    // forever.
    if (idle_expired(Deadline::NowMicros())) return idle_status();
  }
}

}  // namespace prix
