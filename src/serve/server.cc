#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // POLLRDHUP: half-close detection for the watchdog
#endif

#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/macros.h"
#include "common/metrics.h"

namespace prix {

namespace {

/// The disconnect events the watchdog cancels on. POLLRDHUP (peer shut
/// down its write side) is Linux-specific; where absent, POLLERR/POLLHUP
/// still catch hard resets.
#ifdef POLLRDHUP
constexpr short kGoneEvents = POLLRDHUP | POLLERR | POLLHUP;
#else
constexpr short kGoneEvents = POLLERR | POLLHUP;
#endif

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

/// Encodes a result frame, unless the payload would not fit one frame —
/// result size is driven by query selectivity and batch size, which a
/// hostile batch controls, so the overflow is a typed error back to the
/// client, never AppendFrame's process-aborting invariant.
std::vector<char> EncodeBoundedResult(const QueryResponse& resp) {
  size_t payload = ResultPayloadBytes(resp);
  if (payload + 1 <= kMaxFrameBody) return EncodeResult(resp);
  ErrorResponse err;
  err.request_id = resp.request_id;
  err.status_code = static_cast<uint32_t>(StatusCode::kResourceExhausted);
  err.message = "result of " + std::to_string(payload) +
                " bytes exceeds the " + std::to_string(kMaxFrameBody) +
                "-byte frame limit; narrow the queries or shrink the batch";
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) reg.counter("prix.serve.oversized_results").Add(1);
  return EncodeError(err);
}

}  // namespace

Server::Server(Database* db, TagDictionary* dict, const ServerOptions& options)
    : db_(db),
      dict_(dict),
      options_(options),
      admission_([&options] {
        AdmissionController::Options a = options.admission;
        if (a.max_executing == 0) a.max_executing = options.query_threads;
        return a;
      }()),
      cache_(options.cache_bytes) {}

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              TagDictionary* dict,
                                              const ServerOptions& options) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry rp, db->GetIndex(options.rp_name));
  if (rp.kind != Database::IndexKind::kPrixRegular &&
      rp.kind != Database::IndexKind::kPrixExtended) {
    return Status::InvalidArgument("index '" + options.rp_name +
                                   "' is not a PRIX index");
  }
  if (!options.ep_name.empty()) {
    PRIX_RETURN_NOT_OK(db->GetIndex(options.ep_name).status());
  }
  auto server =
      std::unique_ptr<Server>(new Server(db, dict, options));
  server->driver_ = std::make_unique<QueryDriver>(
      *db, nullptr, nullptr, options.query_threads);

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->watchdog_thread_ =
      std::thread([s = server.get()] { s->WatchdogLoop(); });
  return server;
}

Server::~Server() {
  Stop();
  (void)Join();
}

void Server::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  admission_.BeginDrain();
  // Wake the blocking accept(); the fd itself is closed in Join after the
  // accept thread exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::Stop() {
  BeginDrain();
  if (stopping_.exchange(true)) return;
  // Impatient drain: cancel whatever is executing so engine checkpoints
  // abort those requests at their next CheckDeadline().
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->executing_deadline != nullptr) {
      conn->executing_deadline->Cancel();
    }
  }
}

Status Server::Join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections can appear now; join the existing ones.
  while (true) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return Status::OK();
}

void Server::ReapFinishedConns() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    struct sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd = ::accept4(listen_fd_, reinterpret_cast<struct sockaddr*>(&peer),
                       &len, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() in BeginDrain surfaces as EINVAL/ECONNABORTED here.
      if (draining_.load(std::memory_order_relaxed)) break;
      // Persistent failures (EMFILE/ENFILE when the process is out of fds)
      // must not busy-spin a core; back off briefly before retrying.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ReapFinishedConns();
    if (options_.max_connections != 0) {
      size_t open;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        open = conns_.size();
      }
      if (open >= options_.max_connections) {
        // Refuse, typed, without spawning a thread: a connection flood is
        // bounded at the door instead of exhausting threads or fds.
        ErrorResponse err;
        err.request_id = 0;
        err.status_code = static_cast<uint32_t>(StatusCode::kResourceExhausted);
        err.message = "connection limit (" +
                      std::to_string(options_.max_connections) +
                      ") reached, retry later";
        (void)WriteAll(fd, EncodeError(err));
        ::close(fd);
        MetricsRegistry& reg = MetricsRegistry::Global();
        if (reg.enabled()) reg.counter("prix.serve.conns_refused").Add(1);
        continue;
      }
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    // One admission key per connection; see the Conn::client_id comment
    // for why the (always-loopback) peer address cannot be the key.
    conn->client_id = next_client_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void Server::WatchdogLoop() {
  // ~25 ms disconnect-detection latency: cheap (one non-blocking poll over
  // the executing set) and far below any realistic query deadline. The
  // whole collect-poll-cancel sequence holds conns_mu_, so a request that
  // finishes concurrently blocks in UnregisterExecuting until any Cancel
  // aimed at its (stack-allocated) deadline has completed.
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::vector<struct pollfd> fds;
      std::vector<Deadline*> deadlines;
      for (auto& conn : conns_) {
        if (conn->executing_deadline == nullptr) continue;
        struct pollfd p;
        p.fd = conn->fd;
        p.events = kGoneEvents;
        p.revents = 0;
        fds.push_back(p);
        deadlines.push_back(conn->executing_deadline);
      }
      if (!fds.empty() && ::poll(fds.data(), fds.size(), 0) > 0) {
        for (size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents & kGoneEvents) deadlines[i]->Cancel();
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

void Server::RegisterExecuting(Conn* conn, Deadline* deadline) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn->executing_deadline = deadline;
}

void Server::UnregisterExecuting(Conn* conn) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn->executing_deadline = nullptr;
}

void Server::ConnectionLoop(Conn* conn) {
  FrameDecoder dec;
  while (true) {
    auto got = ReadFrame(conn->fd, &dec, options_.idle_timeout_ms, &draining_,
                         options_.idle_conn_timeout_ms);
    if (!got.ok()) {
      // Malformed stream, idle timeout, or shutdown: answer with a typed
      // error when the peer may still be listening, then hang up (framing
      // cannot resync after garbage). A DeadlineExceeded with no frame
      // bytes buffered is the idle-connection reaper (silence between
      // frames), not a slowloris kill — count it so operators can see
      // abandoned clients being recycled.
      if (got.status().IsDeadlineExceeded() && dec.buffered() == 0 &&
          options_.idle_conn_timeout_ms != 0) {
        MetricsRegistry& reg = MetricsRegistry::Global();
        if (reg.enabled()) reg.counter("prix.serve.conns_reaped").Add(1);
      }
      if (!got.status().IsUnavailable()) {
        ErrorResponse err;
        err.request_id = 0;
        err.status_code = static_cast<uint32_t>(got.status().code());
        err.message = got.status().ToString();
        (void)WriteAll(conn->fd, EncodeError(err));
      }
      break;
    }
    if (!got->has_value()) break;  // clean EOF
    const Frame& frame = **got;
    std::vector<char> reply;
    switch (frame.type) {
      case FrameType::kPing: {
        reply.clear();
        AppendFrame(&reply, FrameType::kPong, frame.payload);
        break;
      }
      case FrameType::kQuery:
        reply = HandleQuery(conn, frame);
        break;
      default: {
        ErrorResponse err;
        err.request_id = PeekRequestId(frame);
        err.status_code =
            static_cast<uint32_t>(StatusCode::kInvalidArgument);
        err.message = "unexpected frame type " +
                      std::to_string(static_cast<unsigned>(frame.type)) +
                      " from a client";
        reply = EncodeError(err);
        break;
      }
    }
    if (!WriteAll(conn->fd, reply).ok()) break;
    if (draining_.load(std::memory_order_relaxed)) break;
  }
  ::close(conn->fd);
  conn->done.store(true, std::memory_order_release);
}

std::vector<char> Server::HandleQuery(Conn* conn, const Frame& frame) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t start_us = Deadline::NowMicros();
  auto query = DecodeQuery(frame);
  if (!query.ok()) {
    ErrorResponse err;
    err.request_id = PeekRequestId(frame);
    err.status_code = static_cast<uint32_t>(query.status().code());
    err.message = query.status().ToString();
    if (reg.enabled()) reg.counter("prix.serve.bad_frames").Add(1);
    return EncodeError(err);
  }
  const QueryRequest& req = *query;
  uint32_t timeout_ms = req.timeout_ms != 0 ? req.timeout_ms
                                            : options_.default_timeout_ms;
  Deadline deadline = timeout_ms != 0 ? Deadline::AfterMillis(timeout_ms)
                                      : Deadline();

  // Cache probe at the current committed generation, BEFORE admission: a
  // full hit answers without consuming an execute slot, and the keyed
  // generation makes the answer exact for that snapshot even if a writer
  // commits while the response is in flight.
  if (!req.xpaths.empty()) {
    uint64_t gen = db_->catalog_generation();
    QueryResponse resp;
    resp.request_id = req.request_id;
    resp.generation = gen;
    resp.cached = true;
    resp.docs.resize(req.xpaths.size());
    bool all_hit = true;
    for (size_t i = 0; i < req.xpaths.size() && all_hit; ++i) {
      all_hit = cache_.Lookup(options_.rp_name, gen, req.xpaths[i],
                              &resp.docs[i]);
    }
    if (all_hit) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (reg.enabled()) {
        reg.counter("prix.serve.requests").Add(1);
        reg.histogram("prix.serve.request_us")
            .Record(Deadline::NowMicros() - start_us);
      }
      return EncodeBoundedResult(resp);
    }
  }

  uint32_t retry_after_ms = 0;
  Status admitted =
      admission_.Admit(conn->client_id, &deadline, &retry_after_ms);
  if (admitted.IsResourceExhausted() || admitted.IsUnavailable()) {
    ShedResponse shed;
    shed.request_id = req.request_id;
    shed.retry_after_ms = retry_after_ms;
    shed.message = admitted.ToString();
    if (reg.enabled()) reg.counter("prix.serve.shed").Add(1);
    return EncodeShed(shed);
  }
  if (!admitted.ok()) {
    // Deadline expired or request cancelled while queued.
    ErrorResponse err;
    err.request_id = req.request_id;
    err.status_code = static_cast<uint32_t>(admitted.code());
    err.message = admitted.ToString();
    if (reg.enabled()) reg.counter("prix.serve.errors").Add(1);
    return EncodeError(err);
  }

  RegisterExecuting(conn, &deadline);
  QueryOptions qopts;
  qopts.deadline = &deadline;
  auto batch = driver_->ExecuteXPathBatchSnapshot(
      options_.rp_name, options_.ep_name, req.xpaths, dict_, qopts);
  UnregisterExecuting(conn);
  uint64_t service_us = Deadline::NowMicros() - start_us;
  admission_.Release(conn->client_id, service_us);

  if (!batch.ok()) {
    ErrorResponse err;
    err.request_id = req.request_id;
    err.status_code = static_cast<uint32_t>(batch.status().code());
    err.message = batch.status().ToString();
    if (reg.enabled()) reg.counter("prix.serve.errors").Add(1);
    return EncodeError(err);
  }

  QueryResponse resp;
  resp.request_id = req.request_id;
  resp.generation = batch->generation;
  resp.cached = false;
  resp.docs.reserve(batch->results.size());
  for (size_t i = 0; i < batch->results.size(); ++i) {
    const std::vector<DocId>& docs = batch->results[i].docs;
    resp.docs.emplace_back(docs.begin(), docs.end());
    cache_.Insert(options_.rp_name, batch->generation, req.xpaths[i],
                  resp.docs.back());
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (reg.enabled()) {
    reg.counter("prix.serve.requests").Add(1);
    reg.histogram("prix.serve.request_us").Record(service_us);
  }
  return EncodeBoundedResult(resp);
}

}  // namespace prix
