#include "serve/result_cache.h"

#include "common/metrics.h"

namespace prix {

std::string ResultCache::MakeKey(const std::string& index,
                                 uint64_t generation,
                                 const std::string& xpath) {
  // '\0' separators: index names and xpaths never contain NUL (both come
  // through parsers that reject it), so the key is unambiguous.
  std::string key;
  key.reserve(index.size() + xpath.size() + 22);
  key.append(index);
  key.push_back('\0');
  key.append(std::to_string(generation));
  key.push_back('\0');
  key.append(xpath);
  return key;
}

size_t ResultCache::Weight(const std::string& key,
                           const std::vector<uint32_t>& docs) {
  // Fixed overhead approximates the list node + map slot + string/vector
  // headers; exactness doesn't matter, boundedness does.
  return key.size() + docs.size() * sizeof(uint32_t) + 96;
}

bool ResultCache::Lookup(const std::string& index, uint64_t generation,
                         const std::string& xpath,
                         std::vector<uint32_t>* docs) {
  if (max_bytes_ == 0) return false;
  std::string key = MakeKey(index, generation, xpath);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (it == map_.end()) {
    ++misses_;
    if (reg.enabled()) reg.counter("prix.serve.cache_misses").Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *docs = it->second->docs;
  ++hits_;
  if (reg.enabled()) reg.counter("prix.serve.cache_hits").Add(1);
  return true;
}

void ResultCache::Insert(const std::string& index, uint64_t generation,
                         const std::string& xpath,
                         const std::vector<uint32_t>& docs) {
  if (max_bytes_ == 0) return;
  std::string key = MakeKey(index, generation, xpath);
  size_t weight = Weight(key, docs);
  if (weight > max_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second->weight;
    it->second->docs = docs;
    it->second->weight = weight;
    bytes_ += weight;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{std::move(key), docs, weight});
    map_.emplace(lru_.front().key, lru_.begin());
    bytes_ += weight;
  }
  EvictLocked();
}

void ResultCache::EvictLocked() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.weight;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    if (reg.enabled()) reg.counter("prix.serve.cache_evictions").Add(1);
  }
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace prix
