#ifndef PRIX_SERVE_SERVER_H_
#define PRIX_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "prix/query_driver.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "serve/wire.h"
#include "xml/tag_dictionary.h"

namespace prix {

/// Tuning and wiring for one Server. Defaults are sized for the paper's
/// single-machine setup; everything is overridable from `prix serve`.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port (the
  /// bound port is reported by Server::port() and printed by the CLI).
  uint16_t port = 0;

  /// Workers in the QueryDriver pool; also the default execute-slot count.
  size_t query_threads = 4;

  /// Admission control; max_executing == 0 inherits query_threads.
  AdmissionController::Options admission{0, 64, 8, 10'000};

  /// Result cache budget; 0 disables caching.
  size_t cache_bytes = 16u << 20;

  /// Deadline applied to requests that carry timeout_ms == 0. 0 = none.
  uint32_t default_timeout_ms = 0;

  /// Slowloris guard: a connection that keeps a frame (or its length
  /// prefix) incomplete this long is dropped with a typed error. The clock
  /// is per frame, not per byte — drip-feeding cannot extend it.
  uint32_t idle_timeout_ms = 10'000;

  /// Idle-connection reaper: a connection that completes a frame and then
  /// goes silent — no bytes at all — is allowed this much quiet before it
  /// is closed with a typed DeadlineExceeded and counted in
  /// `prix.serve.conns_reaped`. Bounds how long an abandoned client can
  /// pin a connection thread between requests (the per-frame clock above
  /// only governs a frame in flight). 0 disables reaping, collapsing both
  /// bounds back into idle_timeout_ms.
  uint32_t idle_conn_timeout_ms = 60'000;

  /// Cap on simultaneously open connections (thread-per-connection means
  /// this also caps connection threads). An accept beyond the cap is
  /// answered with a typed ResourceExhausted error and closed immediately,
  /// so a connection flood cannot exhaust threads or fds. 0 = unlimited.
  size_t max_connections = 256;

  /// Catalog names of the PRIX indexes every batch runs against.
  std::string rp_name = "rp";
  std::string ep_name;  ///< empty = no extended index
};

/// `prix serve`: a thread-per-connection TCP server speaking the wire
/// protocol of serve/wire.h, executing query batches through a shared
/// QueryDriver against pinned generation snapshots (DESIGN.md §5j).
///
/// Request lifecycle: decode (hostile-input hardened) -> result-cache
/// probe at the current committed generation -> admission (bounded queue,
/// per-client caps, deadline-aware shedding) -> snapshot-pinned batch
/// execution with the request's Deadline installed -> typed response
/// (kResult / kError / kShed). A watchdog thread polls executing
/// connections for peer disconnect (POLLRDHUP) and cancels their Deadline,
/// so a client that vanishes mid-request stops burning CPU and I/O within
/// one engine checkpoint.
///
/// Shutdown: BeginDrain() (the SIGTERM path) stops accepting, sheds the
/// admission queue, lets in-flight requests finish and their responses
/// flush, then Join() returns. Stop() additionally cancels in-flight
/// request deadlines for a fast exit.
class Server {
 public:
  /// Binds, listens, and starts the accept/watchdog threads. `db` and
  /// `dict` must outlive the server; the named RP index must exist.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               TagDictionary* dict,
                                               const ServerOptions& options);

  ~Server();

  uint16_t port() const { return port_; }

  /// Graceful shutdown trigger; idempotent and safe from any thread.
  void BeginDrain();

  /// Cancels in-flight deadlines too (drain, but impatient).
  void Stop();

  /// Blocks until every connection thread has exited. Call after
  /// BeginDrain()/Stop(); returns OK when the server wound down cleanly.
  Status Join();

  // Introspection for tests and `prix serve` logging.
  const AdmissionController& admission() const { return admission_; }
  const ResultCache& cache() const { return cache_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  Server(Database* db, TagDictionary* dict, const ServerOptions& options);

  void AcceptLoop();
  void WatchdogLoop();
  void ConnectionLoop(Conn* conn);
  /// Handles one kQuery frame end to end; the returned buffer is the
  /// encoded response frame to send.
  std::vector<char> HandleQuery(Conn* conn, const Frame& frame);

  void RegisterExecuting(Conn* conn, Deadline* deadline);
  void UnregisterExecuting(Conn* conn);
  void ReapFinishedConns();

  Database* db_;
  TagDictionary* dict_;
  ServerOptions options_;
  AdmissionController admission_;
  ResultCache cache_;
  std::unique_ptr<QueryDriver> driver_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<uint64_t> next_client_id_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::thread accept_thread_;
  std::thread watchdog_thread_;

  struct Conn {
    int fd = -1;
    /// Admission key. One id per connection (monotonic counter): the
    /// server binds loopback only, so every peer shares 127.0.0.1 and the
    /// address cannot distinguish clients — keying on it would collapse
    /// per_client_inflight into an accidental global cap. Per-connection
    /// keys restore per-client fairness (one budget per connection);
    /// global bounds come from max_executing/max_queued/max_connections.
    uint64_t client_id = 0;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Deadline of the request this connection is executing (null when
    /// idle). The deadline lives on the connection thread's stack, so every
    /// access — install, clear, and the watchdog's Cancel — happens under
    /// conns_mu_; the connection thread cannot clear-and-destroy it while
    /// the watchdog is mid-Cancel.
    Deadline* executing_deadline = nullptr;
  };
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
};

}  // namespace prix

#endif  // PRIX_SERVE_SERVER_H_
