#ifndef PRIX_SERVE_ADMISSION_H_
#define PRIX_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/deadline.h"
#include "common/result.h"

namespace prix {

// Admission control for the serving layer (DESIGN.md §5j): a bounded FIFO
// queue in front of a fixed number of execute slots, with per-client
// in-flight caps and deadline-aware shedding. The goal under overload is a
// flat ceiling — memory bounded by max_queued, useful work bounded by
// max_executing — with excess load turned into cheap, typed SHED responses
// the client can back off on, instead of a growing queue of work that will
// time out anyway.
//
// Shed decisions (all typed, all carrying a retry-after hint):
//  - queue full                -> ResourceExhausted, shed on arrival
//  - per-client cap reached    -> ResourceExhausted, shed on arrival
//  - deadline unmeetable       -> ResourceExhausted, shed on arrival: the
//    predicted queue wait (EWMA service time x queue depth / slots) already
//    exceeds the request's remaining deadline, so queueing it would only
//    waste a slot on a corpse
//  - draining                  -> Unavailable (SIGTERM shutdown in progress)
// A request whose deadline expires or is cancelled WHILE queued leaves the
// queue with its own DeadlineExceeded/Cancelled — it was admitted-then-
// abandoned, not shed.

class AdmissionController {
 public:
  struct Options {
    size_t max_executing = 4;       ///< concurrent requests actually running
    size_t max_queued = 64;         ///< waiters beyond the executing set
    size_t per_client_inflight = 8; ///< queued+executing cap per client id
    /// EWMA seed before any sample; 0 means "unknown", which falls back to
    /// the conservative kConservativeServiceUs so cold-start shed
    /// predictions err toward shedding rather than queueing corpses.
    uint64_t initial_service_us = 10'000;
  };

  /// Stand-in service time while no request has completed yet.
  static constexpr uint64_t kConservativeServiceUs = 10'000;

  explicit AdmissionController(const Options& options);

  /// Blocks until an execute slot is granted or the request is refused.
  /// On OK the caller MUST call Release() when the request finishes. On
  /// ResourceExhausted / Unavailable, `retry_after_ms` (if non-null) holds
  /// the backoff hint to send with the SHED frame. `deadline` may be null.
  Status Admit(uint64_t client_id, const Deadline* deadline,
               uint32_t* retry_after_ms);

  /// Returns an execute slot and feeds `service_us` into the EWMA the
  /// shed predictions use.
  void Release(uint64_t client_id, uint64_t service_us);

  /// Refuse every new request with Unavailable and wake queued waiters
  /// (they are shed with Unavailable too). Idempotent.
  void BeginDrain();

  // Introspection (tests and the stats endpoint).
  size_t executing() const;
  size_t queued() const;
  uint64_t ewma_service_us() const;
  uint64_t admitted_total() const;
  uint64_t shed_total() const;

 private:
  struct Waiter {
    uint64_t client_id = 0;
    bool granted = false;
    bool abandoned = false;  ///< left the queue (deadline/cancel); skip it
  };

  /// Pops grantable waiters into execute slots. Caller holds mu_.
  void GrantLocked();

  uint64_t PredictedWaitUsLocked() const;
  uint32_t RetryAfterMsLocked() const;

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t executing_ = 0;
  std::deque<std::shared_ptr<Waiter>> queue_;
  std::unordered_map<uint64_t, size_t> client_inflight_;
  uint64_t ewma_service_us_;
  /// False until the first Release(): the first real sample replaces the
  /// seed outright instead of blending into it.
  bool has_sample_ = false;
  uint64_t admitted_total_ = 0;
  uint64_t shed_total_ = 0;
  bool draining_ = false;
};

}  // namespace prix

#endif  // PRIX_SERVE_ADMISSION_H_
