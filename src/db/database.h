#ifndef PRIX_DB_DATABASE_H_
#define PRIX_DB_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace prix {

/// The storage environment every engine runs in (the paper's Sec. 6.1 setup:
/// one paged file behind a shared buffer pool). A Database owns the
/// DiskManager and the sharded BufferPool and exposes a persistent catalog
/// of named indexes, so PRIX, ViST, and TwigStack indexes built over one
/// collection live in one file and reopen across process restarts without
/// callers tracking loose page ids.
///
/// Catalog layout and commit protocol (see DESIGN.md §5d/§5e): pages 0 and
/// 1 of the file are two header slots. Each commit serializes the whole
/// catalog into the slot NOT holding the current generation, stamped with
/// generation + checksum, in fsync-ordered steps: flush pool -> fdatasync
/// -> write header slot -> fdatasync. Index pages are therefore durable
/// before the catalog that references them, and the commit point itself is
/// durable when PutIndex/DropIndex/Close return OK. A torn or corrupt
/// header slot fails its checksum at open and the other slot's (previous)
/// generation is recovered instead; a commit is atomic at page granularity
/// and a crash loses at most the commit in flight.
///
/// Thread safety: catalog mutations (PutIndex/DropIndex/Commit) serialize
/// under an internal mutex and must not race with Close. Reads of the pool
/// and disk follow those classes' own contracts.
class Database {
 public:
  struct Options {
    /// Buffer-pool capacity; the default mirrors the paper's 2000-page pool.
    size_t pool_pages = 2000;

    /// Test-only: installed on the DiskManager before the first page touches
    /// disk, so fault schedules and crash points cover Create/Open's own
    /// I/O. Must outlive the Database.
    FaultInjector* fault_injector = nullptr;
  };

  /// What a catalog entry points at. kBlob is an uninterpreted page chain
  /// (e.g. the CLI's tag dictionary); the engine kinds are validated by the
  /// respective Open functions.
  enum class IndexKind : uint32_t {
    kBlob = 0,
    kPrixRegular = 1,
    kPrixExtended = 2,
    kVist = 3,
    kTwigStreams = 4,
    kXbForest = 5,
  };

  /// One named catalog entry: kind tag, root/first page of the index's own
  /// catalog blob, and a small engine-specific options blob (must fit the
  /// in-header catalog; keep it to a few dozen bytes).
  struct IndexEntry {
    std::string name;
    IndexKind kind = IndexKind::kBlob;
    PageId root = kInvalidPage;
    std::vector<char> options;
  };

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a new database file at `path` (truncating any existing file)
  /// with an empty committed catalog.
  static Result<std::unique_ptr<Database>> Create(const std::string& path,
                                                  const Options& options);
  static Result<std::unique_ptr<Database>> Create(const std::string& path) {
    return Create(path, Options());
  }

  /// Opens an existing database file, recovering the newest valid catalog
  /// generation (falling back across a torn header write).
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                const Options& options);
  static Result<std::unique_ptr<Database>> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Flushes the pool, commits the catalog, and closes the file. Called by
  /// the destructor if not called explicitly (errors then only logged).
  Status Close();

  /// Drops the handle without flushing or committing anything — the
  /// crash-simulation teardown (and a last resort after an unrecoverable
  /// I/O failure). The file keeps whatever the last durable commit left;
  /// un-committed work is lost by design. No pins may be outstanding.
  void Abandon();

  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }
  const std::string& path() const { return path_; }

  /// Upserts `entry` and commits the catalog crash-safely.
  Status PutIndex(const IndexEntry& entry);

  /// Looks up a named entry; NotFound if absent.
  Result<IndexEntry> GetIndex(const std::string& name) const;

  bool HasIndex(const std::string& name) const;

  /// All entries, sorted by name.
  std::vector<IndexEntry> ListIndexes() const;

  /// Removes a named entry and commits. NotFound if absent. The index's
  /// pages are not reclaimed (allocation is append-only).
  Status DropIndex(const std::string& name);

  /// Generation of the committed catalog; grows by one per commit. After a
  /// torn write the recovered generation is the previous one.
  uint64_t catalog_generation() const;

  /// Cold-cache reset used before each benchmarked query (the paper's
  /// direct-I/O emulation): drops every cached frame and zeroes the pool
  /// counters. Requires no pinned pages.
  Status ColdStart();

 private:
  Database() = default;

  /// Serializes the catalog map into `out` (header fields excluded).
  void SerializePayload(std::vector<char>* out) const;

  /// Flushes the pool, then writes generation+1 into the alternate header
  /// slot. Caller holds mu_.
  Status CommitLocked();

  /// What one header slot's page image turned out to hold. The distinction
  /// drives Open's error message: kTorn falls back to the other slot,
  /// kOldVersion means "rebuild", two kBadMagic slots mean "not ours".
  enum class SlotState { kValid, kTorn, kBadMagic, kOldVersion };

  /// Parses one header slot's page image. On kValid fills generation and
  /// entries; on kOldVersion fills only *version.
  static SlotState ParseHeader(const char* page, uint64_t* generation,
                               uint32_t* version,
                               std::map<std::string, IndexEntry>* entries);

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;

  mutable std::mutex mu_;
  std::map<std::string, IndexEntry> catalog_;
  uint64_t generation_ = 0;
};

}  // namespace prix

#endif  // PRIX_DB_DATABASE_H_
