#ifndef PRIX_DB_DATABASE_H_
#define PRIX_DB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/oplog.h"

namespace prix {

class Document;
class Snapshot;

/// The storage environment every engine runs in (the paper's Sec. 6.1 setup:
/// one paged file behind a shared buffer pool). A Database owns the
/// DiskManager and the sharded BufferPool and exposes a persistent catalog
/// of named indexes, so PRIX, ViST, and TwigStack indexes built over one
/// collection live in one file and reopen across process restarts without
/// callers tracking loose page ids.
///
/// Catalog layout and commit protocol (see DESIGN.md §5d/§5e): pages 0 and
/// 1 of the file are two header slots. Each commit serializes the whole
/// catalog into the slot NOT holding the current generation, stamped with
/// generation + checksum, in fsync-ordered steps: flush pool -> fdatasync
/// -> write header slot -> fdatasync. Index pages are therefore durable
/// before the catalog that references them, and the commit point itself is
/// durable when PutIndex/DropIndex/Close return OK. A torn or corrupt
/// header slot fails its checksum at open and the other slot's (previous)
/// generation is recovered instead; a commit is atomic at page granularity
/// and a crash loses at most the commit in flight.
///
/// Thread safety: catalog mutations (PutIndex/DropIndex/Commit) serialize
/// under an internal mutex and must not race with Close. Reads of the pool
/// and disk follow those classes' own contracts.
///
/// Online ingest (DESIGN.md §5i): InsertDocument / UpdateDocument /
/// DeleteDocument mutate a PRIX index in place under the page-level
/// copy-on-write protocol — writers never overwrite a page a committed
/// generation can reach, so queries running against a Snapshot pinned to an
/// older generation keep seeing exactly that generation's pages. Superseded
/// pages enter a persistent free-page list stamped with the generation that
/// retired them and are recycled by NewPage only once no open Snapshot pins
/// an older generation.
class Database : public PageAllocator {
 public:
  struct Options {
    /// Buffer-pool capacity; the default mirrors the paper's 2000-page pool.
    size_t pool_pages = 2000;

    /// Test-only: installed on the DiskManager before the first page touches
    /// disk, so fault schedules and crash points cover Create/Open's own
    /// I/O. Must outlive the Database.
    FaultInjector* fault_injector = nullptr;

    /// Test-only: a SEPARATE injector for the oplog sidecar file (each
    /// FaultInjector instance tracks one fd), so the replication crash
    /// matrix can crash at every oplog write/sync point independently of
    /// the main file's schedule. Must outlive the Database.
    FaultInjector* oplog_fault_injector = nullptr;
  };

  /// What a catalog entry points at. kBlob is an uninterpreted page chain
  /// (e.g. the CLI's tag dictionary); the engine kinds are validated by the
  /// respective Open functions.
  enum class IndexKind : uint32_t {
    kBlob = 0,
    kPrixRegular = 1,
    kPrixExtended = 2,
    kVist = 3,
    kTwigStreams = 4,
    kXbForest = 5,
  };

  /// One named catalog entry: kind tag, root/first page of the index's own
  /// catalog blob, and a small engine-specific options blob (must fit the
  /// in-header catalog; keep it to a few dozen bytes).
  struct IndexEntry {
    std::string name;
    IndexKind kind = IndexKind::kBlob;
    PageId root = kInvalidPage;
    std::vector<char> options;
    /// Nonzero for a derived (ViST/TwigStack) index whose collection was
    /// mutated by online ingest after the index was built: the value is the
    /// first catalog generation at which it stopped reflecting the
    /// documents. CommitBatch stamps it (see DESIGN.md §5i); the engines'
    /// Open functions refuse stale entries with FailedPrecondition, and a
    /// rebuild (PutIndex with a fresh entry) clears it. 0 = in sync.
    uint64_t stale_as_of_gen = 0;
  };

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a new database file at `path` (truncating any existing file)
  /// with an empty committed catalog.
  static Result<std::unique_ptr<Database>> Create(const std::string& path,
                                                  const Options& options);
  static Result<std::unique_ptr<Database>> Create(const std::string& path) {
    return Create(path, Options());
  }

  /// Opens an existing database file, recovering the newest valid catalog
  /// generation (falling back across a torn header write).
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                const Options& options);
  static Result<std::unique_ptr<Database>> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Flushes the pool, commits the catalog, and closes the file. Called by
  /// the destructor if not called explicitly (errors then only logged).
  Status Close();

  /// Drops the handle without flushing or committing anything — the
  /// crash-simulation teardown (and a last resort after an unrecoverable
  /// I/O failure). The file keeps whatever the last durable commit left;
  /// un-committed work is lost by design. No pins may be outstanding.
  void Abandon();

  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }
  const std::string& path() const { return path_; }

  /// Upserts `entry` and commits the catalog crash-safely.
  Status PutIndex(const IndexEntry& entry);

  /// Looks up a named entry; NotFound if absent.
  Result<IndexEntry> GetIndex(const std::string& name) const;

  bool HasIndex(const std::string& name) const;

  /// All entries, sorted by name.
  std::vector<IndexEntry> ListIndexes() const;

  /// Removes a named entry and commits. NotFound if absent. The index's
  /// pages are not reclaimed (allocation is append-only).
  Status DropIndex(const std::string& name);

  /// Generation of the committed catalog; grows by one per commit. After a
  /// torn write the recovered generation is the previous one.
  uint64_t catalog_generation() const;

  /// Opens a read snapshot pinned to the current committed generation. The
  /// snapshot holds a copy of that generation's catalog; while any snapshot
  /// of generation g is alive, no page superseded at a generation > g is
  /// recycled, so every page reachable from the snapshot's catalog keeps its
  /// committed content. The Database must outlive all snapshots it issued.
  std::shared_ptr<const Snapshot> OpenSnapshot();

  /// Atomically upserts `entries` into the catalog and retires `freed`
  /// (pages superseded by this commit) into the persistent free-page list,
  /// then commits. All-or-nothing: on failure the catalog and free list are
  /// rolled back to their pre-call state. This is the publish step of a
  /// copy-on-write write transaction (the ingest path); `freed` pages become
  /// recyclable once the new generation is durable and no snapshot pins an
  /// older one.
  Status CommitBatch(const std::vector<IndexEntry>& entries,
                     const std::vector<PageId>& freed);

  /// PageAllocator: recycles the oldest reclaimable free-list page, falling
  /// back to extending the file. Installed on the pool at Create/Open.
  Result<PageId> AllocatePage() override;

  /// Pages currently in the free list (reclaimable or still pinned down).
  size_t free_page_count() const;

  // ---- online ingest (implemented in src/prix/database_ingest.cc, which
  // lives in the engine library so this storage-layer library does not
  // depend on parsing or index code; calling these from a binary that does
  // not link the engine library fails at link time) ----

  /// Parses, Prüfer-labels, and inserts `doc` into the named PRIX index,
  /// committing a new catalog generation. Returns the assigned DocId.
  /// Writers serialize; readers on snapshots are unaffected until commit.
  Result<uint32_t> InsertDocument(const std::string& index_name,
                                  const Document& doc);

  /// Replaces document `doc` with `new_doc`: the old DocId is tombstoned
  /// and the new content inserted under a fresh DocId (returned). DocIds
  /// are never reused.
  Result<uint32_t> UpdateDocument(const std::string& index_name, uint32_t doc,
                                  const Document& new_doc);

  /// Tombstones document `doc` in the named PRIX index and deletes its keys
  /// from the refinement B+-trees. The DocStore record remains (append-only)
  /// but is skipped by every query; `prix verify` reports it as dead.
  Status DeleteDocument(const std::string& index_name, uint32_t doc);

  /// Cold-cache reset used before each benchmarked query (the paper's
  /// direct-I/O emulation): drops every cached frame and zeroes the pool
  /// counters. Requires no pinned pages.
  Status ColdStart();

  // ---- replication hooks (DESIGN.md §5l) ----

  /// The durable operation log. CommitLocked appends one record per commit
  /// (fsynced before the header flips); the replication sender reads
  /// committed records back by generation.
  OpLog* oplog() { return &oplog_; }

  /// Follower-side: records the leader position (leader generation +
  /// manifest) this node has applied through. Sticky — persisted in a header
  /// trailer by every subsequent commit, so calling this immediately before
  /// applying a record makes cursor and applied state land in ONE commit.
  void StageReplCursor(uint64_t source_gen, uint32_t source_manifest);

  /// {source_gen, source_manifest} recovered from the committed header
  /// (both zero on a database that never followed anyone).
  std::pair<uint64_t, uint32_t> repl_cursor() const;

  /// Sentinel for "no snapshot ship in progress".
  static constexpr uint64_t kNoReplLowWater = ~0ull;

  /// While a snapshot of generation g is being shipped to a follower, pages
  /// freed at generations > g must not be recycled (the shipped file still
  /// references them). Threaded into AllocatePage's reuse barrier exactly
  /// like a pinned snapshot generation. kNoReplLowWater lifts the bound.
  void SetReplLowWater(uint64_t gen);
  uint64_t repl_low_water() const {
    return repl_low_water_.load(std::memory_order_acquire);
  }

  /// A consistent point-in-time view of the database FILE for snapshot
  /// shipping: the committed generation, the page count at that moment, and
  /// raw images of both header slots captured under the catalog lock. Pages
  /// >= 2 can then be read lock-free — copy-on-write never overwrites a
  /// committed page, and the low-water bound (set before this returns)
  /// keeps freed pages from being recycled mid-ship. Pages unreachable from
  /// the captured catalog may contain in-flight writer garbage; the
  /// receiver's Open never walks them.
  struct FileSnapshot {
    uint64_t gen = 0;
    uint32_t num_pages = 0;
    uint32_t manifest = 0;  ///< oplog manifest at `gen`
    std::vector<char> header_pages;  ///< pages 0 and 1, 2*kPageSize bytes
  };
  Result<FileSnapshot> BeginFileSnapshot();

  /// Lifts the low-water bound set by BeginFileSnapshot.
  void EndFileSnapshot();

 private:
  friend class Snapshot;

  /// One retired page: recyclable once the committed generation reaches
  /// `gen` AND no snapshot pins a generation below `gen`.
  struct FreedPage {
    PageId id;
    uint64_t gen;
  };

  Database() = default;

  /// Stages the oplog record the NEXT commit will carry (one-shot; a commit
  /// with nothing staged appends kNoop). Called by the ingest path
  /// (database_ingest.cc) just before PublishAll and internally by
  /// PutIndex/DropIndex. Takes mu_; must not be called while holding it.
  void StageOpRecord(OpKind kind, std::vector<char> payload);

  /// Drops a staged record that will never commit (ingest abort). Takes mu_.
  void ClearStagedOp();

  /// Serializes the catalog map into `out` (header fields excluded).
  void SerializePayload(std::vector<char>* out) const;

  /// Flushes the pool, then writes generation+1 into the alternate header
  /// slot. Caller holds mu_ (and must NOT hold free_mu_: the free-list blob
  /// write allocates pages through AllocatePage).
  Status CommitLocked();

  /// Persists the free list as a fresh blob chain and returns its head (or
  /// kInvalidPage when the list is empty and no previous blob exists).
  /// Reuse from the list is suspended for the duration so the blob cannot
  /// consume the pages it is recording. Caller holds mu_, not free_mu_.
  Result<PageId> PersistFreeListLocked(uint64_t commit_gen);

  /// What one header slot's page image turned out to hold. The distinction
  /// drives Open's error message: kTorn falls back to the other slot,
  /// kOldVersion means "rebuild", two kBadMagic slots mean "not ours".
  enum class SlotState { kValid, kTorn, kBadMagic, kOldVersion };

  /// Parses one header slot's page image. On kValid fills generation,
  /// entries, the free-list blob head (kInvalidPage for headers written
  /// before the free list existed — trailing payload bytes are optional),
  /// and the replication cursor trailer (zeros when absent); on kOldVersion
  /// fills only *version.
  static SlotState ParseHeader(const char* page, uint64_t* generation,
                               uint32_t* version,
                               std::map<std::string, IndexEntry>* entries,
                               PageId* free_head, uint64_t* repl_gen,
                               uint32_t* repl_manifest);

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;

  mutable std::mutex mu_;
  std::map<std::string, IndexEntry> catalog_;
  uint64_t generation_ = 0;

  OpLog oplog_;
  /// Record staged for the next commit; consumed (and cleared) under mu_ by
  /// CommitLocked. Writers serialize on ingest_mu_ (or call sites under
  /// mu_), so at most one op is ever pending.
  bool pending_op_set_ = false;
  OpKind pending_op_kind_ = OpKind::kNoop;
  std::vector<char> pending_op_payload_;
  /// Replication cursor persisted as the third optional header trailer.
  uint64_t repl_source_gen_ = 0;
  uint32_t repl_source_manifest_ = 0;

  std::atomic<uint64_t> repl_low_water_{kNoReplLowWater};

  /// Mirror of generation_ readable without mu_ — AllocatePage runs inside
  /// CommitLocked's own blob writes while mu_ is held, so it must not take
  /// mu_. Updated only after a commit is durable.
  std::atomic<uint64_t> committed_gen_{0};

  /// Guards the free list and snapshot pins. Lock order: mu_ before
  /// free_mu_; AllocatePage takes only free_mu_.
  mutable std::mutex free_mu_;
  std::deque<FreedPage> free_pages_;  // FIFO, non-decreasing gen
  std::vector<PageId> free_blob_pages_;  ///< pages of the persisted list blob
  bool suspend_reuse_ = false;  ///< true while the free-list blob is written
  std::multiset<uint64_t> pinned_gens_;  ///< generations open snapshots hold

  /// Opaque per-writer ingest cache owned by database_ingest.cc (trie
  /// mirror + open trees), rebuilt when its stamped generation goes stale.
  std::mutex ingest_mu_;
  std::shared_ptr<void> ingest_state_;
};

/// An immutable view of one committed catalog generation. Readers resolve
/// index roots through the snapshot instead of the live catalog, so a
/// concurrent writer's commits never change what an in-flight query sees.
/// Obtained from Database::OpenSnapshot(); releasing the last shared_ptr
/// unpins the generation and lets its superseded pages be recycled.
class Snapshot {
 public:
  uint64_t generation() const { return generation_; }

  Result<Database::IndexEntry> GetIndex(const std::string& name) const {
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("no index named '" + name +
                              "' in snapshot generation " +
                              std::to_string(generation_));
    }
    return it->second;
  }

  std::vector<Database::IndexEntry> ListIndexes() const {
    std::vector<Database::IndexEntry> out;
    out.reserve(catalog_.size());
    for (const auto& [name, entry] : catalog_) out.push_back(entry);
    return out;
  }

 private:
  friend class Database;
  Snapshot() = default;

  uint64_t generation_ = 0;
  std::map<std::string, Database::IndexEntry> catalog_;
};

}  // namespace prix

#endif  // PRIX_DB_DATABASE_H_
