#include "db/op_codec.h"

#include <cstring>

namespace prix {
namespace {

void PutU32(std::vector<char>* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->insert(out->end(), b, b + 4);
}

void PutU8(std::vector<char>* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutString(std::vector<char>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutDoc(std::vector<char>* out, const Document& doc) {
  PutU32(out, static_cast<uint32_t>(doc.num_nodes()));
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    PutU32(out, doc.label(n));
    PutU8(out, static_cast<uint8_t>(doc.kind(n)));
    PutU32(out, doc.parent(n) == kInvalidNode
                    ? 0xffffffffu
                    : static_cast<uint32_t>(doc.parent(n)));
  }
}

// Bounds-checked little-endian reader over an untrusted payload.
class Reader {
 public:
  Reader(const std::vector<char>& buf) : p_(buf.data()), n_(buf.size()) {}

  Status U32(uint32_t* out) {
    PRIX_RETURN_NOT_OK(Need(4));
    std::memcpy(out, p_ + pos_, 4);
    pos_ += 4;
    return Status::OK();
  }

  Status U8(uint8_t* out) {
    PRIX_RETURN_NOT_OK(Need(1));
    *out = static_cast<uint8_t>(p_[pos_++]);
    return Status::OK();
  }

  Status String(std::string* out) {
    uint32_t len = 0;
    PRIX_RETURN_NOT_OK(U32(&len));
    if (len > 4096) {
      return Status::InvalidArgument("op payload: name length " +
                                     std::to_string(len) + " is implausible");
    }
    PRIX_RETURN_NOT_OK(Need(len));
    out->assign(p_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status Bytes(std::vector<char>* out) {
    uint32_t len = 0;
    PRIX_RETURN_NOT_OK(U32(&len));
    PRIX_RETURN_NOT_OK(Need(len));
    out->assign(p_ + pos_, p_ + pos_ + len);
    pos_ += len;
    return Status::OK();
  }

  Status Doc(Document* doc) {
    uint32_t count = 0;
    PRIX_RETURN_NOT_OK(U32(&count));
    // 9 bytes per node; reject counts the remaining bytes cannot hold before
    // reserving anything.
    if (count > remaining() / 9) {
      return Status::InvalidArgument(
          "op payload: document node count " + std::to_string(count) +
          " exceeds remaining payload bytes");
    }
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t label = 0, parent = 0;
      uint8_t kind = 0;
      PRIX_RETURN_NOT_OK(U32(&label));
      PRIX_RETURN_NOT_OK(U8(&kind));
      PRIX_RETURN_NOT_OK(U32(&parent));
      if (kind > static_cast<uint8_t>(NodeKind::kValue)) {
        return Status::InvalidArgument("op payload: bad node kind " +
                                       std::to_string(kind));
      }
      NodeKind nk = static_cast<NodeKind>(kind);
      if (parent == 0xffffffffu) {
        if (i != 0) {
          return Status::InvalidArgument(
              "op payload: non-first node has no parent");
        }
        doc->AddRoot(label, nk);
      } else {
        // Parents must precede children (arena order), or AddChild would
        // index past the nodes built so far.
        if (parent >= i) {
          return Status::InvalidArgument(
              "op payload: node " + std::to_string(i) +
              " references forward parent " + std::to_string(parent));
        }
        doc->AddChild(parent, label, nk);
      }
    }
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (pos_ != n_) {
      return Status::InvalidArgument(
          "op payload: " + std::to_string(n_ - pos_) + " trailing bytes");
    }
    return Status::OK();
  }

  size_t remaining() const { return n_ - pos_; }

 private:
  Status Need(size_t k) const {
    if (n_ - pos_ < k) {
      return Status::InvalidArgument("op payload truncated");
    }
    return Status::OK();
  }

  const char* p_;
  size_t n_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<char> EncodeInsertOp(const std::string& index, uint32_t doc_id,
                                 const Document& doc) {
  std::vector<char> out;
  PutString(&out, index);
  PutU32(&out, doc_id);
  PutDoc(&out, doc);
  return out;
}

std::vector<char> EncodeUpdateOp(const std::string& index, uint32_t old_id,
                                 uint32_t new_id, const Document& doc) {
  std::vector<char> out;
  PutString(&out, index);
  PutU32(&out, old_id);
  PutU32(&out, new_id);
  PutDoc(&out, doc);
  return out;
}

std::vector<char> EncodeDeleteOp(const std::string& index, uint32_t doc_id) {
  std::vector<char> out;
  PutString(&out, index);
  PutU32(&out, doc_id);
  return out;
}

std::vector<char> EncodePutBlobOp(const std::string& name,
                                  const std::vector<char>& options,
                                  const std::vector<char>& blob) {
  std::vector<char> out;
  PutString(&out, name);
  PutU32(&out, static_cast<uint32_t>(options.size()));
  out.insert(out.end(), options.begin(), options.end());
  PutU32(&out, static_cast<uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
  return out;
}

std::vector<char> EncodeNameOp(const std::string& name) {
  std::vector<char> out;
  PutString(&out, name);
  return out;
}

Result<InsertOp> DecodeInsertOp(const std::vector<char>& payload) {
  Reader r(payload);
  InsertOp op;
  PRIX_RETURN_NOT_OK(r.String(&op.index));
  PRIX_RETURN_NOT_OK(r.U32(&op.doc_id));
  PRIX_RETURN_NOT_OK(r.Doc(&op.doc));
  PRIX_RETURN_NOT_OK(r.ExpectEnd());
  return op;
}

Result<UpdateOp> DecodeUpdateOp(const std::vector<char>& payload) {
  Reader r(payload);
  UpdateOp op;
  PRIX_RETURN_NOT_OK(r.String(&op.index));
  PRIX_RETURN_NOT_OK(r.U32(&op.old_doc_id));
  PRIX_RETURN_NOT_OK(r.U32(&op.new_doc_id));
  PRIX_RETURN_NOT_OK(r.Doc(&op.doc));
  PRIX_RETURN_NOT_OK(r.ExpectEnd());
  return op;
}

Result<DeleteOp> DecodeDeleteOp(const std::vector<char>& payload) {
  Reader r(payload);
  DeleteOp op;
  PRIX_RETURN_NOT_OK(r.String(&op.index));
  PRIX_RETURN_NOT_OK(r.U32(&op.doc_id));
  PRIX_RETURN_NOT_OK(r.ExpectEnd());
  return op;
}

Result<PutBlobOp> DecodePutBlobOp(const std::vector<char>& payload) {
  Reader r(payload);
  PutBlobOp op;
  PRIX_RETURN_NOT_OK(r.String(&op.name));
  PRIX_RETURN_NOT_OK(r.Bytes(&op.options));
  PRIX_RETURN_NOT_OK(r.Bytes(&op.blob));
  PRIX_RETURN_NOT_OK(r.ExpectEnd());
  return op;
}

Result<std::string> DecodeNameOp(const std::vector<char>& payload) {
  Reader r(payload);
  std::string name;
  PRIX_RETURN_NOT_OK(r.String(&name));
  PRIX_RETURN_NOT_OK(r.ExpectEnd());
  return name;
}

}  // namespace prix
