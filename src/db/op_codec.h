#ifndef PRIX_DB_OP_CODEC_H_
#define PRIX_DB_OP_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace prix {

// Payload encodings for oplog records (storage/oplog.h). A payload must be
// self-contained enough for a follower to replay the operation into its own
// database: documents travel as raw node arenas (label, kind, parent) —
// LabelIds, not tag names, because the engines index LabelIds and the
// follower's history is byte-derived from the leader's (the tag dictionary
// itself replicates as the "tags" kPutBlob records). Decoders assume the
// bytes crossed a network: every length is bounds-checked and a malformed
// payload is a typed InvalidArgument, never a wild read.

struct InsertOp {
  std::string index;
  uint32_t doc_id = 0;  ///< DocId the leader assigned; replay must agree
  Document doc;
};

struct UpdateOp {
  std::string index;
  uint32_t old_doc_id = 0;
  uint32_t new_doc_id = 0;
  Document doc;
};

struct DeleteOp {
  std::string index;
  uint32_t doc_id = 0;
};

/// PutIndex of a kBlob catalog entry: the follower rewrites the blob into
/// its own page chain and publishes the entry under the same name.
struct PutBlobOp {
  std::string name;
  std::vector<char> options;
  std::vector<char> blob;
};

std::vector<char> EncodeInsertOp(const std::string& index, uint32_t doc_id,
                                 const Document& doc);
std::vector<char> EncodeUpdateOp(const std::string& index, uint32_t old_id,
                                 uint32_t new_id, const Document& doc);
std::vector<char> EncodeDeleteOp(const std::string& index, uint32_t doc_id);
std::vector<char> EncodePutBlobOp(const std::string& name,
                                  const std::vector<char>& options,
                                  const std::vector<char>& blob);
/// kBarrier and kDrop carry just the entry name.
std::vector<char> EncodeNameOp(const std::string& name);

Result<InsertOp> DecodeInsertOp(const std::vector<char>& payload);
Result<UpdateOp> DecodeUpdateOp(const std::vector<char>& payload);
Result<DeleteOp> DecodeDeleteOp(const std::vector<char>& payload);
Result<PutBlobOp> DecodePutBlobOp(const std::vector<char>& payload);
Result<std::string> DecodeNameOp(const std::vector<char>& payload);

}  // namespace prix

#endif  // PRIX_DB_OP_CODEC_H_
