#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/build_info.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "db/op_codec.h"
#include "storage/page_format.h"
#include "storage/record_store.h"

namespace prix {

namespace {

constexpr uint32_t kDbMagic = 0x50524442;  // "PRDB"
/// Format 2 added the per-page CRC trailer (storage/page.h); format-1 files
/// carry no trailers and would drown in checksum mismatches, so they are
/// rejected up front by version, with a rebuild hint. The number itself
/// lives in common/build_info.h so the --version stamp cannot drift.
constexpr uint32_t kDbVersion = kDbFormatVersion;
constexpr PageId kHeaderSlots[2] = {0, 1};
/// magic + version + generation + payload_len + checksum.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr size_t kPayloadCapacity = kPageUsable - kHeaderBytes;

/// FNV-1a over the payload and the generation, so a slot whose payload and
/// generation were torn independently cannot validate.
uint32_t CatalogChecksum(const char* payload, size_t len, uint64_t gen) {
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  for (size_t i = 0; i < len; ++i) mix(static_cast<uint8_t>(payload[i]));
  for (int i = 0; i < 8; ++i) mix(static_cast<uint8_t>(gen >> (8 * i)));
  return h;
}

}  // namespace

Database::~Database() {
  Status st = Close();
  if (!st.ok()) {
    std::fprintf(stderr, "Database::Close during destruction: %s\n",
                 st.ToString().c_str());
  }
}

Result<std::unique_ptr<Database>> Database::Create(const std::string& path,
                                                   const Options& options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->path_ = path;
  if (options.fault_injector != nullptr) {
    db->disk_.set_fault_injector(options.fault_injector);
  }
  PRIX_RETURN_NOT_OK(db->disk_.Open(path));
  // From here on, failures abandon the half-built handle so the destructor
  // does not retry a commit against a file (or simulated device) that just
  // refused one.
  for (PageId slot : kHeaderSlots) {
    // Reserve the two catalog header slots as the first two pages.
    auto got = db->disk_.AllocatePage();
    if (!got.ok()) {
      db->Abandon();
      return got.status();
    }
    PRIX_CHECK(*got == slot);
  }
  if (options.oplog_fault_injector != nullptr) {
    db->oplog_.set_fault_injector(options.oplog_fault_injector);
  }
  {
    Status oplog_st =
        db->oplog_.Open(OpLog::PathFor(path), /*committed_gen=*/0,
                        /*truncate=*/true);
    if (!oplog_st.ok()) {
      db->Abandon();
      return oplog_st;
    }
  }
  db->pool_ = std::make_unique<BufferPool>(&db->disk_, options.pool_pages);
  db->pool_->set_allocator(db.get());
  Status commit_st;
  {
    std::lock_guard<std::mutex> lock(db->mu_);
    commit_st = db->CommitLocked();
  }
  if (!commit_st.ok()) {
    db->Abandon();
    return commit_st;
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 const Options& options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->path_ = path;
  if (options.fault_injector != nullptr) {
    db->disk_.set_fault_injector(options.fault_injector);
  }
  // A crash can tear a file extension mid-page; committed catalog state is
  // always page-aligned (commit syncs before publishing), so a ragged tail
  // is provably uncommitted and safe to drop.
  DiskManager::OpenOptions open_options;
  open_options.recover_trailing_partial_page = true;
  PRIX_RETURN_NOT_OK(db->disk_.OpenExisting(path, open_options));
  // Any failure past this point must Abandon the half-built handle: the
  // destructor would otherwise COMMIT an empty catalog onto the very file
  // this Open just refused to trust.
  if (db->disk_.num_pages() < 2) {
    Status st = Status::Corruption(path + " has no catalog header pages");
    db->Abandon();
    return st;
  }
  // Read both header slots and adopt the newest one that validates; a torn
  // commit leaves exactly one valid slot (the previous generation).
  bool any_valid = false;
  int bad_magic_slots = 0;
  uint32_t old_version = 0;
  PageId free_head = kInvalidPage;
  char page[kPageSize];
  for (PageId slot : kHeaderSlots) {
    Status read_st = db->disk_.ReadPage(slot, page);
    if (!read_st.ok()) {
      db->Abandon();
      return read_st;
    }
    uint64_t gen = 0;
    uint32_t version = 0;
    std::map<std::string, IndexEntry> entries;
    PageId slot_free_head = kInvalidPage;
    uint64_t slot_repl_gen = 0;
    uint32_t slot_repl_manifest = 0;
    switch (ParseHeader(page, &gen, &version, &entries, &slot_free_head,
                        &slot_repl_gen, &slot_repl_manifest)) {
      case SlotState::kValid:
        if (!any_valid || gen > db->generation_) {
          db->generation_ = gen;
          db->catalog_ = std::move(entries);
          free_head = slot_free_head;
          db->repl_source_gen_ = slot_repl_gen;
          db->repl_source_manifest_ = slot_repl_manifest;
        }
        any_valid = true;
        break;
      case SlotState::kBadMagic:
        ++bad_magic_slots;
        break;
      case SlotState::kOldVersion:
        old_version = version;
        break;
      case SlotState::kTorn:
        break;
    }
  }
  if (!any_valid) {
    // Pick the most specific story the two slots tell. A version mismatch
    // is an operator problem (rebuild), not corruption; a file where no
    // slot even carries the magic was never a PRIX database.
    Status st;
    if (old_version != 0) {
      st = Status::InvalidArgument(
          path + ": format version " + std::to_string(old_version) +
          " unsupported, rebuild index (this build reads format " +
          std::to_string(kDbVersion) + ")");
    } else if (bad_magic_slots == 2) {
      st = Status::Corruption(
          path + " is not a PRIX database (no superblock with magic "
                 "\"PRDB\" in either header slot)");
    } else {
      st = Status::Corruption(path + ": no valid catalog header slot");
    }
    db->Abandon();
    return st;
  }
  db->pool_ = std::make_unique<BufferPool>(&db->disk_, options.pool_pages);
  db->committed_gen_.store(db->generation_, std::memory_order_release);
  if (free_head != kInvalidPage) {
    // Reload the persistent free-page list the last commit recorded. The
    // blob's own pages are remembered so the next rewrite can retire them.
    std::vector<char> blob;
    Status st = ReadBlob(db->pool_.get(), free_head, &blob);
    if (st.ok()) st = ReadBlobPages(db->pool_.get(), free_head,
                                    &db->free_blob_pages_);
    if (st.ok()) {
      const char* p = blob.data();
      const char* end = p + blob.size();
      if (end - p < 8) st = Status::Corruption("truncated free-page list");
      uint64_t count = st.ok() ? GetU64(p) : 0;
      p += 8;
      if (st.ok() && count > static_cast<uint64_t>(end - p) / 12) {
        st = Status::Corruption("free-page list count " +
                                std::to_string(count) +
                                " exceeds its blob size");
      }
      uint32_t file_pages = db->disk_.num_pages();
      for (uint64_t i = 0; st.ok() && i < count; ++i) {
        PageId id = GetU32(p);
        p += 4;
        uint64_t gen = GetU64(p);
        p += 8;
        if (id < 2 || id >= file_pages) {
          st = Status::Corruption("free-page list references page " +
                                  std::to_string(id) + " outside the file");
          break;
        }
        db->free_pages_.push_back(FreedPage{id, gen});
      }
    }
    if (!st.ok()) {
      db->Abandon();
      return st;
    }
  }
  if (options.oplog_fault_injector != nullptr) {
    db->oplog_.set_fault_injector(options.oplog_fault_injector);
  }
  {
    // Recover the oplog against the recovered catalog generation: a torn
    // tail or a record ahead of the committed header is trimmed; a log that
    // cannot reach the committed generation is rebased.
    Status oplog_st = db->oplog_.Open(OpLog::PathFor(path), db->generation_,
                                      /*truncate=*/false);
    if (!oplog_st.ok()) {
      db->Abandon();
      return oplog_st;
    }
  }
  db->pool_->set_allocator(db.get());
  return db;
}

Status Database::Close() {
  if (!disk_.is_open()) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRIX_RETURN_NOT_OK(CommitLocked());
  }
  pool_.reset();
  Status disk_st = disk_.Close();
  Status oplog_st = oplog_.Close();
  return disk_st.ok() ? oplog_st : disk_st;
}

Database::SlotState Database::ParseHeader(
    const char* page, uint64_t* generation, uint32_t* version,
    std::map<std::string, IndexEntry>* entries, PageId* free_head,
    uint64_t* repl_gen, uint32_t* repl_manifest) {
  *free_head = kInvalidPage;
  *repl_gen = 0;
  *repl_manifest = 0;
  const char* p = page;
  if (GetU32(p) != kDbMagic) return SlotState::kBadMagic;
  p += 4;
  // Version is judged before the checksum: a format-1 slot has a valid
  // magic but fails format-2 validation everywhere else, and "old format"
  // is a far more useful answer than "torn slot".
  *version = GetU32(p);
  if (*version != kDbVersion) return SlotState::kOldVersion;
  p += 4;
  uint64_t gen = GetU64(p);
  p += 8;
  uint32_t payload_len = GetU32(p);
  p += 4;
  uint32_t checksum = GetU32(p);
  p += 4;
  if (payload_len > kPayloadCapacity) return SlotState::kTorn;
  if (CatalogChecksum(p, payload_len, gen) != checksum) {
    return SlotState::kTorn;
  }

  const char* end = p + payload_len;
  auto have = [&](size_t n) { return static_cast<size_t>(end - p) >= n; };
  if (!have(4)) return SlotState::kTorn;
  uint32_t count = GetU32(p);
  p += 4;
  std::map<std::string, IndexEntry> out;
  for (uint32_t i = 0; i < count; ++i) {
    if (!have(4)) return SlotState::kTorn;
    uint32_t name_len = GetU32(p);
    p += 4;
    if (!have(name_len)) return SlotState::kTorn;
    IndexEntry entry;
    entry.name.assign(p, name_len);
    p += name_len;
    if (!have(12)) return SlotState::kTorn;
    entry.kind = static_cast<IndexKind>(GetU32(p));
    p += 4;
    entry.root = GetU32(p);
    p += 4;
    uint32_t opt_len = GetU32(p);
    p += 4;
    if (!have(opt_len)) return SlotState::kTorn;
    entry.options.assign(p, p + opt_len);
    p += opt_len;
    out.emplace(entry.name, std::move(entry));
  }
  // Optional trailer (absent in headers written before the free list
  // existed): the free-page-list blob head.
  if (have(4)) {
    *free_head = GetU32(p);
    p += 4;
  }
  // Second optional trailer: stale-generation stamps for derived indexes
  // (headers written before staleness tracking simply end here). A name not
  // in the catalog is ignored, not an error: the entry may have been
  // dropped by the same commit that wrote the stamp list.
  if (have(4)) {
    uint32_t stale_count = GetU32(p);
    p += 4;
    for (uint32_t i = 0; i < stale_count; ++i) {
      if (!have(4)) return SlotState::kTorn;
      uint32_t name_len = GetU32(p);
      p += 4;
      if (!have(static_cast<size_t>(name_len) + 8)) return SlotState::kTorn;
      std::string name(p, name_len);
      p += name_len;
      uint64_t stale_gen = GetU64(p);
      p += 8;
      auto it = out.find(name);
      if (it != out.end()) it->second.stale_as_of_gen = stale_gen;
    }
  }
  // Third optional trailer: the replication cursor — the leader position
  // (generation + manifest) a follower has applied through. Headers written
  // before replication existed simply end here.
  if (have(12)) {
    *repl_gen = GetU64(p);
    p += 8;
    *repl_manifest = GetU32(p);
    p += 4;
  }
  *generation = gen;
  *entries = std::move(out);
  return SlotState::kValid;
}

void Database::SerializePayload(std::vector<char>* out) const {
  PutU32(out, static_cast<uint32_t>(catalog_.size()));
  for (const auto& [name, entry] : catalog_) {
    PutU32(out, static_cast<uint32_t>(name.size()));
    out->insert(out->end(), name.begin(), name.end());
    PutU32(out, static_cast<uint32_t>(entry.kind));
    PutU32(out, entry.root);
    PutU32(out, static_cast<uint32_t>(entry.options.size()));
    out->insert(out->end(), entry.options.begin(), entry.options.end());
  }
}

Result<PageId> Database::PersistFreeListLocked(uint64_t commit_gen) {
  std::vector<char> blob;
  std::vector<PageId> old_blob_pages;
  size_t pushed = 0;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (free_pages_.empty() && free_blob_pages_.empty()) return kInvalidPage;
    // Freeze the list: a page popped for reuse after this serialization
    // would still be listed as free in the durable blob, and on recovery
    // it would be handed out again while a committed structure references
    // it. Reuse resumes once CommitLocked finishes (either way).
    suspend_reuse_ = true;
    // The blob being superseded becomes free itself at this commit, and the
    // new blob must record that.
    old_blob_pages.swap(free_blob_pages_);
    for (PageId id : old_blob_pages) {
      free_pages_.push_back(FreedPage{id, commit_gen});
      ++pushed;
    }
    PutU64(&blob, free_pages_.size());
    for (const FreedPage& f : free_pages_) {
      PutU32(&blob, f.id);
      PutU64(&blob, f.gen);
    }
  }
  // Written outside free_mu_: WriteBlob allocates through AllocatePage,
  // which takes free_mu_ (and, with reuse suspended, extends the file).
  auto head = WriteBlob(pool_.get(), blob, &free_blob_pages_);
  if (!head.ok()) {
    std::lock_guard<std::mutex> lock(free_mu_);
    for (size_t i = 0; i < pushed; ++i) free_pages_.pop_back();
    free_blob_pages_.swap(old_blob_pages);
    return head.status();
  }
  return *head;
}

Status Database::CommitLocked() {
  uint64_t gen_next = generation_ + 1;
  auto resume_reuse = [this]() {
    std::lock_guard<std::mutex> lock(free_mu_);
    suspend_reuse_ = false;
  };
  std::vector<char> payload;
  SerializePayload(&payload);
  auto head = PersistFreeListLocked(gen_next);
  if (!head.ok()) {
    resume_reuse();
    return head.status();
  }
  PutU32(&payload, *head);
  // Stale-generation trailer (parsed as the second optional trailer): only
  // stamped entries are listed, so fresh catalogs pay four bytes.
  {
    uint32_t stale_count = 0;
    for (const auto& [name, entry] : catalog_) {
      if (entry.stale_as_of_gen != 0) ++stale_count;
    }
    PutU32(&payload, stale_count);
    for (const auto& [name, entry] : catalog_) {
      if (entry.stale_as_of_gen == 0) continue;
      PutU32(&payload, static_cast<uint32_t>(name.size()));
      payload.insert(payload.end(), name.begin(), name.end());
      PutU64(&payload, entry.stale_as_of_gen);
    }
  }
  // Replication-cursor trailer (third optional trailer): committing it with
  // the catalog makes "which leader generation this follower reflects"
  // atomic with the applied state itself.
  PutU64(&payload, repl_source_gen_);
  PutU32(&payload, repl_source_manifest_);
  if (payload.size() > kPayloadCapacity) {
    resume_reuse();
    return Status::ResourceExhausted(
        "catalog payload exceeds one header page (" +
        std::to_string(payload.size()) + " bytes)");
  }
  // Durability order (DESIGN.md §5e): (1) flush every dirty index page,
  // (2) fdatasync so those pages are on the platter, (3) write the header
  // slot that names them, (4) fdatasync again so the commit point itself is
  // durable. Without the first sync a crash could persist the new catalog
  // while losing index pages it references; without the second the commit
  // may silently roll back. The crash-simulation matrix
  // (tests/crash_recovery_test.cc) fails if either sync is removed.
  Status st;
  if (pool_ != nullptr) st = pool_->FlushAll();
  if (st.ok()) st = disk_.Sync();
  if (!st.ok()) {
    resume_reuse();
    return st;
  }
  // Oplog barrier (DESIGN.md §5l): the record for this generation is durable
  // BEFORE the header flips, so after any crash the log covers every
  // committed generation. The converse hazard — a durable record whose
  // header never flipped — is trimmed by OpLog::Open at recovery and by the
  // rollback below on a live commit failure.
  {
    OpKind op_kind = pending_op_set_ ? pending_op_kind_ : OpKind::kNoop;
    std::vector<char> op_payload = std::move(pending_op_payload_);
    pending_op_set_ = false;
    pending_op_kind_ = OpKind::kNoop;
    pending_op_payload_.clear();
    st = oplog_.Append(gen_next, op_kind, op_payload);
    if (!st.ok()) {
      resume_reuse();
      return st;
    }
  }
  uint64_t gen = gen_next;
  char page[kPageSize] = {};
  std::vector<char> header;
  header.reserve(kHeaderBytes);
  PutU32(&header, kDbMagic);
  PutU32(&header, kDbVersion);
  PutU64(&header, gen);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, CatalogChecksum(payload.data(), payload.size(), gen));
  PRIX_CHECK(header.size() == kHeaderBytes);
  std::memcpy(page, header.data(), header.size());
  std::memcpy(page + kHeaderBytes, payload.data(), payload.size());
  // Header slots bypass the buffer pool, so this write stamps its own
  // trailer; the catalog FNV checksum guards torn slots, the trailer CRC
  // makes the page pass a whole-file scrub.
  SetPageType(page, PageType::kCatalogHeader);
  StampPageTrailer(page);
  // Alternate slots by generation parity: the slot holding the current
  // generation is never overwritten, so a torn write of the new slot still
  // leaves the old catalog recoverable.
  PageId slot = kHeaderSlots[gen % 2];
  st = disk_.WritePage(slot, page);
  if (st.ok()) st = disk_.Sync();
  if (!st.ok()) {
    // The commit never published: drop its oplog record so the live handle
    // cannot stream history ahead of the catalog. (After a real crash here
    // OpLog::Open performs the same trim.)
    (void)oplog_.TruncateTo(generation_);
    resume_reuse();
    return st;
  }
  generation_ = gen;
  committed_gen_.store(gen, std::memory_order_release);
  resume_reuse();
  return Status::OK();
}

Result<PageId> Database::AllocatePage() {
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!suspend_reuse_ && !free_pages_.empty()) {
      // A page retired at generation g is safe to recycle once (a) the
      // commit that retired it is durable and (b) no snapshot pins a
      // generation older than g (such a snapshot could still reach the
      // page through its pre-g catalog).
      uint64_t barrier = committed_gen_.load(std::memory_order_acquire);
      if (!pinned_gens_.empty()) {
        barrier = std::min(barrier, *pinned_gens_.begin());
      }
      // A snapshot ship in progress pins its generation exactly like an
      // open Snapshot: the file being streamed still references every page
      // its generation could reach.
      uint64_t low_water = repl_low_water_.load(std::memory_order_acquire);
      if (low_water != kNoReplLowWater) {
        barrier = std::min(barrier, low_water);
      }
      if (free_pages_.front().gen <= barrier) {
        PageId id = free_pages_.front().id;
        free_pages_.pop_front();
        MetricsRegistry& reg = MetricsRegistry::Global();
        if (reg.enabled()) reg.counter("prix.db.pages_reused").Add(1);
        return id;
      }
    }
  }
  return disk_.AllocatePage();
}

size_t Database::free_page_count() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return free_pages_.size();
}

std::shared_ptr<const Snapshot> Database::OpenSnapshot() {
  auto* snap = new Snapshot();
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->generation_ = generation_;
    snap->catalog_ = catalog_;
  }
  uint64_t gen = snap->generation_;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    pinned_gens_.insert(gen);
  }
  // The deleter unpins the generation; it takes only free_mu_, so dropping
  // a snapshot is safe from any thread, including while a writer commits.
  return std::shared_ptr<const Snapshot>(snap, [this, gen](Snapshot* s) {
    {
      std::lock_guard<std::mutex> lock(free_mu_);
      pinned_gens_.erase(pinned_gens_.find(gen));
    }
    delete s;
  });
}

Status Database::CommitBatch(const std::vector<IndexEntry>& entries,
                             const std::vector<PageId>& freed) {
  for (const IndexEntry& e : entries) {
    if (e.name.empty()) {
      return Status::InvalidArgument("catalog entry needs a name");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, IndexEntry> old_catalog = catalog_;
  uint64_t commit_gen = generation_ + 1;
  {
    std::lock_guard<std::mutex> flock(free_mu_);
    for (PageId id : freed) free_pages_.push_back(FreedPage{id, commit_gen});
  }
  for (const IndexEntry& e : entries) catalog_[e.name] = e;
  // ROADMAP item 4 stopgap: online ingest rewrites only the PRIX index it
  // targets, so any co-resident derived index (ViST, TwigStack streams,
  // XB-forest) not part of this batch stops reflecting the collection at
  // this commit. Stamp it with the first generation it missed; the stamp
  // survives until a rebuild republishes the entry with a fresh one. The
  // rollback below restores old_catalog, which undoes the stamps too.
  bool mutates_documents = false;
  for (const IndexEntry& e : entries) {
    if (e.kind == IndexKind::kPrixRegular ||
        e.kind == IndexKind::kPrixExtended) {
      mutates_documents = true;
    }
  }
  if (mutates_documents) {
    for (auto& [name, entry] : catalog_) {
      if (entry.kind != IndexKind::kVist &&
          entry.kind != IndexKind::kTwigStreams &&
          entry.kind != IndexKind::kXbForest) {
        continue;
      }
      bool in_batch = false;
      for (const IndexEntry& e : entries) in_batch |= e.name == name;
      if (!in_batch && entry.stale_as_of_gen == 0) {
        entry.stale_as_of_gen = commit_gen;
      }
    }
  }
  Status st = CommitLocked();
  if (!st.ok()) {
    // The transaction did not publish: its superseded pages are still live
    // in the (restored) old catalog and must leave the free list. Matching
    // by id from the back is exact — these are the newest entries for
    // their ids (CommitLocked's own blob retirement rolls itself back).
    catalog_ = std::move(old_catalog);
    std::lock_guard<std::mutex> flock(free_mu_);
    for (PageId id : freed) {
      for (auto it = free_pages_.rbegin(); it != free_pages_.rend(); ++it) {
        if (it->id == id && it->gen == commit_gen) {
          free_pages_.erase(std::next(it).base());
          break;
        }
      }
    }
    return st;
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled() && !freed.empty()) {
    reg.counter("prix.db.pages_freed").Add(freed.size());
  }
  return Status::OK();
}

void Database::Abandon() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ != nullptr) {
    pool_->DiscardAll();  // nothing may be written after a simulated crash
    pool_.reset();
  }
  (void)disk_.Close();
  oplog_.Abandon();
  catalog_.clear();
}

void Database::StageOpRecord(OpKind kind, std::vector<char> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_op_set_ = true;
  pending_op_kind_ = kind;
  pending_op_payload_ = std::move(payload);
}

void Database::ClearStagedOp() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_op_set_ = false;
  pending_op_kind_ = OpKind::kNoop;
  pending_op_payload_.clear();
}

void Database::StageReplCursor(uint64_t source_gen, uint32_t source_manifest) {
  std::lock_guard<std::mutex> lock(mu_);
  repl_source_gen_ = source_gen;
  repl_source_manifest_ = source_manifest;
}

std::pair<uint64_t, uint32_t> Database::repl_cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {repl_source_gen_, repl_source_manifest_};
}

void Database::SetReplLowWater(uint64_t gen) {
  repl_low_water_.store(gen, std::memory_order_release);
}

Result<Database::FileSnapshot> Database::BeginFileSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  FileSnapshot snap;
  snap.gen = generation_;
  snap.num_pages = disk_.num_pages();
  auto manifest = oplog_.ManifestAt(snap.gen);
  if (!manifest.ok()) return manifest.status();
  snap.manifest = *manifest;
  // Bound page reuse BEFORE reading anything: from here to EndFileSnapshot
  // no page a generation-`gen` catalog can reach is recycled, so the caller
  // may read pages >= 2 lock-free (committed pages are never overwritten
  // under copy-on-write; everything committed at `gen` is already on disk
  // because CommitLocked syncs data before flipping the header). Callers
  // serialize ships — there is one low-water bound, not a stack.
  SetReplLowWater(snap.gen);
  snap.header_pages.resize(2 * static_cast<size_t>(kPageSize));
  Status st = disk_.ReadPage(0, snap.header_pages.data());
  if (st.ok()) st = disk_.ReadPage(1, snap.header_pages.data() + kPageSize);
  if (!st.ok()) {
    EndFileSnapshot();
    return st;
  }
  return snap;
}

void Database::EndFileSnapshot() { SetReplLowWater(kNoReplLowWater); }

Status Database::PutIndex(const IndexEntry& entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("catalog entry needs a name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A successful Save publishes an index that is current by definition, so
  // it supersedes any staleness stamp — including one the caller copied in
  // from a stale entry it was rebuilding over. Only CommitBatch (which sees
  // which engines a document mutation carried along) may stamp.
  IndexEntry fresh = entry;
  fresh.stale_as_of_gen = 0;
  catalog_[entry.name] = std::move(fresh);
  // Stage this publish's oplog record. A blob entry travels by value (the
  // follower rewrites the bytes into its own page chain); an engine publish
  // is a barrier — its page roots mean nothing in another file, so a
  // follower that reaches it must resync from a full snapshot.
  std::vector<char> blob;
  if (entry.kind == IndexKind::kBlob && entry.root != kInvalidPage &&
      pool_ != nullptr && ReadBlob(pool_.get(), entry.root, &blob).ok() &&
      blob.size() + entry.options.size() + entry.name.size() + 64 <=
          OpLog::kMaxPayload) {
    pending_op_kind_ = OpKind::kPutBlob;
    pending_op_payload_ = EncodePutBlobOp(entry.name, entry.options, blob);
  } else {
    pending_op_kind_ = OpKind::kBarrier;
    pending_op_payload_ = EncodeNameOp(entry.name);
  }
  pending_op_set_ = true;
  return CommitLocked();
}

Result<Database::IndexEntry> Database::GetIndex(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no index named '" + name + "' in " + path_);
  }
  return it->second;
}

bool Database::HasIndex(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.find(name) != catalog_.end();
}

std::vector<Database::IndexEntry> Database::ListIndexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IndexEntry> out;
  out.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) out.push_back(entry);
  return out;
}

Status Database::DropIndex(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.erase(name) == 0) {
    return Status::NotFound("no index named '" + name + "' in " + path_);
  }
  pending_op_set_ = true;
  pending_op_kind_ = OpKind::kDrop;
  pending_op_payload_ = EncodeNameOp(name);
  return CommitLocked();
}

uint64_t Database::catalog_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

Status Database::ColdStart() {
  PRIX_RETURN_NOT_OK(pool_->Clear());
  pool_->ResetStats();
  return Status::OK();
}

}  // namespace prix
