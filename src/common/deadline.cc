#include "common/deadline.h"

#include <chrono>

namespace prix {

namespace deadline_internal {
#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
thread_local const Deadline* tls_deadline
    __attribute__((tls_model("initial-exec"))) = nullptr;
#else
thread_local const Deadline* tls_deadline = nullptr;
#endif
}  // namespace deadline_internal

uint64_t Deadline::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace prix
