#include "common/queryfile.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace prix {

namespace {

Status MalformedAt(std::string_view what, size_t line, size_t offset) {
  return Status::ParseError(std::string(what) + " at line " +
                            std::to_string(line) + " (offset " +
                            std::to_string(offset) + ")");
}

/// Parses a decimal u64 at `*pos`, advancing past it. Rejects empty digits
/// and overflow; leading zeros are accepted (ids copied from other tools
/// often carry them).
Status ParseUint(std::string_view text, size_t* pos, size_t line,
                 std::string_view what, uint64_t* out) {
  size_t start = *pos;
  uint64_t value = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    uint64_t digit = static_cast<uint64_t>(text[*pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return MalformedAt(std::string(what) + " overflows", line, start);
    }
    value = value * 10 + digit;
    ++*pos;
  }
  if (*pos == start) {
    return MalformedAt("expected " + std::string(what), line, start);
  }
  *out = value;
  return Status::OK();
}

/// Consumes exactly one ' ' separator.
Status ParseSpace(std::string_view text, size_t* pos, size_t line) {
  if (*pos >= text.size() || text[*pos] != ' ') {
    return MalformedAt("expected ' '", line, *pos);
  }
  ++*pos;
  return Status::OK();
}

}  // namespace

Result<std::vector<QueryFileEntry>> ParseQueryFile(std::string_view text) {
  size_t pos = 0;
  size_t line = 1;
  uint64_t declared = 0;
  PRIX_RETURN_NOT_OK(ParseUint(text, &pos, line, "query count", &declared));
  if (pos >= text.size() || text[pos] != '\n') {
    return MalformedAt("expected end of line after query count", line, pos);
  }
  ++pos;
  // A count an attacker (or a corrupted file) inflated must not drive a
  // pre-allocation: reserve against what the remaining bytes could possibly
  // hold (every line needs at least 4 bytes: "0 0\n").
  std::vector<QueryFileEntry> entries;
  uint64_t plausible = (text.size() - pos) / 4 + 1;
  entries.reserve(static_cast<size_t>(std::min(declared, plausible)));
  for (uint64_t i = 0; i < declared; ++i) {
    ++line;
    if (pos >= text.size()) {
      return MalformedAt("file ends after " + std::to_string(i) + " of " +
                             std::to_string(declared) + " declared queries",
                         line, pos);
    }
    QueryFileEntry entry;
    PRIX_RETURN_NOT_OK(ParseUint(text, &pos, line, "query id", &entry.id));
    PRIX_RETURN_NOT_OK(ParseSpace(text, &pos, line));
    uint64_t len = 0;
    PRIX_RETURN_NOT_OK(ParseUint(text, &pos, line, "query length", &len));
    PRIX_RETURN_NOT_OK(ParseSpace(text, &pos, line));
    if (len > text.size() - pos) {
      return MalformedAt("query length " + std::to_string(len) +
                             " runs past end of file",
                         line, pos);
    }
    entry.text.assign(text.data() + pos, static_cast<size_t>(len));
    if (entry.text.find('\n') != std::string::npos) {
      return MalformedAt("query length " + std::to_string(len) +
                             " spans a newline",
                         line, pos + entry.text.find('\n'));
    }
    pos += static_cast<size_t>(len);
    if (pos < text.size()) {
      if (text[pos] != '\n') {
        return MalformedAt("expected end of line after query text", line,
                           pos);
      }
      ++pos;
    } else if (i + 1 < declared) {
      return MalformedAt("file ends after " + std::to_string(i + 1) +
                             " of " + std::to_string(declared) +
                             " declared queries",
                         line, pos);
    }
    entries.push_back(std::move(entry));
  }
  if (pos < text.size()) {
    return MalformedAt("trailing data after " + std::to_string(declared) +
                           " declared queries",
                       line + 1, pos);
  }
  return entries;
}

Result<std::vector<QueryFileEntry>> LoadQueryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = ParseQueryFile(buf.str());
  if (!parsed.ok()) return parsed.status().Annotate(path);
  return parsed;
}

std::string FormatQueryFile(const std::vector<QueryFileEntry>& entries) {
  std::string out = std::to_string(entries.size());
  out += '\n';
  for (const QueryFileEntry& e : entries) {
    out += std::to_string(e.id);
    out += ' ';
    out += std::to_string(e.text.size());
    out += ' ';
    out += e.text;
    out += '\n';
  }
  return out;
}

}  // namespace prix
