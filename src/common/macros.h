#ifndef PRIX_COMMON_MACROS_H_
#define PRIX_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Propagates a non-OK Status from the enclosing function.
#define PRIX_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::prix::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define PRIX_CONCAT_IMPL(x, y) x##y
#define PRIX_CONCAT(x, y) PRIX_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define PRIX_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto PRIX_CONCAT(_result_, __LINE__) = (rexpr);                 \
  if (!PRIX_CONCAT(_result_, __LINE__).ok())                      \
    return PRIX_CONCAT(_result_, __LINE__).status();              \
  lhs = std::move(PRIX_CONCAT(_result_, __LINE__)).ValueOrDie()

/// Fatal invariant check, active in all build types. Database-internal
/// corruption is never worth limping past.
#define PRIX_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PRIX_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define PRIX_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define PRIX_DCHECK(cond) PRIX_CHECK(cond)
#endif

#endif  // PRIX_COMMON_MACROS_H_
