#include "common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PRIX_CRC32C_HAVE_X86 1
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define PRIX_CRC32C_HAVE_ARM 1
#include <arm_acle.h>
#endif

namespace prix {
namespace {

// ---- software fallback: slice-by-8 over generated tables -----------------

struct SoftwareTables {
  uint32_t t[8][256];

  SoftwareTables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const SoftwareTables& Tables() {
  static const SoftwareTables tables;
  return tables;
}

uint32_t SoftwareExtend(uint32_t crc, const unsigned char* p, size_t n) {
  const SoftwareTables& tb = Tables();
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    v ^= crc;
    crc = tb.t[7][v & 0xff] ^ tb.t[6][(v >> 8) & 0xff] ^
          tb.t[5][(v >> 16) & 0xff] ^ tb.t[4][(v >> 24) & 0xff] ^
          tb.t[3][(v >> 32) & 0xff] ^ tb.t[2][(v >> 40) & 0xff] ^
          tb.t[1][(v >> 48) & 0xff] ^ tb.t[0][(v >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

// ---- hardware paths ------------------------------------------------------

#ifdef PRIX_CRC32C_HAVE_X86
__attribute__((target("sse4.2"))) uint32_t HardwareExtend(
    uint32_t crc, const unsigned char* p, size_t n) {
#if defined(__x86_64__)
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
#else
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    crc = __builtin_ia32_crc32si(crc, v);
    p += 4;
    n -= 4;
  }
#endif
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}

bool HardwareAvailable() { return __builtin_cpu_supports("sse4.2") != 0; }
#elif defined(PRIX_CRC32C_HAVE_ARM)
uint32_t HardwareExtend(uint32_t crc, const unsigned char* p, size_t n) {
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = __crc32cd(crc, v);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return crc;
}

// __ARM_FEATURE_CRC32 implies the target was compiled for CPUs with the
// instructions; no runtime probe needed.
bool HardwareAvailable() { return true; }
#else
uint32_t HardwareExtend(uint32_t, const unsigned char*, size_t) { return 0; }
bool HardwareAvailable() { return false; }
#endif

using ExtendFn = uint32_t (*)(uint32_t, const unsigned char*, size_t);

ExtendFn Dispatch() {
  return HardwareAvailable() ? &HardwareExtend : &SoftwareExtend;
}

ExtendFn Impl() {
  // Thread-safe one-time dispatch (C++ static init).
  static const ExtendFn impl = Dispatch();
  return impl;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  // Standard pre/post conditioning so Crc32c("") == 0 and results match the
  // iSCSI/RFC 3720 test vectors.
  return Impl()(crc ^ 0xffffffffu,
                static_cast<const unsigned char*>(data), n) ^
         0xffffffffu;
}

bool Crc32cHardwareAccelerated() { return HardwareAvailable(); }

}  // namespace prix
