#ifndef PRIX_COMMON_BUILD_INFO_H_
#define PRIX_COMMON_BUILD_INFO_H_

#include <cstdint>
#include <string>

#include "common/json.h"

namespace prix {

// On-disk format versions, owned here (the bottom layer) so the subsystems
// that write them and the build-info stamp that reports them can never
// disagree. Bump the owner's constant and every consumer follows.

/// Database catalog header format (db/database.cc header codec).
constexpr uint32_t kDbFormatVersion = 2;
/// Oplog sidecar format (storage/oplog.cc header codec).
constexpr uint32_t kOpLogFormatVersion = 1;

struct BuildInfo {
  std::string git_describe;   ///< `git describe` at configure time
  uint32_t db_format = 0;     ///< kDbFormatVersion
  uint32_t oplog_format = 0;  ///< kOpLogFormatVersion
  bool crc32c_hardware = false;  ///< SSE4.2/ARMv8 CRC dispatch taken
};

BuildInfo GetBuildInfo();

/// One line for `prix --version`:
///   prix <git-describe> (db format 2, oplog format 1, crc32c hardware)
std::string BuildInfoLine();

/// Appends `"build": {...}` to a JsonWriter positioned inside an object.
/// Stamped into every BENCH_*.json so a result file identifies the exact
/// binary that produced it.
void AppendBuildInfoJson(JsonWriter* w);

}  // namespace prix

#endif  // PRIX_COMMON_BUILD_INFO_H_
