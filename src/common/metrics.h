#ifndef PRIX_COMMON_METRICS_H_
#define PRIX_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prix {

// Per-operation metrics in the RocksDB PerfContext/Statistics mold:
//
//  - MetricsContext (the PerfContext half): a thread-local, RAII-scoped
//    counter block the storage layer charges on every buffer-pool
//    hit/miss, physical page read/write, and B+-tree node visit. Because
//    the context is thread-local and queries execute on one thread,
//    attribution is EXACT: a query's counters contain its own I/O and
//    nothing else, no matter how many other queries fault pages
//    concurrently (QueryStats::pages_read is read from here).
//  - MetricsRegistry (the Statistics half): process-wide named counters
//    and power-of-two latency histograms (p50/p95/p99), disabled by
//    default, exported as JSON by benches and `prix stats`.
//  - TraceSpan: lightweight per-query phase spans, collected only when a
//    context opts in, rendered as an indented phase breakdown.
//
// Cost model (see DESIGN.md §5f and tools/check_metrics_overhead.sh): a
// charge with no open context is one thread-local load plus a predictable
// branch; building with -DPRIX_NO_METRICS compiles the hooks out entirely
// so the gap between the two is measurable. The ≤2% budget is enforced on
// bench_micro_core's buffer-pool/B+-tree hot paths.

/// Counter block charged by the storage layer. Plain (non-atomic) fields:
/// a context belongs to exactly one thread for its whole lifetime.
struct MetricCounters {
  uint64_t pool_hits = 0;       ///< buffer-pool hits
  uint64_t pool_misses = 0;     ///< buffer-pool misses
  uint64_t physical_reads = 0;  ///< pages read from disk (paper's "Disk IO")
  uint64_t physical_writes = 0; ///< pages written to disk
  uint64_t btree_nodes = 0;     ///< B+-tree nodes visited on read paths

  void MergeFrom(const MetricCounters& other) {
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    btree_nodes += other.btree_nodes;
  }
};

/// One recorded trace span (microseconds relative to the context's birth).
struct TraceEvent {
  const char* name = nullptr;  ///< static string; spans never own names
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t depth = 0;  ///< nesting depth at record time (root span = 0)
};

class MetricsContext;

namespace metrics_internal {
/// The innermost open context of this thread (nullptr outside any scope).
/// Declared here so the Charge* hooks inline to a TLS load + branch. The
/// initial-exec TLS model keeps that load a single %fs-relative move
/// instead of a __tls_get_addr call (we only ever link statically; the
/// overhead guard in tools/check_metrics_overhead.sh holds it to <=2%).
#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
extern thread_local MetricsContext* tls_context
    __attribute__((tls_model("initial-exec")));
#else
extern thread_local MetricsContext* tls_context;
#endif
}  // namespace metrics_internal

/// RAII per-operation scope. Opening one makes this thread's storage-layer
/// charges land in `counters`; closing it folds the counters into the
/// enclosing scope (if any), so an outer scope around a batch still sees
/// batch totals. Contexts must be closed on the thread that opened them
/// and nest strictly (stack order) — both properties fall out of RAII.
class MetricsContext {
 public:
  explicit MetricsContext(bool collect_trace = false)
      : tracing_(collect_trace),
        parent_(metrics_internal::tls_context) {
    if (tracing_) birth_us_ = NowMicros();
    metrics_internal::tls_context = this;
  }

  ~MetricsContext() {
    metrics_internal::tls_context = parent_;
    if (parent_ != nullptr) parent_->counters.MergeFrom(counters);
  }

  MetricsContext(const MetricsContext&) = delete;
  MetricsContext& operator=(const MetricsContext&) = delete;

  static MetricsContext* Current() { return metrics_internal::tls_context; }

  MetricCounters counters;

  // ---- tracing (off unless the context was opened with collect_trace) ----
  bool tracing() const { return tracing_; }
  uint64_t birth_us() const { return birth_us_; }
  std::vector<TraceEvent>& trace() { return trace_; }

  /// Monotonic clock in microseconds (steady_clock).
  static uint64_t NowMicros();

 private:
  friend class TraceSpan;
  bool tracing_ = false;
  uint64_t birth_us_ = 0;
  uint32_t span_depth_ = 0;
  std::vector<TraceEvent> trace_;
  MetricsContext* parent_ = nullptr;
};

/// RAII trace span. A no-op unless some ENCLOSING context was opened with
/// collect_trace; the nearest such context collects the span, so a caller
/// tracing a query sees phase spans even though Execute opens its own
/// (non-tracing) context for I/O attribution in between. `name` must be a
/// static string.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    MetricsContext* ctx = MetricsContext::Current();
    while (ctx != nullptr && !ctx->tracing()) ctx = ctx->parent_;
    if (ctx == nullptr) return;
    ctx_ = ctx;
    name_ = name;
    depth_ = ctx->span_depth_++;
    start_us_ = MetricsContext::NowMicros();
  }
  ~TraceSpan() {
    if (ctx_ == nullptr) return;
    --ctx_->span_depth_;
    ctx_->trace_.push_back(TraceEvent{
        name_, start_us_ - ctx_->birth_us(),
        MetricsContext::NowMicros() - start_us_, depth_});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  MetricsContext* ctx_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
};

/// Renders recorded spans as an indented per-phase breakdown, one line per
/// span: "  refine           1234 us".
std::string RenderTrace(const std::vector<TraceEvent>& trace);

// ---- storage-layer charge hooks ----
//
// Compiled out under PRIX_NO_METRICS (the baseline build the overhead
// guard compares against); otherwise one TLS load + branch when no scope
// is open.
#ifdef PRIX_NO_METRICS
inline void ChargePoolHit() {}
inline void ChargePoolMiss() {}
inline void ChargePhysicalRead() {}
inline void ChargePhysicalWrite() {}
inline void ChargeBtreeNode() {}
inline void ChargeBtreeNodes(uint64_t) {}
#else
inline void ChargePoolHit() {
  if (MetricsContext* c = metrics_internal::tls_context) {
    ++c->counters.pool_hits;
  }
}
inline void ChargePoolMiss() {
  if (MetricsContext* c = metrics_internal::tls_context) {
    ++c->counters.pool_misses;
  }
}
inline void ChargePhysicalRead() {
  if (MetricsContext* c = metrics_internal::tls_context) {
    ++c->counters.physical_reads;
  }
}
inline void ChargePhysicalWrite() {
  if (MetricsContext* c = metrics_internal::tls_context) {
    ++c->counters.physical_writes;
  }
}
inline void ChargeBtreeNode() {
  if (MetricsContext* c = metrics_internal::tls_context) {
    ++c->counters.btree_nodes;
  }
}
/// Bulk variant so a B+-tree descent pays one TLS access for the whole
/// root-to-leaf walk instead of one per level.
inline void ChargeBtreeNodes(uint64_t n) {
  if (MetricsContext* c = metrics_internal::tls_context) {
    c->counters.btree_nodes += n;
  }
}
#endif  // PRIX_NO_METRICS

/// Process-wide monotonically increasing counter (relaxed atomics).
class MetricCounter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Lock-free histogram with power-of-two buckets: bucket 0 holds value 0,
/// bucket i (i >= 1) holds values in [2^(i-1), 2^i). Record is two relaxed
/// fetch_adds; percentiles interpolate linearly inside the hit bucket, so
/// a quantile is exact to within a factor of two (plenty for latency
/// reporting — the same trade RocksDB's HistogramStat makes).
class MetricHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Value at quantile `q` in [0, 1] (0.5 = p50). 0 when empty.
  uint64_t Percentile(double q) const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Process-wide registry of named counters and histograms. Lookup takes a
/// mutex and is meant to be done once (cache the returned reference — the
/// objects are never destroyed or moved while the process lives); Record
/// and Add on the returned objects are lock-free. Disabled by default so
/// library users pay nothing; benches, tests, and the CLI enable it.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Finds or creates the named metric. References stay valid for the
  /// process lifetime (Reset zeroes values, it never removes entries).
  MetricCounter& counter(std::string_view name);
  MetricHistogram& histogram(std::string_view name);

  /// Zeroes every registered counter and histogram.
  void Reset();

  /// Full dump, sorted by name:
  /// {"counters": {...}, "histograms": {name: {count, sum, mean, p50, p95,
  /// p99, max}, ...}}
  std::string ToJson() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
  std::atomic<bool> enabled_{false};
};

}  // namespace prix

#endif  // PRIX_COMMON_METRICS_H_
