#ifndef PRIX_COMMON_JSON_H_
#define PRIX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace prix {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters become
/// \b \f \n \r \t or \u00XX. Bytes >= 0x20 pass through untouched, so
/// UTF-8 survives verbatim.
std::string JsonEscape(std::string_view s);

/// Streaming JSON builder that cannot emit syntactically invalid output
/// for any input string (all strings go through JsonEscape; non-finite
/// doubles become null — JSON has no NaN/Infinity). Usage:
///
///   JsonWriter w;
///   w.BeginObject().Key("query").String(xpath).Key("pages").UInt(n);
///   w.Key("rows").BeginArray();
///   for (...) w.BeginObject()...EndObject();
///   w.EndArray().EndObject();
///   std::string out = w.Take();
///
/// Commas and key/value colons are inserted automatically. Balancing of
/// Begin/End calls is the caller's job (checked with assertions in debug
/// builds, tested by the round-trip validator in tests/json_test.cc).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Appends a pre-serialized JSON value (e.g. another writer's Take()).
  /// The caller vouches for its validity.
  JsonWriter& RawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  std::string out_;
  /// One frame per open container: true while the NEXT element needs a
  /// leading comma.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Minimal RFC 8259 syntax validator (structure, strings, escapes,
/// numbers; rejects trailing garbage). Returns ParseError with a byte
/// offset on the first violation. Used by tests to round-trip every
/// emitted BENCH_*.json, and cheap enough to run on full benchmark files.
Status ValidateJson(std::string_view text);

}  // namespace prix

#endif  // PRIX_COMMON_JSON_H_
