#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace prix {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PRIX_DCHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PRIX_DCHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  PRIX_DCHECK(!after_key_);
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Infinity
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent validator over `text_`; tracks position for errors.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  Status Run() {
    SkipSpace();
    PRIX_RETURN_NOT_OK(Value(0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& what) {
    return Status::ParseError("invalid JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return ConsumeLiteral("true") ? Status::OK() : Error("bad literal");
      case 'f':
        return ConsumeLiteral("false") ? Status::OK() : Error("bad literal");
      case 'n':
        return ConsumeLiteral("null") ? Status::OK() : Error("bad literal");
      default:
        return Number();
    }
  }

  Status Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      PRIX_RETURN_NOT_OK(String());
      SkipSpace();
      if (AtEnd() || Peek() != ':') return Error("expected ':'");
      ++pos_;
      SkipSpace();
      PRIX_RETURN_NOT_OK(Value(depth + 1));
      SkipSpace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!AtEnd() && Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      PRIX_RETURN_NOT_OK(Value(depth + 1));
      SkipSpace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!AtEnd() && Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status String() {
    ++pos_;  // '"'
    while (!AtEnd()) {
      unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) break;
        char e = Peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Error("bad \\u escape");
            }
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return Error("bad escape character");
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status Number() {
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected a value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("bad fraction");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("bad exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) { return Validator(text).Run(); }

}  // namespace prix
