#ifndef PRIX_COMMON_STATUS_H_
#define PRIX_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace prix {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIoError = 2,
  kNotFound = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kParseError = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kNotImplemented = 10,
  kDeadlineExceeded = 11,
  kCancelled = 12,
  kFailedPrecondition = 13,
  kUnavailable = 14,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style operation outcome. An OK status carries no allocation;
/// error statuses carry a code and a message. Statuses are cheap to move and
/// cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Transient peer/service condition (connection reset, server draining):
  /// the operation may succeed if retried elsewhere or later.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  std::string_view message() const {
    return ok() ? std::string_view() : std::string_view(state_->msg);
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns this status with "`context`: " prefixed to the message (code
  /// preserved; OK stays OK). Error paths that cross a subsystem boundary
  /// use this so an injected or real I/O fault names the operation it
  /// failed, not just the syscall.
  Status Annotate(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace prix

#endif  // PRIX_COMMON_STATUS_H_
