#include "common/thread_pool.h"

namespace prix {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<Status> ThreadPool::Submit(std::function<Status()> fn) {
  std::packaged_task<Status()> task(std::move(fn));
  std::future<Status> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return future;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // exceptions are captured into the task's future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace prix
