#ifndef PRIX_COMMON_STRING_UTIL_H_
#define PRIX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prix {

/// Splits `s` on `delim`; empty pieces are kept.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Formats a byte count as "12.3 MB" style text.
std::string HumanBytes(uint64_t bytes);

}  // namespace prix

#endif  // PRIX_COMMON_STRING_UTIL_H_
