#ifndef PRIX_COMMON_RANDOM_H_
#define PRIX_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace prix {

/// Deterministic 64-bit PRNG (SplitMix64 seeded xoshiro256**). All randomized
/// components in the repository take an explicit seed so every experiment is
/// reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    PRIX_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    PRIX_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ULL << 53));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`.
/// Precomputes the CDF; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : cdf_(n) {
    PRIX_CHECK(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / Pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  size_t Sample(Random& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  static double Pow(double base, double exp) {
    // Avoid <cmath> pow in hot loops for integral-ish exponents; this is
    // construction-time only, so plain std::pow semantics suffice.
    return __builtin_pow(base, exp);
  }
  std::vector<double> cdf_;
};

}  // namespace prix

#endif  // PRIX_COMMON_RANDOM_H_
