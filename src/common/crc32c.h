#ifndef PRIX_COMMON_CRC32C_H_
#define PRIX_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace prix {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum the
/// storage layer stamps into every page trailer (storage/page.h). Chosen
/// over plain CRC32 for the same reason RocksDB, LevelDB, and iSCSI chose
/// it: modern x86 (SSE4.2) and ARMv8 CPUs compute it in hardware, so
/// verify-on-read costs a few ns per 8 KB page. The implementation
/// dispatches once at first use: hardware instructions when the CPU has
/// them, a slice-by-8 table otherwise.

/// Extends `crc` (a previous Crc32c/Crc32cExtend result, or 0 for a fresh
/// stream) over `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// True when the dispatched implementation uses CPU CRC instructions.
bool Crc32cHardwareAccelerated();

}  // namespace prix

#endif  // PRIX_COMMON_CRC32C_H_
