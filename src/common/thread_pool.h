#ifndef PRIX_COMMON_THREAD_POOL_H_
#define PRIX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace prix {

/// Fixed-size pool of worker threads draining one FIFO work queue. Tasks
/// return Status; Submit hands back a future that propagates it, so callers
/// keep the library-wide error model across thread boundaries (no exceptions
/// cross the API). Destruction drains nothing: pending tasks still run, then
/// workers join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues `fn`; the future resolves to its returned Status. Safe from
  /// any thread, including pool workers (the queue never blocks submitters),
  /// but a task must not wait on a future of a task submitted after it —
  /// with every worker busy that cycle deadlocks.
  std::future<Status> Submit(std::function<Status()> fn);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or stop
  std::condition_variable idle_cv_;   // signals WaitIdle: all quiet
  std::deque<std::packaged_task<Status()>> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prix

#endif  // PRIX_COMMON_THREAD_POOL_H_
