#include "common/status.h"

namespace prix {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::Annotate(std::string_view context) const {
  if (ok()) return Status::OK();
  std::string msg(context);
  msg += ": ";
  msg += state_->msg;
  return Status(state_->code, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(state_->code));
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace prix
