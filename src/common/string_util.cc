#include "common/string_util.h"

#include <cstdio>

namespace prix {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[unit]);
  return buf;
}

}  // namespace prix
