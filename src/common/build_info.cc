#include "common/build_info.h"

#include "common/crc32c.h"

// Injected per-file by src/CMakeLists.txt from `git describe` at configure
// time; absent in odd build setups (tarball exports), hence the fallback.
#ifndef PRIX_GIT_DESCRIBE
#define PRIX_GIT_DESCRIBE "unknown"
#endif

namespace prix {

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.git_describe = PRIX_GIT_DESCRIBE;
  info.db_format = kDbFormatVersion;
  info.oplog_format = kOpLogFormatVersion;
  info.crc32c_hardware = Crc32cHardwareAccelerated();
  return info;
}

std::string BuildInfoLine() {
  BuildInfo info = GetBuildInfo();
  return "prix " + info.git_describe + " (db format " +
         std::to_string(info.db_format) + ", oplog format " +
         std::to_string(info.oplog_format) + ", crc32c " +
         (info.crc32c_hardware ? "hardware" : "software") + ")";
}

void AppendBuildInfoJson(JsonWriter* w) {
  BuildInfo info = GetBuildInfo();
  w->Key("build").BeginObject();
  w->Key("git_describe").String(info.git_describe);
  w->Key("db_format").UInt(info.db_format);
  w->Key("oplog_format").UInt(info.oplog_format);
  w->Key("crc32c").String(info.crc32c_hardware ? "hardware" : "software");
  w->EndObject();
}

}  // namespace prix
