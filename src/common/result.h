#ifndef PRIX_COMMON_RESULT_H_
#define PRIX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace prix {

/// Either a value of type T or an error Status. Mirrors arrow::Result.
/// A default-constructed Result is an Internal error ("uninitialized").
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status cannot carry a Result value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Requires ok().
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace prix

#endif  // PRIX_COMMON_RESULT_H_
