#ifndef PRIX_COMMON_DEADLINE_H_
#define PRIX_COMMON_DEADLINE_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace prix {

// Cooperative per-request deadlines and cancellation (DESIGN.md §5j).
//
// A Deadline is a steady-clock expiry time plus a cancel flag. The request
// owner (a server connection, the CLI's --timeout-ms) creates one and keeps
// it alive for the whole request; the executing side installs it with a
// ScopedDeadline and long-running loops call CheckDeadline() at their
// checkpoints — B+-tree/trie descents, per-document verification, buffer
// pool misses — so a timed-out or abandoned query stops consuming CPU and
// I/O within one checkpoint interval instead of running to completion.
//
// The plumbing mirrors MetricsContext: ScopedDeadline publishes the token
// into a thread-local slot, so storage-layer checkpoints need no signature
// changes, and a query running with no deadline pays one TLS load plus a
// predictable branch per checkpoint. Cancel() may be called from ANY thread
// (it is how a server cancels the query of a client that disconnected
// mid-request); expiry is evaluated lazily on the executing thread.

/// One request's deadline + cancellation token. Create on the requesting
/// side, pass by pointer (QueryOptions::deadline); must outlive every
/// execution that might check it. Cancel() is thread-safe; everything else
/// is cheap and const.
class Deadline {
 public:
  /// No expiry; still cancellable.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (steady clock). ms == 0 makes an
  /// already-expired deadline (useful in tests).
  static Deadline AfterMillis(uint64_t ms) {
    return Deadline(NowMicros() + ms * 1000);
  }
  static Deadline AfterMicros(uint64_t us) {
    return Deadline(NowMicros() + us);
  }

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  /// Flags the request as abandoned. Safe from any thread, any number of
  /// times; checkpoints on the executing thread observe it at their next
  /// CheckDeadline().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool has_expiry() const { return deadline_us_ != 0; }

  /// Microseconds until expiry: 0 when already expired, UINT64_MAX when the
  /// deadline has no expiry (admission control treats that as "always
  /// meetable").
  uint64_t remaining_us() const {
    if (deadline_us_ == 0) return UINT64_MAX;
    uint64_t now = NowMicros();
    return now >= deadline_us_ ? 0 : deadline_us_ - now;
  }

  bool expired() const { return deadline_us_ != 0 && remaining_us() == 0; }

  /// OK, or the typed error this request should die with: Cancelled beats
  /// DeadlineExceeded (a cancelled request is dead regardless of time).
  Status Check() const {
    if (cancelled()) return Status::Cancelled("request cancelled");
    if (expired()) return Status::DeadlineExceeded("deadline exceeded");
    return Status::OK();
  }

  /// Monotonic microseconds (same clock as MetricsContext::NowMicros; kept
  /// separate so prix_common needs no new dependencies).
  static uint64_t NowMicros();

 private:
  explicit Deadline(uint64_t deadline_us) : deadline_us_(deadline_us) {}

  uint64_t deadline_us_ = 0;  ///< 0 = no expiry
  std::atomic<bool> cancelled_{false};
};

namespace deadline_internal {
/// The innermost installed deadline of this thread (nullptr when none).
/// Initial-exec TLS for the same reason as metrics_internal::tls_context:
/// the checkpoint hook must stay a single %fs-relative load + branch.
#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
extern thread_local const Deadline* tls_deadline
    __attribute__((tls_model("initial-exec")));
#else
extern thread_local const Deadline* tls_deadline;
#endif
}  // namespace deadline_internal

/// RAII scope publishing `deadline` to this thread's checkpoints. Nests
/// (the inner scope wins, the outer is restored on exit); installing
/// nullptr is a no-op scope, so call sites can pass an optional deadline
/// through unconditionally.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(const Deadline* deadline)
      : parent_(deadline_internal::tls_deadline) {
    if (deadline != nullptr) deadline_internal::tls_deadline = deadline;
  }
  ~ScopedDeadline() { deadline_internal::tls_deadline = parent_; }
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  const Deadline* parent_;
};

/// The checkpoint hook: OK (one TLS load + branch) when this thread has no
/// installed deadline, else Deadline::Check(). Engine match loops call this
/// every iteration or every few hundred iterations; the buffer pool calls
/// it before each physical read.
inline Status CheckDeadline() {
  const Deadline* d = deadline_internal::tls_deadline;
  if (d == nullptr) return Status::OK();
  return d->Check();
}

/// Currently installed deadline (nullptr when none) — for code that wants
/// remaining_us(), e.g. to bound a blocking wait.
inline const Deadline* CurrentDeadline() {
  return deadline_internal::tls_deadline;
}

}  // namespace prix

#endif  // PRIX_COMMON_DEADLINE_H_
