#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "common/json.h"

namespace prix {

namespace metrics_internal {
thread_local MetricsContext* tls_context = nullptr;
}  // namespace metrics_internal

uint64_t MetricsContext::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string RenderTrace(const std::vector<TraceEvent>& trace) {
  // Spans close innermost-first; re-emit in start order so the breakdown
  // reads top-down like a call tree.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(trace.size());
  for (const TraceEvent& e : trace) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->start_us < b->start_us;
                   });
  std::string out;
  for (const TraceEvent* e : ordered) {
    char line[160];
    std::snprintf(line, sizeof(line), "%*s%-*s %8llu us (+%llu us)\n",
                  static_cast<int>(2 * e->depth), "",
                  static_cast<int>(24 - 2 * e->depth), e->name,
                  static_cast<unsigned long long>(e->dur_us),
                  static_cast<unsigned long long>(e->start_us));
    out += line;
  }
  return out;
}

void MetricHistogram::Record(uint64_t value) {
  size_t bucket = 0;
  if (value > 0) {
    bucket = 64 - static_cast<size_t>(__builtin_clzll(value));
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

double MetricHistogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t MetricHistogram::Percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile (1-based), then walk buckets.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      if (b == 0) return 0;
      // Linear interpolation inside [2^(b-1), 2^b).
      uint64_t lo = 1ull << (b - 1);
      uint64_t width = lo;  // bucket width equals its lower bound
      double frac = static_cast<double>(rank - seen - 1) /
                    static_cast<double>(in_bucket);
      uint64_t value = lo + static_cast<uint64_t>(frac *
                                                  static_cast<double>(width));
      uint64_t cap = max();
      return cap != 0 && value > cap ? cap : value;
    }
    seen += in_bucket;
  }
  return max();
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

/// Name -> metric maps. Values are unique_ptrs so references handed out by
/// counter()/histogram() survive rehashing; entries are never erased.
struct MetricsRegistry::Impl {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: registry outlives static dtors
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : im.counters) {
    w.Key(name).UInt(c->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : im.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h->count());
    w.Key("sum").UInt(h->sum());
    w.Key("mean").Double(h->mean());
    w.Key("p50").UInt(h->Percentile(0.50));
    w.Key("p95").UInt(h->Percentile(0.95));
    w.Key("p99").UInt(h->Percentile(0.99));
    w.Key("max").UInt(h->max());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace prix
