#ifndef PRIX_COMMON_QUERYFILE_H_
#define PRIX_COMMON_QUERYFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace prix {

// The Zambezi query-file format — the workload-driver shape adopted for the
// serving layer's replay client and for exporting bench query mixes:
//
//   <first line>  .=. <number of queries : integer>
//   <line>        .=. <query id : integer> <query length : integer> <query>
//
// `query length` is the byte length of the query text, which lets a query
// carry embedded spaces without quoting (the parser takes exactly that many
// bytes after the single separating space and requires end-of-line there).
// Lines are '\n'-terminated; a trailing newline on the last line is
// optional. Malformed input reports the 1-based line number AND the byte
// offset of the offending character, matching the XPath parser's error
// style ("... at line 3 (offset 41)").

/// One parsed query line.
struct QueryFileEntry {
  uint64_t id = 0;
  std::string text;
};

/// Parses a whole query file. ParseError names the first malformed line.
Result<std::vector<QueryFileEntry>> ParseQueryFile(std::string_view text);

/// Reads and parses `path` (errors are annotated with the path).
Result<std::vector<QueryFileEntry>> LoadQueryFile(const std::string& path);

/// Renders `entries` in the format above (with trailing newline).
/// FormatQueryFile(ParseQueryFile(x)) == x for files this writer produced.
std::string FormatQueryFile(const std::vector<QueryFileEntry>& entries);

}  // namespace prix

#endif  // PRIX_COMMON_QUERYFILE_H_
