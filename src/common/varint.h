#ifndef PRIX_COMMON_VARINT_H_
#define PRIX_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prix {

/// LEB128 varints + zig-zag, the shared integer coding behind every v3
/// (compressed) on-disk format: B+-tree leaf pages, DocStore records, and
/// RecordStore catalogs (DESIGN.md §5h).
///
/// Wire format: 7 payload bits per byte, least-significant group first, high
/// bit set on every byte but the last. A uint64 takes at most 10 bytes.
/// Decoders are bounds-checked against an explicit `end` and reject both
/// truncation and over-long encodings (an 11th continuation byte), so a
/// garbled length can never walk a cursor past its buffer — the same
/// discipline as the PR-5 catalog deserializers.

inline constexpr size_t kMaxVarint64Bytes = 10;

/// Maps signed deltas onto small unsigned codes: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigzagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // arithmetic shift: all-ones if <0
}
inline int64_t ZigzagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Encodes `v` at `dst` (room for kMaxVarint64Bytes). Returns bytes written.
inline size_t EncodeVarint64(char* dst, uint64_t v) {
  size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<char>(v);
  return n;
}

inline void PutVarint64(std::vector<char>* out, uint64_t v) {
  char buf[kMaxVarint64Bytes];
  size_t n = EncodeVarint64(buf, v);
  out->insert(out->end(), buf, buf + n);
}

/// Decodes one varint from [*p, end). On success advances *p and returns
/// true; returns false (leaving *p unspecified) on truncation or an
/// over-long/overflowing encoding.
inline bool GetVarint64(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  const char* cur = *p;
  for (int shift = 0; shift <= 63 && cur < end; shift += 7) {
    uint64_t byte = static_cast<uint8_t>(*cur++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      // Final byte: bits that would shift past 63 must be zero.
      if (shift == 63 && byte > 1) return false;
      result |= byte << shift;
      *p = cur;
      *v = result;
      return true;
    }
  }
  return false;  // ran off `end`, or an 11th continuation byte
}

/// uint32 flavors: same wire format, value-range checked on decode.
inline void PutVarint32(std::vector<char>* out, uint32_t v) {
  PutVarint64(out, v);
}
inline bool GetVarint32(const char** p, const char* end, uint32_t* v) {
  uint64_t wide;
  if (!GetVarint64(p, end, &wide) || wide > 0xffffffffull) return false;
  *v = static_cast<uint32_t>(wide);
  return true;
}

}  // namespace prix

#endif  // PRIX_COMMON_VARINT_H_
