#ifndef PRIX_NAIVE_NAIVE_MATCHER_H_
#define PRIX_NAIVE_NAIVE_MATCHER_H_

#include <cstdint>
#include <vector>

#include "query/twig_pattern.h"
#include "xml/document.h"

namespace prix {

/// One embedding of a twig in a document: effective-twig node id ->
/// 1-based postorder number of the matched data node.
struct TwigMatch {
  DocId doc = 0;
  std::vector<uint32_t> image;

  bool operator==(const TwigMatch&) const = default;
  bool operator<(const TwigMatch& o) const {
    if (doc != o.doc) return doc < o.doc;
    return image < o.image;
  }
};

/// Which embeddings count as matches.
enum class MatchSemantics {
  /// PRIX ordered semantics (Sec. 4): the embedding must preserve postorder
  /// order globally — node a before b in twig postorder implies image(a)
  /// before image(b) in document postorder. Implies injectivity.
  kOrdered,
  /// Unordered matching (Sec. 5.7): any injective embedding satisfying the
  /// label and edge constraints.
  kUnorderedInjective,
  /// Standard twig-join semantics (TwigStack): only the label and edge
  /// constraints along query edges; neither order nor injectivity.
  kStandard,
};

/// Brute-force oracle: enumerates every embedding of `twig` in `doc` under
/// `semantics`. Exponential in the worst case; intended for ground truth in
/// tests and for final verification of wildcard-query candidates.
std::vector<TwigMatch> NaiveMatch(const Document& doc,
                                  const EffectiveTwig& twig,
                                  MatchSemantics semantics);

/// Convenience: all matches across a collection.
std::vector<TwigMatch> NaiveMatchCollection(
    const std::vector<Document>& documents, const EffectiveTwig& twig,
    MatchSemantics semantics);

/// A document matcher over precomputed arrays, reusable when the tree is
/// known only as a parent array (reconstructed from an NPS). `parent[k]` is
/// the parent postorder number of node k (1-based, parent[n] unused),
/// `label[k]` the node's label, n the node count.
class ParentArrayMatcher {
 public:
  ParentArrayMatcher(const std::vector<uint32_t>& parent,
                     const std::vector<LabelId>& label, uint32_t n);

  /// Enumerates embeddings (image indexed by effective node, values are
  /// postorder numbers) under `semantics`.
  std::vector<std::vector<uint32_t>> Match(const EffectiveTwig& twig,
                                           MatchSemantics semantics) const;

 private:
  const std::vector<uint32_t>& parent_;  // indexed 1..n; parent_[n] unused
  const std::vector<LabelId>& label_;    // indexed 1..n
  uint32_t n_;
  std::vector<uint32_t> depth_;  // depth below root, root = 0
};

}  // namespace prix

#endif  // PRIX_NAIVE_NAIVE_MATCHER_H_
