#include "naive/naive_matcher.h"

#include <algorithm>

#include "common/macros.h"

namespace prix {

ParentArrayMatcher::ParentArrayMatcher(const std::vector<uint32_t>& parent,
                                       const std::vector<LabelId>& label,
                                       uint32_t n)
    : parent_(parent), label_(label), n_(n) {
  PRIX_CHECK(parent_.size() >= n_ + 1);
  PRIX_CHECK(label_.size() >= n_ + 1);
  depth_.assign(n_ + 1, 0);
  // Parents have larger postorder numbers, so a descending pass suffices.
  for (uint32_t v = n_; v >= 1; --v) {
    if (v == n_) {
      depth_[v] = 0;
    } else {
      depth_[v] = depth_[parent_[v]] + 1;
    }
    if (v == 1) break;
  }
}

namespace {

/// Steps `k` edges up from `v`; returns 0 when the walk leaves the tree.
uint32_t ClimbExact(const std::vector<uint32_t>& parent, uint32_t root,
                    uint32_t v, uint32_t k) {
  for (uint32_t i = 0; i < k; ++i) {
    if (v == root) return 0;
    v = parent[v];
  }
  return v;
}

struct SearchState {
  const EffectiveTwig* twig;
  const std::vector<uint32_t>* parent;
  const std::vector<LabelId>* label;
  const std::vector<uint32_t>* depth;
  uint32_t n;
  MatchSemantics semantics;
  std::vector<uint32_t> preorder;              // twig nodes in assignment order
  std::vector<uint32_t> image;                 // effective node -> data node
  std::vector<std::vector<uint32_t>> results;  // completed images
};

bool LabelOk(const SearchState& s, uint32_t twig_node, uint32_t data_node) {
  if (s.twig->is_star(twig_node)) return true;
  return s.twig->node(twig_node).label == (*s.label)[data_node];
}

void Recurse(SearchState& s, size_t idx) {
  if (idx == s.preorder.size()) {
    s.results.push_back(s.image);
    return;
  }
  uint32_t tnode = s.preorder[idx];
  const EffectiveTwig::Node& tn = s.twig->node(tnode);
  uint32_t p_img = s.image[tn.parent];
  const EdgeSpec edge = tn.edge;
  // Candidates: nodes in p_img's subtree at the right depth. Postorder
  // subtree membership: v is in p_img's subtree iff p_img is on v's parent
  // chain; enumerate by scanning the contiguous postorder range of the
  // subtree instead. The subtree of node p occupies postorder numbers
  // [p - size(p) + 1, p]; sizes are not precomputed, so walk candidates
  // v < p_img and test the parent chain (documents are small).
  for (uint32_t v = 1; v < p_img; ++v) {
    if (!LabelOk(s, tnode, v)) continue;
    uint32_t dd = (*s.depth)[v];
    uint32_t dp = (*s.depth)[p_img];
    if (dd <= dp) continue;
    uint32_t dist = dd - dp;
    bool edge_ok =
        edge.exact ? dist == edge.min_edges : dist >= edge.min_edges;
    if (!edge_ok) continue;
    // Confirm ancestry.
    if (ClimbExact(*s.parent, s.n, v, dist) != p_img) continue;
    if (s.semantics != MatchSemantics::kStandard) {
      // Injectivity (and for kOrdered, order) checked incrementally against
      // already-assigned twig nodes.
      bool ok = true;
      for (size_t j = 0; j < idx && ok; ++j) {
        uint32_t other = s.preorder[j];
        if (s.image[other] == v) ok = false;
      }
      if (!ok) continue;
    }
    s.image[tnode] = v;
    Recurse(s, idx + 1);
  }
}

/// Global postorder-order preservation check for kOrdered.
bool OrderPreserved(const EffectiveTwig& twig,
                    const std::vector<uint32_t>& image) {
  std::vector<uint32_t> tw_post = twig.ComputePostorder();
  // For every pair a, b: tw_post[a] < tw_post[b] iff image[a] < image[b].
  for (uint32_t a = 0; a < twig.num_nodes(); ++a) {
    for (uint32_t b = a + 1; b < twig.num_nodes(); ++b) {
      if ((tw_post[a] < tw_post[b]) != (image[a] < image[b])) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::vector<uint32_t>> ParentArrayMatcher::Match(
    const EffectiveTwig& twig, MatchSemantics semantics) const {
  SearchState s;
  s.twig = &twig;
  s.parent = &parent_;
  s.label = &label_;
  s.depth = &depth_;
  s.n = n_;
  s.semantics = semantics;
  s.image.assign(twig.num_nodes(), 0);

  // Assignment order: twig preorder (parents before children).
  std::vector<uint32_t> stack = {twig.root()};
  while (!stack.empty()) {
    uint32_t t = stack.back();
    stack.pop_back();
    s.preorder.push_back(t);
    const auto& kids = twig.node(t).children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }

  // Root candidates, constrained by the anchor.
  EdgeSpec anchor = twig.root_anchor();
  uint32_t troot = twig.root();
  std::vector<std::vector<uint32_t>> all;
  for (uint32_t v = 1; v <= n_; ++v) {
    if (!LabelOk(s, troot, v)) continue;
    bool anchor_ok = anchor.exact ? depth_[v] == anchor.min_edges
                                  : depth_[v] >= anchor.min_edges;
    if (!anchor_ok) continue;
    s.image[troot] = v;
    Recurse(s, 1);
  }
  if (semantics == MatchSemantics::kOrdered) {
    std::vector<std::vector<uint32_t>> kept;
    for (auto& image : s.results) {
      if (OrderPreserved(twig, image)) kept.push_back(std::move(image));
    }
    return kept;
  }
  return std::move(s.results);
}

std::vector<TwigMatch> NaiveMatch(const Document& doc,
                                  const EffectiveTwig& twig,
                                  MatchSemantics semantics) {
  std::vector<TwigMatch> out;
  const uint32_t n = static_cast<uint32_t>(doc.num_nodes());
  if (n == 0 || twig.num_nodes() == 0) return out;
  std::vector<uint32_t> number = doc.ComputePostorder();
  std::vector<uint32_t> parent(n + 1, 0);
  std::vector<LabelId> label(n + 1, kInvalidLabel);
  for (NodeId v = 0; v < n; ++v) {
    label[number[v]] = doc.label(v);
    if (doc.parent(v) != kInvalidNode) {
      parent[number[v]] = number[doc.parent(v)];
    }
  }
  ParentArrayMatcher matcher(parent, label, n);
  for (auto& image : matcher.Match(twig, semantics)) {
    out.push_back(TwigMatch{doc.doc_id(), std::move(image)});
  }
  return out;
}

std::vector<TwigMatch> NaiveMatchCollection(
    const std::vector<Document>& documents, const EffectiveTwig& twig,
    MatchSemantics semantics) {
  std::vector<TwigMatch> out;
  for (const Document& doc : documents) {
    auto matches = NaiveMatch(doc, twig, semantics);
    out.insert(out.end(), matches.begin(), matches.end());
  }
  return out;
}

}  // namespace prix
