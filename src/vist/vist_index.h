#ifndef PRIX_VIST_VIST_INDEX_H_
#define PRIX_VIST_VIST_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "db/database.h"
#include "storage/record_store.h"
#include "trie/range_labeler.h"
#include "vist/vist_sequence.h"

namespace prix {

/// Key of the D-Ancestorship index over the virtual trie built from the
/// structure-encoded sequences (ViST; Sec. 2 and 6 of the PRIX paper).
/// Scoped descent scans all trie nodes of a symbol within a range and
/// filters them by their (symbol, prefix) key — every key with the symbol
/// is examined when the query prefix carries wildcards, which is the
/// behaviour the paper measures on TREEBANK.
struct VistKey {
  LabelId symbol;
  uint32_t pad = 0;
  uint64_t left;

  friend bool operator<(const VistKey& a, const VistKey& b) {
    if (a.symbol != b.symbol) return a.symbol < b.symbol;
    return a.left < b.left;
  }
};

/// Value: the trie node's RightPos, level, and interned prefix.
struct VistNodeValue {
  uint64_t right;
  uint32_t level;
  PrefixId prefix;
};

/// Key of ViST's Docid index.
struct VistDocKey {
  uint64_t left;
  uint32_t seq;
  uint32_t pad = 0;

  friend bool operator<(const VistDocKey& a, const VistDocKey& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.seq < b.seq;
  }
};

/// Build-time statistics (Sec. 2's storage argument shows up in
/// prefix_labels: O(n^2) for unary trees).
struct VistIndexBuildStats {
  uint64_t trie_nodes = 0;
  uint64_t dancestor_entries = 0;
  uint64_t distinct_prefixes = 0;
  uint64_t prefix_labels = 0;  ///< total labels across interned prefixes
  uint64_t pages_after_build = 0;
};

/// The ViST baseline index: a virtual trie over structure-encoded sequences
/// materialized into the D-Ancestorship B+-tree, a Docid B+-tree, and a
/// paged store of the raw sequences (used to verify candidate documents,
/// since ViST admits false alarms — Fig. 1(b)).
class VistIndex {
 public:
  using DAncestorTree = BPlusTree<VistKey, VistNodeValue>;
  using DocTree = BPlusTree<VistDocKey, DocId>;

  static Result<std::unique_ptr<VistIndex>> Build(
      const std::vector<Document>& documents, BufferPool* pool,
      VistIndexBuildStats* stats = nullptr);

  /// Persists the index (tree roots, sequence-store extents, prefix
  /// dictionary) into `db` and registers it in the catalog under `name`
  /// (kind kVist). Save/Open parity with PrixIndex.
  Status Save(Database* db, const std::string& name) const;

  /// Reopens the index registered under `name` in `db`'s catalog.
  static Result<std::unique_ptr<VistIndex>> Open(Database* db,
                                                 const std::string& name);

  /// Best-effort salvage into `dst` (Salvage parity with PrixIndex): walks
  /// both B+-trees re-inserting reachable entries, copies readable sequence
  /// records (unreadable ones become empty placeholders keeping DocIds
  /// aligned), and registers the rebuilt index under `name`. Only a `dst`
  /// write failure is fatal; source corruption lands in `stats`.
  Status Salvage(Database* dst, const std::string& name,
                 SalvageStats* stats) const;

  /// Reopens an index from a catalog entry directly — the snapshot read
  /// path (entry from a pinned Snapshot) and the ingest acquire path. Kind
  /// and staleness checks happen here; Open delegates.
  static Result<std::unique_ptr<VistIndex>> OpenFromEntry(
      BufferPool* pool, const Database::IndexEntry& entry);

  DAncestorTree& dancestor() { return *dancestor_; }
  DocTree& docid_index() { return *docid_; }
  const PrefixDictionary& prefixes() const { return prefixes_; }
  /// Distinct prefixes occurring with `symbol` — the unique (symbol,
  /// prefix) D-Ancestorship keys of that symbol.
  const std::vector<PrefixId>& SymbolPrefixes(LabelId symbol) const;
  RangeLabel root_range() const { return root_range_; }
  size_t num_docs() const { return seq_store_->num_records(); }

  // ---- online-ingest surface (src/prix/database_ingest.cc) ----
  //
  // ViST deletes remove only the Docid-index entry: query candidates come
  // solely from Docid scans, so the dead sequence record and any
  // now-unreferenced trie nodes are unreachable garbage, not wrong answers.
  // No tombstone set is needed.

  /// Routes every subsequent page write of both B+-trees and the sequence
  /// store through the copy-on-write context (nullptr detaches).
  void SetCow(CowContext* cow) {
    dancestor_->SetCow(cow);
    docid_->SetCow(cow);
    seq_store_->SetCow(cow);
  }

  RecordStore& sequences() { return *seq_store_; }
  PrefixDictionary* prefixes_mut() { return &prefixes_; }
  void set_root_range(RangeLabel range) { root_range_ = range; }

  /// Records that `prefix` now occurs with `symbol` (insert-if-absent), so
  /// scoped descents keep seeing every live (symbol, prefix) key.
  void AddSymbolPrefix(LabelId symbol, PrefixId prefix) {
    std::vector<PrefixId>& list = symbol_prefixes_[symbol];
    for (PrefixId p : list) {
      if (p == prefix) return;
    }
    list.push_back(prefix);
  }

  /// Serializes the full index catalog into `blob` — what Save writes,
  /// exposed so a write transaction can publish through
  /// Database::CommitBatch instead of PutIndex.
  void SerializeCatalog(std::vector<char>* blob) const;

  /// Reloads document `doc` as a tree (rebuilt from its structure-encoded
  /// sequence) for post-verification. I/O goes through the buffer pool.
  Result<Document> LoadDocument(DocId doc) const;

 private:
  VistIndex() = default;

  std::unique_ptr<DAncestorTree> dancestor_;
  std::unique_ptr<DocTree> docid_;
  std::unique_ptr<RecordStore> seq_store_;
  PrefixDictionary prefixes_;
  std::unordered_map<LabelId, std::vector<PrefixId>> symbol_prefixes_;
  RangeLabel root_range_;
};

}  // namespace prix

#endif  // PRIX_VIST_VIST_INDEX_H_
