#include "vist/vist_sequence.h"

#include <algorithm>

#include "common/macros.h"

namespace prix {

PrefixId PrefixDictionary::Intern(const std::vector<LabelId>& path) {
  auto it = index_.find(path);
  if (it != index_.end()) return it->second;
  PrefixId id = static_cast<PrefixId>(paths_.size());
  paths_.push_back(path);
  index_.emplace(path, id);
  total_labels_ += path.size();
  return id;
}

PrefixId PrefixDictionary::Find(const std::vector<LabelId>& path) const {
  auto it = index_.find(path);
  return it == index_.end() ? kInvalidPrefix : it->second;
}

std::vector<VistItem> BuildVistSequence(const Document& doc,
                                        PrefixDictionary* prefixes) {
  std::vector<VistItem> out;
  if (doc.empty()) return out;
  out.reserve(doc.num_nodes());
  // Preorder walk carrying the root-to-parent label path.
  struct Frame {
    NodeId node;
    size_t depth;  // length of the path to this node's parent
  };
  std::vector<LabelId> path;
  std::vector<Frame> stack = {{doc.root(), 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    path.resize(f.depth);
    out.push_back(VistItem{doc.label(f.node), prefixes->Intern(path)});
    path.push_back(doc.label(f.node));
    const auto& kids = doc.children(f.node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, f.depth + 1});
    }
  }
  return out;
}

namespace {

void BuildPatternTo(const TwigPattern& twig, uint32_t node,
                    std::vector<PatternItem>* out) {
  // Pattern for the path from the document root to the matched node's
  // PARENT, plus a trailing gap when `node` attaches via '//'.
  std::vector<uint32_t> chain;  // parent(node) .. root
  uint32_t cur = twig.node(node).parent;
  while (cur != TwigPattern::kNoParent) {
    chain.push_back(cur);
    cur = twig.node(cur).parent;
  }
  if (twig.node(twig.root()).axis == Axis::kDescendant) {
    out->push_back(PatternItem{true, kInvalidLabel});
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const TwigPattern::Node& a = twig.node(*it);
    if (*it != twig.root() && a.axis == Axis::kDescendant) {
      out->push_back(PatternItem{true, kInvalidLabel});
    }
    out->push_back(PatternItem{false, a.is_star ? kInvalidLabel : a.label});
  }
  if (node != twig.root() && twig.node(node).axis == Axis::kDescendant) {
    out->push_back(PatternItem{true, kInvalidLabel});
  }
}

}  // namespace

std::vector<VistQueryItem> BuildVistQuery(const TwigPattern& twig) {
  std::vector<VistQueryItem> out;
  std::vector<uint32_t> stack = {twig.root()};
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    VistQueryItem item;
    const TwigPattern::Node& n = twig.node(node);
    item.symbol = n.is_star ? kInvalidLabel : n.label;
    item.star = n.is_star;
    item.twig_node = node;
    BuildPatternTo(twig, node, &item.pattern);
    out.push_back(std::move(item));
    const auto& kids = n.children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

bool PatternMatchesPath(const std::vector<PatternItem>& pattern,
                        const std::vector<LabelId>& path) {
  const size_t p = pattern.size(), n = path.size();
  // dp[j]: the pattern prefix processed so far can match path[0..j).
  std::vector<char> dp(n + 1, 0), next(n + 1, 0);
  dp[0] = 1;
  for (size_t i = 0; i < p; ++i) {
    std::fill(next.begin(), next.end(), 0);
    const PatternItem& item = pattern[i];
    if (item.gap) {
      // A gap absorbs zero or more labels: next[j] = OR of dp[0..j].
      char seen = 0;
      for (size_t j = 0; j <= n; ++j) {
        seen |= dp[j];
        next[j] = seen;
      }
    } else {
      for (size_t j = 1; j <= n; ++j) {
        bool label_ok =
            item.label == kInvalidLabel || item.label == path[j - 1];
        next[j] = dp[j - 1] && label_ok;
      }
    }
    std::swap(dp, next);
  }
  // Accept if the pattern consumed any prefix of the path.
  for (size_t j = 0; j <= n; ++j) {
    if (dp[j]) return true;
  }
  return false;
}

}  // namespace prix
