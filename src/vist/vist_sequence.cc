#include "vist/vist_sequence.h"

#include <algorithm>

#include "common/macros.h"
#include "storage/record_store.h"

namespace prix {

PrefixId PrefixDictionary::Intern(const std::vector<LabelId>& path) {
  auto it = index_.find(path);
  if (it != index_.end()) return it->second;
  PrefixId id = static_cast<PrefixId>(paths_.size());
  paths_.push_back(path);
  index_.emplace(path, id);
  total_labels_ += path.size();
  return id;
}

PrefixId PrefixDictionary::Find(const std::vector<LabelId>& path) const {
  auto it = index_.find(path);
  return it == index_.end() ? kInvalidPrefix : it->second;
}

void PrefixDictionary::SerializeTo(std::vector<char>* out) const {
  PutU32(out, static_cast<uint32_t>(paths_.size()));
  for (const std::vector<LabelId>& path : paths_) {
    PutU32(out, static_cast<uint32_t>(path.size()));
    for (LabelId l : path) PutU32(out, l);
  }
}

Result<PrefixDictionary> PrefixDictionary::Deserialize(const char** p,
                                                       const char* end) {
  auto need = [&](size_t bytes) -> Status {
    if (*p + bytes > end) {
      return Status::Corruption("truncated prefix dictionary");
    }
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(4));
  uint32_t count = GetU32(*p);
  *p += 4;
  PrefixDictionary dict;
  std::vector<LabelId> path;
  for (uint32_t i = 0; i < count; ++i) {
    PRIX_RETURN_NOT_OK(need(4));
    uint32_t len = GetU32(*p);
    *p += 4;
    PRIX_RETURN_NOT_OK(need(4ull * len));
    path.clear();
    path.reserve(len);
    for (uint32_t j = 0; j < len; ++j, *p += 4) path.push_back(GetU32(*p));
    // Paths were serialized in id order, so re-interning preserves ids.
    if (dict.Intern(path) != i) {
      return Status::Corruption("duplicate path in prefix dictionary");
    }
  }
  return dict;
}

std::vector<VistItem> BuildVistSequence(const Document& doc,
                                        PrefixDictionary* prefixes) {
  std::vector<VistItem> out;
  if (doc.empty()) return out;
  out.reserve(doc.num_nodes());
  // Preorder walk carrying the root-to-parent label path.
  struct Frame {
    NodeId node;
    size_t depth;  // length of the path to this node's parent
  };
  std::vector<LabelId> path;
  std::vector<Frame> stack = {{doc.root(), 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    path.resize(f.depth);
    out.push_back(VistItem{doc.label(f.node), prefixes->Intern(path)});
    path.push_back(doc.label(f.node));
    const auto& kids = doc.children(f.node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, f.depth + 1});
    }
  }
  return out;
}

namespace {

void BuildPatternTo(const TwigPattern& twig, uint32_t node,
                    std::vector<PatternItem>* out) {
  // Pattern for the path from the document root to the matched node's
  // PARENT, plus a trailing gap when `node` attaches via '//'.
  std::vector<uint32_t> chain;  // parent(node) .. root
  uint32_t cur = twig.node(node).parent;
  while (cur != TwigPattern::kNoParent) {
    chain.push_back(cur);
    cur = twig.node(cur).parent;
  }
  if (twig.node(twig.root()).axis == Axis::kDescendant) {
    out->push_back(PatternItem{true, kInvalidLabel});
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const TwigPattern::Node& a = twig.node(*it);
    if (*it != twig.root() && a.axis == Axis::kDescendant) {
      out->push_back(PatternItem{true, kInvalidLabel});
    }
    out->push_back(PatternItem{false, a.is_star ? kInvalidLabel : a.label});
  }
  if (node != twig.root() && twig.node(node).axis == Axis::kDescendant) {
    out->push_back(PatternItem{true, kInvalidLabel});
  }
}

}  // namespace

std::vector<VistQueryItem> BuildVistQuery(const TwigPattern& twig) {
  std::vector<VistQueryItem> out;
  std::vector<uint32_t> stack = {twig.root()};
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    VistQueryItem item;
    const TwigPattern::Node& n = twig.node(node);
    item.symbol = n.is_star ? kInvalidLabel : n.label;
    item.star = n.is_star;
    item.twig_node = node;
    BuildPatternTo(twig, node, &item.pattern);
    out.push_back(std::move(item));
    const auto& kids = n.children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

bool PatternMatchesPath(const std::vector<PatternItem>& pattern,
                        const std::vector<LabelId>& path) {
  const size_t p = pattern.size(), n = path.size();
  // dp[j]: the pattern prefix processed so far can match path[0..j).
  std::vector<char> dp(n + 1, 0), next(n + 1, 0);
  dp[0] = 1;
  for (size_t i = 0; i < p; ++i) {
    std::fill(next.begin(), next.end(), 0);
    const PatternItem& item = pattern[i];
    if (item.gap) {
      // A gap absorbs zero or more labels: next[j] = OR of dp[0..j].
      char seen = 0;
      for (size_t j = 0; j <= n; ++j) {
        seen |= dp[j];
        next[j] = seen;
      }
    } else {
      for (size_t j = 1; j <= n; ++j) {
        bool label_ok =
            item.label == kInvalidLabel || item.label == path[j - 1];
        next[j] = dp[j - 1] && label_ok;
      }
    }
    std::swap(dp, next);
  }
  // Accept if the pattern consumed any prefix of the path.
  for (size_t j = 0; j <= n; ++j) {
    if (dp[j]) return true;
  }
  return false;
}

}  // namespace prix
