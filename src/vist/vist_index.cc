#include "vist/vist_index.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"

namespace prix {

namespace {

/// Build-time trie over structure-encoded sequences, keyed by the packed
/// (symbol, prefix) pair.
struct VistTrie {
  struct Node {
    LabelId symbol = kInvalidLabel;
    PrefixId prefix = 0;
    uint32_t parent = 0;
    uint32_t depth = 0;
    std::unordered_map<uint64_t, uint32_t> children;
    std::vector<DocId> end_docs;
  };
  std::vector<Node> nodes;

  VistTrie() { nodes.emplace_back(); }

  static uint64_t Pack(const VistItem& item) {
    return (static_cast<uint64_t>(item.symbol) << 32) | item.prefix;
  }

  void Insert(const std::vector<VistItem>& seq, DocId doc) {
    uint32_t cur = 0;
    for (const VistItem& item : seq) {
      uint64_t key = Pack(item);
      auto it = nodes[cur].children.find(key);
      uint32_t next;
      if (it == nodes[cur].children.end()) {
        next = static_cast<uint32_t>(nodes.size());
        Node n;
        n.symbol = item.symbol;
        n.prefix = item.prefix;
        n.parent = cur;
        n.depth = nodes[cur].depth + 1;
        nodes.push_back(std::move(n));
        nodes[cur].children.emplace(key, next);
      } else {
        next = it->second;
      }
      cur = next;
    }
    nodes[cur].end_docs.push_back(doc);
  }

  /// Exact two-pass range labeling (left = preorder rank).
  std::vector<RangeLabel> Label() const {
    std::vector<RangeLabel> labels(nodes.size());
    uint64_t counter = 0;
    struct Frame {
      uint32_t node;
      std::vector<uint32_t> kids;
      size_t next = 0;
    };
    auto sorted_children = [this](uint32_t id) {
      std::vector<uint32_t> kids;
      kids.reserve(nodes[id].children.size());
      for (const auto& [key, child] : nodes[id].children) {
        kids.push_back(child);
      }
      std::sort(kids.begin(), kids.end());
      return kids;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{0, sorted_children(0), 0});
    labels[0].left = ++counter;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.kids.size()) {
        uint32_t child = f.kids[f.next++];
        labels[child].left = ++counter;
        stack.push_back(Frame{child, sorted_children(child), 0});
      } else {
        labels[f.node].right = counter;
        stack.pop_back();
      }
    }
    return labels;
  }
};

}  // namespace

Result<std::unique_ptr<VistIndex>> VistIndex::Build(
    const std::vector<Document>& documents, BufferPool* pool,
    VistIndexBuildStats* stats) {
  auto index = std::unique_ptr<VistIndex>(new VistIndex());
  PRIX_ASSIGN_OR_RETURN(DAncestorTree dtree, DAncestorTree::Create(pool));
  index->dancestor_ = std::make_unique<DAncestorTree>(std::move(dtree));
  PRIX_ASSIGN_OR_RETURN(DocTree doct, DocTree::Create(pool));
  index->docid_ = std::make_unique<DocTree>(std::move(doct));
  index->seq_store_ = std::make_unique<RecordStore>(pool);

  VistIndexBuildStats local;
  if (stats == nullptr) stats = &local;

  VistTrie trie;
  for (DocId d = 0; d < documents.size(); ++d) {
    PRIX_CHECK(documents[d].doc_id() == d);
    std::vector<VistItem> seq =
        BuildVistSequence(documents[d], &index->prefixes_);
    trie.Insert(seq, d);
    // Persist the raw sequence for post-verification.
    std::vector<char> buf;
    PutU32(&buf, static_cast<uint32_t>(seq.size()));
    for (const VistItem& item : seq) {
      PutU32(&buf, item.symbol);
      PutU32(&buf, item.prefix);
    }
    PRIX_ASSIGN_OR_RETURN(uint32_t id,
                          index->seq_store_->Append(buf.data(), buf.size()));
    PRIX_DCHECK(id == d);
    (void)id;
  }
  stats->trie_nodes = trie.nodes.size();
  stats->distinct_prefixes = index->prefixes_.size();
  stats->prefix_labels = index->prefixes_.total_labels();

  std::vector<RangeLabel> labels = trie.Label();
  index->root_range_ = labels[0];
  uint32_t doc_seq = 0;
  std::unordered_map<LabelId, std::unordered_set<PrefixId>> key_sets;
  for (uint32_t v = 1; v < trie.nodes.size(); ++v) {
    const auto& node = trie.nodes[v];
    PRIX_RETURN_NOT_OK(index->dancestor_->Insert(
        VistKey{node.symbol, 0, labels[v].left},
        VistNodeValue{labels[v].right, node.depth, node.prefix}));
    ++stats->dancestor_entries;
    key_sets[node.symbol].insert(node.prefix);
  }
  for (auto& [symbol, prefixes] : key_sets) {
    index->symbol_prefixes_[symbol] =
        std::vector<PrefixId>(prefixes.begin(), prefixes.end());
  }
  for (uint32_t v = 0; v < trie.nodes.size(); ++v) {
    for (DocId d : trie.nodes[v].end_docs) {
      PRIX_RETURN_NOT_OK(index->docid_->Insert(
          VistDocKey{labels[v].left, doc_seq++, 0}, d));
    }
  }
  stats->pages_after_build = pool->disk()->num_pages();
  PRIX_RETURN_NOT_OK(pool->FlushAll());
  return index;
}

namespace {
constexpr uint32_t kVistCatalogMagic = 0x56495354;  // "VIST"
constexpr uint32_t kVistCatalogVersion = 1;
}  // namespace

void VistIndex::SerializeCatalog(std::vector<char>* blob) const {
  PutU32(blob, kVistCatalogMagic);
  PutU32(blob, kVistCatalogVersion);
  PutU64(blob, root_range_.left);
  PutU64(blob, root_range_.right);
  PutU32(blob, dancestor_->meta_page_id());
  PutU32(blob, docid_->meta_page_id());
  seq_store_->SerializeTo(blob);
  prefixes_.SerializeTo(blob);
  PutU32(blob, static_cast<uint32_t>(symbol_prefixes_.size()));
  for (const auto& [symbol, prefixes] : symbol_prefixes_) {
    PutU32(blob, symbol);
    PutU32(blob, static_cast<uint32_t>(prefixes.size()));
    for (PrefixId p : prefixes) PutU32(blob, p);
  }
}

Status VistIndex::Save(Database* db, const std::string& name) const {
  std::vector<char> blob;
  SerializeCatalog(&blob);
  auto first_result = WriteBlob(db->pool(), blob);
  if (!first_result.ok()) {
    return first_result.status().Annotate("saving ViST index '" + name + "'");
  }
  PageId first = *first_result;
  Database::IndexEntry entry;
  entry.name = name;
  entry.kind = Database::IndexKind::kVist;
  entry.root = first;
  return db->PutIndex(entry);
}

Result<std::unique_ptr<VistIndex>> VistIndex::Open(Database* db,
                                                   const std::string& name) {
  PRIX_ASSIGN_OR_RETURN(Database::IndexEntry entry, db->GetIndex(name));
  return OpenFromEntry(db->pool(), entry);
}

Result<std::unique_ptr<VistIndex>> VistIndex::OpenFromEntry(
    BufferPool* pool, const Database::IndexEntry& entry) {
  if (entry.kind != Database::IndexKind::kVist) {
    return Status::InvalidArgument("catalog entry '" + entry.name +
                                   "' is not a ViST index");
  }
  if (entry.stale_as_of_gen != 0) {
    // The index was built by an older binary and a later ingest commit
    // mutated the collection without carrying it along (current binaries
    // keep co-resident ViST indexes live in the same commit). Its answers
    // would silently miss or resurrect documents, so refuse to open it.
    return Status::FailedPrecondition(
        "index '" + entry.name + "' is stale as of generation " +
        std::to_string(entry.stale_as_of_gen) +
        ", rebuild or query the PRIX index");
  }
  std::vector<char> blob;
  Status blob_st = ReadBlob(pool, entry.root, &blob);
  if (!blob_st.ok()) {
    return blob_st.Annotate("opening ViST index '" + entry.name + "'");
  }
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t bytes) -> Status {
    if (p + bytes > end) return Status::Corruption("truncated ViST catalog");
    return Status::OK();
  };
  PRIX_RETURN_NOT_OK(need(32));
  if (GetU32(p) != kVistCatalogMagic) {
    return Status::Corruption("not a ViST index catalog");
  }
  p += 4;
  if (GetU32(p) != kVistCatalogVersion) {
    return Status::Corruption("unsupported ViST catalog version");
  }
  p += 4;
  auto index = std::unique_ptr<VistIndex>(new VistIndex());
  index->root_range_.left = GetU64(p);
  p += 8;
  index->root_range_.right = GetU64(p);
  p += 8;
  PageId dancestor_meta = GetU32(p);
  p += 4;
  PageId docid_meta = GetU32(p);
  p += 4;
  PRIX_ASSIGN_OR_RETURN(DAncestorTree dtree,
                        DAncestorTree::Open(pool, dancestor_meta));
  index->dancestor_ = std::make_unique<DAncestorTree>(std::move(dtree));
  PRIX_ASSIGN_OR_RETURN(DocTree doct, DocTree::Open(pool, docid_meta));
  index->docid_ = std::make_unique<DocTree>(std::move(doct));
  PRIX_ASSIGN_OR_RETURN(RecordStore seqs,
                        RecordStore::Deserialize(pool, &p, end));
  index->seq_store_ = std::make_unique<RecordStore>(std::move(seqs));
  PRIX_ASSIGN_OR_RETURN(index->prefixes_,
                        PrefixDictionary::Deserialize(&p, end));
  PRIX_RETURN_NOT_OK(need(4));
  uint32_t symbols = GetU32(p);
  p += 4;
  for (uint32_t i = 0; i < symbols; ++i) {
    PRIX_RETURN_NOT_OK(need(8));
    LabelId symbol = GetU32(p);
    p += 4;
    uint32_t count = GetU32(p);
    p += 4;
    PRIX_RETURN_NOT_OK(need(4ull * count));
    std::vector<PrefixId>& prefixes = index->symbol_prefixes_[symbol];
    prefixes.reserve(count);
    for (uint32_t j = 0; j < count; ++j, p += 4) {
      prefixes.push_back(GetU32(p));
    }
  }
  return index;
}

Status VistIndex::Salvage(Database* dst, const std::string& name,
                          SalvageStats* stats) const {
  SalvageStats local;
  if (stats == nullptr) stats = &local;
  auto out = std::unique_ptr<VistIndex>(new VistIndex());
  out->root_range_ = root_range_;
  out->prefixes_ = prefixes_;
  out->symbol_prefixes_ = symbol_prefixes_;
  out->seq_store_ = std::make_unique<RecordStore>(dst->pool());
  PRIX_ASSIGN_OR_RETURN(DAncestorTree dtree, DAncestorTree::Create(dst->pool()));
  out->dancestor_ = std::make_unique<DAncestorTree>(std::move(dtree));
  PRIX_ASSIGN_OR_RETURN(DocTree doct, DocTree::Create(dst->pool()));
  out->docid_ = std::make_unique<DocTree>(std::move(doct));

  auto skip_issue = [](PageId, const Status&, const std::string&) {};
  auto insert = [&](auto* tree, const auto& k, const auto& v) -> Status {
    Status st = tree->Insert(k, v);
    if (st.ok()) {
      ++stats->entries_recovered;
      return st;
    }
    if (st.code() == StatusCode::kAlreadyExists) {
      ++stats->entries_dropped;
      return Status::OK();
    }
    return st;
  };
  BtreeScrubStats walk;
  PRIX_RETURN_NOT_OK(dancestor_->WalkReachable(
      [&](const VistKey& k, const VistNodeValue& v) {
        return insert(out->dancestor_.get(), k, v);
      },
      skip_issue, &walk));
  PRIX_RETURN_NOT_OK(docid_->WalkReachable(
      [&](const VistDocKey& k, const DocId& v) {
        return insert(out->docid_.get(), k, v);
      },
      skip_issue, &walk));
  stats->subtrees_skipped += walk.subtrees_skipped;

  std::vector<char> buf;
  for (uint32_t id = 0; id < seq_store_->num_records(); ++id) {
    Status st = seq_store_->Load(id, &buf);
    if (st.ok()) {
      PRIX_ASSIGN_OR_RETURN(uint32_t new_id,
                            out->seq_store_->Append(buf.data(), buf.size()));
      (void)new_id;
      ++stats->records_recovered;
    } else {
      // Zero-length placeholder: LoadDocument on it reports Corruption
      // rather than shifting every later DocId.
      PRIX_ASSIGN_OR_RETURN(uint32_t new_id,
                            out->seq_store_->Append(nullptr, 0));
      (void)new_id;
      ++stats->records_lost;
    }
  }
  return out->Save(dst, name);
}

Result<Document> VistIndex::LoadDocument(DocId doc) const {
  std::vector<char> buf;
  PRIX_RETURN_NOT_OK(seq_store_->Load(doc, &buf));
  if (buf.size() < 4) return Status::Corruption("truncated ViST record");
  const char* p = buf.data();
  uint32_t n = GetU32(p);
  p += 4;
  if (buf.size() < 4 + 8ull * n) {
    return Status::Corruption("truncated ViST record");
  }
  Document out(doc);
  // Preorder reconstruction: a node's depth is its prefix path length.
  std::vector<NodeId> stack_by_depth;
  for (uint32_t i = 0; i < n; ++i) {
    LabelId symbol = GetU32(p);
    p += 4;
    PrefixId prefix = GetU32(p);
    p += 4;
    if (prefix >= prefixes_.size()) {
      return Status::Corruption("ViST record references prefix " +
                                std::to_string(prefix) +
                                " beyond the dictionary (" +
                                std::to_string(prefixes_.size()) + ")");
    }
    size_t depth = prefixes_.Path(prefix).size();
    NodeId node;
    if (depth == 0) {
      if (!out.empty()) {
        return Status::Corruption("ViST record has two root items");
      }
      node = out.AddRoot(symbol);
    } else {
      if (depth > stack_by_depth.size()) {
        return Status::Corruption("bad prefix depth in ViST record");
      }
      node = out.AddChild(stack_by_depth[depth - 1], symbol);
    }
    stack_by_depth.resize(depth);
    stack_by_depth.push_back(node);
  }
  return out;
}

const std::vector<PrefixId>& VistIndex::SymbolPrefixes(LabelId symbol) const {
  static const std::vector<PrefixId> kEmpty;
  auto it = symbol_prefixes_.find(symbol);
  return it == symbol_prefixes_.end() ? kEmpty : it->second;
}

}  // namespace prix
