#ifndef PRIX_VIST_VIST_QUERY_H_
#define PRIX_VIST_VIST_QUERY_H_

#include <cstdint>
#include <vector>

#include "naive/naive_matcher.h"
#include "vist/vist_index.h"

namespace prix {

/// Execution counters for the ViST baseline.
struct VistQueryStats {
  uint64_t range_queries = 0;
  uint64_t matched_prefixes = 0;  ///< unique (symbol, prefix) keys matched
  uint64_t keys_scanned = 0;     ///< D-Ancestorship entries touched
  uint64_t occurrences = 0;      ///< subsequence occurrences found
  uint64_t candidate_docs = 0;   ///< docs surfaced by subsequence matching
  uint64_t docs_verified = 0;    ///< candidate docs post-verified
  uint64_t false_alarms = 0;     ///< candidates rejected by verification
};

struct VistQueryResult {
  std::vector<TwigMatch> matches;  // verified, sorted
  std::vector<DocId> docs;         // sorted, distinct
  VistQueryStats stats;
};

/// ViST query execution as characterized by the PRIX paper: top-down
/// subsequence matching of the query's (symbol, prefix) pairs over the
/// D-Ancestorship virtual trie. Exact (gap-free) prefixes use targeted
/// range scans; prefixes containing '//' or '*' must touch every key with
/// the symbol (the TREEBANK blowup of Sec. 6.4.1). Because the structure
/// encoding admits false alarms (Fig. 1(b)), every candidate document is
/// verified against the query tree; that cost is part of ViST's bill.
class VistQueryProcessor {
 public:
  explicit VistQueryProcessor(VistIndex* index) : index_(index) {}

  Result<VistQueryResult> Execute(
      const TwigPattern& pattern,
      MatchSemantics semantics = MatchSemantics::kOrdered);

 private:
  Status Descend(size_t i, uint64_t ql, uint64_t qr,
                 std::vector<DocId>* candidates, VistQueryStats* stats);

  VistIndex* index_;
  std::vector<VistQueryItem> items_;
  // prefix_ok_[i][prefix]: item i accepts that interned prefix.
  std::vector<std::vector<char>> prefix_ok_;
};

}  // namespace prix

#endif  // PRIX_VIST_VIST_QUERY_H_
