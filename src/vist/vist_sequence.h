#ifndef PRIX_VIST_VIST_SEQUENCE_H_
#define PRIX_VIST_VIST_SEQUENCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "query/twig_pattern.h"
#include "xml/document.h"

namespace prix {

/// Identifier of an interned root-to-node path.
using PrefixId = uint32_t;

/// Interns root-to-node label paths (the "prefix" part of ViST's
/// structure-encoded pairs). The total interned size is what gives ViST its
/// super-linear worst case (a unary tree interns n distinct prefixes of
/// lengths 0..n-1, Sec. 2 of the PRIX paper).
class PrefixDictionary {
 public:
  PrefixId Intern(const std::vector<LabelId>& path);
  /// Returns the id of `path` or kInvalidPrefix if never interned.
  PrefixId Find(const std::vector<LabelId>& path) const;
  static constexpr PrefixId kInvalidPrefix = 0xffffffffu;
  const std::vector<LabelId>& Path(PrefixId id) const { return paths_[id]; }
  size_t size() const { return paths_.size(); }
  /// Total number of labels across all interned paths.
  uint64_t total_labels() const { return total_labels_; }

  /// Serializes all interned paths in id order (for index persistence).
  void SerializeTo(std::vector<char>* out) const;

  /// Rebuilds a dictionary (ids preserved) from SerializeTo output. `p` is
  /// advanced past the consumed bytes.
  static Result<PrefixDictionary> Deserialize(const char** p,
                                              const char* end);

 private:
  std::map<std::vector<LabelId>, PrefixId> index_;
  std::vector<std::vector<LabelId>> paths_;
  uint64_t total_labels_ = 0;
};

/// One element of a structure-encoded sequence: (symbol, prefix) where
/// prefix is the interned path from the document root to the node's parent.
struct VistItem {
  LabelId symbol;
  PrefixId prefix;

  bool operator==(const VistItem&) const = default;
};

/// Transforms `doc` into its structure-encoded sequence: the preorder list
/// of (symbol, prefix) pairs (ViST, as described in Sec. 2 / Fig. 1).
std::vector<VistItem> BuildVistSequence(const Document& doc,
                                        PrefixDictionary* prefixes);

/// A prefix-path pattern element: a concrete label or a '//' gap.
struct PatternItem {
  bool gap = false;
  LabelId label = kInvalidLabel;
};

/// One query node in ViST form: its symbol test plus the pattern its
/// ancestors' path must satisfy. A '*' symbol matches any label.
struct VistQueryItem {
  LabelId symbol = kInvalidLabel;
  bool star = false;
  std::vector<PatternItem> pattern;
  uint32_t twig_node = 0;  ///< originating TwigPattern node
};

/// Builds the query's structure-encoded sequence (preorder). Wildcards stay
/// in the prefix patterns; this is the "(S, //) key" behaviour the PRIX
/// paper measures on TREEBANK (Sec. 6.4.1).
std::vector<VistQueryItem> BuildVistQuery(const TwigPattern& twig);

/// True if `pattern` matches some PREFIX of `path` ('//' gaps absorb zero
/// or more labels; '*' steps appear as non-gap items with label
/// kInvalidLabel). Prefix (not whole-path) matching is the D-Ancestorship
/// relation: a query node with root-path p matches any data node below the
/// path p — which is precisely how ViST admits the Fig. 1(b) false alarms.
bool PatternMatchesPath(const std::vector<PatternItem>& pattern,
                        const std::vector<LabelId>& path);

}  // namespace prix

#endif  // PRIX_VIST_VIST_SEQUENCE_H_
