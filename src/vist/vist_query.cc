#include "vist/vist_query.h"

#include <algorithm>
#include <set>

#include "common/deadline.h"
#include "common/macros.h"
#include "query/twig_prufer.h"

namespace prix {

Result<VistQueryResult> VistQueryProcessor::Execute(
    const TwigPattern& pattern, MatchSemantics semantics) {
  if (pattern.empty()) return Status::InvalidArgument("empty twig pattern");
  VistQueryResult result;

  items_ = BuildVistQuery(pattern);
  // Resolve each item's prefix pattern against that symbol's unique
  // (symbol, prefix) D-Ancestorship keys, mirroring ViST: an item whose
  // prefix carries '//' matches many keys ("every key with S as its
  /// symbol", Sec. 6.4.1), a concrete prefix matches the keys it is a path
  // prefix of.
  prefix_ok_.assign(items_.size(),
                    std::vector<char>(index_->prefixes().size(), 0));
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].star) {
      // '*' symbol: pattern filtering happens during the scan itself.
      for (PrefixId id = 0; id < index_->prefixes().size(); ++id) {
        prefix_ok_[i][id] = PatternMatchesPath(items_[i].pattern,
                                               index_->prefixes().Path(id));
        result.stats.matched_prefixes += prefix_ok_[i][id];
      }
      continue;
    }
    for (PrefixId id : index_->SymbolPrefixes(items_[i].symbol)) {
      if (PatternMatchesPath(items_[i].pattern,
                             index_->prefixes().Path(id))) {
        prefix_ok_[i][id] = 1;
        ++result.stats.matched_prefixes;
      }
    }
  }

  std::vector<DocId> candidates;
  RangeLabel root = index_->root_range();
  PRIX_RETURN_NOT_OK(
      Descend(0, root.left, root.right, &candidates, &result.stats));
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  result.stats.candidate_docs = candidates.size();

  // Post-verification: rebuild each candidate document and enumerate its
  // actual embeddings. ViST's structure encoding admits false alarms
  // (Fig. 1(b)); without this step reported matches would be wrong.
  EffectiveTwig base = EffectiveTwig::Build(pattern);
  std::vector<EffectiveTwig> arrangements;
  if (semantics == MatchSemantics::kOrdered) {
    arrangements.push_back(base);
  } else {
    PRIX_ASSIGN_OR_RETURN(arrangements, EnumerateArrangements(base, 40320));
  }
  std::set<TwigMatch> match_set;
  for (DocId doc : candidates) {
    PRIX_RETURN_NOT_OK(CheckDeadline());
    PRIX_ASSIGN_OR_RETURN(Document tree, index_->LoadDocument(doc));
    ++result.stats.docs_verified;
    size_t before = match_set.size();
    for (const EffectiveTwig& arrangement : arrangements) {
      for (auto& m : NaiveMatch(tree, arrangement,
                                semantics == MatchSemantics::kStandard
                                    ? MatchSemantics::kStandard
                                    : MatchSemantics::kOrdered)) {
        match_set.insert(std::move(m));
      }
    }
    if (match_set.size() == before) ++result.stats.false_alarms;
  }
  result.matches.assign(match_set.begin(), match_set.end());
  for (const TwigMatch& m : result.matches) result.docs.push_back(m.doc);
  std::sort(result.docs.begin(), result.docs.end());
  result.docs.erase(std::unique(result.docs.begin(), result.docs.end()),
                    result.docs.end());
  return result;
}

Status VistQueryProcessor::Descend(size_t i, uint64_t ql, uint64_t qr,
                                   std::vector<DocId>* candidates,
                                   VistQueryStats* stats) {
  const VistQueryItem& item = items_[i];
  // Deadline checkpoint once per range descent (the '*' and TREEBANK-style
  // '//' scans touch every key of a symbol; without this a timed-out query
  // would grind through the whole index).
  PRIX_RETURN_NOT_OK(CheckDeadline());

  auto process_node = [&](const VistKey& key,
                          const VistNodeValue& value) -> Status {
    if (i + 1 == items_.size()) {
      ++stats->occurrences;
      PRIX_ASSIGN_OR_RETURN(
          auto dit, index_->docid_index().Seek(VistDocKey{key.left, 0, 0}));
      while (dit.Valid() && dit.key().left <= value.right) {
        candidates->push_back(dit.value());
        PRIX_RETURN_NOT_OK(dit.Next());
      }
      return Status::OK();
    }
    return Descend(i + 1, key.left, value.right, candidates, stats);
  };

  ++stats->range_queries;
  if (item.star) {
    // '*' symbol: every key within scope qualifies if its prefix matches.
    PRIX_ASSIGN_OR_RETURN(auto it, index_->dancestor().SeekToFirst());
    while (it.Valid()) {
      const VistKey key = it.key();
      const VistNodeValue value = it.value();
      PRIX_RETURN_NOT_OK(it.Next());
      ++stats->keys_scanned;
      if (key.left <= ql || key.left > qr) continue;
      if (!prefix_ok_[i][value.prefix]) continue;
      PRIX_RETURN_NOT_OK(process_node(key, value));
    }
    return Status::OK();
  }

  // Scan all trie nodes of the symbol within the scope; each is checked
  // against the item's admissible (symbol, prefix) keys.
  PRIX_ASSIGN_OR_RETURN(
      auto it, index_->dancestor().Seek(VistKey{item.symbol, 0, ql + 1}));
  while (it.Valid()) {
    const VistKey key = it.key();
    if (key.symbol != item.symbol || key.left > qr) break;
    ++stats->keys_scanned;
    const VistNodeValue value = it.value();
    PRIX_RETURN_NOT_OK(it.Next());
    if (!prefix_ok_[i][value.prefix]) continue;
    PRIX_RETURN_NOT_OK(process_node(key, value));
  }
  return Status::OK();
}

}  // namespace prix
