#include "verify/verifier.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "common/macros.h"
#include "db/database.h"
#include "prix/prix_index.h"
#include "storage/page_format.h"
#include "storage/record_store.h"
#include "twigstack/position_stream.h"
#include "twigstack/twig_stack.h"
#include "vist/vist_index.h"

namespace prix {

namespace {

void AddIssue(VerifyReport* report, PageId page, const std::string& index,
              const std::string& context, const Status& st) {
  report->issues.push_back(
      VerifyIssue{page, index, context, std::string(st.message())});
}

/// Reads exactly `len` bytes at `offset`, resuming short reads.
Status PreadFully(int fd, char* buf, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, buf + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("pread: unexpected end of file");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Walks one B+-tree of an opened index, reporting every structural fault
/// with the index name and the node path from the root.
template <typename Tree>
void ScrubTree(Tree* tree, const std::string& index, const std::string& label,
               VerifyReport* report) {
  BtreeScrubStats stats;
  Status st = tree->WalkReachable(
      [](const auto&, const auto&) { return Status::OK(); },
      [&](PageId page, const Status& issue, const std::string& path) {
        AddIssue(report, page, index, label + " " + path, issue);
      },
      &stats);
  // The no-op emit never fails, but keep the contract honest.
  if (!st.ok()) AddIssue(report, kInvalidPage, index, label, st);
}

void VerifyPrixEntry(Database* db, const Database::IndexEntry& entry,
                     VerifyReport* report) {
  auto index = PrixIndex::Open(db, entry.name);
  if (!index.ok()) {
    AddIssue(report, entry.root, entry.name, "index catalog", index.status());
    return;
  }
  ScrubTree(&(*index)->symbol_index(), entry.name, "symbol-tree", report);
  ScrubTree(&(*index)->docid_index(), entry.name, "docid-tree", report);
  for (DocId d = 0; d < (*index)->num_docs(); ++d) {
    Result<StoredDoc> doc = (*index)->docs().Load(d);
    if (!doc.ok()) {
      AddIssue(report, kInvalidPage, entry.name,
               "doc record " + std::to_string(d), doc.status());
    }
  }
  // Document accounting: tombstoned DocIds whose DocStore records are still
  // occupying space (reclaimed only by a rebuild/compaction). Reported as
  // stats, not issues — dead weight is expected after online deletes. A
  // tombstone for a DocId the store does not hold IS an issue, but
  // PrixIndex::Open already rejects that as corruption above.
  IndexDocStats ds;
  ds.index = entry.name;
  ds.live_docs = (*index)->num_live_docs();
  ds.dead_docs = (*index)->tombstones().size();
  report->doc_stats.push_back(std::move(ds));
}

void VerifyVistEntry(Database* db, const Database::IndexEntry& entry,
                     VerifyReport* report) {
  auto index = VistIndex::Open(db, entry.name);
  if (!index.ok()) {
    AddIssue(report, entry.root, entry.name, "index catalog", index.status());
    return;
  }
  ScrubTree(&(*index)->dancestor(), entry.name, "dancestor-tree", report);
  ScrubTree(&(*index)->docid_index(), entry.name, "docid-tree", report);
  // Live/dead accounting: a ViST delete removes the Docid entry and leaves
  // the sequence record behind, so live = Docid entries, dead = the rest.
  // Only live documents need a loadable sequence record.
  std::vector<bool> live((*index)->num_docs(), false);
  auto it = (*index)->docid_index().SeekToFirst();
  if (!it.ok()) {
    AddIssue(report, kInvalidPage, entry.name, "docid-tree scan", it.status());
  } else {
    while (it->Valid()) {
      if (it->value() < live.size()) live[it->value()] = true;
      Status st = it->Next();
      if (!st.ok()) {
        AddIssue(report, kInvalidPage, entry.name, "docid-tree scan", st);
        break;
      }
    }
  }
  IndexDocStats ds;
  ds.index = entry.name;
  for (DocId d = 0; d < (*index)->num_docs(); ++d) {
    if (!live[d]) {
      ++ds.dead_docs;
      continue;
    }
    ++ds.live_docs;
    Result<Document> doc = (*index)->LoadDocument(d);
    if (!doc.ok()) {
      AddIssue(report, kInvalidPage, entry.name,
               "sequence record " + std::to_string(d), doc.status());
    }
  }
  report->doc_stats.push_back(std::move(ds));
}

void VerifyStreamsEntry(Database* db, const Database::IndexEntry& entry,
                        VerifyReport* report) {
  auto store = StreamStore::Open(db, entry.name);
  if (!store.ok()) {
    AddIssue(report, entry.root, entry.name, "stream catalog", store.status());
    return;
  }
  // Fetching each page runs it through the pool's CRC verification.
  for (const auto& [label, info] : (*store)->streams()) {
    for (PageId page : info.pages) {
      Result<Page*> fetched = db->pool()->FetchPage(page);
      if (!fetched.ok()) {
        AddIssue(report, page, entry.name,
                 "stream for label " + std::to_string(label),
                 fetched.status());
        continue;
      }
      db->pool()->UnpinPage(page, /*dirty=*/false);
    }
  }
  if (!(*store)->legacy()) {
    IndexDocStats ds;
    ds.index = entry.name;
    ds.dead_docs = (*store)->tombstones().size();
    ds.live_docs = (*store)->num_docs() - ds.dead_docs;
    report->doc_stats.push_back(std::move(ds));
  }
}

void VerifyForestEntry(Database* db, const Database::IndexEntry& entry,
                       VerifyReport* report) {
  // The forest catalog references a stream store but does not name it; pair
  // with the database's (sole, in every producer of kXbForest) stream store
  // when one opens, else fall back to checking the catalog blob chain.
  std::unique_ptr<StreamStore> store;
  for (const auto& other : db->ListIndexes()) {
    if (other.kind != Database::IndexKind::kTwigStreams) continue;
    auto opened = StreamStore::Open(db, other.name);
    if (opened.ok()) {
      store = std::move(*opened);
      break;
    }
  }
  if (store != nullptr) {
    auto forest = XbForest::Open(db, entry.name, store.get());
    if (!forest.ok()) {
      AddIssue(report, entry.root, entry.name, "forest catalog",
               forest.status());
    }
    return;
  }
  std::vector<char> blob;
  Status st = ReadBlob(db->pool(), entry.root, &blob);
  if (!st.ok()) {
    AddIssue(report, entry.root, entry.name, "forest catalog blob", st);
  }
}

void VerifyBlobEntry(Database* db, const Database::IndexEntry& entry,
                     VerifyReport* report) {
  std::vector<char> blob;
  Status st = ReadBlob(db->pool(), entry.root, &blob);
  if (!st.ok()) AddIssue(report, entry.root, entry.name, "blob chain", st);
}

/// Rebuilds derived entries (stream stores, XB-forests, ViSTs whose own
/// structure could not be walked) into `dst` from the documents
/// reconstructed out of `source` — the first PRIX index the salvage could
/// open. Documents that fail to reconstruct (tombstoned or poisoned) become
/// empty placeholders so DocIds keep lining up with the salvaged PRIX
/// store, and are tombstoned again in the rebuilt stream store. Returns
/// non-OK only for destination write failures; per-entry rebuild failures
/// drop that entry.
Status RebuildDerivedEntries(const PrixIndex* source, Database* dst,
                             const std::vector<Database::IndexEntry>& derived,
                             SalvageReport* report) {
  if (source == nullptr) {
    for (const auto& e : derived) report->dropped.push_back(e.name);
    return Status::OK();
  }
  std::vector<Document> docs;
  std::vector<DocId> dead;
  docs.reserve(source->num_docs());
  for (DocId d = 0; d < source->num_docs(); ++d) {
    Result<Document> doc = source->ReconstructDocument(d);
    if (doc.ok()) {
      docs.push_back(std::move(*doc));
    } else {
      docs.push_back(Document(d));
      dead.push_back(d);
    }
  }
  // Streams before forests: a forest is rebuilt over the rebuilt store.
  std::unique_ptr<StreamStore> store;
  for (const auto& e : derived) {
    if (e.kind != Database::IndexKind::kTwigStreams) continue;
    auto built = StreamStore::Build(docs, dst->pool());
    if (!built.ok()) {
      report->dropped.push_back(e.name);
      continue;
    }
    for (DocId d : dead) (*built)->Tombstone(d);
    PRIX_RETURN_NOT_OK((*built)->Save(dst, e.name));
    if (store == nullptr) store = std::move(*built);
    report->rebuilt.push_back(e.name);
  }
  for (const auto& e : derived) {
    if (e.kind != Database::IndexKind::kXbForest) continue;
    if (store == nullptr) {
      // No stream store to summarize (none in the source catalog): a forest
      // alone is meaningless.
      report->dropped.push_back(e.name);
      continue;
    }
    auto forest = XbForest::Build(store.get());
    if (!forest.ok()) {
      report->dropped.push_back(e.name);
      continue;
    }
    PRIX_RETURN_NOT_OK((*forest)->Save(dst, e.name));
    report->rebuilt.push_back(e.name);
  }
  for (const auto& e : derived) {
    if (e.kind != Database::IndexKind::kVist) continue;
    auto vist = VistIndex::Build(docs, dst->pool());
    if (!vist.ok()) {
      report->dropped.push_back(e.name);
      continue;
    }
    PRIX_RETURN_NOT_OK((*vist)->Save(dst, e.name));
    report->rebuilt.push_back(e.name);
  }
  return Status::OK();
}

}  // namespace

Status ScrubPages(const std::string& path, VerifyReport* report) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err =
        Status::IoError("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t full_pages = size / kPageSize;
  if (size == 0) {
    AddIssue(report, kInvalidPage, "", "file",
             Status::Corruption(path +
                                " is empty (0 pages): expected a superblock "
                                "page with magic \"PRDB\""));
  } else if (size % kPageSize != 0) {
    AddIssue(report, kInvalidPage, "", "file",
             Status::Corruption(
                 path + ": ragged tail of " +
                 std::to_string(size % kPageSize) +
                 " bytes past the last full page (torn extension?)"));
  }
  std::vector<char> buf(kPageSize);
  for (uint64_t id = 0; id < full_pages; ++id) {
    Status read_st =
        PreadFully(fd, buf.data(), kPageSize, id * uint64_t{kPageSize});
    if (!read_st.ok()) {
      ++report->pages_bad;
      AddIssue(report, static_cast<PageId>(id), "", "page scan", read_st);
      continue;
    }
    ++report->pages_scanned;
    Status crc_st = VerifyPageTrailer(static_cast<PageId>(id), buf.data());
    if (!crc_st.ok()) {
      ++report->pages_bad;
      AddIssue(report, static_cast<PageId>(id), "",
               std::string("page type ") + PageTypeName(GetPageType(buf.data())),
               crc_st);
    }
  }
  ::close(fd);
  return Status::OK();
}

Status VerifyDatabase(const std::string& path, VerifyReport* report) {
  auto db = Database::Open(path, Database::Options{.pool_pages = 512});
  if (!db.ok()) {
    AddIssue(report, kInvalidPage, "", "database open", db.status());
    return Status::OK();
  }
  report->free_pages = (*db)->free_page_count();
  for (const auto& entry : (*db)->ListIndexes()) {
    ++report->indexes_checked;
    if (entry.stale_as_of_gen != 0) {
      // Stale derived index (online ingest outran it): its pages are still
      // covered by the phase-1 CRC scrub, but the engine Open functions
      // refuse it by design, so the structural walk is skipped. Staleness
      // is reported separately — it is dead weight, not corruption.
      report->stale_indexes.push_back(
          StaleIndexNote{entry.name, entry.stale_as_of_gen});
      continue;
    }
    size_t before = report->issues.size();
    switch (entry.kind) {
      case Database::IndexKind::kPrixRegular:
      case Database::IndexKind::kPrixExtended:
        VerifyPrixEntry(db->get(), entry, report);
        break;
      case Database::IndexKind::kVist:
        VerifyVistEntry(db->get(), entry, report);
        break;
      case Database::IndexKind::kTwigStreams:
        VerifyStreamsEntry(db->get(), entry, report);
        break;
      case Database::IndexKind::kXbForest:
        VerifyForestEntry(db->get(), entry, report);
        break;
      case Database::IndexKind::kBlob:
        VerifyBlobEntry(db->get(), entry, report);
        break;
    }
    if (report->issues.size() > before) ++report->indexes_bad;
  }
  // Nothing was (intentionally) modified; drop the handle without
  // committing a new catalog generation.
  (*db)->Abandon();
  return Status::OK();
}

Status SalvageDatabase(const std::string& src, const std::string& dst,
                       SalvageReport* report) {
  if (src == dst) {
    return Status::InvalidArgument(
        "salvage destination must differ from the source");
  }
  auto sdb = Database::Open(src, Database::Options{.pool_pages = 512});
  if (!sdb.ok()) {
    return sdb.status().Annotate("salvage: cannot open source");
  }
  auto ddb = Database::Create(dst);
  if (!ddb.ok()) {
    (*sdb)->Abandon();
    return ddb.status().Annotate("salvage: cannot create destination");
  }
  Status fatal;
  std::unique_ptr<PrixIndex> doc_source;  // reconstruction source for below
  std::vector<Database::IndexEntry> derived;
  for (const auto& entry : (*sdb)->ListIndexes()) {
    switch (entry.kind) {
      case Database::IndexKind::kPrixRegular:
      case Database::IndexKind::kPrixExtended: {
        auto index = PrixIndex::Open(sdb->get(), entry.name);
        if (!index.ok()) {
          report->dropped.push_back(entry.name);
          break;
        }
        fatal = (*index)->Salvage(ddb->get(), entry.name, &report->stats);
        if (!fatal.ok()) break;
        ++report->indexes_salvaged;
        if (doc_source == nullptr) doc_source = std::move(*index);
        break;
      }
      case Database::IndexKind::kVist: {
        auto index = VistIndex::Open(sdb->get(), entry.name);
        if (!index.ok()) {
          // Unwalkable as an index, but still recoverable from the
          // documents: rebuild it below instead of dropping it.
          derived.push_back(entry);
          break;
        }
        fatal = (*index)->Salvage(ddb->get(), entry.name, &report->stats);
        if (!fatal.ok()) break;
        ++report->indexes_salvaged;
        break;
      }
      case Database::IndexKind::kBlob: {
        std::vector<char> blob;
        if (!ReadBlob((*sdb)->pool(), entry.root, &blob).ok()) {
          report->dropped.push_back(entry.name);
          break;
        }
        auto first = WriteBlob((*ddb)->pool(), blob);
        if (!first.ok()) {
          fatal = first.status();
          break;
        }
        Database::IndexEntry copy = entry;
        copy.root = *first;
        fatal = (*ddb)->PutIndex(copy);
        if (fatal.ok()) ++report->indexes_salvaged;
        break;
      }
      case Database::IndexKind::kTwigStreams:
      case Database::IndexKind::kXbForest:
        // Derived from the documents; rebuilt from the salvaged documents
        // once a reconstruction source is known.
        derived.push_back(entry);
        break;
    }
    if (!fatal.ok()) break;
  }
  if (fatal.ok() && !derived.empty()) {
    fatal = RebuildDerivedEntries(doc_source.get(), ddb->get(), derived,
                                  report);
  }
  (*sdb)->Abandon();
  Status close_st = (*ddb)->Close();
  if (!fatal.ok()) return fatal.Annotate("salvage: writing destination");
  return close_st;
}

}  // namespace prix
