#ifndef PRIX_VERIFY_VERIFIER_H_
#define PRIX_VERIFY_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "storage/page.h"

namespace prix {

/// One fault found by the scrub: the page it was detected on (kInvalidPage
/// when the fault is not page-specific), the catalog entry it belongs to
/// ("" for file-level faults), a structural context such as a B+-tree node
/// path, and the detecting Status' message.
struct VerifyIssue {
  PageId page = kInvalidPage;
  std::string index;
  std::string context;
  std::string message;
};

/// Per-index document accounting: how many documents are live versus
/// tombstoned-but-unreclaimed (deleted documents keep their append-only
/// records until a compaction rewrites the index; they are dead weight, not
/// corruption). Reported for PRIX entries, for ViST entries (live = Docid
/// entries remaining), and for v2 stream stores (dead = tombstone count) —
/// co-resident engines ride every ingest commit, so live/dead accounting,
/// not staleness, is the interesting number per engine.
struct IndexDocStats {
  std::string index;
  uint64_t live_docs = 0;
  uint64_t dead_docs = 0;
};

/// A derived (ViST/TwigStack) index stamped stale: its structure is intact
/// but describes an older generation of the documents. Co-resident derived
/// indexes now ride every ingest commit, so stamps only appear on indexes a
/// pre-§5k binary ingested past (or that failed to load at ingest time).
/// Like dead documents this is dead weight, not corruption — it never makes
/// the report unclean.
struct StaleIndexNote {
  std::string index;
  uint64_t stale_as_of_gen = 0;  ///< first generation the index missed
};

/// Accumulated result of ScrubPages and/or VerifyDatabase. A database is
/// clean when both passes leave `issues` empty.
struct VerifyReport {
  uint64_t pages_scanned = 0;
  uint64_t pages_bad = 0;        ///< pages failing the trailer CRC
  uint64_t indexes_checked = 0;  ///< catalog entries walked
  uint64_t indexes_bad = 0;      ///< entries with at least one issue
  uint64_t free_pages = 0;       ///< persistent free-list entries at open
  std::vector<VerifyIssue> issues;
  std::vector<IndexDocStats> doc_stats;  ///< per document-bearing entry
  std::vector<StaleIndexNote> stale_indexes;  ///< stamped by older binaries

  bool clean() const { return issues.empty(); }
};

/// Phase 1 of `prix verify`: a raw full-file scan checking every page's
/// trailer CRC, independent of the catalog (it works even when the
/// superblock itself is garbage). Opens `path` read-only and never mutates
/// it; a ragged (non-page-aligned) tail is reported as an issue and the
/// full pages before it are still scanned. Returns non-OK only when the
/// file cannot be read at all.
Status ScrubPages(const std::string& path, VerifyReport* report);

/// Phase 2 of `prix verify`: opens the database and structurally walks
/// every catalog entry — B+-trees via WalkReachable (reporting the node
/// path of each fault), document/sequence records, stream pages, and blob
/// chains. The database is opened for the walk and abandoned without
/// committing anything. Open failures (bad superblock, old format) become
/// issues, not errors; non-OK means the walk infrastructure itself failed.
Status VerifyDatabase(const std::string& path, VerifyReport* report);

/// Result of one SalvageDatabase run.
struct SalvageReport {
  SalvageStats stats;                  ///< summed over all salvaged indexes
  uint64_t indexes_salvaged = 0;       ///< entries rebuilt into `dst`
  std::vector<std::string> dropped;    ///< entries lost or not salvageable
  /// Derived entries (stream stores, XB-forests, unwalkable ViSTs) rebuilt
  /// from the salvaged documents rather than copied from the source.
  std::vector<std::string> rebuilt;
};

/// Best-effort salvage: rebuilds every reachable PRIX/ViST index of `src`
/// into a fresh database file at `dst` (which must not be `src`), skipping
/// poisoned subtrees, and copies readable blob entries (e.g. the tag
/// dictionary). Derived entries — stream stores, XB-forests, and any ViST
/// whose own structure cannot be walked — are rebuilt from the documents
/// reconstructed out of the first salvageable PRIX index (tombstoned or
/// unreadable documents become empty placeholders, tombstoned again where
/// the format supports it) and listed in `report->rebuilt`; only when no
/// PRIX index survives to reconstruct from are they dropped. Fails when
/// `src`'s catalog cannot be opened at all or `dst` cannot be written.
Status SalvageDatabase(const std::string& src, const std::string& dst,
                       SalvageReport* report);

}  // namespace prix

#endif  // PRIX_VERIFY_VERIFIER_H_
