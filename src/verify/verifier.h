#ifndef PRIX_VERIFY_VERIFIER_H_
#define PRIX_VERIFY_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/result.h"
#include "storage/page.h"

namespace prix {

/// One fault found by the scrub: the page it was detected on (kInvalidPage
/// when the fault is not page-specific), the catalog entry it belongs to
/// ("" for file-level faults), a structural context such as a B+-tree node
/// path, and the detecting Status' message.
struct VerifyIssue {
  PageId page = kInvalidPage;
  std::string index;
  std::string context;
  std::string message;
};

/// Per-index document accounting for PRIX entries: how many documents are
/// live versus tombstoned-but-unreclaimed (deleted documents keep their
/// append-only DocStore record until a compaction rewrites the index; they
/// are dead weight, not corruption).
struct IndexDocStats {
  std::string index;
  uint64_t live_docs = 0;
  uint64_t dead_docs = 0;
};

/// A derived (ViST/TwigStack) index stamped stale by online ingest: its
/// structure is intact but describes an older generation of the documents.
/// Like dead documents this is dead weight, not corruption — it never makes
/// the report unclean.
struct StaleIndexNote {
  std::string index;
  uint64_t stale_as_of_gen = 0;  ///< first generation the index missed
};

/// Accumulated result of ScrubPages and/or VerifyDatabase. A database is
/// clean when both passes leave `issues` empty.
struct VerifyReport {
  uint64_t pages_scanned = 0;
  uint64_t pages_bad = 0;        ///< pages failing the trailer CRC
  uint64_t indexes_checked = 0;  ///< catalog entries walked
  uint64_t indexes_bad = 0;      ///< entries with at least one issue
  uint64_t free_pages = 0;       ///< persistent free-list entries at open
  std::vector<VerifyIssue> issues;
  std::vector<IndexDocStats> doc_stats;  ///< one per PRIX entry
  std::vector<StaleIndexNote> stale_indexes;  ///< stamped by online ingest

  bool clean() const { return issues.empty(); }
};

/// Phase 1 of `prix verify`: a raw full-file scan checking every page's
/// trailer CRC, independent of the catalog (it works even when the
/// superblock itself is garbage). Opens `path` read-only and never mutates
/// it; a ragged (non-page-aligned) tail is reported as an issue and the
/// full pages before it are still scanned. Returns non-OK only when the
/// file cannot be read at all.
Status ScrubPages(const std::string& path, VerifyReport* report);

/// Phase 2 of `prix verify`: opens the database and structurally walks
/// every catalog entry — B+-trees via WalkReachable (reporting the node
/// path of each fault), document/sequence records, stream pages, and blob
/// chains. The database is opened for the walk and abandoned without
/// committing anything. Open failures (bad superblock, old format) become
/// issues, not errors; non-OK means the walk infrastructure itself failed.
Status VerifyDatabase(const std::string& path, VerifyReport* report);

/// Result of one SalvageDatabase run.
struct SalvageReport {
  SalvageStats stats;                  ///< summed over all salvaged indexes
  uint64_t indexes_salvaged = 0;       ///< entries rebuilt into `dst`
  std::vector<std::string> dropped;    ///< entries lost or not salvageable
};

/// Best-effort salvage: rebuilds every reachable PRIX/ViST index of `src`
/// into a fresh database file at `dst` (which must not be `src`), skipping
/// poisoned subtrees, and copies readable blob entries (e.g. the tag
/// dictionary). Stream stores and XB-forests are derived structures and are
/// dropped (listed in `report->dropped`); rebuild them from the documents.
/// Fails when `src`'s catalog cannot be opened at all or `dst` cannot be
/// written.
Status SalvageDatabase(const std::string& src, const std::string& dst,
                       SalvageReport* report);

}  // namespace prix

#endif  // PRIX_VERIFY_VERIFIER_H_
