# Empty dependencies file for protein_search.
# This may be replaced when dependencies are built.
