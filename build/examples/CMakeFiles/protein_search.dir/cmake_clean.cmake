file(REMOVE_RECURSE
  "CMakeFiles/protein_search.dir/protein_search.cpp.o"
  "CMakeFiles/protein_search.dir/protein_search.cpp.o.d"
  "protein_search"
  "protein_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
