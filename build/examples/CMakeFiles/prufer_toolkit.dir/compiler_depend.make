# Empty compiler generated dependencies file for prufer_toolkit.
# This may be replaced when dependencies are built.
