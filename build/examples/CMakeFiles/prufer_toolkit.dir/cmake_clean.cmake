file(REMOVE_RECURSE
  "CMakeFiles/prufer_toolkit.dir/prufer_toolkit.cpp.o"
  "CMakeFiles/prufer_toolkit.dir/prufer_toolkit.cpp.o.d"
  "prufer_toolkit"
  "prufer_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prufer_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
