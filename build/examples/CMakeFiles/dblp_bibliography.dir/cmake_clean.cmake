file(REMOVE_RECURSE
  "CMakeFiles/dblp_bibliography.dir/dblp_bibliography.cpp.o"
  "CMakeFiles/dblp_bibliography.dir/dblp_bibliography.cpp.o.d"
  "dblp_bibliography"
  "dblp_bibliography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
