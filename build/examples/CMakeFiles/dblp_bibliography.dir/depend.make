# Empty dependencies file for dblp_bibliography.
# This may be replaced when dependencies are built.
