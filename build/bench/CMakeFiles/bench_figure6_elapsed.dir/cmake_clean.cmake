file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_elapsed.dir/bench_figure6_elapsed.cc.o"
  "CMakeFiles/bench_figure6_elapsed.dir/bench_figure6_elapsed.cc.o.d"
  "bench_figure6_elapsed"
  "bench_figure6_elapsed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_elapsed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
