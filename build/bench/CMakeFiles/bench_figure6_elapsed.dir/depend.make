# Empty dependencies file for bench_figure6_elapsed.
# This may be replaced when dependencies are built.
