# Empty compiler generated dependencies file for bench_table8_clustered.
# This may be replaced when dependencies are built.
