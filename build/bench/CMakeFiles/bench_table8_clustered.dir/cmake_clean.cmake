file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_clustered.dir/bench_table8_clustered.cc.o"
  "CMakeFiles/bench_table8_clustered.dir/bench_table8_clustered.cc.o.d"
  "bench_table8_clustered"
  "bench_table8_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
