# Empty dependencies file for bench_table9_scattered.
# This may be replaced when dependencies are built.
