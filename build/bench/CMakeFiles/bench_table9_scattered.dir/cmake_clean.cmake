file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_scattered.dir/bench_table9_scattered.cc.o"
  "CMakeFiles/bench_table9_scattered.dir/bench_table9_scattered.cc.o.d"
  "bench_table9_scattered"
  "bench_table9_scattered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_scattered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
