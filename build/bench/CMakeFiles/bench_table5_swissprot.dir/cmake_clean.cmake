file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_swissprot.dir/bench_table5_swissprot.cc.o"
  "CMakeFiles/bench_table5_swissprot.dir/bench_table5_swissprot.cc.o.d"
  "bench_table5_swissprot"
  "bench_table5_swissprot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_swissprot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
