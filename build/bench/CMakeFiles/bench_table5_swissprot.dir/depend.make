# Empty dependencies file for bench_table5_swissprot.
# This may be replaced when dependencies are built.
