file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_core.dir/bench_micro_core.cc.o"
  "CMakeFiles/bench_micro_core.dir/bench_micro_core.cc.o.d"
  "bench_micro_core"
  "bench_micro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
