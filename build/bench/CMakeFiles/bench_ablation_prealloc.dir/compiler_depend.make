# Empty compiler generated dependencies file for bench_ablation_prealloc.
# This may be replaced when dependencies are built.
