file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prealloc.dir/bench_ablation_prealloc.cc.o"
  "CMakeFiles/bench_ablation_prealloc.dir/bench_ablation_prealloc.cc.o.d"
  "bench_ablation_prealloc"
  "bench_ablation_prealloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prealloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
