file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epindex.dir/bench_ablation_epindex.cc.o"
  "CMakeFiles/bench_ablation_epindex.dir/bench_ablation_epindex.cc.o.d"
  "bench_ablation_epindex"
  "bench_ablation_epindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
