# Empty dependencies file for bench_ablation_epindex.
# This may be replaced when dependencies are built.
