file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_queries.dir/bench_table3_queries.cc.o"
  "CMakeFiles/bench_table3_queries.dir/bench_table3_queries.cc.o.d"
  "bench_table3_queries"
  "bench_table3_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
