# Empty compiler generated dependencies file for bench_ablation_maxgap.
# This may be replaced when dependencies are built.
