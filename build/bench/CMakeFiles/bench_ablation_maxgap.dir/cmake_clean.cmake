file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maxgap.dir/bench_ablation_maxgap.cc.o"
  "CMakeFiles/bench_ablation_maxgap.dir/bench_ablation_maxgap.cc.o.d"
  "bench_ablation_maxgap"
  "bench_ablation_maxgap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maxgap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
