# Empty compiler generated dependencies file for bench_table7_twigstack.
# This may be replaced when dependencies are built.
