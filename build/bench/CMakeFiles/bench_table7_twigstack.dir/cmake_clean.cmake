file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_twigstack.dir/bench_table7_twigstack.cc.o"
  "CMakeFiles/bench_table7_twigstack.dir/bench_table7_twigstack.cc.o.d"
  "bench_table7_twigstack"
  "bench_table7_twigstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_twigstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
