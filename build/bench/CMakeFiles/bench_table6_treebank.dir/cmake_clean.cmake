file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_treebank.dir/bench_table6_treebank.cc.o"
  "CMakeFiles/bench_table6_treebank.dir/bench_table6_treebank.cc.o.d"
  "bench_table6_treebank"
  "bench_table6_treebank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_treebank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
