file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dblp.dir/bench_table4_dblp.cc.o"
  "CMakeFiles/bench_table4_dblp.dir/bench_table4_dblp.cc.o.d"
  "bench_table4_dblp"
  "bench_table4_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
