file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selectivity.dir/bench_ablation_selectivity.cc.o"
  "CMakeFiles/bench_ablation_selectivity.dir/bench_ablation_selectivity.cc.o.d"
  "bench_ablation_selectivity"
  "bench_ablation_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
