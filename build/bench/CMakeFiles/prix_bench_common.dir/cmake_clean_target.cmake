file(REMOVE_RECURSE
  "libprix_bench_common.a"
)
