file(REMOVE_RECURSE
  "CMakeFiles/prix_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/prix_bench_common.dir/bench_common.cc.o.d"
  "libprix_bench_common.a"
  "libprix_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
