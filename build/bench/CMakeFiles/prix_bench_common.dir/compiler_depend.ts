# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for prix_bench_common.
