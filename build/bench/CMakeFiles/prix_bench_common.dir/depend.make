# Empty dependencies file for prix_bench_common.
# This may be replaced when dependencies are built.
