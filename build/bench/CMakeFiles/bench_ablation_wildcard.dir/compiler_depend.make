# Empty compiler generated dependencies file for bench_ablation_wildcard.
# This may be replaced when dependencies are built.
