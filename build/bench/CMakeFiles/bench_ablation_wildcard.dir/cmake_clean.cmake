file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wildcard.dir/bench_ablation_wildcard.cc.o"
  "CMakeFiles/bench_ablation_wildcard.dir/bench_ablation_wildcard.cc.o.d"
  "bench_ablation_wildcard"
  "bench_ablation_wildcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wildcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
