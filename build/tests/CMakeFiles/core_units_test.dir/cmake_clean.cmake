file(REMOVE_RECURSE
  "CMakeFiles/core_units_test.dir/core_units_test.cc.o"
  "CMakeFiles/core_units_test.dir/core_units_test.cc.o.d"
  "core_units_test"
  "core_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
