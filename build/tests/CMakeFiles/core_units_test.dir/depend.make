# Empty dependencies file for core_units_test.
# This may be replaced when dependencies are built.
