# Empty compiler generated dependencies file for twigstack_test.
# This may be replaced when dependencies are built.
