file(REMOVE_RECURSE
  "CMakeFiles/twigstack_test.dir/twigstack_test.cc.o"
  "CMakeFiles/twigstack_test.dir/twigstack_test.cc.o.d"
  "twigstack_test"
  "twigstack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
