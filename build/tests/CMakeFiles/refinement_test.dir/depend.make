# Empty dependencies file for refinement_test.
# This may be replaced when dependencies are built.
