# Empty dependencies file for prix_e2e_test.
# This may be replaced when dependencies are built.
