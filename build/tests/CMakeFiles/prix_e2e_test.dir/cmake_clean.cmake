file(REMOVE_RECURSE
  "CMakeFiles/prix_e2e_test.dir/prix_e2e_test.cc.o"
  "CMakeFiles/prix_e2e_test.dir/prix_e2e_test.cc.o.d"
  "prix_e2e_test"
  "prix_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
