# Empty dependencies file for prufer_test.
# This may be replaced when dependencies are built.
