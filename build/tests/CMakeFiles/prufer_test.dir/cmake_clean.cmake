file(REMOVE_RECURSE
  "CMakeFiles/prufer_test.dir/prufer_test.cc.o"
  "CMakeFiles/prufer_test.dir/prufer_test.cc.o.d"
  "prufer_test"
  "prufer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prufer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
