file(REMOVE_RECURSE
  "CMakeFiles/persistence_test.dir/persistence_test.cc.o"
  "CMakeFiles/persistence_test.dir/persistence_test.cc.o.d"
  "persistence_test"
  "persistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
