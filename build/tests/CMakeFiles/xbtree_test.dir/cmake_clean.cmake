file(REMOVE_RECURSE
  "CMakeFiles/xbtree_test.dir/xbtree_test.cc.o"
  "CMakeFiles/xbtree_test.dir/xbtree_test.cc.o.d"
  "xbtree_test"
  "xbtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
