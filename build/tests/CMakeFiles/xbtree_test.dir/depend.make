# Empty dependencies file for xbtree_test.
# This may be replaced when dependencies are built.
