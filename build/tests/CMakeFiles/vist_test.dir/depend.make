# Empty dependencies file for vist_test.
# This may be replaced when dependencies are built.
