file(REMOVE_RECURSE
  "CMakeFiles/vist_test.dir/vist_test.cc.o"
  "CMakeFiles/vist_test.dir/vist_test.cc.o.d"
  "vist_test"
  "vist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
