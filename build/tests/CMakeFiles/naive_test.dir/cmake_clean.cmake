file(REMOVE_RECURSE
  "CMakeFiles/naive_test.dir/naive_test.cc.o"
  "CMakeFiles/naive_test.dir/naive_test.cc.o.d"
  "naive_test"
  "naive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
