
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/naive_test.cc" "tests/CMakeFiles/naive_test.dir/naive_test.cc.o" "gcc" "tests/CMakeFiles/naive_test.dir/naive_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/prix_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_vist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_twigstack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_naive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_prufer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
