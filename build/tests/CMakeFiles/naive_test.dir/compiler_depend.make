# Empty compiler generated dependencies file for naive_test.
# This may be replaced when dependencies are built.
