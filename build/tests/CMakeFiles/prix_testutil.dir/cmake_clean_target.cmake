file(REMOVE_RECURSE
  "libprix_testutil.a"
)
