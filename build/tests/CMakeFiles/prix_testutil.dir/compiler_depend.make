# Empty compiler generated dependencies file for prix_testutil.
# This may be replaced when dependencies are built.
