file(REMOVE_RECURSE
  "CMakeFiles/prix_testutil.dir/testutil/tree_gen.cc.o"
  "CMakeFiles/prix_testutil.dir/testutil/tree_gen.cc.o.d"
  "libprix_testutil.a"
  "libprix_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
