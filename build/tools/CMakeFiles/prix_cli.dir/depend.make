# Empty dependencies file for prix_cli.
# This may be replaced when dependencies are built.
