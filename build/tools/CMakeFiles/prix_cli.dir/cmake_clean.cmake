file(REMOVE_RECURSE
  "CMakeFiles/prix_cli.dir/prix_cli.cc.o"
  "CMakeFiles/prix_cli.dir/prix_cli.cc.o.d"
  "prix"
  "prix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
