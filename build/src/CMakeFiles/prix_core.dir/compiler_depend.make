# Empty compiler generated dependencies file for prix_core.
# This may be replaced when dependencies are built.
