
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prix/doc_store.cc" "src/CMakeFiles/prix_core.dir/prix/doc_store.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/doc_store.cc.o.d"
  "/root/repo/src/prix/maxgap.cc" "src/CMakeFiles/prix_core.dir/prix/maxgap.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/maxgap.cc.o.d"
  "/root/repo/src/prix/prix_index.cc" "src/CMakeFiles/prix_core.dir/prix/prix_index.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/prix_index.cc.o.d"
  "/root/repo/src/prix/query_processor.cc" "src/CMakeFiles/prix_core.dir/prix/query_processor.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/query_processor.cc.o.d"
  "/root/repo/src/prix/refinement.cc" "src/CMakeFiles/prix_core.dir/prix/refinement.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/refinement.cc.o.d"
  "/root/repo/src/prix/subsequence_matcher.cc" "src/CMakeFiles/prix_core.dir/prix/subsequence_matcher.cc.o" "gcc" "src/CMakeFiles/prix_core.dir/prix/subsequence_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prix_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_naive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_prufer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
