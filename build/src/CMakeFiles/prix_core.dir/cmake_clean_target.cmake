file(REMOVE_RECURSE
  "libprix_core.a"
)
