file(REMOVE_RECURSE
  "CMakeFiles/prix_core.dir/prix/doc_store.cc.o"
  "CMakeFiles/prix_core.dir/prix/doc_store.cc.o.d"
  "CMakeFiles/prix_core.dir/prix/maxgap.cc.o"
  "CMakeFiles/prix_core.dir/prix/maxgap.cc.o.d"
  "CMakeFiles/prix_core.dir/prix/prix_index.cc.o"
  "CMakeFiles/prix_core.dir/prix/prix_index.cc.o.d"
  "CMakeFiles/prix_core.dir/prix/query_processor.cc.o"
  "CMakeFiles/prix_core.dir/prix/query_processor.cc.o.d"
  "CMakeFiles/prix_core.dir/prix/refinement.cc.o"
  "CMakeFiles/prix_core.dir/prix/refinement.cc.o.d"
  "CMakeFiles/prix_core.dir/prix/subsequence_matcher.cc.o"
  "CMakeFiles/prix_core.dir/prix/subsequence_matcher.cc.o.d"
  "libprix_core.a"
  "libprix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
