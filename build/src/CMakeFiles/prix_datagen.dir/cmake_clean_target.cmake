file(REMOVE_RECURSE
  "libprix_datagen.a"
)
