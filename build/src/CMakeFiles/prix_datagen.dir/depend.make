# Empty dependencies file for prix_datagen.
# This may be replaced when dependencies are built.
