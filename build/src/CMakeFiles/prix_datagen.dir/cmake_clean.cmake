file(REMOVE_RECURSE
  "CMakeFiles/prix_datagen.dir/datagen/dblp_gen.cc.o"
  "CMakeFiles/prix_datagen.dir/datagen/dblp_gen.cc.o.d"
  "CMakeFiles/prix_datagen.dir/datagen/name_pools.cc.o"
  "CMakeFiles/prix_datagen.dir/datagen/name_pools.cc.o.d"
  "CMakeFiles/prix_datagen.dir/datagen/swissprot_gen.cc.o"
  "CMakeFiles/prix_datagen.dir/datagen/swissprot_gen.cc.o.d"
  "CMakeFiles/prix_datagen.dir/datagen/treebank_gen.cc.o"
  "CMakeFiles/prix_datagen.dir/datagen/treebank_gen.cc.o.d"
  "libprix_datagen.a"
  "libprix_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
