file(REMOVE_RECURSE
  "CMakeFiles/prix_common.dir/common/status.cc.o"
  "CMakeFiles/prix_common.dir/common/status.cc.o.d"
  "CMakeFiles/prix_common.dir/common/string_util.cc.o"
  "CMakeFiles/prix_common.dir/common/string_util.cc.o.d"
  "libprix_common.a"
  "libprix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
