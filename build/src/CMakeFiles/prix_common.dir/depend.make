# Empty dependencies file for prix_common.
# This may be replaced when dependencies are built.
