file(REMOVE_RECURSE
  "libprix_common.a"
)
