file(REMOVE_RECURSE
  "CMakeFiles/prix_vist.dir/vist/vist_index.cc.o"
  "CMakeFiles/prix_vist.dir/vist/vist_index.cc.o.d"
  "CMakeFiles/prix_vist.dir/vist/vist_query.cc.o"
  "CMakeFiles/prix_vist.dir/vist/vist_query.cc.o.d"
  "CMakeFiles/prix_vist.dir/vist/vist_sequence.cc.o"
  "CMakeFiles/prix_vist.dir/vist/vist_sequence.cc.o.d"
  "libprix_vist.a"
  "libprix_vist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_vist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
