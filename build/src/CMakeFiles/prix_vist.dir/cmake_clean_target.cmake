file(REMOVE_RECURSE
  "libprix_vist.a"
)
