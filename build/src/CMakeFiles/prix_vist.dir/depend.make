# Empty dependencies file for prix_vist.
# This may be replaced when dependencies are built.
