file(REMOVE_RECURSE
  "libprix_xml.a"
)
