# Empty dependencies file for prix_xml.
# This may be replaced when dependencies are built.
