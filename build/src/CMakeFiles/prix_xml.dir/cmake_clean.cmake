file(REMOVE_RECURSE
  "CMakeFiles/prix_xml.dir/xml/document.cc.o"
  "CMakeFiles/prix_xml.dir/xml/document.cc.o.d"
  "CMakeFiles/prix_xml.dir/xml/tag_dictionary.cc.o"
  "CMakeFiles/prix_xml.dir/xml/tag_dictionary.cc.o.d"
  "CMakeFiles/prix_xml.dir/xml/xml_parser.cc.o"
  "CMakeFiles/prix_xml.dir/xml/xml_parser.cc.o.d"
  "CMakeFiles/prix_xml.dir/xml/xml_writer.cc.o"
  "CMakeFiles/prix_xml.dir/xml/xml_writer.cc.o.d"
  "libprix_xml.a"
  "libprix_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
