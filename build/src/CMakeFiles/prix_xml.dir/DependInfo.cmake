
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/prix_xml.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/prix_xml.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/tag_dictionary.cc" "src/CMakeFiles/prix_xml.dir/xml/tag_dictionary.cc.o" "gcc" "src/CMakeFiles/prix_xml.dir/xml/tag_dictionary.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/prix_xml.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/prix_xml.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/CMakeFiles/prix_xml.dir/xml/xml_writer.cc.o" "gcc" "src/CMakeFiles/prix_xml.dir/xml/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
