# Empty dependencies file for prix_query.
# This may be replaced when dependencies are built.
