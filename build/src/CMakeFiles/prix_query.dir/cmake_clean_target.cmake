file(REMOVE_RECURSE
  "libprix_query.a"
)
