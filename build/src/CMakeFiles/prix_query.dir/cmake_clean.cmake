file(REMOVE_RECURSE
  "CMakeFiles/prix_query.dir/query/twig_pattern.cc.o"
  "CMakeFiles/prix_query.dir/query/twig_pattern.cc.o.d"
  "CMakeFiles/prix_query.dir/query/twig_prufer.cc.o"
  "CMakeFiles/prix_query.dir/query/twig_prufer.cc.o.d"
  "CMakeFiles/prix_query.dir/query/xpath_parser.cc.o"
  "CMakeFiles/prix_query.dir/query/xpath_parser.cc.o.d"
  "libprix_query.a"
  "libprix_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
