file(REMOVE_RECURSE
  "CMakeFiles/prix_naive.dir/naive/naive_matcher.cc.o"
  "CMakeFiles/prix_naive.dir/naive/naive_matcher.cc.o.d"
  "libprix_naive.a"
  "libprix_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
