file(REMOVE_RECURSE
  "libprix_naive.a"
)
