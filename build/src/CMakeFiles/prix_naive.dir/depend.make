# Empty dependencies file for prix_naive.
# This may be replaced when dependencies are built.
