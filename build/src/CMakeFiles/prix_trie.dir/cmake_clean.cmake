file(REMOVE_RECURSE
  "CMakeFiles/prix_trie.dir/trie/range_labeler.cc.o"
  "CMakeFiles/prix_trie.dir/trie/range_labeler.cc.o.d"
  "CMakeFiles/prix_trie.dir/trie/trie_builder.cc.o"
  "CMakeFiles/prix_trie.dir/trie/trie_builder.cc.o.d"
  "libprix_trie.a"
  "libprix_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
