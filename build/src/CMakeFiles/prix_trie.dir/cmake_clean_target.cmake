file(REMOVE_RECURSE
  "libprix_trie.a"
)
