# Empty compiler generated dependencies file for prix_trie.
# This may be replaced when dependencies are built.
