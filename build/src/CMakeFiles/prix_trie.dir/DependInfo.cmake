
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/range_labeler.cc" "src/CMakeFiles/prix_trie.dir/trie/range_labeler.cc.o" "gcc" "src/CMakeFiles/prix_trie.dir/trie/range_labeler.cc.o.d"
  "/root/repo/src/trie/trie_builder.cc" "src/CMakeFiles/prix_trie.dir/trie/trie_builder.cc.o" "gcc" "src/CMakeFiles/prix_trie.dir/trie/trie_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prix_prufer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
