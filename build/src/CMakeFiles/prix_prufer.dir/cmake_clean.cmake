file(REMOVE_RECURSE
  "CMakeFiles/prix_prufer.dir/prufer/prufer.cc.o"
  "CMakeFiles/prix_prufer.dir/prufer/prufer.cc.o.d"
  "libprix_prufer.a"
  "libprix_prufer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_prufer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
