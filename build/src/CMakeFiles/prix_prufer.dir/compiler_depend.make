# Empty compiler generated dependencies file for prix_prufer.
# This may be replaced when dependencies are built.
