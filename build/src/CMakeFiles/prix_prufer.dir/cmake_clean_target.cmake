file(REMOVE_RECURSE
  "libprix_prufer.a"
)
