# Empty dependencies file for prix_twigstack.
# This may be replaced when dependencies are built.
