file(REMOVE_RECURSE
  "CMakeFiles/prix_twigstack.dir/twigstack/merge.cc.o"
  "CMakeFiles/prix_twigstack.dir/twigstack/merge.cc.o.d"
  "CMakeFiles/prix_twigstack.dir/twigstack/path_stack.cc.o"
  "CMakeFiles/prix_twigstack.dir/twigstack/path_stack.cc.o.d"
  "CMakeFiles/prix_twigstack.dir/twigstack/position_stream.cc.o"
  "CMakeFiles/prix_twigstack.dir/twigstack/position_stream.cc.o.d"
  "CMakeFiles/prix_twigstack.dir/twigstack/twig_stack.cc.o"
  "CMakeFiles/prix_twigstack.dir/twigstack/twig_stack.cc.o.d"
  "CMakeFiles/prix_twigstack.dir/twigstack/xb_tree.cc.o"
  "CMakeFiles/prix_twigstack.dir/twigstack/xb_tree.cc.o.d"
  "libprix_twigstack.a"
  "libprix_twigstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_twigstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
