file(REMOVE_RECURSE
  "libprix_twigstack.a"
)
