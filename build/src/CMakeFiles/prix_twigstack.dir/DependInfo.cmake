
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twigstack/merge.cc" "src/CMakeFiles/prix_twigstack.dir/twigstack/merge.cc.o" "gcc" "src/CMakeFiles/prix_twigstack.dir/twigstack/merge.cc.o.d"
  "/root/repo/src/twigstack/path_stack.cc" "src/CMakeFiles/prix_twigstack.dir/twigstack/path_stack.cc.o" "gcc" "src/CMakeFiles/prix_twigstack.dir/twigstack/path_stack.cc.o.d"
  "/root/repo/src/twigstack/position_stream.cc" "src/CMakeFiles/prix_twigstack.dir/twigstack/position_stream.cc.o" "gcc" "src/CMakeFiles/prix_twigstack.dir/twigstack/position_stream.cc.o.d"
  "/root/repo/src/twigstack/twig_stack.cc" "src/CMakeFiles/prix_twigstack.dir/twigstack/twig_stack.cc.o" "gcc" "src/CMakeFiles/prix_twigstack.dir/twigstack/twig_stack.cc.o.d"
  "/root/repo/src/twigstack/xb_tree.cc" "src/CMakeFiles/prix_twigstack.dir/twigstack/xb_tree.cc.o" "gcc" "src/CMakeFiles/prix_twigstack.dir/twigstack/xb_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_naive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_prufer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
