# Empty compiler generated dependencies file for prix_storage.
# This may be replaced when dependencies are built.
