
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/prix_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/prix_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/prix_storage.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/prix_storage.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/record_store.cc" "src/CMakeFiles/prix_storage.dir/storage/record_store.cc.o" "gcc" "src/CMakeFiles/prix_storage.dir/storage/record_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
