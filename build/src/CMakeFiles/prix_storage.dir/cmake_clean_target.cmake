file(REMOVE_RECURSE
  "libprix_storage.a"
)
