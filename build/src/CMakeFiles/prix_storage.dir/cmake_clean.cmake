file(REMOVE_RECURSE
  "CMakeFiles/prix_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/prix_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/prix_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/prix_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/prix_storage.dir/storage/record_store.cc.o"
  "CMakeFiles/prix_storage.dir/storage/record_store.cc.o.d"
  "libprix_storage.a"
  "libprix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
