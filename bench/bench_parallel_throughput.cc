// Parallel twig-query throughput: sweeps 1/2/4/8 worker threads over the
// Table-3 query mix per dataset with a WARM buffer pool (the concurrent-
// traffic regime of ROADMAP.md, as opposed to the paper's cold-cache
// single-query measurements) and reports queries/second plus buffer-pool
// hit rates. Also re-measures the standard single-thread cold-cache numbers
// so regressions against the serial path are visible in the same run.
// Emits BENCH_parallel.json.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "prix/query_driver.h"
#include "query/xpath_parser.h"

using namespace prix;
using namespace prix::bench;

namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
/// Each sweep point runs the dataset's query mix this many times.
constexpr size_t kBatchRepeats = 24;

struct SweepPoint {
  size_t threads = 0;
  double seconds = 0;
  double qps = 0;
  double hit_rate = 0;
  size_t queries = 0;
};

struct DatasetReport {
  std::string name;
  std::vector<const QuerySpec*> specs;
  std::vector<RunResult> cold_single;  // per-spec cold-cache serial runs
  std::vector<SweepPoint> sweep;
  bool results_consistent = true;
};

double HitRate(const BufferPoolStats& stats) {
  uint64_t logical = stats.hits + stats.misses;
  return logical == 0 ? 0.0 : static_cast<double>(stats.hits) / logical;
}

}  // namespace

int main() {
  double scale = ScaleFromEnv();
  unsigned hw = std::thread::hardware_concurrency();
  // hardware_concurrency may return 0 ("unknown"); the sysconf count of
  // ONLINE processors is the authoritative host annotation (ROADMAP item:
  // speedups are only meaningful when this is > 1).
  long online = sysconf(_SC_NPROCESSORS_ONLN);
  long host_cpus = online > 0 ? online : (hw > 0 ? long{hw} : 1);
  std::printf(
      "Parallel twig-query throughput, warm cache (scale %.2f, %u hardware "
      "threads, %ld online CPUs%s)\n",
      scale, hw, host_cpus,
      host_cpus > 1 ? "" : " - single-core host, expect flat speedup");

  std::vector<DatasetReport> reports;
  for (const char* dataset : {"DBLP", "SWISSPROT", "TREEBANK"}) {
    EngineSet set(dataset, scale, /*engines=*/"prix");
    if (!set.Build().ok()) return 1;
    DatasetReport report;
    report.name = dataset;

    std::vector<TwigPattern> mix;
    for (const QuerySpec& spec : AllQueries()) {
      if (std::strcmp(spec.dataset, dataset) != 0) continue;
      report.specs.push_back(&spec);
      auto pattern = ParseXPath(spec.xpath, &set.collection().dictionary);
      if (!pattern.ok()) {
        std::fprintf(stderr, "parse %s: %s\n", spec.id,
                     pattern.status().ToString().c_str());
        return 1;
      }
      mix.push_back(std::move(*pattern));
    }

    // Cold-cache serial reference (the paper's measurement; must stay
    // unchanged by the concurrency work within noise).
    for (const QuerySpec* spec : report.specs) {
      auto run = set.RunPrix(spec->xpath);
      if (!run.ok()) {
        std::fprintf(stderr, "query %s failed: %s\n", spec->id,
                     run.status().ToString().c_str());
        return 1;
      }
      report.cold_single.push_back(*run);
    }

    // Warm the pool once (serial), then sweep thread counts on the same
    // warm pool. The batch replicates the mix so every worker has work.
    std::vector<TwigPattern> batch;
    batch.reserve(mix.size() * kBatchRepeats);
    for (size_t r = 0; r < kBatchRepeats; ++r) {
      for (const TwigPattern& pattern : mix) batch.push_back(pattern);
    }
    QueryProcessor warmup(set.db(), set.rp(), set.ep());
    std::vector<size_t> expected_matches;
    for (const TwigPattern& pattern : mix) {
      auto r = warmup.Execute(pattern);
      if (!r.ok()) return 1;
      expected_matches.push_back(r->matches.size());
    }

    for (size_t threads : kThreadSweep) {
      QueryDriver driver(set.db(), set.rp(), set.ep(), threads);
      set.pool()->ResetStats();
      auto t0 = std::chrono::steady_clock::now();
      auto result = driver.ExecuteBatch(batch);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "batch on %s at %zu threads: %s\n", dataset,
                     threads, result.status().ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < result->results.size(); ++i) {
        report.results_consistent &=
            result->results[i].matches.size() ==
            expected_matches[i % expected_matches.size()];
      }
      SweepPoint point;
      point.threads = threads;
      point.queries = batch.size();
      point.seconds = std::chrono::duration<double>(t1 - t0).count();
      point.qps = batch.size() / point.seconds;
      point.hit_rate = HitRate(set.pool()->stats());
      report.sweep.push_back(point);
    }

    std::printf("\n[%s] %zu-query mix x%zu repeats\n", dataset, mix.size(),
                kBatchRepeats);
    std::printf("  %-8s %12s %12s %10s %10s\n", "threads", "secs", "qps",
                "speedup", "hit-rate");
    for (const SweepPoint& point : report.sweep) {
      std::printf("  %-8zu %12.3f %12.1f %9.2fx %9.1f%%\n", point.threads,
                  point.seconds, point.qps,
                  point.qps / report.sweep.front().qps,
                  100.0 * point.hit_rate);
    }
    if (!report.results_consistent) {
      std::printf("  WARNING: parallel results diverged from serial!\n");
    }
    reports.push_back(std::move(report));
  }

  // Overall throughput per thread count (sum of queries / sum of time).
  std::printf("\nOverall (all datasets)\n");
  std::printf("  %-8s %12s %10s\n", "threads", "qps", "speedup");
  std::vector<double> overall_qps;
  for (size_t i = 0; i < std::size(kThreadSweep); ++i) {
    double queries = 0, seconds = 0;
    for (const DatasetReport& report : reports) {
      queries += report.sweep[i].queries;
      seconds += report.sweep[i].seconds;
    }
    overall_qps.push_back(queries / seconds);
    std::printf("  %-8zu %12.1f %9.2fx\n", kThreadSweep[i], overall_qps[i],
                overall_qps[i] / overall_qps[0]);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("parallel_throughput");
  w.Key("scale").Double(scale);
  w.Key("hardware_concurrency").UInt(hw);
  w.Key("host_cpus").UInt(static_cast<uint64_t>(host_cpus));
  w.Key("multicore").Bool(host_cpus > 1);
  w.Key("batch_repeats").UInt(kBatchRepeats);
  w.Key("datasets").BeginArray();
  for (const DatasetReport& report : reports) {
    w.BeginObject();
    w.Key("name").String(report.name);
    w.Key("results_consistent").Bool(report.results_consistent);
    w.Key("cold_single_thread").BeginArray();
    for (size_t i = 0; i < report.specs.size(); ++i) {
      const RunResult& run = report.cold_single[i];
      w.BeginObject();
      w.Key("id").String(report.specs[i]->id);
      w.Key("seconds").Double(run.seconds);
      w.Key("pages").UInt(run.pages);
      w.Key("matches").UInt(run.matches);
      w.EndObject();
    }
    w.EndArray();
    w.Key("warm_sweep").BeginArray();
    for (const SweepPoint& point : report.sweep) {
      w.BeginObject();
      w.Key("threads").UInt(point.threads);
      w.Key("queries").UInt(point.queries);
      w.Key("seconds").Double(point.seconds);
      w.Key("qps").Double(point.qps);
      w.Key("speedup").Double(point.qps / report.sweep.front().qps);
      w.Key("hit_rate").Double(point.hit_rate);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("overall").BeginArray();
  for (size_t i = 0; i < overall_qps.size(); ++i) {
    w.BeginObject();
    w.Key("threads").UInt(kThreadSweep[i]);
    w.Key("qps").Double(overall_qps[i]);
    w.Key("speedup").Double(overall_qps[i] / overall_qps[0]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string doc = w.Take();
  if (Status v = ValidateJson(doc); !v.ok()) {
    std::fprintf(stderr, "BENCH_parallel.json would be invalid: %s\n",
                 v.ToString().c_str());
    return 1;
  }
  FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_parallel.json\n");
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), json);
  std::fputc('\n', json);
  std::fclose(json);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
