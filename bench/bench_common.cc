#include "bench_common.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/build_info.h"
#include "common/macros.h"
#include "naive/naive_matcher.h"
#include "query/xpath_parser.h"

namespace prix::bench {

const std::vector<QuerySpec>& AllQueries() {
  static const std::vector<QuerySpec> kQueries = {
      {"Q1", kQ1, "DBLP", 6},      {"Q2", kQ2, "DBLP", 21},
      {"Q3", kQ3, "DBLP", 1},      {"Q4", kQ4, "SWISSPROT", 3},
      {"Q5", kQ5, "SWISSPROT", 5}, {"Q6", kQ6, "SWISSPROT", 158},
      {"Q7", kQ7, "TREEBANK", 9},  {"Q8", kQ8, "TREEBANK", 1},
      {"Q9", kQ9, "TREEBANK", 6},
  };
  return kQueries;
}

double ScaleFromEnv() {
  const char* env = std::getenv("PRIX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

DocumentCollection MakeDataset(const std::string& name, double scale) {
  if (name == "DBLP") {
    datagen::DblpConfig config;
    config.num_records = static_cast<size_t>(20000 * scale);
    return datagen::GenerateDblp(config);
  }
  if (name == "SWISSPROT") {
    datagen::SwissprotConfig config;
    config.num_entries = static_cast<size_t>(6000 * scale);
    return datagen::GenerateSwissprot(config);
  }
  if (name == "TREEBANK") {
    datagen::TreebankConfig config;
    config.num_sentences = static_cast<size_t>(6000 * scale);
    return datagen::GenerateTreebank(config);
  }
  PRIX_CHECK(false && "unknown dataset name");
  return {};
}

EngineSet::EngineSet(const std::string& dataset_name, double scale,
                     const std::string& engines)
    : name_(dataset_name), engines_(engines) {
  coll_ = MakeDataset(dataset_name, scale);
}

EngineSet::~EngineSet() {
  rp_.reset();
  ep_.reset();
  vist_.reset();
  streams_.reset();
  forest_.reset();
  db_.reset();
  if (!dir_.empty()) {
    std::string cmd = "rm -rf " + dir_;
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "warning: failed to remove %s\n", dir_.c_str());
    }
  }
}

Status EngineSet::Build() {
  char tmpl[] = "/tmp/prix_bench_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) return Status::IoError("mkdtemp failed");
  dir_ = tmpl;
  PRIX_ASSIGN_OR_RETURN(db_, Database::Create(dir_ + "/bench.prix"));

  auto t0 = std::chrono::steady_clock::now();
  if (engines_.find("prix") != std::string::npos) {
    PrixIndexOptions rp_opts;
    PRIX_ASSIGN_OR_RETURN(rp_, PrixIndex::Build(coll_.documents, db_->pool(),
                                                rp_opts, &rp_stats_));
    PrixIndexOptions ep_opts;
    ep_opts.extended = true;
    PRIX_ASSIGN_OR_RETURN(ep_, PrixIndex::Build(coll_.documents, db_->pool(),
                                                ep_opts, &ep_stats_));
  }
  if (engines_.find("vist") != std::string::npos) {
    PRIX_ASSIGN_OR_RETURN(
        vist_, VistIndex::Build(coll_.documents, db_->pool(), &vist_stats_));
  }
  if (engines_.find("twigstack") != std::string::npos) {
    PRIX_ASSIGN_OR_RETURN(streams_,
                          StreamStore::Build(coll_.documents, db_->pool()));
    PRIX_ASSIGN_OR_RETURN(forest_,
                          XbForest::Build(streams_.get(), coll_.dictionary));
  }
  auto t1 = std::chrono::steady_clock::now();
  std::fprintf(
      stderr, "[%s] %zu docs, %zu nodes; engines (%s) built in %.1fs\n",
      name_.c_str(), coll_.documents.size(), coll_.TotalNodes(),
      engines_.c_str(),
      std::chrono::duration<double>(t1 - t0).count());
  return Status::OK();
}

Status EngineSet::ColdStart() { return db_->ColdStart(); }

Result<RunResult> EngineSet::RunPrix(const std::string& xpath,
                                     bool use_maxgap,
                                     QueryOptions::IndexChoice index) {
  PRIX_CHECK(rp_ != nullptr);
  QueryProcessor qp(*db_, rp_.get(), ep_.get());
  QueryOptions options;
  options.use_maxgap = use_maxgap;
  options.index = index;
  // Two passes: the first absorbs OS-level warm-up (file-cache writeback
  // after an index build); the reported pass still starts from a cold
  // buffer pool, which is the paper's direct-I/O measurement.
  RunResult out;
  for (int pass = 0; pass < 2; ++pass) {
    PRIX_RETURN_NOT_OK(ColdStart());
    // The context captures this run's exact I/O (Execute's inner context
    // folds into it on return), including parse-time dictionary work.
    MetricsContext mctx;
    auto t0 = std::chrono::steady_clock::now();
    PRIX_ASSIGN_OR_RETURN(QueryResult qr,
                          qp.ExecuteXPath(xpath, &coll_.dictionary, options));
    auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.io = mctx.counters;
    out.pages = qr.stats.pages_read;
    out.matches = qr.matches.size();
    out.docs = qr.docs.size();
    out.prix_stats = qr.stats;
  }
  return out;
}

Result<RunResult> EngineSet::RunVist(const std::string& xpath) {
  PRIX_CHECK(vist_ != nullptr);
  PRIX_ASSIGN_OR_RETURN(TwigPattern pattern,
                        ParseXPath(xpath, &coll_.dictionary));
  VistQueryProcessor qp(vist_.get());
  RunResult out;
  for (int pass = 0; pass < 2; ++pass) {
    PRIX_RETURN_NOT_OK(ColdStart());
    MetricsContext mctx;
    auto t0 = std::chrono::steady_clock::now();
    PRIX_ASSIGN_OR_RETURN(VistQueryResult qr, qp.Execute(pattern));
    auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.io = mctx.counters;
    out.pages = out.io.physical_reads;
    out.matches = qr.matches.size();
    out.docs = qr.docs.size();
    out.vist_stats = qr.stats;
  }
  return out;
}

Result<RunResult> EngineSet::RunTwigStack(const std::string& xpath,
                                          bool use_xb) {
  PRIX_CHECK(streams_ != nullptr);
  PRIX_ASSIGN_OR_RETURN(TwigPattern pattern,
                        ParseXPath(xpath, &coll_.dictionary));
  TwigStackEngine engine(streams_.get(), use_xb ? forest_.get() : nullptr);
  RunResult out;
  for (int pass = 0; pass < 2; ++pass) {
    PRIX_RETURN_NOT_OK(ColdStart());
    MetricsContext mctx;
    auto t0 = std::chrono::steady_clock::now();
    PRIX_ASSIGN_OR_RETURN(TwigStackResult qr, engine.Execute(pattern));
    auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.io = mctx.counters;
    out.pages = out.io.physical_reads;
    out.matches = qr.matches.size();
    out.docs = qr.docs.size();
    out.twig_stats = qr.stats;
  }
  return out;
}

size_t EngineSet::OracleCount(const std::string& xpath) {
  auto pattern = ParseXPath(xpath, &coll_.dictionary);
  PRIX_CHECK(pattern.ok());
  EffectiveTwig twig = EffectiveTwig::Build(*pattern);
  return NaiveMatchCollection(coll_.documents, twig,
                              MatchSemantics::kOrdered)
      .size();
}

std::string Secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f secs", seconds);
  return buf;
}

std::string PagesStr(uint64_t pages) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu pages",
                static_cast<unsigned long long>(pages));
  return buf;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  MetricsRegistry::Global().set_enabled(true);
  MetricsRegistry::Global().Reset();
}

void BenchReport::AddRow(std::string_view engine, std::string_view dataset,
                         std::string_view query, std::string_view xpath,
                         const RunResult& r) {
  JsonWriter w;
  w.BeginObject();
  w.Key("engine").String(engine);
  w.Key("dataset").String(dataset);
  w.Key("query").String(query);
  w.Key("xpath").String(xpath);
  w.Key("seconds").Double(r.seconds);
  w.Key("matches").UInt(r.matches);
  w.Key("docs").UInt(r.docs);
  w.Key("pages_read").UInt(r.pages);
  w.Key("io").BeginObject();
  w.Key("pool_hits").UInt(r.io.pool_hits);
  w.Key("pool_misses").UInt(r.io.pool_misses);
  w.Key("physical_reads").UInt(r.io.physical_reads);
  w.Key("physical_writes").UInt(r.io.physical_writes);
  w.Key("btree_nodes").UInt(r.io.btree_nodes);
  w.EndObject();
  w.Key("phases_us").BeginObject();
  w.Key("match").UInt(r.prix_stats.match_us);
  w.Key("refine").UInt(r.prix_stats.refine_us);
  w.Key("verify").UInt(r.prix_stats.verify_us);
  w.Key("total").UInt(r.prix_stats.total_us);
  w.EndObject();
  w.EndObject();
  rows_.push_back(w.Take());
}

void BenchReport::AddRawRow(std::string json_object) {
  rows_.push_back(std::move(json_object));
}

Status BenchReport::Write() {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(name_);
  AppendBuildInfoJson(&w);
  w.Key("scale").Double(ScaleFromEnv());
  w.Key("rows").BeginArray();
  for (const std::string& row : rows_) w.RawValue(row);
  w.EndArray();
  // Process-wide registry dump: includes the per-phase latency histograms
  // (prix.query.*_us) accumulated since construction.
  w.Key("metrics").RawValue(MetricsRegistry::Global().ToJson());
  w.EndObject();
  std::string doc = w.Take();
  PRIX_RETURN_NOT_OK(ValidateJson(doc).Annotate("BENCH_" + name_ + ".json"));
  std::string path = "BENCH_" + name_ + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  if (std::fputc('\n', f) == EOF || n != doc.size()) {
    std::fclose(f);
    return Status::IoError("short write to " + path);
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed: " + path);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  return Status::OK();
}

}  // namespace prix::bench
