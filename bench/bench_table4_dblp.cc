// Regenerates Table 4: DBLP — PRIX vs ViST (total time and disk I/O) for
// queries Q1-Q3.

#include <cstdio>

#include "bench_common.h"

using namespace prix;
using namespace prix::bench;

int main() {
  EngineSet set("DBLP", ScaleFromEnv(), "prix,vist");
  if (!set.Build().ok()) return 1;
  std::printf("Table 4: DBLP - PRIX vs ViST\n");
  std::printf("%-6s %14s %14s %14s %14s\n", "Query", "PRIX time",
              "PRIX IO", "ViST time", "ViST IO");
  const char* ids[] = {"Q1", "Q2", "Q3"};
  const char* queries[] = {kQ1, kQ2, kQ3};
  BenchReport report("table4_dblp");
  for (int i = 0; i < 3; ++i) {
    auto prix_run = set.RunPrix(queries[i]);
    auto vist_run = set.RunVist(queries[i]);
    if (!prix_run.ok() || !vist_run.ok()) return 1;
    std::printf("%-6s %14s %14s %14s %14s\n", ids[i],
                Secs(prix_run->seconds).c_str(),
                PagesStr(prix_run->pages).c_str(),
                Secs(vist_run->seconds).c_str(),
                PagesStr(vist_run->pages).c_str());
    report.AddRow("PRIX", "DBLP", ids[i], queries[i], *prix_run);
    report.AddRow("ViST", "DBLP", ids[i], queries[i], *vist_run);
  }
  if (!report.Write().ok()) return 1;
  std::printf(
      "\nPaper (Table 4): Q1 1.48s/185p vs 15.28s/3543p; Q2 0.05s/7p vs "
      "0.15s/15p; Q3 0.07s/9p vs 22.07s/2280p.\n");
  return 0;
}
